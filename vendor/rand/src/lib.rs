//! Offline stand-in for the `rand` crate (no registry access in this
//! environment). Implements exactly the subset the workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::SmallRng`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64: fast, well
//! distributed, and fully deterministic per seed. Streams differ from
//! upstream `rand`, so fixed-seed outputs are reproducible within this
//! tree but not against historical runs made with the real crate.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness (object safe).
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators. Only the `seed_from_u64` entry point is used by
/// this workspace.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A uniform f64 in `[0, 1)` with 53 random mantissa bits.
#[inline]
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform integer in `[0, span)` via rejection from below.
#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // `t = 2^64 mod span`; accepting v >= t leaves a multiple of `span`
    // equally likely values, so `v % span` is exactly uniform.
    let t = span.wrapping_neg() % span;
    loop {
        let v = rng.next_u64();
        if v >= t {
            return v % span;
        }
    }
}

/// Types sampleable from the "standard" distribution (`rng.gen::<T>()`).
pub trait StandardSample {
    /// Draws one value.
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl StandardSample for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl StandardSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                self.start + (self.end - self.start) * unit_f64(rng) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                lo + (hi - lo) * unit_f64(rng) as $t
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution (`[0, 1)` for floats).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    /// Panics when the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range: {p}"
        );
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast PRNG (xoshiro256++), API-compatible with
    /// `rand::rngs::SmallRng` for the calls this workspace makes.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            // SplitMix64 expansion is the upstream-recommended way to fill
            // xoshiro state; it never yields the all-zero state.
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(SmallRng::seed_from_u64(42).gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = SmallRng::seed_from_u64(1);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn gen_bool_matches_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2800..3200).contains(&hits), "hits = {hits}");
        assert!(!SmallRng::seed_from_u64(0).gen_bool(0.0));
        assert!(SmallRng::seed_from_u64(0).gen_bool(1.0));
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> usize {
            rng.gen_range(0..10)
        }
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(draw(&mut rng) < 10);
    }
}
