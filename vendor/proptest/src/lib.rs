//! Offline stand-in for `proptest` (no registry access in this
//! environment). Supports the subset this workspace's property tests use:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header;
//! * [`Strategy`] implemented for integer/float ranges and 2–4-element
//!   tuples of strategies, plus [`Strategy::prop_map`], [`any`], and the
//!   [`prop_oneof!`] union;
//! * `prop::collection::vec(strategy, len)` and
//!   `prop::collection::btree_map(key, value, len)` with fixed or ranged
//!   lengths;
//! * [`prop_assert!`] / [`prop_assert_eq!`].
//!
//! Cases are straight random samples — there is no shrinking. The RNG seed
//! is derived from the test name, so every run replays the same cases and
//! failures reproduce exactly.

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::Rng;

pub mod collection;

/// Run-count configuration (`with_cases` is the only knob the workspace
/// uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A failed property case (carries the formatted assertion message).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

/// Generates random values for one test argument.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f` (`prop_map` in real proptest).
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn sample(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Whole-domain strategy (`any::<T>()` in real proptest).
#[derive(Debug, Clone, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Builds an [`Any`] strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

any_uint_strategy!(u8, u16, u32, u64, usize);

macro_rules! any_int_strategy {
    ($($t:ty as $u:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                (rng.gen::<u64>() as $u) as $t
            }
        }
    )*};
}

any_int_strategy!(i8 as u8, i16 as u16, i32 as u32, i64 as u64, isize as usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn sample(&self, rng: &mut SmallRng) -> bool {
        rng.gen::<bool>()
    }
}

/// A uniform choice between boxed strategies (the [`prop_oneof!`]
/// backing type; real proptest also supports weights, which the
/// workspace does not use).
pub struct Union<V> {
    branches: Vec<Box<dyn Strategy<Value = V>>>,
}

impl<V> Union<V> {
    /// Wraps the branch list (must be non-empty).
    pub fn new(branches: Vec<Box<dyn Strategy<Value = V>>>) -> Self {
        assert!(!branches.is_empty(), "prop_oneof! needs at least one arm");
        Union { branches }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample(&self, rng: &mut SmallRng) -> V {
        let pick = rng.gen_range(0..self.branches.len());
        self.branches[pick].sample(rng)
    }
}

/// Uniformly picks one of several strategies per sample (the unweighted
/// subset of real proptest's `prop_oneof!`).
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($branch) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(usize, u8, u16, u32, u64, isize, i8, i16, i32, i64);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut SmallRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!((A.0, B.1), (A.0, B.1, C.2), (A.0, B.1, C.2, D.3),);

/// A strategy yielding one fixed value (`Just` in real proptest).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut SmallRng) -> T {
        self.0.clone()
    }
}

/// Stable 64-bit FNV-1a over the test name, used as the per-test seed so
/// runs replay identically without global state.
pub fn seed_for(test_name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in test_name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{Any, Just, ProptestConfig, Strategy, TestCaseError, Union};
}

/// Asserts a condition inside a property, failing the case (not panicking
/// directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(concat!(
                "assertion failed: ",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Equality variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` == `{:?}`",
                a, b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    }};
}

/// Inequality variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                a, b
            )));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random samples of the strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr);
        $(
            $(#[$meta:meta])*
            $vis:vis fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            $vis fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = <::rand::rngs::SmallRng as ::rand::SeedableRng>::seed_from_u64(
                    $crate::seed_for(stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = ($strat).sample(&mut rng);)*
                    // Render inputs before the body runs: the body takes
                    // the arguments by value.
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; ",)*),
                        $(&$arg,)*
                    );
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n  inputs: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e.0,
                            inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    fn pair() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(0.0f64..1.0, 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_sample_in_bounds(x in 3u64..9, y in 0.5f64..2.5) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((0.5..2.5).contains(&y));
        }

        #[test]
        fn vec_strategy_sizes(v in prop::collection::vec(0usize..10, 1..5), w in pair()) {
            prop_assert!((1..5).contains(&v.len()));
            prop_assert_eq!(w.len(), 2);
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn tuple_strategies_sample_each_component(
            pairs in prop::collection::vec((0u64..4, 10.0f64..20.0), 1..6),
            triple in (0u64..3, 3u64..6, 6u64..9)
        ) {
            for (n, x) in &pairs {
                prop_assert!(*n < 4);
                prop_assert!((10.0..20.0).contains(x));
            }
            let (a, b, c) = triple;
            prop_assert!(a < 3 && (3..6).contains(&b) && (6..9).contains(&c));
        }
    }

    mod failing {
        use crate::prelude::*;
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            pub fn always_fails(x in 0u64..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
    }

    #[test]
    #[should_panic(expected = "property `always_fails` failed")]
    fn failures_report_inputs() {
        failing::always_fails();
    }

    #[test]
    fn seeds_are_stable_and_distinct() {
        assert_eq!(super::seed_for("a"), super::seed_for("a"));
        assert_ne!(super::seed_for("a"), super::seed_for("b"));
    }
}
