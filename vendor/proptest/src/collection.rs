//! `prop::collection` — the `vec` strategy.

use std::ops::Range;

use rand::rngs::SmallRng;
use rand::Rng;

use crate::Strategy;

/// A length specification: fixed or ranged.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end,
        }
    }
}

/// Strategy for `Vec<S::Value>` with a sampled length.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

/// Builds a [`VecStrategy`]: `vec(0.0f64..1.0, 3)` or `vec(strat, 1..20)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy for `BTreeMap<K::Value, V::Value>` with a sampled entry
/// count. Duplicate sampled keys collapse (last wins), exactly as in
/// real proptest, so the map may come out smaller than the drawn length.
#[derive(Debug, Clone)]
pub struct BTreeMapStrategy<K, V> {
    key: K,
    value: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    V: Strategy,
    K::Value: Ord,
{
    type Value = std::collections::BTreeMap<K::Value, V::Value>;

    fn sample(&self, rng: &mut SmallRng) -> Self::Value {
        let len = if self.size.lo + 1 == self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len)
            .map(|_| (self.key.sample(rng), self.value.sample(rng)))
            .collect()
    }
}

/// Builds a [`BTreeMapStrategy`]: `btree_map(any::<u64>(), 0u64..9, 1..20)`.
pub fn btree_map<K: Strategy, V: Strategy>(
    key: K,
    value: V,
    size: impl Into<SizeRange>,
) -> BTreeMapStrategy<K, V>
where
    K::Value: Ord,
{
    BTreeMapStrategy {
        key,
        value,
        size: size.into(),
    }
}
