//! Offline stand-in for `criterion` (no registry access in this
//! environment). Runs each benchmark closure for a fixed number of timed
//! iterations and prints the median — enough to spot order-of-magnitude
//! regressions, not a statistics suite. Supports both `criterion_group!`
//! forms used in the wild (positional targets, and
//! `name = ...; config = ...; targets = ...`).

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` call sites work; `std::hint` is the
/// canonical implementation.
pub use std::hint::black_box;

/// One finished benchmark's timing summary, kept by the driver so bench
/// binaries can emit machine-readable result files next to the printed
/// table (the real criterion writes these under `target/criterion/`; the
/// shim hands them back in memory instead).
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// The id passed to [`Criterion::bench_function`].
    pub id: String,
    /// Median per-iteration time across samples, in nanoseconds.
    pub median_ns: f64,
    /// Fastest sample, in nanoseconds.
    pub min_ns: f64,
    /// Slowest sample, in nanoseconds.
    pub max_ns: f64,
}

/// Benchmark driver (shim: sample count plus collected results).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    records: Vec<BenchRecord>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            records: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Every benchmark timed so far, in execution order.
    pub fn records(&self) -> &[BenchRecord] {
        &self.records
    }

    /// The median (ns) of one finished benchmark, by id.
    pub fn median_ns(&self, id: &str) -> Option<f64> {
        self.records
            .iter()
            .find(|r| r.id == id)
            .map(|r| r.median_ns)
    }

    /// Times `f` and prints `id: median (min .. max)`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters);
            }
        }
        samples.sort_unstable();
        if let Some(&median) = samples.get(samples.len() / 2) {
            println!(
                "{id:<48} {:>12} ({} .. {})",
                fmt_duration(median),
                fmt_duration(*samples.first().expect("non-empty")),
                fmt_duration(*samples.last().expect("non-empty")),
            );
            self.records.push(BenchRecord {
                id: id.to_string(),
                median_ns: median.as_nanos() as f64,
                min_ns: samples.first().expect("non-empty").as_nanos() as f64,
                max_ns: samples.last().expect("non-empty").as_nanos() as f64,
            });
        }
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Measures one sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs `f` once per sample, accumulating wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_toy(c: &mut Criterion) {
        c.bench_function("toy/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_toy
    }

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }

    #[test]
    fn records_capture_every_benchmark() {
        let mut c = Criterion::default().sample_size(2);
        c.bench_function("a/one", |b| b.iter(|| 1u64 + 1));
        c.bench_function("a/two", |b| b.iter(|| 2u64 + 2));
        let ids: Vec<&str> = c.records().iter().map(|r| r.id.as_str()).collect();
        assert_eq!(ids, ["a/one", "a/two"]);
        for r in c.records() {
            assert!(r.min_ns <= r.median_ns && r.median_ns <= r.max_ns);
        }
        assert!(c.median_ns("a/one").is_some());
        assert!(c.median_ns("missing").is_none());
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
