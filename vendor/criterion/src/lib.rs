//! Offline stand-in for `criterion` (no registry access in this
//! environment). Runs each benchmark closure for a fixed number of timed
//! iterations and prints the median — enough to spot order-of-magnitude
//! regressions, not a statistics suite. Supports both `criterion_group!`
//! forms used in the wild (positional targets, and
//! `name = ...; config = ...; targets = ...`).

use std::time::{Duration, Instant};

/// Re-export so `criterion::black_box` call sites work; `std::hint` is the
/// canonical implementation.
pub use std::hint::black_box;

/// Benchmark driver (shim: holds only the sample count).
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets how many timed samples to take per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` and prints `id: median (min .. max)`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut samples: Vec<Duration> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let mut b = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut b);
            if b.iters > 0 {
                samples.push(b.elapsed / b.iters);
            }
        }
        samples.sort_unstable();
        if let Some(&median) = samples.get(samples.len() / 2) {
            println!(
                "{id:<48} {:>12} ({} .. {})",
                fmt_duration(median),
                fmt_duration(*samples.first().expect("non-empty")),
                fmt_duration(*samples.last().expect("non-empty")),
            );
        }
        self
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Measures one sample.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u32,
}

impl Bencher {
    /// Runs `f` once per sample, accumulating wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),* $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)*
        }
    };
    ($name:ident, $($target:path),* $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),*
        );
    };
}

/// Declares the benchmark `main` that runs each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),* $(,)?) => {
        fn main() {
            $($group();)*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_toy(c: &mut Criterion) {
        c.bench_function("toy/sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default().sample_size(3);
        targets = bench_toy
    }

    #[test]
    fn group_runs_without_panicking() {
        benches();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert_eq!(fmt_duration(Duration::from_micros(1500)), "1.50 ms");
    }
}
