//! Offline stand-in for `serde` (no registry access in this environment).
//!
//! The workspace only *derives* `Serialize`/`Deserialize` to mark types as
//! wire-ready; nothing serializes yet. The traits are therefore empty
//! markers and the derive macros (re-exported from the local
//! `serde_derive` shim) emit empty impls. Swapping the real crates back in
//! requires no source changes — see `vendor/README.md`.

pub use serde_derive::{Deserialize, Serialize};

/// Marker for serializable types (shim: no methods).
pub trait Serialize {}

/// Marker for deserializable types (shim: no methods, no `'de` lifetime).
pub trait Deserialize {}

macro_rules! impl_markers {
    ($($t:ty),*) => {$(
        impl Serialize for $t {}
        impl Deserialize for $t {}
    )*};
}

impl_markers!(
    bool, char, String, str, u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32,
    f64
);

impl<T: Serialize> Serialize for Vec<T> {}
impl<T: Deserialize> Deserialize for Vec<T> {}
impl<T: Serialize> Serialize for Option<T> {}
impl<T: Deserialize> Deserialize for Option<T> {}
impl<T: Serialize + ?Sized> Serialize for &T {}
impl<T: Serialize + ?Sized> Serialize for Box<T> {}
impl<T: Deserialize> Deserialize for Box<T> {}
impl<T: Serialize> Serialize for [T] {}
impl<A: Serialize, B: Serialize> Serialize for (A, B) {}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {}
impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {}
