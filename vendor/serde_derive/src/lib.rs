//! Offline stand-in for `serde_derive`: the derive macros emit *empty*
//! impls of the shim's marker traits (see `vendor/serde`). Written without
//! `syn`/`quote` (unavailable offline) — the input item is scanned for the
//! `struct`/`enum` keyword and the following identifier.
//!
//! Limitation: generic types are rejected with a clear error; no type in
//! this workspace currently derives serde impls with generics.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name from a `struct`/`enum`/`union` item and asserts
/// it has no generic parameters.
fn type_name(input: &TokenStream, trait_name: &str) -> String {
    let mut tokens = input.clone().into_iter().peekable();
    while let Some(tt) = tokens.next() {
        if let TokenTree::Ident(ident) = &tt {
            let kw = ident.to_string();
            if kw == "struct" || kw == "enum" || kw == "union" {
                let name = match tokens.next() {
                    Some(TokenTree::Ident(name)) => name.to_string(),
                    other => panic!("derive({trait_name}): expected a type name, got {other:?}"),
                };
                if let Some(TokenTree::Punct(p)) = tokens.peek() {
                    if p.as_char() == '<' {
                        panic!(
                            "derive({trait_name}) shim does not support generic type `{name}`; \
                             write the impl by hand or extend vendor/serde_derive"
                        );
                    }
                }
                return name;
            }
        }
    }
    panic!("derive({trait_name}): no struct/enum found in input");
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input, "Serialize");
    format!("impl ::serde::Serialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let name = type_name(&input, "Deserialize");
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("valid impl block")
}
