//! Property tests: the layer-2 item-tree parser is total. Arbitrary
//! token soup — now seeded with item keywords, unbalanced delimiters,
//! generics, and fn-pointer syntax — must never panic the parser, every
//! recovered item must carry in-bounds token spans, and nesting must be
//! well-formed (children inside their parent's range).
//!
//! The soup strategy is duplicated from `lexer_props.rs` (test binaries
//! cannot import from each other) and extended with the structural
//! fragments the item tree cares about.

use detlint::itemtree;
use detlint::lexer::lex;
use proptest::prelude::*;

fn token_soup() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("fn ".to_string()),
        Just("fn name".to_string()),
        Just("impl ".to_string()),
        Just("impl Wire for ".to_string()),
        Just("impl<T: Clone> ".to_string()),
        Just("mod m".to_string()),
        Just("trait T".to_string()),
        Just("for ".to_string()),
        Just("where ".to_string()),
        Just("-> ".to_string()),
        Just("Fn(u8) -> u8".to_string()),
        Just("BTreeMap<K, V>".to_string()),
        Just("Vec<Vec<u8>>".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just("(".to_string()),
        Just(")".to_string()),
        Just("[".to_string()),
        Just("]".to_string()),
        Just("<".to_string()),
        Just(">".to_string()),
        Just(";".to_string()),
        Just("::".to_string()),
        Just("\"".to_string()),
        Just("/*".to_string()),
        Just("//".to_string()),
        Just("\n".to_string()),
        Just("'a".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("self.x.encode(out)".to_string()),
        Just("u8::decode(r)?".to_string()),
        Just("let g = m.lock().unwrap();".to_string()),
        any::<u32>().prop_map(|c| char::from_u32(c % 0x11_0000)
            .unwrap_or('\u{FFFD}')
            .to_string()),
    ];
    prop::collection::vec(fragment, 0..48).prop_map(|v| v.concat())
}

fn check_items(items: &[itemtree::Item], token_count: usize) {
    for item in items {
        assert!(item.start <= item.end, "inverted span: {item:?}");
        assert!(item.end <= token_count, "span past the end: {item:?}");
        if let Some((open, close)) = item.body {
            assert!(open <= close, "inverted body: {item:?}");
            assert!(close <= token_count, "body past the end: {item:?}");
            assert!(
                item.start <= open && close <= item.end,
                "body outside its item: {item:?}"
            );
        }
        for child in &item.children {
            assert!(
                item.start <= child.start && child.end <= item.end,
                "child outside its parent: parent {item:?}"
            );
        }
        check_items(&item.children, token_count);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn parsing_arbitrary_soup_never_panics(src in token_soup()) {
        let out = lex(&src);
        let tree = itemtree::parse(&src, &out.tokens);
        check_items(&tree.items, out.tokens.len());
        // The preorder walk terminates and only yields checked items.
        let walked = tree.walk().len();
        prop_assert!(walked >= tree.items.len());
    }
}
