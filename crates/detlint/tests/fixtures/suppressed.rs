//! Fixture: the same violations as `violations.rs`, each silenced by a
//! differently-shaped pragma — file-scope, own-line, trailing, and
//! block-comment. Expected violations: none, and every pragma is used
//! (an unused one would itself be a violation).

// detlint-allow-file(ambient): fixture — exercises file-scope suppression

use std::sync::atomic::{AtomicBool, Ordering};

fn clock() -> std::time::Instant {
    // detlint-allow(wall-clock): fixture — own-line pragma above the site
    std::time::Instant::now()
}

fn relaxed(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed) // detlint-allow(atomics): fixture — trailing pragma
}

/* detlint-allow(atomics): fixture — a block-comment pragma
   covers through the line after its closing delimiter */
fn also_relaxed(flag: &AtomicBool) -> bool { flag.load(Ordering::Relaxed) }

fn spawner() {
    std::thread::spawn(|| {});
}

fn another_spawner() {
    std::thread::Builder::new();
}
