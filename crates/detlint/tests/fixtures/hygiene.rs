//! Fixture: suppression-hygiene failures. A pragma that suppresses
//! nothing, an unknown rule, and a missing rationale each produce a
//! meta-rule violation — and the meta rules themselves cannot be
//! suppressed.

// detlint-allow(wall-clock): nothing below reads the clock
fn noop() {}

// detlint-allow(not-a-rule): unknown rule name
fn still_noop() {}

// detlint-allow(atomics)
fn also_noop() {}
