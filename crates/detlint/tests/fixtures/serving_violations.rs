//! Fixture: genuine serving-stack violations, nothing suppressed.
//! Under a serving path (`crates/net/…`) all three serving rules fire;
//! under a neutral path panic-safety stays quiet (it is module-scoped)
//! while wire-drift and lock-discipline still fire.

use std::io::Read;
use std::sync::Mutex;

fn read_frame(_r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    Ok(Vec::new())
}

fn kills_the_thread(m: &Mutex<u64>) -> u64 {
    *m.lock().unwrap()
}

fn expects(v: &[u8]) -> u8 {
    *v.first().expect("caller checked")
}

fn panics(flag: bool) -> u8 {
    if flag {
        panic!("connection state corrupted");
    }
    unreachable!()
}

fn indexes(v: &[u8]) -> u8 {
    v[0]
}

struct Reader2;

trait Wire: Sized {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(r: &mut Reader2) -> Option<Self>;
}

enum Tagged {
    Ping,
    Stop,
}

/// Encode writes tag 1, decode has no `1 =>` arm: missing-arm drift.
impl Wire for Tagged {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Tagged::Ping => out.push(0),
            Tagged::Stop => out.push(1),
        }
    }
    fn decode(r: &mut Reader2) -> Option<Self> {
        match u8::decode(r)? {
            0 => Some(Tagged::Ping),
            _ => None,
        }
    }
}

struct Skewed {
    a: u64,
    b: u64,
}

/// Encode writes `a` then `b`; decode only reads `a`: a dropped read.
impl Wire for Skewed {
    fn encode(&self, out: &mut Vec<u8>) {
        self.a.encode(out);
        self.b.encode(out);
    }
    fn decode(r: &mut Reader2) -> Option<Self> {
        let a = u64::decode(r)?;
        Some(Skewed { a, b: 0 })
    }
}

struct Swapped {
    x: u64,
    y: u64,
}

/// Encode writes `x` then `y`; decode reads `y` then `x`: a reorder.
impl Wire for Swapped {
    fn encode(&self, out: &mut Vec<u8>) {
        self.x.encode(out);
        self.y.encode(out);
    }
    fn decode(r: &mut Reader2) -> Option<Self> {
        let y = u64::decode(r)?;
        let x = u64::decode(r)?;
        Some(Swapped { x, y })
    }
}

fn blocking_under_guard(m: &Mutex<u64>, r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let guard = m.lock().unwrap();
    let _ = *guard;
    read_frame(r)
}

fn relocks(m: &Mutex<u64>) -> u64 {
    let first = m.lock().unwrap();
    let second = m.lock().unwrap();
    *first + *second
}

fn locks_ab(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let ga = a.lock().unwrap();
    let gb = b.lock().unwrap();
    *ga + *gb
}

fn locks_ba(a: &Mutex<u64>, b: &Mutex<u64>) -> u64 {
    let gb = b.lock().unwrap();
    let ga = a.lock().unwrap();
    *ga + *gb
}
