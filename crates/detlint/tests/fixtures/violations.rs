//! Fixture: one genuine violation of every rule, nothing suppressed.
//! Linted under an ordered-output path (`…/fingerprint/…`) all four
//! rules fire; under a neutral path, iteration-order stays quiet.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};

fn clock() -> std::time::Instant {
    std::time::Instant::now()
}

fn unordered() -> Vec<u32> {
    let map: HashMap<u32, u32> = HashMap::new();
    map.keys().copied().collect()
}

fn sweep(seen: &HashMap<u32, u32>) -> u32 {
    let mut total = 0;
    for (_, v) in seen.iter() {
        total += v;
    }
    total
}

fn relaxed(flag: &AtomicBool) -> bool {
    flag.load(Ordering::Relaxed)
}

fn undocumented(flag: &AtomicBool) {
    flag.store(true, Ordering::SeqCst);
}

fn ambient() {
    std::thread::spawn(|| {});
}
