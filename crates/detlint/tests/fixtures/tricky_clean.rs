//! Fixture: every forbidden spelling, hidden where the lexer must not
//! look — strings, raw strings, comments, doc comments, char literals —
//! plus the classic lexical traps. Expected violations: none.
//!
//! Doc-comment mentions are inert: Instant::now(), HashMap, thread::spawn.

// A plain comment mentioning SystemTime::now() and Ordering::Relaxed is fine.

const COOKED: &str = "Instant::now() inside a string, with \" an escaped quote";
const RAW: &str = r#"thread::spawn and Ordering::Relaxed in a raw "string""#;
const DEEPER: &str = r##"nested r#"HashMap::new()"# at depth two"##;
const BYTES: &[u8] = b"SystemTime::now()";
const QUOTE: char = '"';
const ESCAPED: char = '\'';
const NEWLINE: u8 = b'\n';

/// `'static` followed by `mut` is a lifetime plus a keyword, not
/// `static mut` — the ambient rule must read token kinds, not text.
fn takes_static_mut_ref(x: &'static mut u8) -> u8 {
    *x
}

/// `cmp::Ordering::Less` must not trip the atomics rule.
fn ordering_enum(a: u32, b: u32) -> std::cmp::Ordering {
    a.cmp(&b)
}

/// Raw identifiers keep their `r#` prefix, so `r#unsafe` is not `unsafe`.
fn raw_idents() {
    let r#unsafe = 1u8;
    let _ = r#unsafe;
}

/// Nested token trees: generics, arrays, closures inside closures.
fn nested() -> Vec<Vec<(u32, [u8; 4])>> {
    let xs = vec![vec![(1, [0; 4])]];
    xs.iter()
        .map(|v| v.iter().map(|t| (t.0, t.1)).collect())
        .collect()
}

/// Loose numbers must not swallow range punctuation.
fn ranges() -> u32 {
    (0..10).chain(0..=3).sum()
}

#[cfg(test)]
mod tests {
    //! Test code is the dynamic layer — it measures time, spawns
    //! threads, and hashes freely, and the lint must mask all of it.
    use std::collections::HashMap;

    #[test]
    fn measures_time_on_purpose() {
        let start = std::time::Instant::now();
        let handle = std::thread::spawn(move || start.elapsed());
        let _ = handle.join();
        let mut map = HashMap::new();
        map.insert(1, 2);
        for (k, v) in map.iter() {
            assert!(k < v);
        }
    }
}
