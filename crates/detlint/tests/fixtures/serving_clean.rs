//! Fixture: serving-stack code that is tricky but clean — panic-free
//! patterns a careless rule would flag, a `Wire` impl whose halves
//! agree, and lock usage that never wraps blocking I/O. Linted under a
//! serving path (`crates/net/…`) all three serving rules stay quiet.

use std::io::Read;
use std::sync::{Mutex, PoisonError};

fn read_frame(_r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    Ok(Vec::new())
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        let slice = self.buf.get(self.pos..end)?;
        self.pos = end;
        Some(slice)
    }
}

trait Wire: Sized {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(r: &mut Reader<'_>) -> Option<Self>;
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.take(8)
            .and_then(|b| b.try_into().ok())
            .map(u64::from_le_bytes)
    }
}

struct Frame {
    seq: u64,
    len: u64,
}

impl Wire for Frame {
    fn encode(&self, out: &mut Vec<u8>) {
        self.seq.encode(out);
        self.len.encode(out);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        Some(Frame {
            seq: Wire::decode(r)?,
            len: Wire::decode(r)?,
        })
    }
}

enum Note {
    Ping,
    Data(Frame),
}

impl Wire for Note {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Note::Ping => out.push(0),
            Note::Data(frame) => {
                out.push(1);
                frame.encode(out);
            }
        }
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        match u8::decode(r)? {
            0 => Some(Note::Ping),
            1 => Some(Note::Data(Frame::decode(r)?)),
            _ => None,
        }
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }
    fn decode(r: &mut Reader<'_>) -> Option<Self> {
        r.take(1).and_then(|b| b.first()).copied()
    }
}

/// Poison recovery instead of unwrap: the panic-safety-clean idiom.
fn counter_value(counter: &Mutex<usize>) -> usize {
    *counter.lock().unwrap_or_else(PoisonError::into_inner)
}

/// `.get` instead of indexing, `in`/array syntax that only looks like
/// indexing, and slicing pushed through `Option`.
fn first_word(buf: &[u8]) -> Option<u64> {
    let mut total = 0u64;
    for step in [1usize, 2, 4] {
        total = total.wrapping_add(step as u64);
    }
    let head: [u8; 8] = buf.get(..8)?.try_into().ok()?;
    let _ = total;
    Some(u64::from_le_bytes(head))
}

/// The binding takes the match result; the guard is a temporary that
/// dies inside the arm, so no lock is live afterwards.
fn queue_depth(queue: &Mutex<Vec<u8>>, r: &mut impl Read) -> std::io::Result<usize> {
    let depth = match queue.lock() {
        Ok(guard) => guard.len(),
        Err(_) => 0,
    };
    let _ = read_frame(r)?;
    Ok(depth)
}

struct JoinHandle;

impl JoinHandle {
    fn wait(&self) -> u64 {
        7
    }
}

/// A nullary `.wait()` is a domain method (join, barrier wrapper), not
/// a `Condvar` acquisition — no guard registers here.
fn join_then_read(h: &JoinHandle, r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let result = h.wait();
    let _ = result;
    read_frame(r)
}

/// The guard lives in an inner block and is gone before the I/O.
fn snapshot_then_read(m: &Mutex<u64>, r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let seq = {
        let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
        *guard
    };
    let _ = seq;
    read_frame(r)
}

/// An explicit `drop` releases the guard before the I/O.
fn drop_then_read(m: &Mutex<u64>, r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let guard = m.lock().unwrap_or_else(PoisonError::into_inner);
    let _ = *guard;
    drop(guard);
    read_frame(r)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwraps_and_indexing_are_fine_in_test_code() {
        let v: Vec<u32> = vec![1];
        assert_eq!(v[0], *v.first().unwrap());
    }
}
