//! Fixture: one suppressed violation of each serving rule. Linted under
//! a serving path (`crates/net/…`) the file is clean — and deleting any
//! single pragma must resurface its violation (every pragma here is
//! load-bearing, or the unused-pragma meta rule would fire instead).

use std::io::Read;
use std::sync::Mutex;

fn read_frame(_r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    Ok(Vec::new())
}

fn poisoned_is_fatal_here(m: &Mutex<u64>) -> u64 {
    // detlint-allow(panic-safety): fixture — this counter's poisoning is unrecoverable by design
    *m.lock().unwrap()
}

fn first(v: &[u8]) -> u8 {
    v[0] // detlint-allow(panic-safety): fixture — caller guarantees at least one byte
}

struct Reader2;

trait Wire: Sized {
    fn encode(&self, out: &mut Vec<u8>);
    fn decode(r: &mut Reader2) -> Option<Self>;
}

enum Tagged {
    Ping,
    Legacy,
}

impl Wire for Tagged {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Tagged::Ping => out.push(0),
            // detlint-allow(wire-drift): fixture — tag 1 is consumed by the previous protocol generation only
            Tagged::Legacy => out.push(1),
        }
    }
    fn decode(r: &mut Reader2) -> Option<Self> {
        match u8::decode(r)? {
            0 => Some(Tagged::Ping),
            _ => None,
        }
    }
}

fn heartbeat_under_lock(m: &Mutex<u64>, r: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let guard = m.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let _ = *guard;
    // detlint-allow(lock-discipline): fixture — single-threaded harness, nothing contends for this lock
    read_frame(r)
}
