//! Fixture-driven tests: known sources with known expected diagnostics.
//!
//! The fixtures live under `tests/fixtures/` (a directory the workspace
//! scan deliberately skips) and are linted in-memory via
//! [`detlint::lint_source`], so each test controls the path the file is
//! "at" — which is what decides ordered-module and allowlist matching.

use detlint::{lint_source, Config, Violation};

const TRICKY: &str = include_str!("fixtures/tricky_clean.rs");
const VIOLATIONS: &str = include_str!("fixtures/violations.rs");
const SUPPRESSED: &str = include_str!("fixtures/suppressed.rs");
const HYGIENE: &str = include_str!("fixtures/hygiene.rs");

const ORDERED_PATH: &str = "crates/x/src/fingerprint/mod.rs";
const NEUTRAL_PATH: &str = "crates/x/src/plain.rs";

fn lint(path: &str, src: &str) -> Vec<Violation> {
    lint_source(path, src, &Config::default())
}

fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn tricky_sources_stay_clean_under_any_path() {
    for path in [NEUTRAL_PATH, ORDERED_PATH] {
        let found = lint(path, TRICKY);
        assert!(found.is_empty(), "{path}: {found:?}");
    }
}

#[test]
fn every_rule_fires_in_an_ordered_module() {
    let found = lint(ORDERED_PATH, VIOLATIONS);
    assert_eq!(
        rules_of(&found),
        vec!["ambient", "atomics", "iteration-order", "wall-clock"]
    );
    // Spans point at the offending token, 1-based.
    let clock = found
        .iter()
        .find(|v| v.rule == "wall-clock")
        .expect("wall-clock violation");
    assert_eq!((clock.file.as_str(), clock.line), (ORDERED_PATH, 9));
    assert!(clock.snippet.contains("Instant::now()"), "{clock:?}");
    // Both the tracked `.keys()` iteration and the `for … in seen.iter()`
    // loop are called out precisely, beyond the bare type mentions.
    let precise: Vec<&str> = found
        .iter()
        .filter(|v| v.rule == "iteration-order" && v.message.contains("unordered"))
        .map(|v| v.snippet.as_str())
        .collect();
    assert!(
        precise.iter().any(|s| s.contains("map.keys()")),
        "{precise:?}"
    );
    assert!(
        precise.iter().any(|s| s.contains("seen.iter()")),
        "{precise:?}"
    );
    // Relaxed is rejected outright; SeqCst for the missing rationale.
    assert!(found
        .iter()
        .any(|v| v.rule == "atomics" && v.message.contains("Relaxed")));
    assert!(found
        .iter()
        .any(|v| v.rule == "atomics" && v.message.contains("rationale")));
}

#[test]
fn neutral_paths_skip_the_iteration_order_rule() {
    let found = lint(NEUTRAL_PATH, VIOLATIONS);
    assert_eq!(rules_of(&found), vec!["ambient", "atomics", "wall-clock"]);
}

#[test]
fn pragmas_of_every_shape_suppress_and_are_all_used() {
    let found = lint(NEUTRAL_PATH, SUPPRESSED);
    assert!(found.is_empty(), "{found:?}");
}

#[test]
fn deleting_any_pragma_resurfaces_its_violation() {
    let lines: Vec<&str> = SUPPRESSED.lines().collect();
    let mut deleted = 0;
    for (i, line) in lines.iter().enumerate() {
        let Some(at) = line
            .find("// detlint-allow")
            .or_else(|| line.starts_with("/* detlint-allow").then_some(0))
        else {
            continue;
        };
        let mut mutated: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        if line[..at].trim().is_empty() && at > 0 {
            mutated.remove(i); // own-line pragma: drop the line
        } else {
            // Trailing or block pragma: defuse the marker, keep the line.
            mutated[i] = line.replacen("detlint-allow", "detlint-disabled", 1);
        }
        let found = lint(NEUTRAL_PATH, &mutated.join("\n"));
        assert!(
            !found.is_empty(),
            "deleting the pragma on fixture line {} went unnoticed",
            i + 1
        );
        deleted += 1;
    }
    assert_eq!(deleted, 4, "expected all four pragma shapes exercised");
}

#[test]
fn hygiene_failures_are_reported_and_unsuppressible() {
    let found = lint(NEUTRAL_PATH, HYGIENE);
    let rules: Vec<&str> = found.iter().map(|v| v.rule).collect();
    assert_eq!(rules, vec!["unused-pragma", "bad-pragma", "bad-pragma"]);
    assert!(found[1].message.contains("unknown rule"), "{found:?}");
    assert!(found[2].message.contains("rationale"), "{found:?}");
    // The meta rules are not in the suppressible set, so even naming
    // them in a pragma is itself a bad-pragma.
    let meta = lint(
        NEUTRAL_PATH,
        "// detlint-allow(bad-pragma): trying to silence the lint\nfn f() {}\n",
    );
    assert_eq!(rules_of(&meta), vec!["bad-pragma"]);
}

#[test]
fn allowlist_entries_suppress_by_path_and_win_over_pragmas() {
    let mut config = Config::default();
    config
        .merge_toml(concat!(
            "[[allow]]\n",
            "rule = \"wall-clock\"\n",
            "path = \"crates/x/src/fingerprint/mod.rs\"\n",
            "reason = \"fixture: sanctioned clock module\"\n",
        ))
        .expect("valid allowlist");
    let found = lint_source(ORDERED_PATH, VIOLATIONS, &config);
    assert!(
        found.iter().all(|v| v.rule != "wall-clock"),
        "allowlisted rule still fired: {found:?}"
    );
    // The entry is path-scoped: the same source elsewhere still fails.
    let elsewhere = lint_source(NEUTRAL_PATH, VIOLATIONS, &config);
    assert!(elsewhere.iter().any(|v| v.rule == "wall-clock"));
    // Precedence: the allowlist runs first, so an inline pragma for an
    // already-allowlisted violation suppresses nothing and is flagged.
    let redundant = concat!(
        "fn clock() -> std::time::Instant {\n",
        "    // detlint-allow(wall-clock): redundant under the allowlist\n",
        "    std::time::Instant::now()\n",
        "}\n",
    );
    let found = lint_source(ORDERED_PATH, redundant, &config);
    assert_eq!(rules_of(&found), vec!["unused-pragma"]);
}
