//! Fixture-driven tests for the serving-stack rules: `panic-safety`,
//! `wire-drift`, and `lock-discipline`.
//!
//! Same scheme as `fixtures.rs`: known sources linted in-memory under
//! controlled paths, because the path decides whether `panic-safety`
//! applies (it is scoped to serving modules) while `wire-drift` and
//! `lock-discipline` bind everywhere.

use detlint::{lint_source, Config, Violation};

const CLEAN: &str = include_str!("fixtures/serving_clean.rs");
const VIOLATIONS: &str = include_str!("fixtures/serving_violations.rs");
const SUPPRESSED: &str = include_str!("fixtures/serving_suppressed.rs");

/// Matches the default `panic-safety` module list (`crates/net/…`).
const SERVING_PATH: &str = "crates/net/src/fixture.rs";
/// Matches neither the serving nor the ordered module lists.
const NEUTRAL_PATH: &str = "crates/x/src/plain.rs";

fn lint(path: &str, src: &str) -> Vec<Violation> {
    lint_source(path, src, &Config::default())
}

fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
    let mut rules: Vec<&'static str> = violations.iter().map(|v| v.rule).collect();
    rules.sort();
    rules.dedup();
    rules
}

#[test]
fn tricky_serving_sources_stay_clean() {
    for path in [SERVING_PATH, NEUTRAL_PATH] {
        let found = lint(path, CLEAN);
        assert!(found.is_empty(), "{path}: {found:#?}");
    }
}

#[test]
fn all_three_serving_rules_fire_with_expected_spans() {
    let found = lint(SERVING_PATH, VIOLATIONS);
    assert_eq!(
        rules_of(&found),
        vec!["lock-discipline", "panic-safety", "wire-drift"]
    );

    // panic-safety: every panic shape is caught — unwrap, expect, the
    // panic!/unreachable! macros, and bare indexing.
    let panic_msgs: Vec<&str> = found
        .iter()
        .filter(|v| v.rule == "panic-safety")
        .map(|v| v.message.as_str())
        .collect();
    for needle in [
        "`.unwrap()`",
        "`.expect()`",
        "`panic!`",
        "`unreachable!`",
        "indexing",
    ] {
        assert!(
            panic_msgs.iter().any(|m| m.contains(needle)),
            "no panic-safety message mentions {needle}: {panic_msgs:#?}"
        );
    }

    // wire-drift, shape 1: encode writes tag 1, decode has no arm. The
    // span sits on the encode half; the message carries the decode
    // half's file:line (two-span diagnostic).
    let missing_arm = found
        .iter()
        .find(|v| v.rule == "wire-drift" && v.message.contains("no `1 =>` arm"))
        .expect("missing-arm drift reported");
    assert_eq!(missing_arm.file, SERVING_PATH);
    assert!(
        missing_arm.snippet.contains("out.push(1)"),
        "{missing_arm:?}"
    );
    let decode_line = line_of(VIOLATIONS, "fn decode(r: &mut Reader2) -> Option<Self> {");
    assert!(
        missing_arm
            .message
            .contains(&format!("{SERVING_PATH}:{decode_line}")),
        "message lacks the decode span: {missing_arm:?}"
    );

    // wire-drift, shape 2: a field written by encode that decode never
    // reads, anchored at the encode write.
    let dropped = found
        .iter()
        .find(|v| v.rule == "wire-drift" && v.message.contains("field `b`"))
        .expect("dropped-read drift reported");
    assert!(dropped.snippet.contains("self.b.encode"), "{dropped:?}");
    assert!(dropped.message.contains("Skewed"), "{dropped:?}");

    // wire-drift, shape 3: both halves name both fields but in swapped
    // order, anchored at the decode read with the encode line in the
    // message.
    let swapped = found
        .iter()
        .find(|v| v.rule == "wire-drift" && v.message.contains("disagree on field order"))
        .expect("reorder drift reported");
    assert!(swapped.message.contains("reads `y`"), "{swapped:?}");
    assert!(swapped.message.contains("writes `x`"), "{swapped:?}");

    // lock-discipline: blocking I/O under a guard, a re-entrant lock,
    // and an AB/BA inversion.
    let lock_msgs: Vec<&str> = found
        .iter()
        .filter(|v| v.rule == "lock-discipline")
        .map(|v| v.message.as_str())
        .collect();
    assert!(
        lock_msgs
            .iter()
            .any(|m| m.contains("blocking I/O `read_frame`")),
        "{lock_msgs:#?}"
    );
    assert!(
        lock_msgs.iter().any(|m| m.contains("re-entrant")),
        "{lock_msgs:#?}"
    );
    assert!(
        lock_msgs
            .iter()
            .any(|m| m.contains("inconsistent lock order")),
        "{lock_msgs:#?}"
    );
}

#[test]
fn panic_safety_is_scoped_to_serving_modules() {
    let found = lint(NEUTRAL_PATH, VIOLATIONS);
    assert_eq!(rules_of(&found), vec!["lock-discipline", "wire-drift"]);
    // …and the module list is configurable, like iteration-order's.
    let mut config = Config::default();
    config
        .merge_toml("[rules.panic-safety]\nmodules = [\"crates/x/\"]\n")
        .expect("valid config");
    let widened = lint_source(NEUTRAL_PATH, VIOLATIONS, &config);
    assert!(
        widened.iter().any(|v| v.rule == "panic-safety"),
        "{widened:#?}"
    );
}

#[test]
fn suppressed_serving_fixture_is_clean_and_every_pragma_load_bearing() {
    let found = lint(SERVING_PATH, SUPPRESSED);
    assert!(found.is_empty(), "{found:#?}");

    // Defusing any single pragma must resurface its violation.
    let lines: Vec<&str> = SUPPRESSED.lines().collect();
    let mut defused = 0;
    for (i, line) in lines.iter().enumerate() {
        if !line.contains("// detlint-allow") {
            continue;
        }
        let mut mutated: Vec<String> = lines.iter().map(|l| l.to_string()).collect();
        mutated[i] = line.replacen("detlint-allow", "detlint-disabled", 1);
        let found = lint(SERVING_PATH, &mutated.join("\n"));
        assert!(
            !found.is_empty(),
            "defusing the pragma on fixture line {} went unnoticed",
            i + 1
        );
        defused += 1;
    }
    assert_eq!(defused, 4, "expected one pragma per serving rule shape");
}

#[test]
fn tampering_with_a_clean_decode_impl_is_caught_with_both_spans() {
    // Delete the `len` read from the clean fixture's `Frame` decode and
    // the missing read must be reported against the encode half, with
    // the decode fn's line in the message.
    let tampered: Vec<&str> = CLEAN
        .lines()
        .filter(|l| !l.contains("len: Wire::decode(r)?,"))
        .collect();
    let found = lint(SERVING_PATH, &tampered.join("\n"));
    let drift = found
        .iter()
        .find(|v| v.rule == "wire-drift")
        .expect("tampered decode must produce wire-drift");
    assert!(drift.message.contains("field `len`"), "{drift:?}");
    assert!(drift.snippet.contains("self.len.encode"), "{drift:?}");
    assert!(
        drift.message.contains(&format!("{SERVING_PATH}:")),
        "message lacks the other half's span: {drift:?}"
    );
}

fn line_of(src: &str, needle: &str) -> usize {
    src.lines()
        .position(|l| l.contains(needle))
        .map(|i| i + 1)
        .unwrap_or_else(|| panic!("fixture line not found: {needle}"))
}
