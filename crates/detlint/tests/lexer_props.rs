//! Property tests: the lexer (and the whole lint pipeline above it) is
//! total. Arbitrary token soup — unterminated strings, stray quotes,
//! half-open block comments, broken pragmas, raw-string openers with no
//! close — must never panic, and every reported span must be a valid,
//! in-bounds slice of the input.

use detlint::lexer::{lex, TokenKind};
use detlint::{lint_source, Config};
use proptest::prelude::*;

/// Concatenations of the nastiest lexical fragments plus arbitrary
/// characters: far denser in delimiter edge cases than uniform noise.
fn token_soup() -> impl Strategy<Value = String> {
    let fragment = prop_oneof![
        Just("\"".to_string()),
        Just("'".to_string()),
        Just("\\".to_string()),
        Just("r#\"".to_string()),
        Just("\"#".to_string()),
        Just("r##\"".to_string()),
        Just("r#ident".to_string()),
        Just("b'".to_string()),
        Just("b\"".to_string()),
        Just("c\"".to_string()),
        Just("/*".to_string()),
        Just("*/".to_string()),
        Just("//".to_string()),
        Just("///".to_string()),
        Just("\n".to_string()),
        Just("'a".to_string()),
        Just("'static".to_string()),
        Just("0..10".to_string()),
        Just("1.5e-3".to_string()),
        Just("#[cfg(test)]".to_string()),
        Just("#[test]".to_string()),
        Just("{".to_string()),
        Just("}".to_string()),
        Just("Instant::now".to_string()),
        Just("SystemTime".to_string()),
        Just("HashMap".to_string()),
        Just("Ordering::Relaxed".to_string()),
        Just("static mut".to_string()),
        Just("detlint-allow(".to_string()),
        Just("detlint-allow(wall-clock):".to_string()),
        Just("detlint-allow-file".to_string()),
        any::<u32>().prop_map(|c| char::from_u32(c % 0x11_0000)
            .unwrap_or('\u{FFFD}')
            .to_string()),
    ];
    prop::collection::vec(fragment, 0..48).prop_map(|v| v.concat())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn lexing_arbitrary_soup_never_panics(src in token_soup()) {
        let out = lex(&src);
        for t in &out.tokens {
            prop_assert!(t.start < t.end && t.end <= src.len(), "bad span {t:?}");
            prop_assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
            prop_assert!(t.line >= 1 && t.col >= 1, "positions are 1-based: {t:?}");
            if t.kind == TokenKind::Ident {
                prop_assert!(!t.text(&src).is_empty());
            }
        }
        for c in &out.comments {
            prop_assert!(c.start < c.end && c.end <= src.len(), "bad span {c:?}");
            prop_assert!(src.is_char_boundary(c.start) && src.is_char_boundary(c.end));
            prop_assert!(c.line <= c.end_line);
        }
    }

    #[test]
    fn linting_arbitrary_soup_never_panics(src in token_soup()) {
        // The full pipeline: lex, test-mask, rules, pragmas. Paths chosen
        // so both the ordered-module branch and the neutral branch run.
        let config = Config::default();
        let _ = lint_source("crates/x/src/fingerprint/soup.rs", &src, &config);
        let _ = lint_source("crates/x/src/soup.rs", &src, &config);
    }
}
