//! Lint configuration: built-in defaults plus the checked-in
//! `detlint.toml` at the workspace root.
//!
//! Only the TOML subset the config actually needs is parsed (hand-rolled
//! like everything else in this crate — the workspace has no registry
//! access): comments, `[section]` headers, `[[allow]]` array-of-tables
//! entries with `key = "value"` pairs, and single- or multi-line string
//! arrays. Anything else is a hard configuration error: a suppression
//! file that silently dropped entries would un-enforce the contract.

use std::path::Path;

/// One file-scope suppression from `detlint.toml`. The `reason` field is
/// mandatory — the allowlist carries the same rationale burden as inline
/// pragmas.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    /// Workspace-relative path (suffix match, `/`-separated).
    pub path: String,
    pub reason: String,
    /// 1-based `detlint.toml` line of the `[[allow]]` header — the span
    /// an `unused-allowlist` diagnostic points at.
    pub line: u32,
}

/// The effective lint configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// File-scope suppressions.
    pub allows: Vec<AllowEntry>,
    /// Ordered-output modules for the `iteration-order` rule: a file is
    /// covered when its workspace-relative path contains any of these
    /// substrings.
    pub ordered_modules: Vec<String>,
    /// Serving-path modules for the `panic-safety` rule, same contains
    /// matching: connection handlers, worker dispatch, persistence, and
    /// the engine driver — code where a panic silently drops a job.
    pub panic_modules: Vec<String>,
    /// Directories (relative to the root) the scan descends into.
    pub scan_roots: Vec<String>,
    /// Directory *names* skipped anywhere in the tree.
    pub skip_dir_names: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            allows: Vec::new(),
            // Any file whose path names one of these is ordered-output
            // by definition; detlint.toml extends the list with concrete
            // paths (the engine, the memo cache, snapshot encoders).
            ordered_modules: ["fingerprint", "persist", "event", "report"]
                .map(String::from)
                .to_vec(),
            // The serving stack end to end: every `crates/net` file, the
            // frame codec, and the engine driver. detlint.toml extends
            // the list as serving paths grow.
            panic_modules: [
                "crates/net/",
                "crates/runtime/src/persist.rs",
                "crates/core/src/engine.rs",
            ]
            .map(String::from)
            .to_vec(),
            scan_roots: ["crates", "src"].map(String::from).to_vec(),
            // The contract binds shipped library code; tests and benches
            // are the *dynamic* layer and measure wall-clock on purpose.
            // `vendor/` holds offline shims for external crates.
            skip_dir_names: ["vendor", "target", "tests", "benches", "examples", ".git"]
                .map(String::from)
                .to_vec(),
        }
    }
}

impl Config {
    /// Default configuration merged with `<root>/detlint.toml` when that
    /// file exists. A malformed config is an error, never a silent skip.
    pub fn load(root: &Path) -> Result<Self, String> {
        let mut config = Config::default();
        let path = root.join("detlint.toml");
        if let Ok(text) = std::fs::read_to_string(&path) {
            config
                .merge_toml(&text)
                .map_err(|e| format!("{}: {e}", path.display()))?;
        }
        Ok(config)
    }

    /// Merges a `detlint.toml` document into `self`.
    pub fn merge_toml(&mut self, text: &str) -> Result<(), String> {
        let mut section = String::new();
        let mut entry: Option<AllowEntry> = None;
        let mut lines = text.lines().enumerate().peekable();
        while let Some((idx, raw)) = lines.next() {
            let line = strip_comment(raw).trim().to_string();
            let lineno = idx + 1;
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                self.finish_entry(entry.take(), lineno)?;
                entry = Some(AllowEntry {
                    rule: String::new(),
                    path: String::new(),
                    reason: String::new(),
                    line: lineno as u32,
                });
                section = "allow".into();
                continue;
            }
            if let Some(name) = line.strip_prefix('[').and_then(|l| l.strip_suffix(']')) {
                self.finish_entry(entry.take(), lineno)?;
                section = name.trim().to_string();
                continue;
            }
            let (key, mut value) = line
                .split_once('=')
                .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
                .ok_or(format!("line {lineno}: expected `key = value`"))?;
            // Multi-line arrays: accumulate until the closing bracket.
            if value.starts_with('[') && !value.ends_with(']') {
                for (_, cont) in lines.by_ref() {
                    value.push(' ');
                    value.push_str(strip_comment(cont).trim());
                    if value.ends_with(']') {
                        break;
                    }
                }
                if !value.ends_with(']') {
                    return Err(format!("line {lineno}: unclosed array for `{key}`"));
                }
            }
            match (section.as_str(), key.as_str()) {
                ("allow", "rule" | "path" | "reason") => {
                    let entry = entry
                        .as_mut()
                        .ok_or(format!("line {lineno}: `{key}` outside [[allow]]"))?;
                    let value = parse_string(&value, lineno)?;
                    match key.as_str() {
                        "rule" => entry.rule = value,
                        "path" => entry.path = value,
                        _ => entry.reason = value,
                    }
                }
                ("rules.iteration-order", "modules") => {
                    self.ordered_modules
                        .extend(parse_string_array(&value, lineno)?);
                }
                ("rules.panic-safety", "modules") => {
                    self.panic_modules
                        .extend(parse_string_array(&value, lineno)?);
                }
                ("scan", "include") => {
                    self.scan_roots = parse_string_array(&value, lineno)?;
                }
                ("scan", "skip-dir-names") => {
                    self.skip_dir_names = parse_string_array(&value, lineno)?;
                }
                _ => {
                    return Err(format!(
                        "line {lineno}: unknown key `{key}` in section `[{section}]`"
                    ));
                }
            }
        }
        self.finish_entry(entry.take(), text.lines().count())?;
        Ok(())
    }

    fn finish_entry(&mut self, entry: Option<AllowEntry>, lineno: usize) -> Result<(), String> {
        let Some(entry) = entry else { return Ok(()) };
        if entry.rule.is_empty() || entry.path.is_empty() {
            return Err(format!(
                "[[allow]] ending before line {lineno}: `rule` and `path` are required"
            ));
        }
        if !crate::rules::RULE_NAMES.contains(&entry.rule.as_str()) {
            return Err(format!(
                "[[allow]] for `{}`: unknown rule (known: {})",
                entry.rule,
                crate::rules::RULE_NAMES.join(", ")
            ));
        }
        if entry.reason.is_empty() {
            return Err(format!(
                "[[allow]] for `{}` on `{}`: a written `reason` is required",
                entry.rule, entry.path
            ));
        }
        self.allows.push(entry);
        Ok(())
    }

    /// File-scope suppressions applying to `rel_path` (slash-separated).
    pub fn allowed(&self, rule: &str, rel_path: &str) -> bool {
        self.allow_index(rule, rel_path).is_some()
    }

    /// Index into [`Config::allows`] of the first entry suppressing
    /// `rule` at `rel_path` — the workspace scan uses it to track which
    /// entries are load-bearing (`unused-allowlist`).
    pub fn allow_index(&self, rule: &str, rel_path: &str) -> Option<usize> {
        self.allows
            .iter()
            .position(|a| a.rule == rule && path_matches(rel_path, &a.path))
    }

    /// Whether `rel_path` is an ordered-output module for
    /// `iteration-order`.
    pub fn is_ordered_module(&self, rel_path: &str) -> bool {
        self.ordered_modules
            .iter()
            .any(|m| rel_path.contains(m.as_str()))
    }

    /// Whether `rel_path` is a serving-path module for `panic-safety`.
    pub fn is_panic_module(&self, rel_path: &str) -> bool {
        self.panic_modules
            .iter()
            .any(|m| rel_path.contains(m.as_str()))
    }
}

/// `rel_path` matches `pattern` when equal to it or ending with
/// `/pattern` — so `crates/runtime/src/cache.rs` and `cache.rs` both
/// name the same file, but `xcache.rs` does not.
fn path_matches(rel_path: &str, pattern: &str) -> bool {
    rel_path == pattern
        || rel_path
            .strip_suffix(pattern)
            .is_some_and(|head| head.ends_with('/'))
}

/// Drops a trailing `# comment`, respecting quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .map(String::from)
        .ok_or(format!("line {lineno}: expected a double-quoted string"))
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let inner = value
        .strip_prefix('[')
        .and_then(|v| v.strip_suffix(']'))
        .ok_or(format!("line {lineno}: expected `[\"…\", …]`"))?;
    inner
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| parse_string(s, lineno))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_allow_entries_and_module_lists() {
        let mut config = Config::default();
        config
            .merge_toml(
                r#"
# comment
[[allow]]
rule = "wall-clock"             # trailing comment
path = "crates/runtime/src/telemetry.rs"
reason = "the sanctioned clock owner"

[rules.iteration-order]
modules = [
    "crates/runtime/src/cache.rs",
    "crates/core/src/engine.rs",
]
"#,
            )
            .unwrap();
        assert!(config.allowed("wall-clock", "crates/runtime/src/telemetry.rs"));
        assert!(!config.allowed("atomics", "crates/runtime/src/telemetry.rs"));
        assert!(config.is_ordered_module("crates/core/src/engine.rs"));
        assert!(config.is_ordered_module("crates/runtime/src/fingerprint.rs"));
        assert!(!config.is_ordered_module("crates/dse/src/gp.rs"));
    }

    #[test]
    fn allow_without_reason_is_rejected() {
        let mut config = Config::default();
        let err = config
            .merge_toml("[[allow]]\nrule = \"atomics\"\npath = \"x.rs\"\n")
            .unwrap_err();
        assert!(err.contains("reason"), "{err}");
    }

    #[test]
    fn unknown_rule_in_allow_is_rejected() {
        let mut config = Config::default();
        let err = config
            .merge_toml("[[allow]]\nrule = \"nope\"\npath = \"x.rs\"\nreason = \"y\"\n")
            .unwrap_err();
        assert!(err.contains("unknown rule"), "{err}");
    }

    #[test]
    fn path_matching_is_suffix_on_component_boundaries() {
        assert!(path_matches("crates/runtime/src/cache.rs", "cache.rs"));
        assert!(path_matches("crates/runtime/src/cache.rs", "src/cache.rs"));
        assert!(!path_matches("crates/runtime/src/xcache.rs", "cache.rs"));
    }
}
