//! A small, total Rust lexer: source text in, tokens and comments out.
//!
//! The lexer understands exactly as much Rust as the determinism rules
//! need to be *sound inside real source files*: line and (nested) block
//! comments, cooked and raw strings (any `#` depth, `b`/`c` prefixes),
//! byte and char literals, the char-literal/lifetime ambiguity, raw
//! identifiers, and loose numeric literals. Everything it does not
//! recognize becomes a one-character punctuation token.
//!
//! It is deliberately **total**: malformed input (unterminated strings,
//! stray quotes, truncated block comments) produces tokens up to end of
//! input, never a panic — pinned by the proptest token-soup test.

/// What a [`Token`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`let`, `HashMap`, `r#type`, ...).
    Ident,
    /// A lifetime such as `'a` (quote included in the span).
    Lifetime,
    /// String literal of any flavor: `"…"`, `r#"…"#`, `b"…"`, `c"…"`.
    Str,
    /// Char or byte-char literal: `'x'`, `b'\n'`.
    Char,
    /// Numeric literal (integers, floats, suffixed forms — kept loose).
    Number,
    /// A single punctuation character.
    Punct(char),
}

/// One lexed token with its byte span and position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// Byte offset of the first character.
    pub start: usize,
    /// Byte offset one past the last character.
    pub end: usize,
    /// 1-based source line of the first character.
    pub line: u32,
    /// 1-based column (in characters) of the first character.
    pub col: u32,
}

impl Token {
    /// The token's text.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// One comment (line or block) with its byte span and line range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Comment {
    /// Byte offset of the opening `//` or `/*`.
    pub start: usize,
    /// Byte offset one past the comment text.
    pub end: usize,
    /// 1-based line the comment starts on.
    pub line: u32,
    /// 1-based line the comment ends on (block comments span lines).
    pub end_line: u32,
}

impl Comment {
    /// The comment's text, delimiters included.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        &src[self.start..self.end]
    }
}

/// The lexer's output: every token and every comment, in source order.
#[derive(Debug, Default)]
pub struct LexOutput {
    pub tokens: Vec<Token>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a str,
    chars: Vec<(usize, char)>,
    /// Index into `chars`.
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Cursor {
            src,
            chars: src.char_indices().collect(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).map(|&(_, c)| c)
    }

    fn byte_offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map_or(self.src.len(), |&(off, _)| off)
    }

    fn bump(&mut self) -> Option<char> {
        let &(_, c) = self.chars.get(self.pos)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into tokens and comments. Never panics, whatever the
/// input: unterminated constructs simply extend to end of input.
pub fn lex(src: &str) -> LexOutput {
    let mut cur = Cursor::new(src);
    let mut out = LexOutput::default();
    while let Some(c) = cur.peek(0) {
        let start = cur.byte_offset();
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
        } else if c == '/' && cur.peek(1) == Some('/') {
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            out.comments.push(Comment {
                start,
                end: cur.byte_offset(),
                line,
                end_line: cur.line,
            });
        } else if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match (cur.peek(0), cur.peek(1)) {
                    (Some('/'), Some('*')) => {
                        depth += 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some('*'), Some('/')) => {
                        depth -= 1;
                        cur.bump();
                        cur.bump();
                    }
                    (Some(_), _) => {
                        cur.bump();
                    }
                    (None, _) => break,
                }
            }
            out.comments.push(Comment {
                start,
                end: cur.byte_offset(),
                line,
                end_line: cur.line,
            });
        } else if c == '"' {
            lex_cooked_string(&mut cur);
            push(&mut out, TokenKind::Str, start, &cur, line, col);
        } else if c == '\'' {
            let kind = lex_quote(&mut cur);
            push(&mut out, kind, start, &cur, line, col);
        } else if is_ident_start(c) {
            let kind = lex_ident_or_prefixed(&mut cur);
            push(&mut out, kind, start, &cur, line, col);
        } else if c.is_ascii_digit() {
            lex_number(&mut cur);
            push(&mut out, TokenKind::Number, start, &cur, line, col);
        } else {
            cur.bump();
            push(&mut out, TokenKind::Punct(c), start, &cur, line, col);
        }
    }
    out
}

fn push(out: &mut LexOutput, kind: TokenKind, start: usize, cur: &Cursor, line: u32, col: u32) {
    out.tokens.push(Token {
        kind,
        start,
        end: cur.byte_offset(),
        line,
        col,
    });
}

/// Consumes a `"…"` string (opening quote at the cursor), honoring `\`
/// escapes. Unterminated strings run to end of input.
fn lex_cooked_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    while let Some(c) = cur.bump() {
        match c {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consumes `r##"…"##` with the cursor on the first `#` or the quote.
/// The prefix (`r`, `br`, ...) has already been consumed.
fn lex_raw_string(cur: &mut Cursor) {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) != Some('"') {
        return; // `r#ident` handled by the caller; stray `r#` ends here
    }
    cur.bump();
    'scan: while let Some(c) = cur.bump() {
        if c == '"' {
            for i in 0..hashes {
                if cur.peek(i) != Some('#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
}

/// Disambiguates `'a'` / `'\n'` char literals from `'a` lifetimes with
/// the cursor on the quote.
fn lex_quote(cur: &mut Cursor) -> TokenKind {
    cur.bump(); // the quote
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume until the closing quote on
            // this line (char literals cannot contain raw newlines).
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                let c = cur.bump();
                if c == Some('\\') {
                    cur.bump();
                } else if c == Some('\'') {
                    break;
                }
            }
            TokenKind::Char
        }
        Some(c) if is_ident_continue(c) => {
            // An identifier run follows: `'a'` is a char literal, `'a`
            // (no closing quote) is a lifetime.
            let mut ahead = 1;
            while cur.peek(ahead).is_some_and(is_ident_continue) {
                ahead += 1;
            }
            let closes = cur.peek(ahead) == Some('\'');
            for _ in 0..ahead {
                cur.bump();
            }
            if closes {
                cur.bump();
                TokenKind::Char
            } else {
                TokenKind::Lifetime
            }
        }
        Some(c) if c != '\'' && c != '\n' => {
            // Single-char literal like `'('`.
            cur.bump();
            if cur.peek(0) == Some('\'') {
                cur.bump();
            }
            TokenKind::Char
        }
        _ => TokenKind::Char, // `''` or stray quote at EOL/EOF
    }
}

/// With the cursor on an identifier-start character: consumes either a
/// plain identifier, a raw identifier (`r#type`), or a prefixed string /
/// byte-char literal (`r"…"`, `b"…"`, `br#"…"#`, `c"…"`, `b'x'`).
fn lex_ident_or_prefixed(cur: &mut Cursor) -> TokenKind {
    // Scan the identifier run without consuming, to inspect prefixes.
    let mut len = 1;
    while cur.peek(len).is_some_and(is_ident_continue) {
        len += 1;
    }
    let prefix: String = (0..len.min(2)).filter_map(|i| cur.peek(i)).collect();
    let next = cur.peek(len);
    let raw_capable = matches!(prefix.as_str(), "r" | "br" | "cr") && len <= 2;
    let cooked_capable = matches!(prefix.as_str(), "b" | "c") && len == 1;
    if raw_capable && (next == Some('"') || next == Some('#')) {
        for _ in 0..len {
            cur.bump();
        }
        if next == Some('#') && prefix == "r" {
            // Either `r#"…"#` (a quote follows the hash run) or the raw
            // identifier `r#ident` (anything else does).
            let mut ahead = 0;
            while cur.peek(ahead) == Some('#') {
                ahead += 1;
            }
            if cur.peek(ahead) != Some('"') {
                cur.bump(); // one `#`; the identifier run follows
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                return TokenKind::Ident;
            }
        }
        lex_raw_string(cur);
        return TokenKind::Str;
    }
    if cooked_capable && next == Some('"') {
        cur.bump();
        lex_cooked_string(cur);
        return TokenKind::Str;
    }
    if prefix == "b" && len == 1 && next == Some('\'') {
        cur.bump();
        return lex_quote(cur); // byte-char literal (or `b'static`-style soup)
    }
    for _ in 0..len {
        cur.bump();
    }
    TokenKind::Ident
}

/// Consumes a numeric literal, loosely: digits, `_`, suffix letters, and
/// one fractional part. `0..10` must leave `..` unconsumed.
fn lex_number(cur: &mut Cursor) {
    while cur.peek(0).is_some_and(is_ident_continue) {
        cur.bump();
    }
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        cur.bump();
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<&str> {
        let out = lex(src);
        out.tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect()
    }

    #[test]
    fn strings_and_comments_hide_their_contents() {
        let src = r##"
            let a = "Instant::now()"; // Instant::now in a comment
            /* SystemTime::now */
            let b = r#"HashMap "quoted" iter"#;
            let c = b"Ordering::Relaxed";
        "##;
        let names = idents(src);
        assert!(!names.contains(&"Instant"));
        assert!(!names.contains(&"SystemTime"));
        assert!(!names.contains(&"HashMap"));
        assert!(!names.contains(&"Ordering"));
        assert_eq!(lex(src).comments.len(), 2);
    }

    #[test]
    fn char_literals_and_lifetimes_disambiguate() {
        let src = "fn f<'a>(x: &'a str) { let q = 'q'; let n = '\\n'; }";
        let out = lex(src);
        let lifetimes: Vec<_> = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text(src))
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a"]);
        let chars = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Char)
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn raw_identifiers_are_identifiers() {
        assert!(idents("let r#type = 1;").contains(&"r#type"));
    }

    #[test]
    fn nested_block_comments_terminate() {
        let out = lex("/* outer /* inner */ still outer */ let x = 1;");
        assert_eq!(out.comments.len(), 1);
        assert!(out
            .tokens
            .iter()
            .any(|t| t.kind == TokenKind::Ident && t.start > 30));
    }

    #[test]
    fn ranges_do_not_swallow_dots() {
        let src = "for i in 0..10 {}";
        let out = lex(src);
        let dots = out
            .tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Punct('.'))
            .count();
        assert_eq!(dots, 2);
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let src = "a\n  b";
        let out = lex(src);
        assert_eq!((out.tokens[0].line, out.tokens[0].col), (1, 1));
        assert_eq!((out.tokens[1].line, out.tokens[1].col), (2, 3));
    }

    #[test]
    fn unterminated_constructs_do_not_panic() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'a", "b'", "'", "r#"] {
            let _ = lex(src);
        }
    }
}
