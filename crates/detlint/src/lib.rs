//! `detlint` — a workspace-wide determinism and serving-safety lint.
//!
//! The repo's core contract — bit-identical results across thread
//! counts, work-stealing, concurrent-job interleavings, and warm
//! restarts — is enforced *dynamically* by `tests/runtime_determinism.rs`
//! sampling a handful of interleavings. This crate enforces the same
//! invariants *statically*, as named source-level rules over every crate
//! at once, so whole classes of regression (wall-clock leaking into
//! fingerprints, `HashMap` order reaching a persisted image, `Relaxed`
//! atomics spreading beyond telemetry, an `encode` field its `decode`
//! never reads) are rejected before any test runs. See [`rules`] for
//! the catalog.
//!
//! The analyzer is two-layered and hand-rolled (no dependencies, in the
//! spirit of the `vendor/` shims): a small total Rust [`lexer`]
//! (layer 1 — rules see tokens, never raw text, so strings and comments
//! cannot produce false positives) and a brace-matched [item
//! tree](itemtree) recovered over those tokens (layer 2 — `impl`/`fn`
//! structure, method chains, and let-binding scopes for the
//! serving-stack rules). Both layers are total: malformed input
//! degrades, it never panics. Suppressions are inline pragmas
//! ([`pragma`]) or entries in the checked-in `detlint.toml`
//! ([`config`]) — both require a written rationale, and a pragma or
//! allowlist entry that suppresses nothing is itself an error.
//!
//! Three ways to run it:
//! * `cargo run -p detlint` (CI adds `--format json` and gates on it);
//! * `tests/detlint.rs`, pinning that the workspace stays clean;
//! * [`lint_source`] / [`lint_workspace`] as a library, e.g. from
//!   fixture tests.

pub mod config;
pub mod itemtree;
pub mod lexer;
pub mod pragma;
pub mod report;
pub mod rules;
pub mod scan;

pub use config::Config;
pub use report::{render_json, render_text, JSON_SCHEMA};
pub use rules::{Violation, META_RULE_NAMES, RULE_NAMES};
pub use scan::{find_workspace_root, lint_workspace, Report};

/// Lints one in-memory source file under `rel_path` (which decides
/// allowlist and ordered-module matching), returning the surviving
/// violations.
pub fn lint_source(rel_path: &str, src: &str, config: &Config) -> Vec<Violation> {
    rules::scan_file(rel_path, src, config)
}
