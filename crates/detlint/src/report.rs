//! Human-text and machine-JSON rendering of a lint [`Report`].

use crate::rules::{META_RULE_NAMES, RULE_NAMES};
use crate::scan::Report;

/// Schema identifier of the JSON layout (bump on breaking change).
/// v2: the seven-rule catalog plus a per-rule `rules` count object the
/// CI gate asserts on.
pub const JSON_SCHEMA: &str = "hasco-detlint-v2";

/// `file:line:col: rule: message` diagnostics plus a summary line.
pub fn render_text(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!(
            "{}:{}:{}: [{}] {}\n    | {}\n",
            v.file, v.line, v.col, v.rule, v.message, v.snippet
        ));
    }
    out.push_str(&format!(
        "detlint: {} violation(s) across {} file(s) ({} scanned)\n",
        report.violations.len(),
        report
            .violations
            .iter()
            .map(|v| v.file.as_str())
            .collect::<std::collections::BTreeSet<_>>()
            .len(),
        report.files.len(),
    ));
    out
}

/// Versioned JSON for the CI gate and its uploaded artifact.
pub fn render_json(report: &Report) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema\": \"{JSON_SCHEMA}\",\n"));
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files.len()));
    out.push_str(&format!(
        "  \"violation_count\": {},\n",
        report.violations.len()
    ));
    // Per-rule counts over the full catalog (zeros included), so the CI
    // gate can assert the three serving-stack rules actually ran.
    out.push_str("  \"rules\": {\n");
    let catalog: Vec<&str> = RULE_NAMES
        .iter()
        .chain(META_RULE_NAMES.iter())
        .copied()
        .collect();
    for (i, name) in catalog.iter().enumerate() {
        let count = report.violations.iter().filter(|v| v.rule == *name).count();
        out.push_str(&format!(
            "    {}: {}{}\n",
            json_string(name),
            count,
            if i + 1 < catalog.len() { "," } else { "" }
        ));
    }
    out.push_str("  },\n");
    out.push_str("  \"violations\": [\n");
    for (i, v) in report.violations.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \
             \"message\": {}, \"snippet\": {}}}{}\n",
            json_string(&v.file),
            v.line,
            v.col,
            json_string(v.rule),
            json_string(&v.message),
            json_string(&v.snippet),
            if i + 1 < report.violations.len() {
                ","
            } else {
                ""
            }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
