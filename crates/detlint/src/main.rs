//! The `detlint` binary: lint the workspace, print diagnostics, exit
//! non-zero on any violation.
//!
//! ```text
//! cargo run -p detlint [-- --root DIR] [--config FILE] [--format text|json] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut config_path: Option<PathBuf> = None;
    let mut json = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => root = args.next().map(PathBuf::from),
            "--config" => config_path = args.next().map(PathBuf::from),
            "--format" => match args.next().as_deref() {
                Some("json") => json = true,
                Some("text") => json = false,
                other => return usage(&format!("--format expects text|json, got {other:?}")),
            },
            "--list-rules" => {
                print!("{}", rule_catalog());
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "detlint — workspace determinism and serving-safety lint\n\n\
                     USAGE: detlint [--root DIR] [--config FILE] [--format text|json] \
                     [--list-rules]\n\n\
                     A two-layer static analyzer: a total Rust lexer plus a\n\
                     brace-matched item tree recovered over its tokens. Seven rules\n\
                     enforce the determinism contract (wall-clock, iteration-order,\n\
                     atomics, ambient) and the serving stack's safety invariants\n\
                     (panic-safety, wire-drift, lock-discipline); three meta rules\n\
                     keep suppressions honest. See --list-rules for one-liners and\n\
                     README \"Static analysis\" for the full catalog and the\n\
                     suppression pragma syntax."
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }
    let root = match root.or_else(|| {
        std::env::current_dir()
            .ok()
            .and_then(|d| detlint::find_workspace_root(&d))
    }) {
        Some(r) => r,
        None => return usage("no --root given and no workspace Cargo.toml found upward of cwd"),
    };
    let config = match config_path {
        Some(path) => {
            let mut config = detlint::Config::default();
            let loaded = std::fs::read_to_string(&path)
                .map_err(|e| e.to_string())
                .and_then(|text| config.merge_toml(&text));
            match loaded {
                Ok(()) => config,
                Err(e) => return fail(&format!("{}: {e}", path.display())),
            }
        }
        None => match detlint::Config::load(&root) {
            Ok(c) => c,
            Err(e) => return fail(&e),
        },
    };
    let report = match detlint::lint_workspace(&root, &config) {
        Ok(r) => r,
        Err(e) => return fail(&format!("scan failed: {e}")),
    };
    if json {
        print!("{}", detlint::render_json(&report));
    } else {
        print!("{}", detlint::render_text(&report));
    }
    if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn rule_catalog() -> String {
    [
        (
            "wall-clock",
            "Instant::now/SystemTime::now only at sanctioned clock sites",
        ),
        (
            "iteration-order",
            "no HashMap/HashSet (or iteration over them) in ordered-output modules",
        ),
        (
            "atomics",
            "Relaxed only in counter modules; stronger orderings need a rationale comment",
        ),
        (
            "ambient",
            "no ad-hoc threads, entropy-seeded RNGs, static mut, or unsafe",
        ),
        (
            "panic-safety",
            "no unwrap/expect/panic!/bare indexing in serving-path modules",
        ),
        (
            "wire-drift",
            "every impl Wire's encode/decode halves agree on tags and field order",
        ),
        (
            "lock-discipline",
            "no blocking I/O under a live lock guard; consistent lock order",
        ),
        (
            "bad-pragma",
            "malformed suppression pragma (not suppressible)",
        ),
        (
            "unused-pragma",
            "pragma that suppresses nothing (not suppressible)",
        ),
        (
            "unused-allowlist",
            "detlint.toml entry that suppresses nothing (not suppressible)",
        ),
    ]
    .iter()
    .map(|(name, desc)| format!("{name:16} {desc}\n"))
    .collect()
}

fn usage(message: &str) -> ExitCode {
    eprintln!("detlint: {message} (try --help)");
    ExitCode::from(2)
}

fn fail(message: &str) -> ExitCode {
    eprintln!("detlint: {message}");
    ExitCode::from(2)
}
