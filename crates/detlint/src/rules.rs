//! The determinism and serving-safety rules, and per-file rule
//! application.
//!
//! Every rule operates on the lexed token stream (so string literals,
//! comments, and char literals can never produce false positives) with
//! `#[cfg(test)]` / `#[test]` items masked out — test code is the
//! *dynamic* enforcement layer and measures time, spawns threads, and
//! unwraps on purpose. The serving-stack rules additionally consult the
//! layer-2 [item tree](crate::itemtree) recovered over the same tokens.
//!
//! | rule | rejects |
//! |------|---------|
//! | `wall-clock` | `Instant::now` / `SystemTime::now` outside sanctioned clock sites |
//! | `iteration-order` | `HashMap`/`HashSet` (and iteration over them) in ordered-output modules |
//! | `atomics` | `Ordering::Relaxed` outside counter modules; other orderings without a rationale comment |
//! | `ambient` | `thread::spawn/scope/Builder` outside the pool, entropy-seeded RNGs, `static mut`, `unsafe` |
//! | `panic-safety` | `unwrap`/`expect`/`panic!`-family/bare indexing in serving-path modules |
//! | `wire-drift` | `impl Wire for T` whose `encode`/`decode` write and read different field sequences |
//! | `lock-discipline` | blocking I/O under a live lock guard; inconsistent lock-acquisition order |
//!
//! Three pseudo-rules report suppression hygiene and are themselves not
//! suppressible: `bad-pragma` (malformed or unknown-rule pragma),
//! `unused-pragma` (a pragma that suppressed nothing must be deleted),
//! and `unused-allowlist` (a `detlint.toml` entry that suppressed
//! nothing across the whole scan must be deleted).

mod lock_discipline;
mod panic_safety;
mod wire_drift;

use crate::config::Config;
use crate::itemtree;
use crate::lexer::{lex, Token, TokenKind};
use crate::pragma::parse_pragmas;

/// Rules a pragma or allowlist entry may suppress.
pub const RULE_NAMES: [&str; 7] = [
    "wall-clock",
    "iteration-order",
    "atomics",
    "ambient",
    "panic-safety",
    "wire-drift",
    "lock-discipline",
];

/// Suppression-hygiene pseudo-rules (never suppressible).
pub const META_RULE_NAMES: [&str; 3] = ["bad-pragma", "unused-pragma", "unused-allowlist"];

/// One rule violation with a `file:line:col` span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Workspace-relative, `/`-separated path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Rule name (one of [`RULE_NAMES`] or [`META_RULE_NAMES`]).
    pub rule: &'static str,
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

const ATOMIC_ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "into_iter",
    "into_keys",
    "into_values",
    "drain",
    "retain",
];

/// Lexed file plus the token subset rules look at.
pub(crate) struct FileView<'a> {
    pub(crate) src: &'a str,
    /// Tokens outside `#[cfg(test)]` / `#[test]` items.
    pub(crate) active: Vec<Token>,
}

impl<'a> FileView<'a> {
    fn new(src: &'a str, tokens: &[Token]) -> Self {
        let skip = test_item_mask(src, tokens);
        FileView {
            src,
            active: tokens
                .iter()
                .zip(&skip)
                .filter(|&(_, s)| !s)
                .map(|(t, _)| *t)
                .collect(),
        }
    }

    pub(crate) fn ident(&self, k: usize) -> Option<&'a str> {
        let t = self.active.get(k)?;
        (t.kind == TokenKind::Ident).then(|| t.text(self.src))
    }

    pub(crate) fn punct(&self, k: usize) -> Option<char> {
        match self.active.get(k)?.kind {
            TokenKind::Punct(c) => Some(c),
            _ => None,
        }
    }

    /// The numeric literal's text at `k`, if token `k` is a number.
    pub(crate) fn number(&self, k: usize) -> Option<&'a str> {
        let t = self.active.get(k)?;
        (t.kind == TokenKind::Number).then(|| t.text(self.src))
    }

    /// `Some((head, tail))` when tokens `k..k+4` spell `head::tail`.
    fn path2(&self, k: usize) -> Option<(&'a str, &'a str)> {
        let head = self.ident(k)?;
        if self.punct(k + 1) != Some(':') || self.punct(k + 2) != Some(':') {
            return None;
        }
        Some((head, self.ident(k + 3)?))
    }
}

/// Marks every token belonging to a `#[cfg(test)]`- or `#[test]`-gated
/// item (attributes included).
fn test_item_mask(src: &str, tokens: &[Token]) -> Vec<bool> {
    let mut skip = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        let Some((attr_end, is_test)) = scan_attribute(src, tokens, i) else {
            i += 1;
            continue;
        };
        if !is_test {
            i = attr_end;
            continue;
        }
        // Consume any further attributes, then the item itself.
        let mut j = attr_end;
        while let Some((next_end, _)) = scan_attribute(src, tokens, j) {
            j = next_end;
        }
        j = item_end(tokens, j);
        for s in skip.iter_mut().take(j).skip(i) {
            *s = true;
        }
        i = j;
    }
    skip
}

/// If an attribute `#[…]` (or `#![…]`) starts at token `i`, returns the
/// index one past its closing `]` and whether it is test-gating
/// (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`, …).
fn scan_attribute(src: &str, tokens: &[Token], i: usize) -> Option<(usize, bool)> {
    if tokens.get(i)?.kind != TokenKind::Punct('#') {
        return None;
    }
    let mut j = i + 1;
    if tokens.get(j)?.kind == TokenKind::Punct('!') {
        j += 1;
    }
    if tokens.get(j)?.kind != TokenKind::Punct('[') {
        return None;
    }
    let mut depth = 0usize;
    let mut idents: Vec<&str> = Vec::new();
    while let Some(tok) = tokens.get(j) {
        match tok.kind {
            TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    let is_test = match idents.first() {
                        Some(&"test") => true,
                        Some(&"cfg") => idents.contains(&"test"),
                        _ => false,
                    };
                    return Some((j + 1, is_test));
                }
            }
            TokenKind::Ident => idents.push(tok.text(src)),
            _ => {}
        }
        j += 1;
    }
    Some((tokens.len(), false)) // unterminated attribute: skip it, gate nothing
}

/// Index one past the end of the item starting at token `i`: through the
/// matching `}` of its body, or through the `;` that ends a bodiless
/// item.
fn item_end(tokens: &[Token], i: usize) -> usize {
    let mut depth = 0i64;
    let mut body = false;
    let mut j = i;
    while let Some(tok) = tokens.get(j) {
        match tok.kind {
            TokenKind::Punct('{') => {
                if depth == 0 {
                    body = true;
                }
                depth += 1;
            }
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct('}') | TokenKind::Punct(')') | TokenKind::Punct(']') => {
                depth = (depth - 1).max(0);
                if depth == 0 && body && tok.kind == TokenKind::Punct('}') {
                    return j + 1;
                }
            }
            TokenKind::Punct(';') if depth == 0 => return j + 1,
            _ => {}
        }
        j += 1;
    }
    tokens.len()
}

/// Runs every rule over one file and applies suppressions: allowlist
/// entries from `config`, then inline pragmas. Unused and malformed
/// pragmas come back as violations of the meta rules.
pub fn scan_file(rel_path: &str, src: &str, config: &Config) -> Vec<Violation> {
    let mut allow_used = vec![false; config.allows.len()];
    scan_file_tracking(rel_path, src, config, &mut allow_used)
}

/// [`scan_file`] that additionally marks which `config.allows` entries
/// suppressed something, so the workspace scan can report entries that
/// suppressed nothing anywhere (`unused-allowlist`).
pub fn scan_file_tracking(
    rel_path: &str,
    src: &str,
    config: &Config,
    allow_used: &mut [bool],
) -> Vec<Violation> {
    let lexed = lex(src);
    let view = FileView::new(src, &lexed.tokens);
    let tree = itemtree::parse(src, &view.active);
    let mut violations = Vec::new();
    rule_wall_clock(&view, &mut violations);
    if config.is_ordered_module(rel_path) {
        rule_iteration_order(&view, &mut violations);
    }
    rule_atomics(&view, &lexed.comments, &mut violations);
    rule_ambient(&view, &mut violations);
    if config.is_panic_module(rel_path) {
        panic_safety::run(&view, &mut violations);
    }
    wire_drift::run(&view, &tree, rel_path, &mut violations);
    lock_discipline::run(&view, &mut violations);

    violations.retain(|(rule, _, _)| match config.allow_index(rule, rel_path) {
        Some(at) => {
            if let Some(used) = allow_used.get_mut(at) {
                *used = true;
            }
            false
        }
        None => true,
    });

    let (pragmas, errors) = parse_pragmas(src, &lexed.comments);
    let mut used = vec![false; pragmas.len()];
    violations.retain(|(rule, tok, _)| {
        match pragmas.iter().position(|p| p.covers(rule, tok.line)) {
            Some(at) => {
                used[at] = true;
                false
            }
            None => true,
        }
    });

    let mut out: Vec<Violation> = violations
        .into_iter()
        .map(|(rule, tok, message)| Violation {
            file: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            rule,
            message,
            snippet: snippet_at(src, tok.line),
        })
        .collect();
    for err in errors {
        out.push(Violation {
            file: rel_path.to_string(),
            line: err.line,
            col: 1,
            rule: "bad-pragma",
            message: err.message,
            snippet: snippet_at(src, err.line),
        });
    }
    for (pragma, used) in pragmas.iter().zip(&used) {
        if !used {
            out.push(Violation {
                file: rel_path.to_string(),
                line: pragma.line,
                col: 1,
                rule: "unused-pragma",
                message: format!(
                    "pragma for `{}` suppresses nothing — delete it",
                    pragma.rules.join(", ")
                ),
                snippet: snippet_at(src, pragma.line),
            });
        }
    }
    out.sort_by(|a, b| {
        (a.line, a.col, a.rule, &a.message).cmp(&(b.line, b.col, b.rule, &b.message))
    });
    out.dedup_by(|a, b| (a.line, a.rule, &a.message) == (b.line, b.rule, &b.message));
    out
}

fn snippet_at(src: &str, line: u32) -> String {
    src.lines()
        .nth(line.saturating_sub(1) as usize)
        .unwrap_or("")
        .trim()
        .to_string()
}

pub(crate) type Raw = (&'static str, Token, String);

fn rule_wall_clock(view: &FileView, out: &mut Vec<Raw>) {
    for k in 0..view.active.len() {
        if let Some((head @ ("Instant" | "SystemTime"), "now")) = view.path2(k) {
            out.push((
                "wall-clock",
                view.active[k],
                format!(
                    "`{head}::now()` outside a sanctioned clock site — wall-clock time must \
                     never reach fingerprints, stats, events, or persisted images"
                ),
            ));
        }
    }
}

fn rule_iteration_order(view: &FileView, out: &mut Vec<Raw>) {
    // Any unordered container in an ordered-output module is a hazard:
    // its iteration order could reach a persisted image, an emitted
    // event stream, or a report.
    for k in 0..view.active.len() {
        if let Some(name @ ("HashMap" | "HashSet")) = view.ident(k) {
            out.push((
                "iteration-order",
                view.active[k],
                format!(
                    "`{name}` in an ordered-output module — iteration order can reach \
                     persisted or emitted output; use BTreeMap/BTreeSet or an explicit sort"
                ),
            ));
        }
    }
    // Precise diagnostics for direct iteration over bindings this file
    // declares as unordered containers.
    let tracked = tracked_unordered_bindings(view);
    if tracked.is_empty() {
        return;
    }
    let flag = |out: &mut Vec<Raw>, tok: Token, name: &str, how: &str| {
        out.push((
            "iteration-order",
            tok,
            format!("{how} over unordered `{name}` in an ordered-output module"),
        ));
    };
    for k in 0..view.active.len() {
        if let Some(name) = view.ident(k) {
            if tracked.iter().any(|t| t == name)
                && view.punct(k + 1) == Some('.')
                && view.ident(k + 2).is_some_and(|m| ITER_METHODS.contains(&m))
            {
                flag(out, view.active[k], name, "iteration");
            }
            if name == "for" {
                // `for … in … { …`: any tracked name before the body
                // opens is being iterated.
                let mut saw_in = false;
                for j in k + 1..(k + 40).min(view.active.len()) {
                    if view.punct(j) == Some('{') {
                        break;
                    }
                    match view.ident(j) {
                        Some("in") => saw_in = true,
                        Some(name) if saw_in && tracked.iter().any(|t| t == name) => {
                            flag(out, view.active[j], name, "`for` loop");
                            break;
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

/// Names this file binds to `HashMap`/`HashSet` values: typed bindings
/// and fields (`name: HashMap<…>`) and inferred lets
/// (`let name = HashMap::new()`). Lexical and file-local by design —
/// the container-mention check above is the soundness net.
fn tracked_unordered_bindings(view: &FileView) -> Vec<String> {
    let mut tracked = Vec::new();
    for k in 0..view.active.len() {
        let Some(name) = view.ident(k) else { continue };
        if name == "let" {
            let mut j = k + 1;
            if view.ident(j) == Some("mut") {
                j += 1;
            }
            if let Some(bound) = view.ident(j) {
                if view.punct(j + 1) == Some('=')
                    && matches!(view.ident(j + 2), Some("HashMap" | "HashSet"))
                {
                    tracked.push(bound.to_string());
                }
            }
            continue;
        }
        // `name: …HashMap…` in a type position (single colon).
        if view.punct(k + 1) != Some(':')
            || view.punct(k + 2) == Some(':')
            || view.punct(k.wrapping_sub(1)) == Some(':')
        {
            continue;
        }
        for j in k + 2..(k + 24).min(view.active.len()) {
            if let Some(';' | '=' | '{' | '}' | '(' | ')') = view.punct(j) {
                break;
            }
            if matches!(view.ident(j), Some("HashMap" | "HashSet")) {
                tracked.push(name.to_string());
                break;
            }
        }
    }
    tracked.sort();
    tracked.dedup();
    tracked
}

fn rule_atomics(view: &FileView, comments: &[crate::lexer::Comment], out: &mut Vec<Raw>) {
    for k in 0..view.active.len() {
        let Some(("Ordering", ord)) = view.path2(k) else {
            continue;
        };
        if !ATOMIC_ORDERINGS.contains(&ord) {
            continue; // `cmp::Ordering::Less` and friends
        }
        let tok = view.active[k];
        if ord == "Relaxed" {
            out.push((
                "atomics",
                tok,
                "`Ordering::Relaxed` outside a counter module — relaxed atomics must not \
                 carry results, only observability counters"
                    .to_string(),
            ));
        } else {
            // Stronger orderings are load-bearing synchronization; the
            // reasoning must be written down next to the site.
            let documented = comments
                .iter()
                .any(|c| c.end_line + 2 >= tok.line && c.end_line <= tok.line);
            if !documented {
                out.push((
                    "atomics",
                    tok,
                    format!(
                        "`Ordering::{ord}` without an adjacent rationale comment — document \
                         what this ordering synchronizes (same line or the two lines above)"
                    ),
                ));
            }
        }
    }
}

fn rule_ambient(view: &FileView, out: &mut Vec<Raw>) {
    for k in 0..view.active.len() {
        if let Some(("thread", m @ ("spawn" | "scope" | "Builder"))) = view.path2(k) {
            out.push((
                "ambient",
                view.active[k],
                format!(
                    "`thread::{m}` outside the runtime pool/scheduler — ad-hoc threads \
                     bypass order-preserving submission and observation-ordered publication"
                ),
            ));
        }
        if let Some(("rand", "random")) = view.path2(k) {
            out.push((
                "ambient",
                view.active[k],
                "`rand::random()` draws from ambient entropy — construct RNGs with \
                 `SmallRng::seed_from_u64` from problem parameters"
                    .to_string(),
            ));
        }
        match view.ident(k) {
            Some(name @ ("from_entropy" | "thread_rng" | "OsRng" | "getrandom")) => {
                out.push((
                    "ambient",
                    view.active[k],
                    format!(
                        "`{name}` seeds randomness from the environment — every RNG must be \
                         seeded from problem parameters so results replay bit-identically"
                    ),
                ));
            }
            Some("static") if view.ident(k + 1) == Some("mut") => {
                out.push((
                    "ambient",
                    view.active[k],
                    "`static mut` is unsynchronized global state — use an atomic, a lock, \
                     or `OnceLock`"
                        .to_string(),
                ));
            }
            Some("unsafe") => {
                out.push((
                    "ambient",
                    view.active[k],
                    "`unsafe` outside the allowlist — the workspace is safe Rust; \
                     un-auditable aliasing can hide scheduling-dependent behavior"
                        .to_string(),
                ));
            }
            _ => {}
        }
    }
}
