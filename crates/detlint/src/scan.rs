//! Workspace walking: which files the lint reads, and the aggregate
//! report.

use std::path::{Path, PathBuf};

use crate::config::Config;
use crate::rules::{scan_file_tracking, Violation};

/// The result of linting a workspace.
#[derive(Debug)]
pub struct Report {
    /// The workspace root the scan ran against.
    pub root: PathBuf,
    /// Workspace-relative paths of every file scanned, sorted.
    pub files: Vec<String>,
    /// Every surviving violation, sorted by file then position.
    pub violations: Vec<Violation>,
}

impl Report {
    /// True when the workspace is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Lints every `.rs` file under the configured scan roots. File order —
/// and therefore report order — is sorted, so the output is a pure
/// function of the tree's content.
pub fn lint_workspace(root: &Path, config: &Config) -> std::io::Result<Report> {
    let mut files = Vec::new();
    for scan_root in &config.scan_roots {
        collect_rust_files(root, &root.join(scan_root), config, &mut files)?;
    }
    files.sort();
    files.dedup();
    let mut violations = Vec::new();
    let mut allow_used = vec![false; config.allows.len()];
    for rel in &files {
        let src = std::fs::read_to_string(root.join(rel))?;
        violations.extend(scan_file_tracking(rel, &src, config, &mut allow_used));
    }
    // An allowlist entry that suppressed nothing across the whole scan
    // is stale configuration — the file-scope parallel of unused-pragma.
    for (entry, used) in config.allows.iter().zip(&allow_used) {
        if !used {
            violations.push(Violation {
                file: "detlint.toml".to_string(),
                line: entry.line,
                col: 1,
                rule: "unused-allowlist",
                message: format!(
                    "[[allow]] for `{}` on `{}` suppresses nothing anywhere — delete it",
                    entry.rule, entry.path
                ),
                snippet: format!("rule = \"{}\", path = \"{}\"", entry.rule, entry.path),
            });
        }
    }
    violations
        .sort_by(|a, b| (&a.file, a.line, a.col, a.rule).cmp(&(&b.file, b.line, b.col, b.rule)));
    Ok(Report {
        root: root.to_path_buf(),
        files,
        violations,
    })
}

fn collect_rust_files(
    root: &Path,
    dir: &Path,
    config: &Config,
    out: &mut Vec<String>,
) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        if path.is_dir() {
            if !config.skip_dir_names.contains(&name) && !name.starts_with('.') {
                collect_rust_files(root, &path, config, out)?;
            }
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_string_lossy().replace('\\', "/"));
            }
        }
    }
    Ok(())
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares a `[workspace]` — how the binary finds the tree to lint
/// when invoked from a subdirectory.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        if let Ok(manifest) = std::fs::read_to_string(d.join("Cargo.toml")) {
            if manifest.contains("[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}
