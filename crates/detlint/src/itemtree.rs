//! Layer 2: a syntax-aware item tree recovered from the layer-1 token
//! stream.
//!
//! The lexer gives the rules tokens; this module gives them *structure*:
//! a brace/bracket-matched recursive parse that recovers `impl` blocks
//! (with trait and self-type), `fn` items (with name and body span),
//! and `mod`/`trait` containers, nested to any depth. The serving-stack
//! rules are built on it — `wire-drift` pairs the `encode`/`decode`
//! bodies of each `impl Wire for T`, and `panic-safety` /
//! `lock-discipline` walk method-call chains and let-binding scopes
//! inside recovered `fn` bodies.
//!
//! Like the lexer below it, the parser is deliberately **total**:
//! malformed input (unbalanced braces, truncated items, macro soup)
//! produces a best-effort tree whose every span is in bounds — never a
//! panic, never an out-of-range index. Pinned by the token-soup
//! proptests in `tests/itemtree_props.rs`.

use crate::lexer::{Token, TokenKind};

/// What an [`Item`] is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A `fn` item (free function, method, or trait default method).
    Fn {
        /// The function's name.
        name: String,
    },
    /// An `impl` block.
    Impl {
        /// The implemented trait's rendered path (`None` for inherent
        /// impls), e.g. `Wire` or `crate::wire::Wire`.
        trait_path: Option<String>,
        /// The rendered self type, e.g. `Msg` or `BTreeMap<K,V>`.
        self_ty: String,
    },
    /// A named braced container: `mod name { … }` or `trait Name { … }`.
    Container {
        /// `mod` or `trait`.
        keyword: &'static str,
        /// The container's name.
        name: String,
    },
}

/// One recovered item with its token range and (optional) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Item {
    pub kind: ItemKind,
    /// Index (into the parsed token slice) of the introducing keyword.
    pub start: usize,
    /// Index one past the item's last token.
    pub end: usize,
    /// Interior token range of the braced body, exclusive of the braces
    /// themselves. `None` for bodiless items (`fn f();`, `mod m;`).
    pub body: Option<(usize, usize)>,
    /// Nested items, in source order.
    pub children: Vec<Item>,
}

impl Item {
    /// The trait path's final segment (`crate::wire::Wire` → `Wire`),
    /// with any generic arguments stripped. `None` for non-impl items
    /// and inherent impls.
    pub fn trait_name(&self) -> Option<&str> {
        match &self.kind {
            ItemKind::Impl {
                trait_path: Some(path),
                ..
            } => {
                let last = path.rsplit("::").next().unwrap_or(path);
                Some(last.split('<').next().unwrap_or(last))
            }
            _ => None,
        }
    }

    /// The direct child `fn` named `name`, if any.
    pub fn fn_named(&self, name: &str) -> Option<&Item> {
        self.children
            .iter()
            .find(|c| matches!(&c.kind, ItemKind::Fn { name: n } if n == name))
    }
}

/// The recovered item tree of one file (or token range).
#[derive(Debug, Default)]
pub struct ItemTree {
    /// Top-level items, in source order.
    pub items: Vec<Item>,
}

impl ItemTree {
    /// Every item in the tree, preorder.
    pub fn walk(&self) -> Vec<&Item> {
        let mut out = Vec::new();
        let mut stack: Vec<&Item> = self.items.iter().rev().collect();
        while let Some(item) = stack.pop() {
            out.push(item);
            stack.extend(item.children.iter().rev());
        }
        out
    }
}

/// Parses an item tree from a token slice. Spans in the returned tree
/// index into `tokens`; `src` is only needed to read identifier text.
pub fn parse(src: &str, tokens: &[Token]) -> ItemTree {
    let p = Parser { src, tokens };
    ItemTree {
        items: p.items(0, tokens.len()),
    }
}

struct Parser<'a> {
    src: &'a str,
    tokens: &'a [Token],
}

impl<'a> Parser<'a> {
    fn ident(&self, k: usize) -> Option<&'a str> {
        let t = self.tokens.get(k)?;
        (t.kind == TokenKind::Ident).then(|| t.text(self.src))
    }

    fn punct(&self, k: usize) -> Option<char> {
        match self.tokens.get(k)?.kind {
            TokenKind::Punct(c) => Some(c),
            _ => None,
        }
    }

    /// Recovers the items in `i..end` (recursing into bodies).
    fn items(&self, mut i: usize, end: usize) -> Vec<Item> {
        let end = end.min(self.tokens.len());
        let mut items = Vec::new();
        while i < end {
            let next = match self.ident(i) {
                // `fn name` introduces a fn item; a bare `fn` is a
                // pointer type (`fn(u32) -> u32`) and stays opaque.
                Some("fn") if self.ident(i + 1).is_some() => self.parse_fn(i, end),
                Some("impl") => self.parse_impl(i, end),
                Some(kw @ ("mod" | "trait")) if self.ident(i + 1).is_some() => {
                    self.parse_container(i, end, if kw == "mod" { "mod" } else { "trait" })
                }
                _ => None,
            };
            match next {
                Some(item) => {
                    let at = item.end.max(i + 1);
                    items.push(item);
                    i = at;
                }
                None => i += 1,
            }
        }
        items
    }

    /// Finds the `{` opening an item's body, or the `;` ending a
    /// bodiless one, scanning from `i` at bracket depth 0. Angle
    /// brackets nest too (generics), with `->` arrows exempt and depth
    /// clamped so stray comparisons cannot wedge the scan.
    fn find_body_open(&self, mut i: usize, end: usize) -> Option<(usize, bool)> {
        let mut depth = 0usize;
        while i < end {
            match self.punct(i) {
                Some('(' | '[' | '<') => depth += 1,
                Some(')' | ']') => depth = depth.saturating_sub(1),
                // `->` is an arrow, not a closing angle.
                Some('>') if self.punct(i.wrapping_sub(1)) != Some('-') => {
                    depth = depth.saturating_sub(1);
                }
                Some('{') => {
                    if depth == 0 {
                        return Some((i, true));
                    }
                    // A brace inside generics (const-generic default):
                    // skip its matched extent.
                    i = self.match_brace(i);
                    continue;
                }
                Some(';') if depth == 0 => return Some((i, false)),
                _ => {}
            }
            i += 1;
        }
        None
    }

    /// Index of the `}` matching the `{` at `open` (counting only
    /// braces), or the end of input when unbalanced.
    fn match_brace(&self, open: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < self.tokens.len() {
            match self.punct(i) {
                Some('{') => depth += 1,
                Some('}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        self.tokens.len()
    }

    fn parse_fn(&self, i: usize, end: usize) -> Option<Item> {
        let name = self.ident(i + 1)?.to_string();
        let (at, has_body) = self.find_body_open(i + 2, end)?;
        if !has_body {
            return Some(Item {
                kind: ItemKind::Fn { name },
                start: i,
                end: at + 1,
                body: None,
                children: Vec::new(),
            });
        }
        let close = self.match_brace(at);
        Some(Item {
            kind: ItemKind::Fn { name },
            start: i,
            end: (close + 1).min(self.tokens.len()),
            body: Some((at + 1, close)),
            children: self.items(at + 1, close),
        })
    }

    fn parse_impl(&self, i: usize, end: usize) -> Option<Item> {
        // Skip the optional generic parameter list right after `impl`.
        let mut j = i + 1;
        if self.punct(j) == Some('<') {
            let mut depth = 0usize;
            while j < end {
                match self.punct(j) {
                    Some('<') => depth += 1,
                    Some('>') if self.punct(j.wrapping_sub(1)) != Some('-') => {
                        depth = depth.saturating_sub(1);
                        if depth == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let head_start = j;
        let (open, has_body) = self.find_body_open(j, end)?;
        // Within the head, locate `for` (trait impl) and `where` (end of
        // the type head) at angle/bracket depth 0.
        let mut depth = 0usize;
        let mut for_at = None;
        let mut head_end = open;
        let mut k = head_start;
        while k < open {
            match self.punct(k) {
                Some('(' | '[' | '<') => depth += 1,
                Some(')' | ']') => depth = depth.saturating_sub(1),
                Some('>') => {
                    if self.punct(k.wrapping_sub(1)) != Some('-') {
                        depth = depth.saturating_sub(1);
                    }
                }
                _ => {
                    if depth == 0 {
                        match self.ident(k) {
                            Some("for") if for_at.is_none() => for_at = Some(k),
                            Some("where") => {
                                head_end = k;
                                break;
                            }
                            _ => {}
                        }
                    }
                }
            }
            k += 1;
        }
        let (trait_path, ty_start) = match for_at {
            Some(at) => (Some(self.render(head_start, at)), at + 1),
            None => (None, head_start),
        };
        let self_ty = self.render(ty_start, head_end);
        let kind = ItemKind::Impl {
            trait_path,
            self_ty,
        };
        if !has_body {
            return Some(Item {
                kind,
                start: i,
                end: open + 1,
                body: None,
                children: Vec::new(),
            });
        }
        let close = self.match_brace(open);
        Some(Item {
            kind,
            start: i,
            end: (close + 1).min(self.tokens.len()),
            body: Some((open + 1, close)),
            children: self.items(open + 1, close),
        })
    }

    fn parse_container(&self, i: usize, end: usize, keyword: &'static str) -> Option<Item> {
        let name = self.ident(i + 1)?.to_string();
        let (at, has_body) = self.find_body_open(i + 2, end)?;
        let kind = ItemKind::Container { keyword, name };
        if !has_body {
            return Some(Item {
                kind,
                start: i,
                end: at + 1,
                body: None,
                children: Vec::new(),
            });
        }
        let close = self.match_brace(at);
        Some(Item {
            kind,
            start: i,
            end: (close + 1).min(self.tokens.len()),
            body: Some((at + 1, close)),
            children: self.items(at + 1, close),
        })
    }

    /// The concatenated source text of tokens `from..to` — compact
    /// rendering for trait paths and self types (`BTreeMap<K,V>`).
    fn render(&self, from: usize, to: usize) -> String {
        let mut out = String::new();
        for t in self
            .tokens
            .iter()
            .take(to.min(self.tokens.len()))
            .skip(from)
        {
            out.push_str(t.text(self.src));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> ItemTree {
        parse(src, &lex(src).tokens)
    }

    #[test]
    fn recovers_impl_fn_structure() {
        let src = "
            impl Wire for Msg {
                fn encode(&self, out: &mut Vec<u8>) { out.push(0); }
                fn decode(r: &mut Reader<'_>) -> Option<Self> { None }
            }
            fn free() {}
            mod inner { fn nested() {} }
        ";
        let tree = tree_of(src);
        assert_eq!(tree.items.len(), 3);
        let imp = &tree.items[0];
        assert_eq!(imp.trait_name(), Some("Wire"));
        assert!(matches!(&imp.kind, ItemKind::Impl { self_ty, .. } if self_ty == "Msg"));
        assert!(imp.fn_named("encode").is_some());
        assert!(imp.fn_named("decode").unwrap().body.is_some());
        assert!(imp.fn_named("missing").is_none());
        assert!(matches!(&tree.items[1].kind, ItemKind::Fn { name } if name == "free"));
        assert_eq!(tree.items[2].children.len(), 1);
    }

    #[test]
    fn generic_impls_and_where_clauses_parse() {
        let src =
            "impl<K: Wire + Ord, V: Wire> Wire for BTreeMap<K, V> where K: Clone { fn f() {} }";
        let tree = tree_of(src);
        let imp = &tree.items[0];
        assert_eq!(imp.trait_name(), Some("Wire"));
        assert!(matches!(&imp.kind, ItemKind::Impl { self_ty, .. } if self_ty == "BTreeMap<K,V>"));
        assert_eq!(imp.children.len(), 1);
    }

    #[test]
    fn inherent_impls_have_no_trait() {
        let tree = tree_of("impl<'a> Reader<'a> { fn take(&mut self) {} }");
        assert_eq!(tree.items[0].trait_name(), None);
        assert!(tree.items[0].fn_named("take").is_some());
    }

    #[test]
    fn fn_pointer_types_are_not_items() {
        let tree = tree_of("fn real(f: fn(u32) -> u32) -> u32 { f(1) }");
        assert_eq!(tree.items.len(), 1);
        assert!(tree.items[0].children.is_empty());
    }

    #[test]
    fn impl_trait_in_signatures_stays_inside_the_fn() {
        let tree = tree_of("fn make() -> impl Iterator<Item = u32> { 0..3 }");
        assert_eq!(tree.items.len(), 1);
        assert!(matches!(&tree.items[0].kind, ItemKind::Fn { name } if name == "make"));
    }

    #[test]
    fn unbalanced_braces_clamp_to_end_of_input() {
        for src in ["impl Wire for X { fn encode() {", "fn f() { { {", "mod m {"] {
            let tokens = lex(src).tokens;
            let tree = parse(src, &tokens);
            for item in tree.walk() {
                assert!(item.end <= tokens.len(), "{src}: {item:?}");
                if let Some((b, e)) = item.body {
                    assert!(b <= e && e <= tokens.len(), "{src}: {item:?}");
                }
            }
        }
    }
}
