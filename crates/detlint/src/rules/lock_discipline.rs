//! `lock-discipline`: no blocking I/O under a live lock guard, and no
//! inconsistent acquisition order between named locks.
//!
//! The rule walks each file's brace scopes tracking guard bindings —
//! `let guard = thing.lock()…;` (or a condvar `.wait(g)` re-binding),
//! where the acquisition sits at the top level of the initializer and
//! only `?`/`.unwrap()`/`.expect(…)`/`.unwrap_or_else(…)` follow it, so
//! the binding provably holds the guard itself (not the result of a
//! method chained through it, a match arm, or a closure). The guard
//! holds the lock named by the receiver field until its scope closes or
//! an explicit `drop(guard)`. While any guard is live:
//!
//! * a blocking transport call — `read_frame` / `write_frame` /
//!   `TcpStream::connect` / `.accept(` / `proto::send` / `proto::recv` /
//!   `recv_expect` — is flagged: a slow or dead peer would hold the
//!   lock against every other thread;
//! * acquiring the *same* named lock again is flagged as re-entrant
//!   (self-deadlock with `std::sync::Mutex`);
//! * acquiring a *different* named lock records an order edge, and two
//!   edges in opposite directions within one file are flagged as an
//!   inversion (the classic AB/BA deadlock).
//!
//! Scope tracking is lexical and per-file by design: a temporary guard
//! (`m.lock().unwrap().insert(…)`) dies within its statement and is
//! deliberately not tracked, and cross-function holds are out of scope
//! for a total, dependency-free lint. The rule exists to catch the
//! shape that actually deadlocks fleets — a held guard wrapped around a
//! socket conversation.

use super::{FileView, Raw};
use crate::lexer::Token;

/// Receiver methods that produce (or re-produce) a guard binding.
const GUARD_METHODS: [&str; 3] = ["lock", "wait", "wait_timeout"];

#[derive(Debug)]
struct Guard {
    binding: String,
    /// The receiver field the guard locks (`jobs` in
    /// `self.inner.jobs.lock()`).
    lock: String,
    line: u32,
}

pub(crate) fn run(view: &FileView, out: &mut Vec<Raw>) {
    // One Vec<Guard> per open brace scope; index 0 is file scope.
    let mut scopes: Vec<Vec<Guard>> = vec![Vec::new()];
    // (held, acquired, token) order edges seen in this file.
    let mut edges: Vec<(String, String, Token)> = Vec::new();
    // `.lock()` sites already consumed by a `let` guard binding — the
    // generic acquisition handler must not see them twice.
    let mut bound_sites: Vec<usize> = Vec::new();

    let len = view.active.len();
    let mut k = 0;
    while k < len {
        match view.punct(k) {
            Some('{') => scopes.push(Vec::new()),
            Some('}') if scopes.len() > 1 => {
                scopes.pop();
            }
            _ => {}
        }
        let Some(word) = view.ident(k) else {
            k += 1;
            continue;
        };
        match word {
            // `drop(guard)` releases early.
            "drop" if view.punct(k + 1) == Some('(') && view.punct(k + 3) == Some(')') => {
                if let Some(name) = view.ident(k + 2) {
                    for scope in scopes.iter_mut() {
                        scope.retain(|g| g.binding != name);
                    }
                }
            }
            // `let [mut] name = …lock()…;` — a guard binding.
            "let" => {
                if let Some((binding, lock, site, line)) = parse_guard_let(view, k) {
                    check_acquire(view, &scopes, &lock, site, &mut edges, out);
                    bound_sites.push(site);
                    if let Some(scope) = scopes.last_mut() {
                        // Rebinding the same name (condvar wait loops)
                        // replaces the old guard.
                        scope.retain(|g| g.binding != binding);
                        scope.push(Guard {
                            binding,
                            lock,
                            line,
                        });
                    }
                }
            }
            // A lock acquired while guards are live, outside a guard
            // `let`: re-entrancy and ordering still apply even though
            // the temporary guard itself is statement-scoped.
            "lock"
                if k >= 2
                    && view.punct(k - 1) == Some('.')
                    && view.punct(k + 1) == Some('(')
                    && !bound_sites.contains(&k) =>
            {
                if let Some(lock) = view.ident(k - 2) {
                    check_acquire(view, &scopes, lock, k, &mut edges, out);
                }
            }
            // Blocking transport calls under a live guard.
            "read_frame" | "write_frame"
                if view.punct(k + 1) == Some('(')
                    && view.ident(k.wrapping_sub(1)) != Some("fn") =>
            {
                check_blocking(view, &scopes, word, k, out);
            }
            "accept"
                if k >= 1 && view.punct(k - 1) == Some('.') && view.punct(k + 1) == Some('(') =>
            {
                check_blocking(view, &scopes, word, k, out);
            }
            "connect"
                if view.ident(k.wrapping_sub(3)) == Some("TcpStream")
                    && view.punct(k - 1) == Some(':')
                    && view.punct(k + 1) == Some('(') =>
            {
                check_blocking(view, &scopes, "TcpStream::connect", k, out);
            }
            "send" | "recv" | "recv_expect"
                if view.ident(k.wrapping_sub(3)) == Some("proto")
                    && view.punct(k.wrapping_sub(1)) == Some(':')
                    && view.punct(k + 1) == Some('(') =>
            {
                check_blocking(view, &scopes, &format!("proto::{word}"), k, out);
            }
            "recv_expect" if view.punct(k + 1) == Some('(') => {
                check_blocking(view, &scopes, word, k, out);
            }
            _ => {}
        }
        k += 1;
    }

    // Inversions: the same two locks acquired in both orders.
    let mut flagged: Vec<(String, String)> = Vec::new();
    for (i, (a, b, tok)) in edges.iter().enumerate() {
        for (c, d, other) in edges.iter().skip(i + 1) {
            if a == d
                && b == c
                && !flagged
                    .iter()
                    .any(|(x, y)| (x, y) == (a, b) || (x, y) == (b, a))
            {
                flagged.push((a.clone(), b.clone()));
                out.push((
                    "lock-discipline",
                    *other,
                    format!(
                        "lock `{c}` acquired while holding `{d}`, but line {} acquires \
                         `{b}` while holding `{a}` — inconsistent lock order deadlocks \
                         under contention",
                        tok.line
                    ),
                ));
            }
        }
    }
}

/// If the `let` at token `k` binds a guard, returns
/// `(binding, lock name, lock-method token index, line)`.
fn parse_guard_let(view: &FileView, k: usize) -> Option<(String, String, usize, u32)> {
    let mut j = k + 1;
    if view.ident(j) == Some("mut") {
        j += 1;
    }
    let binding = view.ident(j)?;
    // Only plain bindings: `let (a, b) = …` and `let Some(x) = …`
    // destructure, and a destructured guard has no single name to track.
    j += 1;
    match view.punct(j) {
        Some('=') => j += 1,
        Some(':') => {
            // Typed binding: skip the type annotation to the `=`.
            let mut depth = 0usize;
            loop {
                j += 1;
                match view.punct(j) {
                    Some('(' | '[' | '<') => depth += 1,
                    Some(')' | ']') => depth = depth.saturating_sub(1),
                    Some('>') if view.punct(j.wrapping_sub(1)) != Some('-') => {
                        depth = depth.saturating_sub(1);
                    }
                    Some('=') if depth == 0 => {
                        j += 1;
                        break;
                    }
                    Some(';' | '{') if depth == 0 => return None,
                    None => return None,
                    _ => {}
                }
            }
        }
        _ => return None,
    }
    // Scan the initializer for a guard-producing call. The call must sit
    // at depth 0 of the initializer — a lock taken inside a block, match
    // arm, or closure is a temporary, and the binding holds the *result*
    // of that branch, not the guard. `match`/`if` at depth 0 mean the
    // same thing for the whole initializer.
    let mut depth = 0usize;
    while j < view.active.len() {
        match view.punct(j) {
            Some('(' | '[' | '{') => depth += 1,
            Some(')' | ']' | '}') => {
                if depth == 0 {
                    return None; // ran off the enclosing scope
                }
                depth -= 1;
            }
            Some(';') if depth == 0 => return None,
            // A `|` at depth 0 opens a closure: the guard (if any) lives
            // inside it, not in the binding.
            Some('|') if depth == 0 => return None,
            _ => {
                if depth == 0 {
                    if let Some(m) = view.ident(j) {
                        if m == "match" || m == "if" {
                            return None;
                        }
                        if GUARD_METHODS.contains(&m)
                            && view.punct(j.wrapping_sub(1)) == Some('.')
                            && view.punct(j + 1) == Some('(')
                        {
                            // `.lock()` is nullary; `Condvar::wait` and
                            // `wait_timeout` consume the guard they're
                            // given. A nullary `.wait()` is some domain
                            // method (a join handle, a barrier wrapper),
                            // not a lock acquisition.
                            let nullary = view.punct(j + 2) == Some(')');
                            if (m == "lock") == nullary {
                                if let Some(got) = finish_guard_call(view, binding, j, k) {
                                    return Some(got);
                                }
                                return None;
                            }
                        }
                    }
                }
            }
        }
        j += 1;
    }
    None
}

/// The guard method at `j` produces the binding's value only when
/// nothing but unwrapping follows it before the `;` — any further
/// method call (`.recv()`, `.begin_batch()`, …) consumes the temporary
/// guard within the statement.
fn finish_guard_call(
    view: &FileView,
    binding: &str,
    j: usize,
    let_k: usize,
) -> Option<(String, String, usize, u32)> {
    let lock = view.ident(j.wrapping_sub(2))?;
    let line = view.active.get(let_k)?.line;
    let mut p = match_delims(view, j + 1)? + 1;
    loop {
        match view.punct(p) {
            Some(';') => return Some((binding.to_string(), lock.to_string(), j, line)),
            Some('?') => p += 1,
            Some('.')
                if matches!(
                    view.ident(p + 1),
                    Some("unwrap" | "expect" | "unwrap_or_else")
                ) && view.punct(p + 2) == Some('(') =>
            {
                p = match_delims(view, p + 2)? + 1;
            }
            _ => return None,
        }
    }
}

/// Index of the delimiter closing the one opened at `open`, or `None`
/// when the stream ends first.
fn match_delims(view: &FileView, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut j = open;
    while j < view.active.len() {
        match view.punct(j) {
            Some('(' | '[' | '{') => depth += 1,
            Some(')' | ']' | '}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
        j += 1;
    }
    None
}

fn live_guards(scopes: &[Vec<Guard>]) -> impl Iterator<Item = &Guard> {
    scopes.iter().flatten()
}

fn check_acquire(
    view: &FileView,
    scopes: &[Vec<Guard>],
    lock: &str,
    site: usize,
    edges: &mut Vec<(String, String, Token)>,
    out: &mut Vec<Raw>,
) {
    let Some(&tok) = view.active.get(site) else {
        return;
    };
    for g in live_guards(scopes) {
        if g.lock == lock {
            out.push((
                "lock-discipline",
                tok,
                format!(
                    "re-entrant `.lock()` on `{lock}` while guard `{}` (line {}) is still \
                     live — `std::sync::Mutex` self-deadlocks here",
                    g.binding, g.line
                ),
            ));
        } else {
            edges.push((g.lock.clone(), lock.to_string(), tok));
        }
    }
}

fn check_blocking(
    view: &FileView,
    scopes: &[Vec<Guard>],
    what: &str,
    site: usize,
    out: &mut Vec<Raw>,
) {
    let Some(&tok) = view.active.get(site) else {
        return;
    };
    // One diagnostic per site, naming the innermost (latest) guard.
    if let Some(g) = live_guards(scopes).last() {
        out.push((
            "lock-discipline",
            tok,
            format!(
                "blocking I/O `{what}` while lock guard `{}` on `{}` (line {}) is live — a \
                 slow or dead peer stalls every thread contending for `{}`",
                g.binding, g.lock, g.line, g.lock
            ),
        ));
    }
}
