//! `panic-safety`: no panicking constructs in serving-path modules.
//!
//! A panic in a connection handler, worker thread, or the persistence
//! path does not crash the process — it silently kills one thread,
//! poisons whatever locks it held, and drops the job on the floor. In
//! the modules `detlint.toml` names as serving paths (`crates/net`, the
//! persistence layer, the engine driver), every potentially panicking
//! construct must either become a typed error or carry a
//! `detlint-allow(panic-safety)` pragma with a written rationale
//! ("poisoned mutex = prior panic, propagating is correct").
//!
//! Flagged, in non-test code only:
//! * `.unwrap()` / `.expect(…)` method calls;
//! * `panic!` / `unreachable!` / `todo!` / `unimplemented!` macros;
//! * bare `name[…]` indexing (use `.get(…)` and handle the `None`).
//!
//! The indexing check is lexical: it sees `ident[`, so chained or
//! call-result indexing (`f()[0]`) passes. That asymmetry is deliberate
//! — the simple form is by far the common one, and a total lexer-level
//! rule must not guess at expression structure it cannot see.

use super::{FileView, Raw};

/// Keywords that can directly precede `[` without being an indexed
/// binding (`let [a, b] = …`, `for [x, y] in …`, `&mut [0u8; 4]`).
const NONINDEX_KEYWORDS: [&str; 24] = [
    "let", "mut", "ref", "in", "return", "break", "continue", "match", "if", "else", "as", "move",
    "static", "const", "dyn", "box", "fn", "where", "use", "pub", "unsafe", "while", "loop", "for",
];

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub(crate) fn run(view: &FileView, out: &mut Vec<Raw>) {
    for k in 0..view.active.len() {
        let Some(name) = view.ident(k) else { continue };
        match name {
            "unwrap" | "expect"
                if k > 0 && view.punct(k - 1) == Some('.') && view.punct(k + 1) == Some('(') =>
            {
                out.push((
                    "panic-safety",
                    view.active[k],
                    format!(
                        "`.{name}()` in a serving-path module — a panic here kills the \
                         connection or worker thread and drops its job silently; return a \
                         typed error, recover the poisoned guard, or pragma with a rationale"
                    ),
                ));
            }
            _ if PANIC_MACROS.contains(&name) && view.punct(k + 1) == Some('!') => {
                out.push((
                    "panic-safety",
                    view.active[k],
                    format!(
                        "`{name}!` in a serving-path module — serving code must degrade to a \
                         typed error, never take down a handler thread"
                    ),
                ));
            }
            _ if view.punct(k + 1) == Some('[') && !NONINDEX_KEYWORDS.contains(&name) => {
                out.push((
                    "panic-safety",
                    view.active[k],
                    format!(
                        "indexing `{name}[…]` can panic out of bounds — use `.get(…)` and \
                         handle `None`, or pragma with the bounds argument written down"
                    ),
                ));
            }
            _ => {}
        }
    }
}
