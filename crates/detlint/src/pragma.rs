//! Inline suppression pragmas.
//!
//! Syntax, inside any comment:
//!
//! ```text
//! // detlint-allow(rule[, rule…]): reason
//! // detlint-allow-file(rule[, rule…]): reason
//! ```
//!
//! A line pragma suppresses matching violations on its own line and on
//! the line directly below (so it can trail the offending statement or
//! sit on its own line above it). A file pragma suppresses the rule for
//! the whole file. The reason is mandatory: a suppression without a
//! written rationale is itself a violation, as is a pragma that
//! suppresses nothing.

use crate::lexer::Comment;

/// One parsed suppression pragma.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Pragma {
    /// True for `detlint-allow-file`.
    pub file_scope: bool,
    /// Rule names the pragma suppresses.
    pub rules: Vec<String>,
    /// The written rationale (never empty for a well-formed pragma).
    pub reason: String,
    /// First line the pragma applies to (the comment's start line).
    pub line: u32,
    /// Last line the pragma applies to (`end_line + 1` of its comment).
    pub last_line: u32,
}

impl Pragma {
    /// Whether this pragma suppresses `rule` at `line`.
    pub fn covers(&self, rule: &str, line: u32) -> bool {
        self.rules.iter().any(|r| r == rule) && (self.file_scope || self.applies_to_line(line))
    }

    fn applies_to_line(&self, line: u32) -> bool {
        (self.line..=self.last_line).contains(&line)
    }
}

/// A pragma that failed to parse (reported as a `bad-pragma` violation).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PragmaError {
    pub line: u32,
    pub message: String,
}

const MARKER: &str = "detlint-allow";

/// Extracts every pragma (and malformed pragma) from a file's comments.
pub fn parse_pragmas(src: &str, comments: &[Comment]) -> (Vec<Pragma>, Vec<PragmaError>) {
    let mut pragmas = Vec::new();
    let mut errors = Vec::new();
    for comment in comments {
        let text = comment.text(src);
        // Pragmas live in plain implementation comments. Doc comments
        // merely *describe* the syntax (as this crate's own docs do) and
        // must not activate.
        if ["///", "//!", "/**", "/*!"]
            .iter()
            .any(|d| text.starts_with(d))
        {
            continue;
        }
        let Some(at) = text.find(MARKER) else {
            continue;
        };
        match parse_one(&text[at..]) {
            Ok((file_scope, rules, reason)) => pragmas.push(Pragma {
                file_scope,
                rules,
                reason,
                line: comment.line,
                last_line: comment.end_line + 1,
            }),
            Err(message) => errors.push(PragmaError {
                line: comment.line,
                message,
            }),
        }
    }
    (pragmas, errors)
}

/// Parses one pragma starting at the `detlint-allow` marker.
fn parse_one(text: &str) -> Result<(bool, Vec<String>, String), String> {
    let rest = &text[MARKER.len()..];
    let (file_scope, rest) = match rest.strip_prefix("-file") {
        Some(r) => (true, r),
        None => (false, rest),
    };
    let rest = rest
        .strip_prefix('(')
        .ok_or("expected `(` after `detlint-allow`")?;
    let close = rest.find(')').ok_or("unclosed rule list")?;
    let rules: Vec<String> = rest[..close]
        .split(',')
        .map(|r| r.trim().to_string())
        .filter(|r| !r.is_empty())
        .collect();
    if rules.is_empty() {
        return Err("empty rule list".into());
    }
    for rule in &rules {
        if !crate::rules::RULE_NAMES.contains(&rule.as_str()) {
            return Err(format!(
                "unknown rule `{rule}` (known: {})",
                crate::rules::RULE_NAMES.join(", ")
            ));
        }
    }
    let rest = rest[close + 1..].trim_start();
    let reason = rest
        .strip_prefix(':')
        .map(|r| r.trim_end_matches("*/").trim().to_string())
        .unwrap_or_default();
    if reason.is_empty() {
        return Err("missing rationale: write `detlint-allow(rule): why this is safe`".into());
    }
    Ok((file_scope, rules, reason))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> (Vec<Pragma>, Vec<PragmaError>) {
        parse_pragmas(src, &lex(src).comments)
    }

    #[test]
    fn well_formed_line_pragma() {
        let (p, e) = parse("// detlint-allow(wall-clock): telemetry only\nfoo();");
        assert!(e.is_empty());
        assert_eq!(p.len(), 1);
        assert!(!p[0].file_scope);
        assert_eq!(p[0].rules, vec!["wall-clock"]);
        assert_eq!(p[0].reason, "telemetry only");
        assert!(p[0].covers("wall-clock", 1));
        assert!(p[0].covers("wall-clock", 2));
        assert!(!p[0].covers("wall-clock", 3));
        assert!(!p[0].covers("atomics", 2));
    }

    #[test]
    fn file_pragma_covers_everything() {
        let (p, e) = parse("// detlint-allow-file(atomics, ambient): counters only");
        assert!(e.is_empty());
        assert!(p[0].file_scope);
        assert!(p[0].covers("ambient", 4096));
    }

    #[test]
    fn missing_reason_is_an_error() {
        let (p, e) = parse("// detlint-allow(wall-clock)");
        assert!(p.is_empty());
        assert_eq!(e.len(), 1);
        assert!(e[0].message.contains("rationale"));
    }

    #[test]
    fn unknown_rule_is_an_error() {
        let (p, e) = parse("// detlint-allow(made-up): because");
        assert!(p.is_empty());
        assert!(e[0].message.contains("unknown rule"));
    }

    #[test]
    fn doc_comments_describing_the_syntax_never_activate() {
        let src = "/// detlint-allow(not-a-rule): docs\n//! detlint-allow syntax notes\nfoo();";
        let (p, e) = parse(src);
        assert!(p.is_empty(), "{p:?}");
        assert!(e.is_empty(), "{e:?}");
    }

    #[test]
    fn block_comment_pragma_spans_to_next_line() {
        let src = "/* detlint-allow(ambient): spawning is\n   the pool's job */\nthread::spawn";
        let (p, e) = parse(src);
        assert!(e.is_empty());
        assert_eq!((p[0].line, p[0].last_line), (1, 3));
    }
}
