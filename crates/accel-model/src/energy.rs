//! Dynamic energy model.
//!
//! Energy = MACs·e_mac + scratchpad bytes·e_spad(capacity) + local-memory
//! bytes·e_local + DRAM bytes·e_dram + NoC byte-hops·e_hop + rearrangement
//! bytes·e_rearrange. The NoC hop count depends on the interconnect: a
//! systolic array forwards operands ~√PEs hops on average; a crossbar pays a
//! capacity-dependent premium; an unconnected array broadcasts from the
//! scratchpad (one hop, but its scratchpad traffic is charged elsewhere).

use crate::arch::{AcceleratorConfig, Interconnect};
use crate::plan::ExecutionPlan;
use crate::tech::TechParams;

/// Breakdown of dynamic energy in picojoules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyBreakdown {
    /// MAC array energy.
    pub compute_pj: f64,
    /// Scratchpad access energy.
    pub spad_pj: f64,
    /// Per-PE local memory energy.
    pub local_pj: f64,
    /// DRAM access energy.
    pub dram_pj: f64,
    /// On-chip network energy.
    pub noc_pj: f64,
    /// Data-rearrangement energy.
    pub rearrange_pj: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj
            + self.spad_pj
            + self.local_pj
            + self.dram_pj
            + self.noc_pj
            + self.rearrange_pj
    }
}

/// Average NoC hops each operand byte travels for the given interconnect.
pub fn avg_hops(cfg: &AcceleratorConfig) -> f64 {
    let pes = cfg.pes() as f64;
    match cfg.interconnect {
        Interconnect::None => 1.0,
        Interconnect::Systolic => (pes.sqrt() / 2.0).max(1.0),
        // A crossbar is one logical hop but its switches burn energy that
        // grows with radix; fold that into an effective hop count.
        Interconnect::Full => (pes.powf(0.25)).max(1.0),
    }
}

/// Fraction of PE-side traffic served by local memories instead of the
/// scratchpad (0 when the accelerator has none). Saturates at 60 %:
/// stationary operands can be pinned but streaming operands cannot.
pub fn local_service_fraction(cfg: &AcceleratorConfig) -> f64 {
    if cfg.local_mem_bytes == 0 {
        return 0.0;
    }
    let kb = cfg.local_mem_bytes as f64 / 1024.0;
    0.6 * (kb / (kb + 1.0))
}

/// Computes the dynamic-energy breakdown of a plan on a configuration.
pub fn dynamic_energy(
    cfg: &AcceleratorConfig,
    plan: &ExecutionPlan,
    tech: &TechParams,
) -> EnergyBreakdown {
    let local_frac = local_service_fraction(cfg);
    let spad_bytes = plan.spad_traffic_bytes as f64 * (1.0 - local_frac);
    let local_bytes = plan.spad_traffic_bytes as f64 * local_frac;
    EnergyBreakdown {
        compute_pj: plan.macs_padded as f64 * tech.e_mac_pj,
        spad_pj: spad_bytes * tech.spad_energy_per_byte(cfg.scratchpad_bytes),
        local_pj: local_bytes * tech.e_local_pj,
        dram_pj: plan.dram_bytes() as f64 * tech.e_dram_pj,
        noc_pj: plan.spad_traffic_bytes as f64 * avg_hops(cfg) * tech.e_hop_pj,
        rearrange_pj: plan.rearrange_bytes as f64 * tech.e_rearrange_pj,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::TensorTraffic;
    use tensor_ir::intrinsics::IntrinsicKind;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap()
    }

    fn plan_with_traffic() -> ExecutionPlan {
        let mut p = ExecutionPlan::compute_only(1_000_000, 1_100_000, 100);
        p.dram_reads.push(TensorTraffic::new("A", 64_000, 64));
        p.dram_writes.push(TensorTraffic::new("C", 16_000, 64));
        p.spad_traffic_bytes = 500_000;
        p
    }

    #[test]
    fn energy_components_all_positive() {
        let e = dynamic_energy(&cfg(), &plan_with_traffic(), &TechParams::default());
        assert!(e.compute_pj > 0.0 && e.spad_pj > 0.0 && e.dram_pj > 0.0 && e.noc_pj > 0.0);
        assert!(e.total_pj() > e.compute_pj);
    }

    #[test]
    fn dram_energy_dominates_equal_traffic() {
        // Per byte, DRAM must cost far more than scratchpad.
        let t = TechParams::default();
        let c = cfg();
        assert!(t.e_dram_pj > 5.0 * t.spad_energy_per_byte(c.scratchpad_bytes));
    }

    #[test]
    fn local_memory_cuts_spad_energy() {
        let mut with_local = cfg();
        with_local.local_mem_bytes = 2048;
        let p = plan_with_traffic();
        let t = TechParams::default();
        let base = dynamic_energy(&cfg(), &p, &t);
        let local = dynamic_energy(&with_local, &p, &t);
        assert!(local.spad_pj < base.spad_pj);
        assert!(local.local_pj > 0.0);
        // Net PE-side memory energy should drop (local accesses are cheaper).
        assert!(local.spad_pj + local.local_pj < base.spad_pj + base.local_pj + 1e-9);
    }

    #[test]
    fn systolic_hops_grow_with_array() {
        let mut small = cfg();
        small.pe = crate::arch::PeArray::new(4, 4);
        let mut big = cfg();
        big.pe = crate::arch::PeArray::new(32, 32);
        assert!(avg_hops(&big) > avg_hops(&small));
    }

    #[test]
    fn interconnect_hop_ordering() {
        let mut none = cfg();
        none.interconnect = Interconnect::None;
        let mut full = cfg();
        full.interconnect = Interconnect::Full;
        let systolic = cfg();
        assert_eq!(avg_hops(&none), 1.0);
        assert!(avg_hops(&systolic) > avg_hops(&full)); // 256 PEs: 8 vs 4
    }

    #[test]
    fn local_fraction_saturates() {
        let mut c = cfg();
        c.local_mem_bytes = 1 << 20;
        assert!(local_service_fraction(&c) < 0.6);
        c.local_mem_bytes = 0;
        assert_eq!(local_service_fraction(&c), 0.0);
    }

    #[test]
    fn rearrangement_is_charged() {
        let mut p = plan_with_traffic();
        p.rearrange_bytes = 1_000_000;
        let e = dynamic_energy(&cfg(), &p, &TechParams::default());
        assert!(e.rearrange_pj > 0.0);
    }
}
