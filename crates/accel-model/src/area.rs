//! Area model: PE array + local memories + scratchpad + interconnect +
//! DMA + controller.

use crate::arch::{AcceleratorConfig, Interconnect};
use crate::tech::TechParams;

/// Breakdown of silicon area in mm².
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AreaBreakdown {
    /// MAC datapaths and PE-local control.
    pub pes_mm2: f64,
    /// Per-PE local memories.
    pub local_mm2: f64,
    /// Shared scratchpad (including banking periphery).
    pub spad_mm2: f64,
    /// PE interconnect.
    pub noc_mm2: f64,
    /// DMA engine.
    pub dma_mm2: f64,
    /// Controller / instruction decoder.
    pub ctrl_mm2: f64,
}

impl AreaBreakdown {
    /// Total area in mm².
    pub fn total_mm2(&self) -> f64 {
        self.pes_mm2 + self.local_mm2 + self.spad_mm2 + self.noc_mm2 + self.dma_mm2 + self.ctrl_mm2
    }
}

/// Computes the area breakdown of a configuration.
pub fn area(cfg: &AcceleratorConfig, tech: &TechParams) -> AreaBreakdown {
    let pes = cfg.pes() as f64;
    let local_kb_total = (cfg.local_mem_bytes as f64 / 1024.0) * pes;
    let noc_mm2 = match cfg.interconnect {
        Interconnect::None => 0.0,
        Interconnect::Systolic => pes * 0.0015,
        // Crossbar area grows superlinearly with radix.
        Interconnect::Full => 0.004 * pes.powf(1.5),
    };
    AreaBreakdown {
        pes_mm2: pes * tech.a_pe_mm2,
        local_mm2: local_kb_total * tech.a_sram_mm2_per_kb,
        spad_mm2: tech.spad_area_mm2(cfg.scratchpad_bytes, cfg.banks),
        noc_mm2,
        dma_mm2: tech.a_dma_mm2,
        ctrl_mm2: tech.a_ctrl_mm2,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::intrinsics::IntrinsicKind;

    fn cfg(rows: u32, cols: u32) -> AcceleratorConfig {
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .pe_array(rows, cols)
            .build()
            .unwrap()
    }

    #[test]
    fn area_grows_with_pes_and_spad() {
        let t = TechParams::default();
        let small = area(&cfg(8, 8), &t).total_mm2();
        let big = area(&cfg(16, 16), &t).total_mm2();
        assert!(big > small);
        let mut more_spad = cfg(8, 8);
        more_spad.scratchpad_bytes = 512 * 1024;
        assert!(area(&more_spad, &t).total_mm2() > small);
    }

    #[test]
    fn ga_l_vs_ga_s_area_ratio_in_paper_band() {
        // §II-C: GA_L (16x16, 256 KB) consumes ~2.58X more area than
        // GA_S (8x8, 128 KB). Our constants should land in the same regime
        // (between 1.5X and 3.5X).
        let t = TechParams::default();
        let ga_l = area(&cfg(16, 16), &t).total_mm2();
        let mut s = cfg(8, 8);
        s.scratchpad_bytes = 128 * 1024;
        let ga_s = area(&s, &t).total_mm2();
        let ratio = ga_l / ga_s;
        assert!((1.5..3.5).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn crossbar_outgrows_systolic() {
        let t = TechParams::default();
        let mut xbar = cfg(16, 16);
        xbar.interconnect = Interconnect::Full;
        let sys = cfg(16, 16);
        assert!(area(&xbar, &t).noc_mm2 > area(&sys, &t).noc_mm2);
        let mut none = cfg(16, 16);
        none.interconnect = Interconnect::None;
        assert_eq!(area(&none, &t).noc_mm2, 0.0);
    }

    #[test]
    fn local_memory_adds_area() {
        let t = TechParams::default();
        let mut with_local = cfg(8, 8);
        with_local.local_mem_bytes = 1024;
        assert!(area(&with_local, &t).local_mm2 > 0.0);
        assert_eq!(area(&cfg(8, 8), &t).local_mm2, 0.0);
    }

    #[test]
    fn fixed_blocks_present() {
        let t = TechParams::default();
        let a = area(&cfg(4, 4), &t);
        assert!(a.dma_mm2 > 0.0 && a.ctrl_mm2 > 0.0);
        assert!(a.total_mm2() > a.pes_mm2);
    }
}
