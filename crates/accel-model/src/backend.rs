//! Pluggable cost backends: one evaluation contract, four fidelity tiers.
//!
//! Every layer of the co-design loop ultimately asks the same question —
//! "what do this accelerator and this execution plan cost?" — but the
//! right way to answer it depends on where the caller sits: DSE inner
//! loops need microsecond estimates, final Pareto candidates deserve the
//! trace simulator's pipeline model, and everything in between benefits
//! from an analytic model corrected toward the simulator. [`CostBackend`]
//! is that seam; callers hold a `&dyn CostBackend` (or an
//! `Arc<dyn CostBackend>`) and stay agnostic of the tier:
//!
//! * [`AnalyticBackend`] — [`CostModel::evaluate`], the fast path;
//! * [`TraceSimBackend`] — synthesizes a staged instruction stream from
//!   the plan ([`crate::sim::program_from_plan`]) and replays it through
//!   the [`TraceSimulator`]'s two-buffer pipeline recurrence: stage-level
//!   fidelity at roughly 50–100x the analytic cost;
//! * [`CalibratedBackend`] — the analytic model multiplied by per-regime
//!   correction factors fitted, once per accelerator configuration, from
//!   trace-sim runs on canonical calibration plans: analytic speed,
//!   sim-informed accuracy;
//! * [`SurrogateBackend`] — a self-improving screen tier: the analytic
//!   model corrected by a Gaussian process ([`dse::gp`]) trained online
//!   from the expensive tier it wraps, serving predictions only once its
//!   cross-validated error drops below a trust threshold.
//!
//! Backends are pure *per training generation*: the same `(config, plan)`
//! always yields the same metrics for a fixed internal state, and any
//! state that legitimately changes answers (the surrogate's training
//! generation) is part of the fingerprint
//! ([`CostBackend::fingerprint_into`]), so results can be memoized and
//! cached across processes without ever serving a stale-generation
//! answer.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, Mutex, OnceLock, RwLock};
use std::time::Instant;

use dse::gp::{GaussianProcess, IncrementalGp, PredictScratch};
use runtime::{Fingerprinter, StableFingerprint, Telemetry};

use crate::arch::AcceleratorConfig;
use crate::cost::CostModel;
use crate::metrics::Metrics;
use crate::plan::{ExecutionPlan, TensorTraffic};
use crate::sim::TraceSimulator;
use crate::tech::TechParams;

/// An engine that prices `(accelerator, plan)` pairs.
///
/// Implementations must be pure — memoization layers above assume a
/// backend's answer depends only on its construction parameters, the
/// arguments, and whatever state its fingerprint exposes.
pub trait CostBackend: std::fmt::Debug + Send + Sync {
    /// Short stable identifier (`"analytic"`, `"sim"`, `"calibrated"`,
    /// `"surrogate"`).
    fn name(&self) -> &'static str;

    /// Full evaluation: latency, energy, power, area, throughput.
    fn evaluate(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Metrics;

    /// Writes the backend's identity into a fingerprint, so memo keys
    /// distinguish results produced by different backends. The default
    /// writes [`CostBackend::name`]; backends with extra knobs or state
    /// that change results (technology constants, the surrogate's
    /// training generation) must extend it.
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(self.name());
    }

    /// Downcast hook for the self-improving tier: staging controllers use
    /// it to feed refine-tier observations back into a
    /// [`SurrogateBackend`] without knowing the concrete screen type.
    fn as_surrogate(&self) -> Option<&SurrogateBackend> {
        None
    }
}

/// The selectable backend tiers, as seen by CLIs and run options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The fast analytical model ([`AnalyticBackend`]).
    #[default]
    Analytic,
    /// The stage-level trace simulator ([`TraceSimBackend`]).
    TraceSim,
    /// Analytic with sim-fitted correction factors ([`CalibratedBackend`]).
    Calibrated,
    /// Analytic corrected by a GP trained online from the trace simulator
    /// ([`SurrogateBackend`]).
    Surrogate,
}

impl BackendKind {
    /// Every tier, in ascending fidelity order (the surrogate starts as
    /// the analytic tier and converges toward the simulator as it
    /// trains).
    pub const ALL: [BackendKind; 4] = [
        BackendKind::Analytic,
        BackendKind::Calibrated,
        BackendKind::Surrogate,
        BackendKind::TraceSim,
    ];

    /// Builds the backend with default technology parameters.
    pub fn build(self) -> Arc<dyn CostBackend> {
        self.build_with(TechParams::default())
    }

    /// Builds the backend around explicit technology parameters.
    pub fn build_with(self, tech: TechParams) -> Arc<dyn CostBackend> {
        let model = CostModel::new(tech);
        match self {
            BackendKind::Analytic => Arc::new(AnalyticBackend::new(model)),
            BackendKind::TraceSim => Arc::new(TraceSimBackend::new(model)),
            BackendKind::Calibrated => Arc::new(CalibratedBackend::new(model)),
            BackendKind::Surrogate => {
                let inner = Arc::new(TraceSimBackend::new(model.clone()));
                Arc::new(SurrogateBackend::new(model, inner))
            }
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BackendKind::Analytic => "analytic",
            BackendKind::TraceSim => "sim",
            BackendKind::Calibrated => "calibrated",
            BackendKind::Surrogate => "surrogate",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "analytic" | "model" => Ok(BackendKind::Analytic),
            "sim" | "tracesim" | "trace-sim" => Ok(BackendKind::TraceSim),
            "calibrated" => Ok(BackendKind::Calibrated),
            "surrogate" | "gp" => Ok(BackendKind::Surrogate),
            other => Err(format!(
                "unknown backend `{other}` (expected analytic | sim | calibrated | surrogate)"
            )),
        }
    }
}

impl runtime::StableFingerprint for BackendKind {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(match self {
            BackendKind::Analytic => "analytic",
            BackendKind::TraceSim => "sim",
            BackendKind::Calibrated => "calibrated",
            BackendKind::Surrogate => "surrogate",
        });
    }
}

/// Tier 1: the analytical cost model, verbatim.
#[derive(Debug, Clone, Default)]
pub struct AnalyticBackend {
    /// The wrapped model.
    pub model: CostModel,
}

impl AnalyticBackend {
    /// Wraps a cost model.
    pub fn new(model: CostModel) -> Self {
        AnalyticBackend { model }
    }
}

impl CostBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn evaluate(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Metrics {
        self.model.evaluate(cfg, plan)
    }

    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(self.name());
        self.model.tech.fingerprint_into(fp);
    }
}

/// Tier 3: stage-level trace simulation of the plan.
///
/// The plan is expanded back into a staged load/compute/store stream and
/// replayed through the [`TraceSimulator`]'s two-buffer pipeline
/// recurrence, which models DMA-engine serialization and fill/drain
/// effects the analytic overlap formula approximates. Rearrangement and
/// host-control cycles (not part of the instruction stream) are added
/// serially, exactly as the analytic model charges them.
#[derive(Debug, Clone, Default)]
pub struct TraceSimBackend {
    /// The wrapped simulator (shares the analytic model's tech constants
    /// for energy and area).
    pub sim: TraceSimulator,
    /// Stage-count cap for synthesized programs (see
    /// [`crate::sim::program_from_plan`]).
    pub max_stages: usize,
}

/// Default stage cap: enough for the pipeline to reach steady state, small
/// enough to bound simulation cost on plans with thousands of stages.
pub const DEFAULT_SIM_STAGES: usize = 64;

impl TraceSimBackend {
    /// Wraps a simulator around a cost model with the default stage cap.
    pub fn new(model: CostModel) -> Self {
        TraceSimBackend {
            sim: TraceSimulator::new(model),
            max_stages: DEFAULT_SIM_STAGES,
        }
    }
}

impl CostBackend for TraceSimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn evaluate(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Metrics {
        // Streamed recurrence: bit-identical to lowering the plan to a
        // `Program` and running it, without materializing either (see
        // `TraceSimulator::run_plan_cycles`).
        let traced = self.sim.run_plan_cycles(cfg, plan, self.max_stages);
        let cycles =
            traced + self.sim.model.rearrange_cycles(cfg, plan) + plan.host_control_cycles as f64;
        let mut metrics = self.sim.model.evaluate(cfg, plan);
        replace_latency(&mut metrics, cfg, cycles, plan.macs_useful);
        metrics
    }

    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(self.name());
        fp.write_usize(self.max_stages);
        self.sim.model.tech.fingerprint_into(fp);
    }
}

/// Replaces a metric set's latency and re-derives every time-dependent
/// quantity (ms, power, throughput) from it — the one place the
/// energy == power × time invariant is maintained for non-analytic
/// tiers.
fn replace_latency(metrics: &mut Metrics, cfg: &AcceleratorConfig, cycles: f64, useful_macs: u64) {
    metrics.latency_cycles = cycles.max(1.0);
    metrics.latency_ms = cfg.cycles_to_ms(metrics.latency_cycles);
    metrics.power_mw = if metrics.latency_ms > 0.0 {
        metrics.energy_uj / metrics.latency_ms
    } else {
        0.0
    };
    metrics.throughput_mops = if metrics.latency_ms > 0.0 {
        2.0 * useful_macs as f64 / (metrics.latency_ms * 1e3)
    } else {
        0.0
    };
}

/// Which engine dominates a plan's analytic latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Regime {
    /// On-chip work (PE array or scratchpad ports) dominates.
    Compute = 0,
    /// Neither engine dominates by 2x.
    Balanced = 1,
    /// DMA traffic dominates.
    Memory = 2,
}

/// Tier 2: the analytic model, corrected toward the simulator.
///
/// For each accelerator configuration, three canonical calibration plans
/// — compute-bound, balanced, memory-bound — are priced by both the
/// analytic model and the trace simulator, giving one correction factor
/// per regime. An evaluation classifies its plan's regime from the
/// analytic engine cycles and scales the analytic latency by the fitted
/// factor. Factors are a pure function of the configuration, so they are
/// memoized per config fingerprint; concurrent fits of the same config
/// arrive at identical factors, keeping results thread-count-independent.
#[derive(Debug, Default)]
pub struct CalibratedBackend {
    /// The analytic model being corrected.
    pub model: CostModel,
    sim: TraceSimBackend,
    factors: Mutex<BTreeMap<(u64, u64), [f64; 3]>>,
}

impl CalibratedBackend {
    /// Wraps a cost model (the simulator reuses its tech constants).
    pub fn new(model: CostModel) -> Self {
        CalibratedBackend {
            sim: TraceSimBackend::new(model.clone()),
            model,
            factors: Mutex::new(BTreeMap::new()),
        }
    }

    fn classify(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Regime {
        let onchip = self
            .model
            .compute_cycles(cfg, plan)
            .max(self.model.spad_cycles(cfg, plan));
        let dma = self.model.dma_cycles(cfg, plan);
        if onchip >= 2.0 * dma {
            Regime::Compute
        } else if dma >= 2.0 * onchip {
            Regime::Memory
        } else {
            Regime::Balanced
        }
    }

    /// The three canonical calibration plans for a configuration, sized
    /// from its PE count and scratchpad so every regime is actually
    /// exercised on that hardware.
    fn calibration_plans(cfg: &AcceleratorConfig) -> [ExecutionPlan; 3] {
        let pes = cfg.pes();
        let spad = cfg.scratchpad_bytes;
        let stage = |plan: &mut ExecutionPlan, reads: u64, writes: u64, run: u64| {
            plan.dram_reads.push(TensorTraffic::new("A", reads, run));
            plan.dram_reads.push(TensorTraffic::new("B", reads, run));
            plan.dram_writes.push(TensorTraffic::new("C", writes, run));
            plan.spad_traffic_bytes = reads;
            plan.stages = 32;
            plan.double_buffered = true;
        };
        // Compute-bound: deep MAC streams, light traffic.
        let mut compute = ExecutionPlan::compute_only(pes * 65_536, pes * 65_536, 256);
        stage(&mut compute, spad / 8, spad / 32, 4096);
        // Balanced: MACs and traffic sized to similar engine cycles.
        let mut balanced = ExecutionPlan::compute_only(pes * 8_192, pes * 8_192, 256);
        stage(&mut balanced, spad.max(1) * 2, spad / 4, 512);
        // Memory-bound: heavy, poorly-batched DMA against token compute.
        let mut memory = ExecutionPlan::compute_only(pes * 256, pes * 256, 64);
        stage(&mut memory, spad.max(1) * 16, spad * 2, 64);
        [compute, balanced, memory]
    }

    /// Correction factors for a configuration (fitted on first use).
    fn factors_for(&self, cfg: &AcceleratorConfig) -> [f64; 3] {
        let key = config_key(cfg);
        if let Some(f) = self
            .factors
            .lock()
            .expect("factor cache poisoned")
            .get(&key)
        {
            return *f;
        }
        let plans = Self::calibration_plans(cfg);
        let mut fitted = [1.0f64; 3];
        for (slot, plan) in fitted.iter_mut().zip(plans.iter()) {
            let analytic = self.model.evaluate(cfg, plan).latency_cycles;
            let simulated = self.sim.evaluate(cfg, plan).latency_cycles;
            // Clamp to a sane band: a wildly off ratio means the
            // calibration plan degenerated on this config, and a bounded
            // correction beats an absurd one.
            *slot = (simulated / analytic.max(1.0)).clamp(0.25, 4.0);
        }
        self.factors
            .lock()
            .expect("factor cache poisoned")
            .insert(key, fitted);
        fitted
    }
}

impl CostBackend for CalibratedBackend {
    fn name(&self) -> &'static str {
        "calibrated"
    }

    fn evaluate(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Metrics {
        let factor = self.factors_for(cfg)[self.classify(cfg, plan) as usize];
        let mut metrics = self.model.evaluate(cfg, plan);
        let corrected = metrics.latency_cycles * factor;
        replace_latency(&mut metrics, cfg, corrected, plan.macs_useful);
        metrics
    }

    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(self.name());
        self.model.tech.fingerprint_into(fp);
    }
}

/// Stable 128-bit per-configuration cache key: two independently-seeded
/// lanes, so a 64-bit fingerprint collision between two configurations
/// degrades to a refit/re-observation instead of silently applying
/// another configuration's data (the same scheme the co-design memo cache
/// uses). Shared by the calibrated tier's factor cache and the
/// surrogate's observation set.
fn config_key(cfg: &AcceleratorConfig) -> (u64, u64) {
    let mut lo = Fingerprinter::new();
    let mut hi = Fingerprinter::new();
    hi.write_u64(0x9e3779b97f4a7c15);
    cfg.fingerprint_into(&mut lo);
    cfg.fingerprint_into(&mut hi);
    (lo.finish().0, hi.finish().0)
}

/// Number of cross-validation folds scoring surrogate trust.
const CV_FOLDS: usize = 4;

/// The incremental learning machinery behind [`SurrogateBackend`]: one
/// [`IncrementalGp`] holding the full training window plus one per
/// cross-validation fold (fold `f` trains on every sample whose index
/// satisfies `i % CV_FOLDS != f`). Appending a sample extends all five
/// trainers' maintained Cholesky factors in O(n²) — refits stop paying
/// the from-scratch O(n³) — and each trainer is pinned bit-identical to
/// `GaussianProcess::fit` on the same rows, so CV error, trust, and every
/// prediction are unchanged.
///
/// When the training window slides (oldest rows dropped at the
/// `max_train` cap), sample indices — and therefore fold membership —
/// shift, so the trainer is rebuilt from the surviving rows; between
/// slides, growth is incremental.
#[derive(Debug, Clone)]
struct SurrogateTrainer {
    /// The full-window trainer (the serving fit).
    full: IncrementalGp,
    /// Per-fold trainers (each holds the fold's *training* rows).
    folds: [IncrementalGp; CV_FOLDS],
}

impl Default for SurrogateTrainer {
    fn default() -> Self {
        SurrogateTrainer {
            full: IncrementalGp::new(),
            folds: std::array::from_fn(|_| IncrementalGp::new()),
        }
    }
}

impl SurrogateTrainer {
    /// Appends one sample, extending the full trainer and the
    /// `CV_FOLDS - 1` fold trainers it belongs to.
    fn push(&mut self, x: &[f64], y: f64) {
        let i = self.full.len();
        self.full.push(x.to_vec(), y);
        for (f, trainer) in self.folds.iter_mut().enumerate() {
            if i % CV_FOLDS != f {
                trainer.push(x.to_vec(), y);
            }
        }
    }

    /// Rebuilds all trainers from scratch rows (after a window slide or a
    /// snapshot restore, when fold membership is not an extension of the
    /// previous state).
    fn rebuild(&mut self, xs: &[Vec<f64>], ys: &[f64]) {
        *self = SurrogateTrainer::default();
        for (x, y) in xs.iter().zip(ys) {
            self.push(x, *y);
        }
    }
}

/// Mutable learning state of a [`SurrogateBackend`].
#[derive(Debug, Default)]
struct SurrogateState {
    /// Normalized feature vectors of every training sample.
    xs: Vec<Vec<f64>>,
    /// Targets: `ln(inner latency / analytic latency)` per sample.
    ys: Vec<f64>,
    /// Configurations already probed (128-bit keys; re-observing is
    /// free).
    observed: BTreeSet<(u64, u64)>,
    /// The fitted correction model, once training succeeded.
    gp: Option<GaussianProcess>,
    /// Cross-validated mean absolute log-space error of the last fit
    /// (`f64::INFINITY` before the first fit).
    cv_error: f64,
    /// Whether `cv_error` cleared the trust threshold.
    trusted: bool,
    /// Bumped on every state change (reporting / cheap staleness probe).
    generation: u64,
    /// Running digest of the training *content* (every observed config
    /// key and sample, in order). This — not the bare generation counter
    /// — goes into the backend fingerprint: two runs sharing a persisted
    /// cache may reach the same generation number via different training
    /// trajectories, and their GPs must not share memo entries.
    digest: u64,
    /// The maintained incremental fits (unused when the owning backend
    /// runs in full-refit reference mode).
    trainer: SurrogateTrainer,
}

/// The self-improving screen tier: the analytic model corrected by a
/// Gaussian process trained online against the expensive tier it wraps.
///
/// The backend starts as a pure analytic pass-through. A staging
/// controller feeds it refine-tier observations
/// ([`SurrogateBackend::observe`]): each newly seen configuration is
/// priced by both the analytic model and the wrapped expensive tier on a
/// deterministic spread of probe plans covering the compute-, balanced-,
/// and memory-bound regimes, and the log-ratio becomes a GP training
/// sample over normalized `(config, plan)` features. After every
/// observation the GP is refit and scored by deterministic k-fold
/// cross-validation; once the CV error clears the trust threshold,
/// [`CostBackend::evaluate`] serves GP-corrected analytic metrics instead
/// of raw analytic ones — the screen tier converges toward the expensive
/// tier's answers at analytic cost.
///
/// Determinism: `evaluate` never trains (it only reads a frozen model),
/// and `observe` must be called from the serial sections of a staging
/// controller, in batch order. The training generation is part of the
/// fingerprint, so memoization layers treat each generation as a distinct
/// backend and the thread-count invariant is preserved.
#[derive(Debug)]
pub struct SurrogateBackend {
    /// The cheap analytic fallback (also the feature extractor's model).
    pub model: CostModel,
    /// The expensive tier being learned.
    inner: Arc<dyn CostBackend>,
    /// Minimum training samples before the first fit is attempted.
    min_train: usize,
    /// Training-window cap (oldest samples beyond it are dropped).
    max_train: usize,
    /// Maximum cross-validated mean |log-error| to start trusting the GP
    /// (0.15 ≈ 15% latency error).
    trust_threshold: f64,
    /// Reference mode: refit every GP from scratch per observation
    /// (O(n³)) instead of extending maintained factors (O(n²)). The two
    /// modes are pinned bit-identical; this exists so the determinism
    /// suite can compare whole engine runs across them.
    full_refit: bool,
    state: RwLock<SurrogateState>,
    /// Out-of-band GP fit/predict timing recorder
    /// ([`SurrogateBackend::install_telemetry`]). Strictly a wall-clock
    /// side channel: never part of the fingerprint, a snapshot, or a
    /// fork's learning state.
    telemetry: OnceLock<Telemetry>,
}

impl SurrogateBackend {
    /// Wraps `inner` (the expensive tier) around an analytic fallback.
    pub fn new(model: CostModel, inner: Arc<dyn CostBackend>) -> Self {
        SurrogateBackend {
            model,
            inner,
            min_train: 24,
            max_train: 96,
            trust_threshold: 0.15,
            full_refit: false,
            state: RwLock::new(SurrogateState {
                cv_error: f64::INFINITY,
                ..SurrogateState::default()
            }),
            telemetry: OnceLock::new(),
        }
    }

    /// Overrides the cross-validation trust threshold (mean absolute
    /// log-space error; lower = stricter).
    pub fn with_trust_threshold(mut self, threshold: f64) -> Self {
        self.trust_threshold = threshold.max(0.0);
        self
    }

    /// Switches to the from-scratch reference refit path (see the
    /// `full_refit` field). Results are bit-identical either way; only
    /// the refit cost differs. Not part of the fingerprint for exactly
    /// that reason.
    pub fn with_full_refit(mut self) -> Self {
        self.full_refit = true;
        self
    }

    /// Whether this backend refits from scratch per observation
    /// (reference mode) instead of extending maintained factors.
    pub fn is_full_refit(&self) -> bool {
        self.full_refit
    }

    /// Installs a telemetry handle so GP fits (in
    /// [`SurrogateBackend::observe`]'s refits) and posterior predictions
    /// (in trusted evaluations) report their wall time. First install
    /// wins; later calls are ignored. Telemetry never enters the
    /// fingerprint, snapshots, or any answer — enabling it cannot change
    /// a result bit.
    pub fn install_telemetry(&self, telemetry: Telemetry) {
        let _ = self.telemetry.set(telemetry);
    }

    fn telemetry(&self) -> Telemetry {
        self.telemetry.get().cloned().unwrap_or_default()
    }

    /// The expensive tier this surrogate is learning.
    pub fn inner(&self) -> &Arc<dyn CostBackend> {
        &self.inner
    }

    /// Current training-set size.
    pub fn training_len(&self) -> usize {
        self.state.read().expect("surrogate poisoned").ys.len()
    }

    /// Whether the GP passed cross-validation and is serving predictions.
    pub fn is_trusted(&self) -> bool {
        self.state.read().expect("surrogate poisoned").trusted
    }

    /// Cross-validated mean absolute log-space error of the last fit
    /// (`INFINITY` before the first fit).
    pub fn cv_error(&self) -> f64 {
        self.state.read().expect("surrogate poisoned").cv_error
    }

    /// Training generation (bumps on every accepted observation).
    pub fn generation(&self) -> u64 {
        self.state.read().expect("surrogate poisoned").generation
    }

    /// Clones the full learning state into an independent surrogate that
    /// shares the wrapped expensive tier. A resident engine forks its
    /// registered per-technology surrogate for every job it admits, so
    /// concurrent jobs train in isolation (each job's trajectory stays a
    /// pure function of its own batches) while sequential jobs inherit
    /// everything learned so far. The fork's fingerprint equals the
    /// parent's at fork time — same training-content digest — so memo
    /// entries priced by the parent's current generation remain valid for
    /// the fork until it trains further.
    pub fn fork(&self) -> SurrogateBackend {
        let state = self.state.read().expect("surrogate poisoned");
        SurrogateBackend {
            model: self.model.clone(),
            inner: Arc::clone(&self.inner),
            min_train: self.min_train,
            max_train: self.max_train,
            trust_threshold: self.trust_threshold,
            full_refit: self.full_refit,
            state: RwLock::new(SurrogateState {
                xs: state.xs.clone(),
                ys: state.ys.clone(),
                observed: state.observed.clone(),
                gp: state.gp.clone(),
                cv_error: state.cv_error,
                trusted: state.trusted,
                generation: state.generation,
                digest: state.digest,
                trainer: state.trainer.clone(),
            }),
            // The recorder rides along (same registry handle): a fork
            // made for a job keeps reporting where its parent did.
            telemetry: self.telemetry.clone(),
        }
    }

    /// Captures the full learning state as a serializable
    /// [`SurrogateSnapshot`] — what a resident engine persists per
    /// technology so a restarted process prices with the same surrogate
    /// generation. The snapshot assumes the standard construction (a
    /// trace-sim inner tier, as [`BackendKind::Surrogate`] builds);
    /// [`SurrogateBackend::from_snapshot`] restores exactly that shape.
    pub fn snapshot(&self) -> SurrogateSnapshot {
        let state = self.state.read().expect("surrogate poisoned");
        SurrogateSnapshot {
            tech: self.model.tech.clone(),
            min_train: self.min_train,
            max_train: self.max_train,
            trust_threshold: self.trust_threshold,
            xs: state.xs.clone(),
            ys: state.ys.clone(),
            observed: state.observed.iter().copied().collect(),
            cv_error: state.cv_error,
            trusted: state.trusted,
            generation: state.generation,
            digest: state.digest,
        }
    }

    /// Rebuilds a surrogate from a snapshot: the analytic model and the
    /// wrapped trace-sim tier are reconstructed from the stored technology
    /// constants, the training window and observed set are restored, and
    /// the GP is refit from the stored rows ([`GaussianProcess::fit`] is
    /// deterministic, so the fit — and every prediction — is bit-identical
    /// to the snapshotted instance's). Generation and training-content
    /// digest are restored verbatim, so memo entries priced by the
    /// snapshotted generation stay reachable.
    pub fn from_snapshot(snap: &SurrogateSnapshot) -> SurrogateBackend {
        let model = CostModel::new(snap.tech.clone());
        let inner = Arc::new(TraceSimBackend::new(model.clone()));
        let backend = SurrogateBackend {
            model,
            inner,
            min_train: snap.min_train.max(1),
            max_train: snap.max_train.max(1),
            trust_threshold: snap.trust_threshold.max(0.0),
            full_refit: false,
            state: RwLock::new(SurrogateState {
                cv_error: f64::INFINITY,
                ..SurrogateState::default()
            }),
            telemetry: OnceLock::new(),
        };
        {
            let mut state = backend.state.write().expect("surrogate poisoned");
            // Defensive: a hand-built snapshot with misaligned rows must
            // not panic the GP fit below.
            let n = snap.xs.len().min(snap.ys.len());
            state.xs = snap.xs[..n].to_vec();
            state.ys = snap.ys[..n].to_vec();
            state.observed = snap.observed.iter().copied().collect();
            let st: &mut SurrogateState = &mut state;
            st.trainer.rebuild(&st.xs, &st.ys);
            backend.refit(st);
            state.generation = snap.generation;
            state.digest = snap.digest;
        }
        backend
    }

    /// Normalized feature vector of one `(config, plan)` evaluation: the
    /// hardware scale, the plan's work and traffic volumes (log-scaled),
    /// its pipeline shape, and the analytic compute-vs-DMA regime.
    fn features(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Vec<f64> {
        let ln_norm = |v: f64, hi: f64| (v.max(1.0).ln() / hi.ln()).clamp(0.0, 1.0);
        let onchip = self
            .model
            .compute_cycles(cfg, plan)
            .max(self.model.spad_cycles(cfg, plan));
        let dma = self.model.dma_cycles(cfg, plan);
        vec![
            ln_norm(cfg.pes() as f64, 16_384.0),
            ln_norm(cfg.scratchpad_bytes as f64, (8u64 << 20) as f64),
            (f64::from(cfg.banks) / 16.0).min(1.0),
            ln_norm(plan.macs_padded as f64, 1e12),
            ln_norm(plan.dram_bytes() as f64, 1e10),
            ln_norm(plan.stages as f64, 4096.0),
            onchip / (onchip + dma).max(1.0),
            if plan.double_buffered { 1.0 } else { 0.0 },
        ]
    }

    /// Deterministic probe plans for one configuration: the three
    /// calibration regimes, each in a double- and a single-buffered
    /// variant with different stage counts, so the GP sees the pipeline
    /// shapes the analytic overlap formula approximates worst.
    fn probe_plans(cfg: &AcceleratorConfig) -> Vec<ExecutionPlan> {
        let pes = cfg.pes();
        let spad = cfg.scratchpad_bytes;
        let probe = |macs_per_pe: u64,
                     calls: u64,
                     reads: u64,
                     writes: u64,
                     run: u64,
                     stages: u64,
                     double_buffered: bool| {
            let mut plan = ExecutionPlan::compute_only(pes * macs_per_pe, pes * macs_per_pe, calls);
            plan.dram_reads.push(TensorTraffic::new("A", reads, run));
            plan.dram_reads.push(TensorTraffic::new("B", reads, run));
            plan.dram_writes.push(TensorTraffic::new("C", writes, run));
            plan.spad_traffic_bytes = reads;
            plan.stages = stages;
            plan.double_buffered = double_buffered;
            plan
        };
        vec![
            // Compute-bound: deep MAC streams, light traffic.
            probe(65_536, 256, spad / 8, spad / 32, 4096, 32, true),
            probe(32_768, 128, spad / 8, spad / 32, 2048, 8, false),
            // Balanced: MACs and traffic sized to similar engine cycles.
            probe(8_192, 256, spad.max(1) * 2, spad / 4, 512, 32, true),
            probe(4_096, 128, spad.max(1), spad / 8, 512, 16, false),
            // Memory-bound: heavy, poorly-batched DMA vs token compute.
            probe(256, 64, spad.max(1) * 16, spad * 2, 64, 64, true),
            probe(128, 32, spad.max(1) * 8, spad, 64, 8, false),
        ]
    }

    /// Feeds one refine-tier observation back into the surrogate: prices
    /// the configuration's probe plans at both tiers, appends the
    /// log-ratio samples, refits the GP, and re-scores it by
    /// deterministic k-fold cross-validation. Returns the number of
    /// fresh samples added (0 when the configuration was already
    /// observed).
    ///
    /// Must be called from a serial section (between parallel batches) in
    /// a deterministic order — it advances the training generation.
    pub fn observe(&self, cfg: &AcceleratorConfig) -> usize {
        let key = config_key(cfg);
        if self
            .state
            .read()
            .expect("surrogate poisoned")
            .observed
            .contains(&key)
        {
            return 0;
        }
        // Probe pricing runs outside the lock: both tiers are pure, and
        // observe() is serial by contract.
        let mut fresh: Vec<(Vec<f64>, f64)> = Vec::new();
        for plan in Self::probe_plans(cfg) {
            let analytic = self.model.evaluate(cfg, &plan).latency_cycles.max(1.0);
            let expensive = self.inner.evaluate(cfg, &plan).latency_cycles.max(1.0);
            let log_ratio = (expensive / analytic)
                .ln()
                .clamp(LOG_FACTOR_MIN, LOG_FACTOR_MAX);
            fresh.push((self.features(cfg, &plan), log_ratio));
        }
        let added = fresh.len();
        let mut state = self.state.write().expect("surrogate poisoned");
        if !state.observed.insert(key) {
            return 0;
        }
        // Fold the new evidence into the content digest: chained over the
        // previous digest, so it identifies the whole training trajectory,
        // not just its length.
        let mut digest = Fingerprinter::new();
        digest.write_u64(state.digest);
        digest.write_u64(key.0);
        digest.write_u64(key.1);
        let before = state.ys.len();
        for (x, y) in fresh {
            for f in &x {
                digest.write_f64(*f);
            }
            digest.write_f64(y);
            state.xs.push(x);
            state.ys.push(y);
        }
        state.digest = digest.finish().0;
        let slid = state.ys.len() > self.max_train;
        if slid {
            let drop = state.ys.len() - self.max_train;
            state.xs.drain(..drop);
            state.ys.drain(..drop);
        }
        if !self.full_refit {
            // Keep the incremental trainers current: extend by the fresh
            // samples (O(n²) each), except when the window slid — dropped
            // rows shift fold membership, so rebuild from the survivors.
            let st: &mut SurrogateState = &mut state;
            if slid {
                st.trainer.rebuild(&st.xs, &st.ys);
            } else {
                for i in before..st.ys.len() {
                    st.trainer.push(&st.xs[i], st.ys[i]);
                }
            }
        }
        self.refit(&mut state);
        state.generation += 1;
        added
    }

    /// Refits the GP on the current window and re-scores trust by
    /// 4-fold cross-validation (folds split by sample index, so the
    /// outcome is a pure function of the training sequence).
    ///
    /// Default path: re-select length scales from the maintained
    /// incremental factors — O(n²) per trainer. Reference path
    /// ([`SurrogateBackend::with_full_refit`]): from-scratch fits —
    /// O(n³) — pinned bit-identical by the determinism suite.
    fn refit(&self, state: &mut SurrogateState) {
        state.gp = None;
        state.trusted = false;
        state.cv_error = f64::INFINITY;
        if state.ys.len() < self.min_train {
            return;
        }
        let telemetry = self.telemetry();
        let mut abs_err_sum = 0.0;
        let mut tested = 0usize;
        let mut scratch = PredictScratch::default();
        let st: &mut SurrogateState = state;
        for fold in 0..CV_FOLDS {
            let gp = if self.full_refit {
                let (mut train_x, mut train_y) = (Vec::new(), Vec::new());
                for i in 0..st.ys.len() {
                    if i % CV_FOLDS != fold {
                        train_x.push(st.xs[i].clone());
                        train_y.push(st.ys[i]);
                    }
                }
                let Ok(gp) = GaussianProcess::fit_reported(&train_x, &train_y, &telemetry) else {
                    return; // numerically degenerate fold: stay untrusted
                };
                gp
            } else {
                let Ok(gp) = st.trainer.folds[fold].model_reported(&telemetry) else {
                    return; // numerically degenerate fold: stay untrusted
                };
                gp
            };
            for i in (fold..st.ys.len()).step_by(CV_FOLDS) {
                abs_err_sum += (gp.predict_with(&st.xs[i], &mut scratch).mean - st.ys[i]).abs();
                tested += 1;
            }
        }
        if tested == 0 {
            return;
        }
        let fitted = if self.full_refit {
            GaussianProcess::fit_reported(&st.xs, &st.ys, &telemetry)
        } else {
            st.trainer.full.model_reported(&telemetry)
        };
        let Ok(gp) = fitted else {
            return;
        };
        st.cv_error = abs_err_sum / tested as f64;
        st.trusted = st.cv_error <= self.trust_threshold;
        st.gp = Some(gp);
    }
}

/// A serializable image of a [`SurrogateBackend`]'s learning state — the
/// per-technology unit of the engine's persisted surrogate-registry
/// store. A snapshot captures everything a restarted process needs to
/// price with the same surrogate generation as the process that wrote it:
/// the technology constants (to rebuild the analytic model and the
/// wrapped trace-sim tier), the training window and observed-config set,
/// the CV trust state, and the generation + training-content digest that
/// key memoized results.
///
/// Restoring ([`SurrogateBackend::from_snapshot`]) refits the GP from the
/// stored rows — [`dse::gp::GaussianProcess::fit`] is deterministic, so
/// the restored backend's predictions, fingerprint, and memo keys are
/// bit-identical to the instance that was snapshotted.
#[derive(Debug, Clone, PartialEq)]
pub struct SurrogateSnapshot {
    /// Technology constants the backend (and its inner tier) was built
    /// with.
    pub tech: TechParams,
    /// Construction knobs, so a customized backend restores faithfully.
    pub min_train: usize,
    /// Training-window cap.
    pub max_train: usize,
    /// CV trust threshold.
    pub trust_threshold: f64,
    /// Normalized feature vectors of the training window.
    pub xs: Vec<Vec<f64>>,
    /// Log-ratio targets of the training window.
    pub ys: Vec<f64>,
    /// Observed configuration keys (re-observing stays free after a
    /// restore).
    pub observed: Vec<(u64, u64)>,
    /// Cross-validated error of the last fit (recomputed on restore; kept
    /// in the image as a consistency cross-check).
    pub cv_error: f64,
    /// Whether the last fit cleared the trust threshold.
    pub trusted: bool,
    /// Training generation.
    pub generation: u64,
    /// Training-content digest — the fingerprint component that keys memo
    /// entries, restored verbatim so persisted caches stay valid.
    pub digest: u64,
}

impl SurrogateSnapshot {
    /// Appends the snapshot's canonical binary layout to `out`. All
    /// floats are stored as IEEE-754 bit patterns, so encode → decode →
    /// restore is bit-exact.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let f = |out: &mut Vec<u8>, v: f64| out.extend_from_slice(&v.to_bits().to_le_bytes());
        let u = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        for c in self.tech.to_array() {
            f(out, c);
        }
        u(out, self.min_train as u64);
        u(out, self.max_train as u64);
        f(out, self.trust_threshold);
        u(out, self.generation);
        u(out, self.digest);
        f(out, self.cv_error);
        out.push(self.trusted as u8);
        u(out, self.observed.len() as u64);
        for (lo, hi) in &self.observed {
            u(out, *lo);
            u(out, *hi);
        }
        u(out, self.ys.len() as u64);
        let dim = self.xs.first().map_or(0, Vec::len);
        u(out, dim as u64);
        for (x, y) in self.xs.iter().zip(&self.ys) {
            for v in x {
                f(out, *v);
            }
            f(out, *y);
        }
    }

    /// Parses one snapshot from its canonical layout; `None` on any
    /// truncation, trailing bytes, or structural inconsistency (the
    /// caller treats that as a corrupt store ⇒ cold start).
    pub fn decode(bytes: &[u8]) -> Option<SurrogateSnapshot> {
        struct Cursor<'a>(&'a [u8]);
        impl Cursor<'_> {
            fn u64(&mut self) -> Option<u64> {
                let v = u64::from_le_bytes(self.0.get(..8)?.try_into().ok()?);
                self.0 = &self.0[8..];
                Some(v)
            }
            fn f64(&mut self) -> Option<f64> {
                self.u64().map(f64::from_bits)
            }
            fn u8(&mut self) -> Option<u8> {
                let v = *self.0.first()?;
                self.0 = &self.0[1..];
                Some(v)
            }
        }
        let mut c = Cursor(bytes);
        let mut tech = [0.0f64; 13];
        for slot in &mut tech {
            *slot = c.f64()?;
        }
        let min_train = c.u64()? as usize;
        let max_train = c.u64()? as usize;
        let trust_threshold = c.f64()?;
        let generation = c.u64()?;
        let digest = c.u64()?;
        let cv_error = c.f64()?;
        let trusted = match c.u8()? {
            0 => false,
            1 => true,
            _ => return None,
        };
        let observed_len = c.u64()? as usize;
        // Bound counts by the remaining bytes before allocating.
        if observed_len > c.0.len() / 16 {
            return None;
        }
        let mut observed = Vec::with_capacity(observed_len);
        for _ in 0..observed_len {
            let lo = c.u64()?;
            let hi = c.u64()?;
            observed.push((lo, hi));
        }
        let samples = c.u64()? as usize;
        let dim = c.u64()? as usize;
        if samples.checked_mul(dim.checked_add(1)?)? > c.0.len() / 8 {
            return None;
        }
        let mut xs = Vec::with_capacity(samples);
        let mut ys = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut x = Vec::with_capacity(dim);
            for _ in 0..dim {
                x.push(c.f64()?);
            }
            xs.push(x);
            ys.push(c.f64()?);
        }
        if !c.0.is_empty() {
            return None;
        }
        Some(SurrogateSnapshot {
            tech: TechParams::from_array(tech),
            min_train,
            max_train,
            trust_threshold,
            xs,
            ys,
            observed,
            cv_error,
            trusted,
            generation,
            digest,
        })
    }
}

/// Clamp band for learned log-ratios and predicted correction factors
/// (mirrors the calibrated tier's `[0.25, 4.0]` sanity band).
const LOG_FACTOR_MIN: f64 = -1.386_294_361_119_890_6; // ln(0.25)
const LOG_FACTOR_MAX: f64 = 1.386_294_361_119_890_6; // ln(4.0)

impl CostBackend for SurrogateBackend {
    fn name(&self) -> &'static str {
        "surrogate"
    }

    fn evaluate(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Metrics {
        let mut metrics = self.model.evaluate(cfg, plan);
        let state = self.state.read().expect("surrogate poisoned");
        if !state.trusted {
            return metrics;
        }
        let Some(gp) = &state.gp else {
            return metrics;
        };
        // Per-thread scratch: posterior prediction is allocation-free on
        // the steady-state evaluate path (bit-identical to fresh buffers).
        thread_local! {
            static SCRATCH: RefCell<PredictScratch> = RefCell::new(PredictScratch::default());
        }
        let predict = || {
            SCRATCH.with(|s| {
                gp.predict_with(&self.features(cfg, plan), &mut s.borrow_mut())
                    .mean
                    .clamp(LOG_FACTOR_MIN, LOG_FACTOR_MAX)
                    .exp()
            })
        };
        // Timing is observation-only; the clock is read only when a
        // recorder is installed and enabled.
        let factor = match self.telemetry.get() {
            Some(t) if t.is_enabled() => {
                // detlint-allow(wall-clock): GP predict timing, recorded only when telemetry is enabled; the factor itself is clock-free
                let start = Instant::now();
                let factor = predict();
                t.record_gp_predict(start.elapsed());
                factor
            }
            _ => predict(),
        };
        drop(state);
        let corrected = metrics.latency_cycles * factor;
        replace_latency(&mut metrics, cfg, corrected, plan.macs_useful);
        metrics
    }

    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(self.name());
        self.inner.fingerprint_into(fp);
        self.model.tech.fingerprint_into(fp);
        // The training-content digest folds in everything that can change
        // answers (training set, fit, trust flag) and — unlike the bare
        // generation counter — distinguishes two runs whose divergent
        // trajectories happen to reach the same generation number, so a
        // persisted cache shared across runs never mixes their GPs.
        fp.write_u64(self.state.read().expect("surrogate poisoned").digest);
    }

    fn as_surrogate(&self) -> Option<&SurrogateBackend> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::intrinsics::IntrinsicKind;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .pe_array(16, 16)
            .build()
            .unwrap()
    }

    fn traffic_plan() -> ExecutionPlan {
        let mut p = ExecutionPlan::compute_only(4_000_000, 4_200_000, 1000);
        p.dram_reads.push(TensorTraffic::new("A", 512_000, 128));
        p.dram_reads.push(TensorTraffic::new("B", 512_000, 128));
        p.dram_writes.push(TensorTraffic::new("C", 128_000, 128));
        p.spad_traffic_bytes = 2_000_000;
        p.stages = 50;
        p.double_buffered = true;
        p
    }

    #[test]
    fn analytic_backend_matches_cost_model() {
        let model = CostModel::default();
        let backend = AnalyticBackend::new(model.clone());
        let (c, p) = (cfg(), traffic_plan());
        assert_eq!(backend.evaluate(&c, &p), model.evaluate(&c, &p));
    }

    #[test]
    fn all_backends_produce_consistent_metrics() {
        let (c, p) = (cfg(), traffic_plan());
        for kind in BackendKind::ALL {
            let m = kind.build().evaluate(&c, &p);
            assert!(m.latency_cycles >= 1.0, "{kind}");
            assert!(m.latency_ms > 0.0 && m.power_mw > 0.0, "{kind}");
            assert!(m.area_mm2 > 0.0 && m.throughput_mops > 0.0, "{kind}");
            // Energy must equal power * time for every tier.
            assert!(
                (m.energy_uj - m.power_mw * m.latency_ms).abs() < 1e-6,
                "{kind}"
            );
        }
    }

    #[test]
    fn backends_are_pure() {
        let (c, p) = (cfg(), traffic_plan());
        for kind in BackendKind::ALL {
            let backend = kind.build();
            assert_eq!(backend.evaluate(&c, &p), backend.evaluate(&c, &p), "{kind}");
        }
    }

    #[test]
    fn sim_backend_stays_within_2x_of_analytic() {
        // The tiers model the same hardware; they must agree on the order
        // of magnitude while differing in pipeline detail.
        let (c, p) = (cfg(), traffic_plan());
        let analytic = BackendKind::Analytic.build().evaluate(&c, &p);
        let sim = BackendKind::TraceSim.build().evaluate(&c, &p);
        let ratio = sim.latency_cycles / analytic.latency_cycles;
        assert!((0.5..2.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn calibrated_lands_between_or_near_the_other_tiers() {
        let (c, p) = (cfg(), traffic_plan());
        let analytic = BackendKind::Analytic
            .build()
            .evaluate(&c, &p)
            .latency_cycles;
        let calibrated = BackendKind::Calibrated
            .build()
            .evaluate(&c, &p)
            .latency_cycles;
        // The correction factor is bounded by construction.
        assert!(calibrated >= analytic * 0.25 && calibrated <= analytic * 4.0);
    }

    #[test]
    fn calibrated_factor_cache_is_consistent_across_threads() {
        let backend = Arc::new(CalibratedBackend::new(CostModel::default()));
        let (c, p) = (cfg(), traffic_plan());
        let reference = backend.evaluate(&c, &p);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let backend = Arc::clone(&backend);
                let (c, p) = (c.clone(), p.clone());
                s.spawn(move || {
                    assert_eq!(backend.evaluate(&c, &p), reference);
                });
            }
        });
    }

    #[test]
    fn kind_parses_and_displays() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.to_string().parse::<BackendKind>().unwrap(), kind);
        }
        assert_eq!("tracesim".parse::<BackendKind>(), Ok(BackendKind::TraceSim));
        assert!("vivado".parse::<BackendKind>().is_err());
    }

    #[test]
    fn kinds_fingerprint_distinctly() {
        let fps: Vec<_> = BackendKind::ALL.iter().map(|k| k.fingerprint()).collect();
        for i in 0..fps.len() {
            for j in (i + 1)..fps.len() {
                assert_ne!(
                    fps[i],
                    fps[j],
                    "{:?} vs {:?}",
                    BackendKind::ALL[i],
                    BackendKind::ALL[j]
                );
            }
        }
    }

    #[test]
    fn tech_params_change_backend_fingerprints() {
        // A shared cache across a tech sweep must key by technology node.
        let profiles = TechParams::profiles();
        for kind in BackendKind::ALL {
            let mut a = Fingerprinter::new();
            kind.build_with(profiles[0].1.clone())
                .fingerprint_into(&mut a);
            let mut b = Fingerprinter::new();
            kind.build_with(profiles[1].1.clone())
                .fingerprint_into(&mut b);
            assert_ne!(a.finish(), b.finish(), "{kind}");
        }
    }

    #[test]
    fn untrained_surrogate_is_the_analytic_tier() {
        let (c, p) = (cfg(), traffic_plan());
        let surrogate = BackendKind::Surrogate.build();
        let analytic = BackendKind::Analytic.build();
        assert_eq!(surrogate.evaluate(&c, &p), analytic.evaluate(&c, &p));
        assert!(!surrogate.as_surrogate().unwrap().is_trusted());
    }

    #[test]
    fn surrogate_trains_from_observations_and_becomes_trusted() {
        let backend = BackendKind::Surrogate.build();
        let surrogate = backend.as_surrogate().expect("surrogate downcast");
        let (c, p) = (cfg(), traffic_plan());
        let before = backend.evaluate(&c, &p);
        let gen0 = surrogate.generation();
        // Observe a deterministic spread of configurations until the GP
        // clears cross-validation.
        let mut observed = 0;
        for (rows, kb) in [(8u32, 128u64), (16, 256), (32, 512), (8, 512), (32, 128)] {
            let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
                .pe_array(rows, rows)
                .scratchpad_kb(kb)
                .build()
                .unwrap();
            observed += surrogate.observe(&cfg);
        }
        assert_eq!(observed, surrogate.training_len());
        assert!(surrogate.training_len() >= 24, "training set too small");
        assert!(surrogate.generation() > gen0);
        assert!(
            surrogate.is_trusted(),
            "cv error {} did not clear the threshold",
            surrogate.cv_error()
        );
        // Trusted predictions stay inside the sanity band around analytic
        // and are pure (two evaluations agree exactly).
        let after = backend.evaluate(&c, &p);
        let ratio = after.latency_cycles / before.latency_cycles;
        assert!((0.25..=4.0).contains(&ratio), "ratio = {ratio}");
        assert_eq!(backend.evaluate(&c, &p), after);
        // Energy == power * time still holds on the corrected tier.
        assert!((after.energy_uj - after.power_mw * after.latency_ms).abs() < 1e-6);
    }

    #[test]
    fn incremental_and_full_refit_surrogates_are_bit_identical() {
        // The same observation trajectory through the default
        // (incremental-Cholesky) surrogate and the from-scratch reference
        // must agree to the bit at every step — cv error, trust,
        // fingerprint, and served metrics — including past the window
        // slide at `max_train`, where the incremental trainer rebuilds.
        let build = |full_refit: bool| {
            let model = CostModel::new(TechParams::default());
            let inner = Arc::new(TraceSimBackend::new(model.clone()));
            let b = SurrogateBackend::new(model, inner);
            if full_refit {
                b.with_full_refit()
            } else {
                b
            }
        };
        let fast = build(false);
        let reference = build(true);
        assert!(!fast.is_full_refit() && reference.is_full_refit());
        let (c, p) = (cfg(), traffic_plan());
        let mut slid = false;
        for step in 0..18u32 {
            let (rows, kb) = (4 + (step % 6) * 6, 64 << (step % 4));
            let observed = AcceleratorConfig::builder(IntrinsicKind::Gemm)
                .pe_array(rows, rows)
                .scratchpad_kb(kb as u64)
                .build()
                .unwrap();
            let before = fast.training_len();
            assert_eq!(fast.observe(&observed), reference.observe(&observed));
            slid |= fast.training_len() < before + 6;
            assert_eq!(fast.training_len(), reference.training_len());
            assert_eq!(
                fast.cv_error().to_bits(),
                reference.cv_error().to_bits(),
                "cv error diverged at step {step}"
            );
            assert_eq!(fast.is_trusted(), reference.is_trusted());
            let mut ff = Fingerprinter::new();
            fast.fingerprint_into(&mut ff);
            let mut fr = Fingerprinter::new();
            reference.fingerprint_into(&mut fr);
            assert_eq!(ff.finish(), fr.finish(), "fingerprint diverged at {step}");
            assert_eq!(
                fast.evaluate(&c, &p),
                reference.evaluate(&c, &p),
                "metrics diverged at step {step}"
            );
        }
        assert!(slid, "trajectory must cross the training-window cap");
        assert!(fast.is_trusted(), "fixture must train to trust");
    }

    #[test]
    fn surrogate_reobservation_is_free_and_generation_gated() {
        let backend = BackendKind::Surrogate.build();
        let surrogate = backend.as_surrogate().unwrap();
        let c = cfg();
        assert!(surrogate.observe(&c) > 0);
        let generation = surrogate.generation();
        let len = surrogate.training_len();
        assert_eq!(surrogate.observe(&c), 0, "re-observation must be free");
        assert_eq!(surrogate.generation(), generation);
        assert_eq!(surrogate.training_len(), len);
    }

    #[test]
    fn surrogate_fingerprints_distinguish_equal_generation_trajectories() {
        // Two runs sharing a persisted cache can reach the same
        // generation number through different training content; their
        // fingerprints — and therefore their memo keys — must differ.
        let a = BackendKind::Surrogate.build();
        let b = BackendKind::Surrogate.build();
        a.as_surrogate().unwrap().observe(&cfg());
        let other = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .pe_array(8, 8)
            .scratchpad_kb(128)
            .build()
            .unwrap();
        b.as_surrogate().unwrap().observe(&other);
        assert_eq!(
            a.as_surrogate().unwrap().generation(),
            b.as_surrogate().unwrap().generation()
        );
        let mut fa = Fingerprinter::new();
        a.fingerprint_into(&mut fa);
        let mut fb = Fingerprinter::new();
        b.fingerprint_into(&mut fb);
        assert_ne!(fa.finish(), fb.finish());
    }

    fn trained_surrogate() -> Arc<dyn CostBackend> {
        let backend = BackendKind::Surrogate.build();
        let surrogate = backend.as_surrogate().unwrap();
        for (rows, kb) in [(8u32, 128u64), (16, 256), (32, 512), (8, 512), (32, 128)] {
            let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
                .pe_array(rows, rows)
                .scratchpad_kb(kb)
                .build()
                .unwrap();
            surrogate.observe(&cfg);
        }
        backend
    }

    #[test]
    fn surrogate_snapshot_restores_bit_identically() {
        let backend = trained_surrogate();
        let surrogate = backend.as_surrogate().unwrap();
        assert!(surrogate.is_trusted(), "fixture must train to trust");

        // Snapshot → encode → decode → restore.
        let snap = surrogate.snapshot();
        let mut bytes = Vec::new();
        snap.encode_into(&mut bytes);
        let decoded = SurrogateSnapshot::decode(&bytes).expect("snapshot decodes");
        assert_eq!(decoded, snap, "encode/decode must be lossless");
        let restored = SurrogateBackend::from_snapshot(&decoded);

        // Digest round-trip: the restored backend's fingerprint — and
        // therefore every memo key derived from it — equals the original.
        let mut fa = Fingerprinter::new();
        backend.fingerprint_into(&mut fa);
        let mut fb = Fingerprinter::new();
        restored.fingerprint_into(&mut fb);
        assert_eq!(fa.finish(), fb.finish(), "fingerprint moved across restore");
        assert_eq!(restored.generation(), surrogate.generation());
        assert_eq!(restored.training_len(), surrogate.training_len());
        assert_eq!(restored.is_trusted(), surrogate.is_trusted());
        assert_eq!(
            restored.cv_error().to_bits(),
            surrogate.cv_error().to_bits(),
            "deterministic refit must reproduce the CV score exactly"
        );

        // Predictions are bit-identical, and re-observing a config the
        // original already saw stays free.
        let (c, p) = (cfg(), traffic_plan());
        assert_eq!(restored.evaluate(&c, &p), backend.evaluate(&c, &p));
        assert_eq!(restored.observe(&c), 0, "observed set lost in restore");
    }

    #[test]
    fn untrained_surrogate_snapshot_round_trips() {
        let backend = BackendKind::Surrogate.build();
        let snap = backend.as_surrogate().unwrap().snapshot();
        assert_eq!(snap.generation, 0);
        let restored = SurrogateBackend::from_snapshot(&snap);
        assert!(!restored.is_trusted());
        let (c, p) = (cfg(), traffic_plan());
        assert_eq!(restored.evaluate(&c, &p), backend.evaluate(&c, &p));
    }

    #[test]
    fn snapshot_decode_rejects_corrupt_bytes() {
        let snap = trained_surrogate().as_surrogate().unwrap().snapshot();
        let mut bytes = Vec::new();
        snap.encode_into(&mut bytes);
        // Truncation at any of a few depths, trailing garbage, and a bad
        // trusted flag must all be rejected, never panic.
        for cut in [0, 8, 13 * 8 + 3, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                SurrogateSnapshot::decode(&bytes[..cut]).is_none(),
                "decode accepted a truncation at {cut}"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(SurrogateSnapshot::decode(&trailing).is_none());
        let mut bad_flag = bytes.clone();
        let flag_at = 13 * 8 + 8 + 8 + 8 + 8 + 8 + 8; // tech + knobs + gen/digest/cv
        bad_flag[flag_at] = 7;
        assert!(SurrogateSnapshot::decode(&bad_flag).is_none());
    }

    #[test]
    fn surrogate_fingerprint_tracks_training_generation() {
        let backend = BackendKind::Surrogate.build();
        let surrogate = backend.as_surrogate().unwrap();
        let mut before = Fingerprinter::new();
        backend.fingerprint_into(&mut before);
        surrogate.observe(&cfg());
        let mut after = Fingerprinter::new();
        backend.fingerprint_into(&mut after);
        assert_ne!(
            before.finish(),
            after.finish(),
            "memo keys must not survive retraining"
        );
    }

    #[test]
    fn backend_instance_fingerprints_distinguish_tiers() {
        let (a, s) = (BackendKind::Analytic.build(), BackendKind::TraceSim.build());
        let mut fa = Fingerprinter::new();
        a.fingerprint_into(&mut fa);
        let mut fs = Fingerprinter::new();
        s.fingerprint_into(&mut fs);
        assert_ne!(fa.finish(), fs.finish());
    }
}
