//! Pluggable cost backends: one evaluation contract, three fidelity tiers.
//!
//! Every layer of the co-design loop ultimately asks the same question —
//! "what do this accelerator and this execution plan cost?" — but the
//! right way to answer it depends on where the caller sits: DSE inner
//! loops need microsecond estimates, final Pareto candidates deserve the
//! trace simulator's pipeline model, and everything in between benefits
//! from an analytic model corrected toward the simulator. [`CostBackend`]
//! is that seam; callers hold a `&dyn CostBackend` (or an
//! `Arc<dyn CostBackend>`) and stay agnostic of the tier:
//!
//! * [`AnalyticBackend`] — [`CostModel::evaluate`], the fast path;
//! * [`TraceSimBackend`] — synthesizes a staged instruction stream from
//!   the plan ([`crate::sim::program_from_plan`]) and replays it through
//!   the [`TraceSimulator`]'s two-buffer pipeline recurrence: stage-level
//!   fidelity at roughly 50–100x the analytic cost;
//! * [`CalibratedBackend`] — the analytic model multiplied by per-regime
//!   correction factors fitted, once per accelerator configuration, from
//!   trace-sim runs on canonical calibration plans: analytic speed,
//!   sim-informed accuracy.
//!
//! Backends are pure: the same `(config, plan)` always yields the same
//! metrics, so results can be memoized under a fingerprint that includes
//! the backend's identity ([`CostBackend::fingerprint_into`]) and cached
//! across processes.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use runtime::Fingerprinter;

use crate::arch::AcceleratorConfig;
use crate::cost::CostModel;
use crate::metrics::Metrics;
use crate::plan::{ExecutionPlan, TensorTraffic};
use crate::sim::{program_from_plan, TraceSimulator};
use crate::tech::TechParams;

/// An engine that prices `(accelerator, plan)` pairs.
///
/// Implementations must be pure — memoization layers above assume a
/// backend's answer depends only on its construction parameters and the
/// arguments.
pub trait CostBackend: std::fmt::Debug + Send + Sync {
    /// Short stable identifier (`"analytic"`, `"sim"`, `"calibrated"`).
    fn name(&self) -> &'static str;

    /// Full evaluation: latency, energy, power, area, throughput.
    fn evaluate(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Metrics;

    /// Writes the backend's identity into a fingerprint, so memo keys
    /// distinguish results produced by different backends. The default
    /// writes [`CostBackend::name`]; backends with extra knobs that change
    /// results must extend it.
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(self.name());
    }
}

/// The selectable backend tiers, as seen by CLIs and run options.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The fast analytical model ([`AnalyticBackend`]).
    #[default]
    Analytic,
    /// The stage-level trace simulator ([`TraceSimBackend`]).
    TraceSim,
    /// Analytic with sim-fitted correction factors ([`CalibratedBackend`]).
    Calibrated,
}

impl BackendKind {
    /// Every tier, in ascending fidelity order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::Analytic,
        BackendKind::Calibrated,
        BackendKind::TraceSim,
    ];

    /// Builds the backend with default technology parameters.
    pub fn build(self) -> Arc<dyn CostBackend> {
        self.build_with(TechParams::default())
    }

    /// Builds the backend around explicit technology parameters.
    pub fn build_with(self, tech: TechParams) -> Arc<dyn CostBackend> {
        let model = CostModel::new(tech);
        match self {
            BackendKind::Analytic => Arc::new(AnalyticBackend::new(model)),
            BackendKind::TraceSim => Arc::new(TraceSimBackend::new(model)),
            BackendKind::Calibrated => Arc::new(CalibratedBackend::new(model)),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BackendKind::Analytic => "analytic",
            BackendKind::TraceSim => "sim",
            BackendKind::Calibrated => "calibrated",
        };
        write!(f, "{s}")
    }
}

impl std::str::FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "analytic" | "model" => Ok(BackendKind::Analytic),
            "sim" | "tracesim" | "trace-sim" => Ok(BackendKind::TraceSim),
            "calibrated" => Ok(BackendKind::Calibrated),
            other => Err(format!(
                "unknown backend `{other}` (expected analytic | sim | calibrated)"
            )),
        }
    }
}

impl runtime::StableFingerprint for BackendKind {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(match self {
            BackendKind::Analytic => "analytic",
            BackendKind::TraceSim => "sim",
            BackendKind::Calibrated => "calibrated",
        });
    }
}

/// Tier 1: the analytical cost model, verbatim.
#[derive(Debug, Clone, Default)]
pub struct AnalyticBackend {
    /// The wrapped model.
    pub model: CostModel,
}

impl AnalyticBackend {
    /// Wraps a cost model.
    pub fn new(model: CostModel) -> Self {
        AnalyticBackend { model }
    }
}

impl CostBackend for AnalyticBackend {
    fn name(&self) -> &'static str {
        "analytic"
    }

    fn evaluate(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Metrics {
        self.model.evaluate(cfg, plan)
    }
}

/// Tier 3: stage-level trace simulation of the plan.
///
/// The plan is expanded back into a staged load/compute/store stream and
/// replayed through the [`TraceSimulator`]'s two-buffer pipeline
/// recurrence, which models DMA-engine serialization and fill/drain
/// effects the analytic overlap formula approximates. Rearrangement and
/// host-control cycles (not part of the instruction stream) are added
/// serially, exactly as the analytic model charges them.
#[derive(Debug, Clone, Default)]
pub struct TraceSimBackend {
    /// The wrapped simulator (shares the analytic model's tech constants
    /// for energy and area).
    pub sim: TraceSimulator,
    /// Stage-count cap for synthesized programs (see
    /// [`program_from_plan`]).
    pub max_stages: usize,
}

/// Default stage cap: enough for the pipeline to reach steady state, small
/// enough to bound simulation cost on plans with thousands of stages.
pub const DEFAULT_SIM_STAGES: usize = 64;

impl TraceSimBackend {
    /// Wraps a simulator around a cost model with the default stage cap.
    pub fn new(model: CostModel) -> Self {
        TraceSimBackend {
            sim: TraceSimulator::new(model),
            max_stages: DEFAULT_SIM_STAGES,
        }
    }
}

impl CostBackend for TraceSimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn evaluate(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Metrics {
        let program = program_from_plan(plan, self.max_stages);
        let traced = self.sim.run(cfg, &program, plan.double_buffered);
        let cycles = traced.cycles
            + self.sim.model.rearrange_cycles(cfg, plan)
            + plan.host_control_cycles as f64;
        let mut metrics = self.sim.model.evaluate(cfg, plan);
        replace_latency(&mut metrics, cfg, cycles, plan.macs_useful);
        metrics
    }

    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(self.name());
        fp.write_usize(self.max_stages);
    }
}

/// Replaces a metric set's latency and re-derives every time-dependent
/// quantity (ms, power, throughput) from it — the one place the
/// energy == power × time invariant is maintained for non-analytic
/// tiers.
fn replace_latency(metrics: &mut Metrics, cfg: &AcceleratorConfig, cycles: f64, useful_macs: u64) {
    metrics.latency_cycles = cycles.max(1.0);
    metrics.latency_ms = cfg.cycles_to_ms(metrics.latency_cycles);
    metrics.power_mw = if metrics.latency_ms > 0.0 {
        metrics.energy_uj / metrics.latency_ms
    } else {
        0.0
    };
    metrics.throughput_mops = if metrics.latency_ms > 0.0 {
        2.0 * useful_macs as f64 / (metrics.latency_ms * 1e3)
    } else {
        0.0
    };
}

/// Which engine dominates a plan's analytic latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Regime {
    /// On-chip work (PE array or scratchpad ports) dominates.
    Compute = 0,
    /// Neither engine dominates by 2x.
    Balanced = 1,
    /// DMA traffic dominates.
    Memory = 2,
}

/// Tier 2: the analytic model, corrected toward the simulator.
///
/// For each accelerator configuration, three canonical calibration plans
/// — compute-bound, balanced, memory-bound — are priced by both the
/// analytic model and the trace simulator, giving one correction factor
/// per regime. An evaluation classifies its plan's regime from the
/// analytic engine cycles and scales the analytic latency by the fitted
/// factor. Factors are a pure function of the configuration, so they are
/// memoized per config fingerprint; concurrent fits of the same config
/// arrive at identical factors, keeping results thread-count-independent.
#[derive(Debug, Default)]
pub struct CalibratedBackend {
    /// The analytic model being corrected.
    pub model: CostModel,
    sim: TraceSimBackend,
    factors: Mutex<HashMap<(u64, u64), [f64; 3]>>,
}

impl CalibratedBackend {
    /// Wraps a cost model (the simulator reuses its tech constants).
    pub fn new(model: CostModel) -> Self {
        CalibratedBackend {
            sim: TraceSimBackend::new(model.clone()),
            model,
            factors: Mutex::new(HashMap::new()),
        }
    }

    fn classify(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Regime {
        let onchip = self
            .model
            .compute_cycles(cfg, plan)
            .max(self.model.spad_cycles(cfg, plan));
        let dma = self.model.dma_cycles(cfg, plan);
        if onchip >= 2.0 * dma {
            Regime::Compute
        } else if dma >= 2.0 * onchip {
            Regime::Memory
        } else {
            Regime::Balanced
        }
    }

    /// The three canonical calibration plans for a configuration, sized
    /// from its PE count and scratchpad so every regime is actually
    /// exercised on that hardware.
    fn calibration_plans(cfg: &AcceleratorConfig) -> [ExecutionPlan; 3] {
        let pes = cfg.pes();
        let spad = cfg.scratchpad_bytes;
        let stage = |plan: &mut ExecutionPlan, reads: u64, writes: u64, run: u64| {
            plan.dram_reads.push(TensorTraffic::new("A", reads, run));
            plan.dram_reads.push(TensorTraffic::new("B", reads, run));
            plan.dram_writes.push(TensorTraffic::new("C", writes, run));
            plan.spad_traffic_bytes = reads;
            plan.stages = 32;
            plan.double_buffered = true;
        };
        // Compute-bound: deep MAC streams, light traffic.
        let mut compute = ExecutionPlan::compute_only(pes * 65_536, pes * 65_536, 256);
        stage(&mut compute, spad / 8, spad / 32, 4096);
        // Balanced: MACs and traffic sized to similar engine cycles.
        let mut balanced = ExecutionPlan::compute_only(pes * 8_192, pes * 8_192, 256);
        stage(&mut balanced, spad.max(1) * 2, spad / 4, 512);
        // Memory-bound: heavy, poorly-batched DMA against token compute.
        let mut memory = ExecutionPlan::compute_only(pes * 256, pes * 256, 64);
        stage(&mut memory, spad.max(1) * 16, spad * 2, 64);
        [compute, balanced, memory]
    }

    /// Stable 128-bit factor-cache key: two independently-seeded lanes,
    /// so a 64-bit fingerprint collision between two configurations
    /// degrades to a refit instead of silently applying another
    /// configuration's correction factors (the same scheme the co-design
    /// memo cache uses).
    fn factor_key(cfg: &AcceleratorConfig) -> (u64, u64) {
        use runtime::StableFingerprint;
        let mut lo = Fingerprinter::new();
        let mut hi = Fingerprinter::new();
        hi.write_u64(0x9e3779b97f4a7c15);
        cfg.fingerprint_into(&mut lo);
        cfg.fingerprint_into(&mut hi);
        (lo.finish().0, hi.finish().0)
    }

    /// Correction factors for a configuration (fitted on first use).
    fn factors_for(&self, cfg: &AcceleratorConfig) -> [f64; 3] {
        let key = Self::factor_key(cfg);
        if let Some(f) = self
            .factors
            .lock()
            .expect("factor cache poisoned")
            .get(&key)
        {
            return *f;
        }
        let plans = Self::calibration_plans(cfg);
        let mut fitted = [1.0f64; 3];
        for (slot, plan) in fitted.iter_mut().zip(plans.iter()) {
            let analytic = self.model.evaluate(cfg, plan).latency_cycles;
            let simulated = self.sim.evaluate(cfg, plan).latency_cycles;
            // Clamp to a sane band: a wildly off ratio means the
            // calibration plan degenerated on this config, and a bounded
            // correction beats an absurd one.
            *slot = (simulated / analytic.max(1.0)).clamp(0.25, 4.0);
        }
        self.factors
            .lock()
            .expect("factor cache poisoned")
            .insert(key, fitted);
        fitted
    }
}

impl CostBackend for CalibratedBackend {
    fn name(&self) -> &'static str {
        "calibrated"
    }

    fn evaluate(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Metrics {
        let factor = self.factors_for(cfg)[self.classify(cfg, plan) as usize];
        let mut metrics = self.model.evaluate(cfg, plan);
        let corrected = metrics.latency_cycles * factor;
        replace_latency(&mut metrics, cfg, corrected, plan.macs_useful);
        metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::StableFingerprint;
    use tensor_ir::intrinsics::IntrinsicKind;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .pe_array(16, 16)
            .build()
            .unwrap()
    }

    fn traffic_plan() -> ExecutionPlan {
        let mut p = ExecutionPlan::compute_only(4_000_000, 4_200_000, 1000);
        p.dram_reads.push(TensorTraffic::new("A", 512_000, 128));
        p.dram_reads.push(TensorTraffic::new("B", 512_000, 128));
        p.dram_writes.push(TensorTraffic::new("C", 128_000, 128));
        p.spad_traffic_bytes = 2_000_000;
        p.stages = 50;
        p.double_buffered = true;
        p
    }

    #[test]
    fn analytic_backend_matches_cost_model() {
        let model = CostModel::default();
        let backend = AnalyticBackend::new(model.clone());
        let (c, p) = (cfg(), traffic_plan());
        assert_eq!(backend.evaluate(&c, &p), model.evaluate(&c, &p));
    }

    #[test]
    fn all_backends_produce_consistent_metrics() {
        let (c, p) = (cfg(), traffic_plan());
        for kind in BackendKind::ALL {
            let m = kind.build().evaluate(&c, &p);
            assert!(m.latency_cycles >= 1.0, "{kind}");
            assert!(m.latency_ms > 0.0 && m.power_mw > 0.0, "{kind}");
            assert!(m.area_mm2 > 0.0 && m.throughput_mops > 0.0, "{kind}");
            // Energy must equal power * time for every tier.
            assert!(
                (m.energy_uj - m.power_mw * m.latency_ms).abs() < 1e-6,
                "{kind}"
            );
        }
    }

    #[test]
    fn backends_are_pure() {
        let (c, p) = (cfg(), traffic_plan());
        for kind in BackendKind::ALL {
            let backend = kind.build();
            assert_eq!(backend.evaluate(&c, &p), backend.evaluate(&c, &p), "{kind}");
        }
    }

    #[test]
    fn sim_backend_stays_within_2x_of_analytic() {
        // The tiers model the same hardware; they must agree on the order
        // of magnitude while differing in pipeline detail.
        let (c, p) = (cfg(), traffic_plan());
        let analytic = BackendKind::Analytic.build().evaluate(&c, &p);
        let sim = BackendKind::TraceSim.build().evaluate(&c, &p);
        let ratio = sim.latency_cycles / analytic.latency_cycles;
        assert!((0.5..2.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn calibrated_lands_between_or_near_the_other_tiers() {
        let (c, p) = (cfg(), traffic_plan());
        let analytic = BackendKind::Analytic
            .build()
            .evaluate(&c, &p)
            .latency_cycles;
        let calibrated = BackendKind::Calibrated
            .build()
            .evaluate(&c, &p)
            .latency_cycles;
        // The correction factor is bounded by construction.
        assert!(calibrated >= analytic * 0.25 && calibrated <= analytic * 4.0);
    }

    #[test]
    fn calibrated_factor_cache_is_consistent_across_threads() {
        let backend = Arc::new(CalibratedBackend::new(CostModel::default()));
        let (c, p) = (cfg(), traffic_plan());
        let reference = backend.evaluate(&c, &p);
        std::thread::scope(|s| {
            for _ in 0..4 {
                let backend = Arc::clone(&backend);
                let (c, p) = (c.clone(), p.clone());
                s.spawn(move || {
                    assert_eq!(backend.evaluate(&c, &p), reference);
                });
            }
        });
    }

    #[test]
    fn kind_parses_and_displays() {
        for kind in BackendKind::ALL {
            assert_eq!(kind.to_string().parse::<BackendKind>().unwrap(), kind);
        }
        assert_eq!("tracesim".parse::<BackendKind>(), Ok(BackendKind::TraceSim));
        assert!("vivado".parse::<BackendKind>().is_err());
    }

    #[test]
    fn kinds_fingerprint_distinctly() {
        let fps: Vec<_> = BackendKind::ALL.iter().map(|k| k.fingerprint()).collect();
        assert_ne!(fps[0], fps[1]);
        assert_ne!(fps[1], fps[2]);
        assert_ne!(fps[0], fps[2]);
    }

    #[test]
    fn backend_instance_fingerprints_distinguish_tiers() {
        let (a, s) = (BackendKind::Analytic.build(), BackendKind::TraceSim.build());
        let mut fa = Fingerprinter::new();
        a.fingerprint_into(&mut fa);
        let mut fs = Fingerprinter::new();
        s.fingerprint_into(&mut fs);
        assert_ne!(fa.finish(), fs.finish());
    }
}
