//! Spatial accelerator micro-architecture model for HASCO.
//!
//! This crate is the reproduction's substitute for the paper's evaluation
//! substrate (Maestro \[41\] for the hardware-DSE study and the Vivado/FPGA
//! prototypes elsewhere; see DESIGN.md §1). It models the accelerator
//! template of the paper's Fig. 1 — a 1-D/2-D PE array, a banked scratchpad
//! with optional per-PE local memories, and a DMA controller to DRAM — and
//! estimates **latency**, **power**, and **area** for a mapped workload.
//!
//! Two evaluation paths are provided, mirroring the paper's
//! "Model / Profile / Simulate" box (Fig. 3):
//!
//! * [`cost::CostModel`] — the fast analytical model used inside DSE loops;
//! * [`sim::TraceSimulator`] — an instruction-trace simulator that executes
//!   the load/store/compute streams generated for a schedule, with
//!   double-buffered DMA/compute overlap.
//!
//! # Example
//!
//! ```
//! use accel_model::{arch::AcceleratorConfig, plan::ExecutionPlan, cost::CostModel};
//! use tensor_ir::intrinsics::IntrinsicKind;
//!
//! let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
//!     .pe_array(16, 16)
//!     .scratchpad_kb(256)
//!     .banks(4)
//!     .build()
//!     .unwrap();
//! let plan = ExecutionPlan::compute_only(1_000_000, 1_000_000, 100);
//! let m = CostModel::default().evaluate(&cfg, &plan);
//! assert!(m.latency_cycles > 0.0 && m.area_mm2 > 0.0);
//! ```

pub mod arch;
pub mod area;
pub mod backend;
pub mod cost;
pub mod energy;
pub mod isa;
pub mod metrics;
pub mod plan;
pub mod sim;
pub mod tech;

pub use arch::{AcceleratorConfig, Dataflow, Interconnect, PeArray};
pub use backend::{
    AnalyticBackend, BackendKind, CalibratedBackend, CostBackend, SurrogateBackend,
    SurrogateSnapshot, TraceSimBackend,
};
pub use cost::CostModel;
pub use metrics::Metrics;
pub use plan::{ExecutionPlan, TensorTraffic};

/// Errors produced while constructing accelerator configurations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArchError {
    /// PE array dimension was zero.
    EmptyPeArray,
    /// Scratchpad must be large enough for at least one word per bank.
    ScratchpadTooSmall {
        /// The offending size.
        bytes: u64,
    },
    /// Bank count must be nonzero and not exceed scratchpad words.
    BadBankCount {
        /// The offending bank count.
        banks: u32,
    },
    /// DMA burst length must be nonzero.
    ZeroBurst,
    /// Bus width must be a nonzero multiple of 8 bits.
    BadBusWidth {
        /// The offending width in bits.
        bits: u32,
    },
}

impl std::fmt::Display for ArchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArchError::EmptyPeArray => write!(f, "PE array has a zero dimension"),
            ArchError::ScratchpadTooSmall { bytes } => {
                write!(f, "scratchpad of {bytes} bytes is too small")
            }
            ArchError::BadBankCount { banks } => write!(f, "invalid bank count {banks}"),
            ArchError::ZeroBurst => write!(f, "DMA burst length must be nonzero"),
            ArchError::BadBusWidth { bits } => write!(f, "invalid bus width {bits} bits"),
        }
    }
}

impl std::error::Error for ArchError {}
