//! Instruction-trace simulator — the "Profile / Simulate" path of the
//! paper's Fig. 3.
//!
//! Executes a [`Program`] on an [`AcceleratorConfig`] with a two-engine
//! pipeline model: one DMA engine and one compute engine (PE array +
//! scratchpad ports). With double buffering, the loads of stage *i + 1*
//! overlap the compute of stage *i* but must wait for the buffer freed by
//! stage *i − 1* — the classic two-buffer recurrence.

use crate::arch::AcceleratorConfig;
use crate::cost::CostModel;
use crate::isa::{Instr, Program};
use crate::metrics::Metrics;
use crate::plan::{ExecutionPlan, TensorTraffic};

/// Cycle-accounting trace simulator.
#[derive(Debug, Clone, Default)]
pub struct TraceSimulator {
    /// Cost model supplying per-engine cycle formulas and tech constants.
    pub model: CostModel,
}

/// Per-stage timing produced by the simulator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StageTiming {
    /// Cycle at which the stage's input DMA completed.
    pub load_done: f64,
    /// Cycle at which the stage's compute completed.
    pub compute_done: f64,
    /// Cycle at which the stage's output DMA completed.
    pub store_done: f64,
}

/// Simulation result: end-to-end cycles plus per-stage detail.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Total cycles.
    pub cycles: f64,
    /// Per-stage timings.
    pub stages: Vec<StageTiming>,
}

impl TraceSimulator {
    /// Creates a simulator around a cost model.
    pub fn new(model: CostModel) -> Self {
        TraceSimulator { model }
    }

    fn dma_cycles_for(&self, cfg: &AcceleratorConfig, bytes: u64, run: u64) -> f64 {
        if bytes == 0 {
            return 0.0;
        }
        let run = run.max(1).max(cfg.dma_burst_bytes.min(8));
        let setups = (bytes as f64 / run as f64).ceil();
        setups * self.model.tech.burst_overhead_cycles + bytes as f64 / cfg.bus_bytes_per_cycle()
    }

    fn compute_cycles_for(&self, cfg: &AcceleratorConfig, calls: u64, macs: u64, spad: u64) -> f64 {
        let stream = macs as f64 / (cfg.pes() as f64 * self.model.stream_efficiency(cfg)).max(1e-9);
        let compute = stream + calls as f64 * self.model.call_overhead_cycles(cfg);
        let local = crate::energy::local_service_fraction(cfg);
        let spad_cy = spad as f64 * (1.0 - local) / cfg.spad_bytes_per_cycle().max(1e-9);
        compute.max(spad_cy)
    }

    /// Runs a program. `double_buffered` controls whether next-stage loads
    /// may overlap current-stage compute (the lowering decides this from
    /// scratchpad capacity).
    pub fn run(
        &self,
        cfg: &AcceleratorConfig,
        program: &Program,
        double_buffered: bool,
    ) -> SimResult {
        // Split into stages.
        #[derive(Default)]
        struct Stage {
            load: f64,
            compute: f64,
            store: f64,
        }
        let mut stages: Vec<Stage> = Vec::new();
        let mut cur = Stage::default();
        let mut has_work = false;
        for instr in &program.instrs {
            match instr {
                Instr::Load {
                    bytes,
                    contiguous_run,
                    ..
                } => {
                    cur.load += self.dma_cycles_for(cfg, *bytes, *contiguous_run);
                    has_work = true;
                }
                Instr::Store {
                    bytes,
                    contiguous_run,
                    ..
                } => {
                    cur.store += self.dma_cycles_for(cfg, *bytes, *contiguous_run);
                    has_work = true;
                }
                Instr::Compute {
                    calls,
                    macs,
                    spad_bytes,
                } => {
                    cur.compute += self.compute_cycles_for(cfg, *calls, *macs, *spad_bytes);
                    has_work = true;
                }
                Instr::Barrier => {
                    if has_work {
                        stages.push(std::mem::take(&mut cur));
                        has_work = false;
                    }
                }
            }
        }
        if has_work {
            stages.push(cur);
        }

        // Two-buffer pipeline recurrence.
        let mut timings: Vec<StageTiming> = Vec::with_capacity(stages.len());
        let mut dma_free = 0.0f64; // DMA engine availability
        for (i, s) in stages.iter().enumerate() {
            let buffer_free = if double_buffered {
                if i >= 2 {
                    timings[i - 2].compute_done
                } else {
                    0.0
                }
            } else if i >= 1 {
                timings[i - 1].store_done
            } else {
                0.0
            };
            let load_start = dma_free.max(buffer_free);
            let load_done = load_start + s.load;
            let prev_compute = if i >= 1 {
                timings[i - 1].compute_done
            } else {
                0.0
            };
            let compute_done = load_done.max(prev_compute) + s.compute;
            let store_start = compute_done.max(load_done.max(dma_free));
            let store_done = store_start + s.store;
            // With double buffering the DMA queue lets next-stage loads
            // bypass pending stores; without it, the engine drains in order.
            dma_free = if double_buffered {
                load_done
            } else {
                store_done
            };
            timings.push(StageTiming {
                load_done,
                compute_done,
                store_done,
            });
        }
        // A single DMA engine ultimately serves both directions, so the end
        // time can never beat the total DMA work.
        let total_dma: f64 = stages.iter().map(|s| s.load + s.store).sum();
        let cycles = timings
            .iter()
            .map(|t| t.store_done.max(t.compute_done))
            .fold(0.0, f64::max)
            .max(total_dma)
            .max(1.0);
        SimResult {
            cycles,
            stages: timings,
        }
    }

    /// Streams a plan's staged lowering straight through the two-buffer
    /// pipeline recurrence, returning total cycles — **bit-identical** to
    /// `self.run(cfg, &program_from_plan(plan, max_stages), plan.double_buffered).cycles`
    /// but allocation-free: no [`Program`] (with its per-instruction
    /// tensor-name strings), no stage vector, no timing vector. This is
    /// the cost-backend hot path — a staged refinement batch prices
    /// hundreds of `(config, plan)` pairs, and re-lowering each pair
    /// dominated the profile.
    ///
    /// The recurrence carries only rolling scalars; per stage it
    /// reproduces the lowering's exact instruction emission (same integer
    /// splits, same "emit iff non-zero" predicate, same accumulation
    /// order), so every floating-point operation happens in the same
    /// order as the materialized path. A stage whose splits are all zero
    /// emits nothing in the lowering, forms no stage, and here advances
    /// neither the recurrence index nor the DMA clock.
    pub fn run_plan_cycles(
        &self,
        cfg: &AcceleratorConfig,
        plan: &ExecutionPlan,
        max_stages: usize,
    ) -> f64 {
        let stages = plan.stages.clamp(1, max_stages.max(1) as u64);
        // Same integer split as `program_from_plan`.
        let split = |total: u64, i: u64| -> u64 {
            let t = total as u128;
            let s = stages as u128;
            (t * (i as u128 + 1) / s - t * i as u128 / s) as u64
        };
        let double_buffered = plan.double_buffered;
        let mut dma_free = 0.0f64;
        let mut prev_compute = 0.0f64;
        let mut prev2_compute = 0.0f64;
        let mut prev_store = 0.0f64;
        let mut emitted = 0usize;
        let mut end_max = 0.0f64;
        let mut total_dma = 0.0f64;
        for i in 0..stages {
            let mut load = 0.0f64;
            let mut compute = 0.0f64;
            let mut store = 0.0f64;
            let mut has_work = false;
            for t in &plan.dram_reads {
                let bytes = split(t.bytes, i);
                if bytes > 0 {
                    load += self.dma_cycles_for(cfg, bytes, t.avg_contiguous_run);
                    has_work = true;
                }
            }
            let macs = split(plan.macs_padded, i);
            let calls = split(plan.intrinsic_calls, i);
            let spad_bytes = split(plan.spad_traffic_bytes, i);
            if macs > 0 || calls > 0 || spad_bytes > 0 {
                compute += self.compute_cycles_for(cfg, calls, macs, spad_bytes);
                has_work = true;
            }
            for t in &plan.dram_writes {
                let bytes = split(t.bytes, i);
                if bytes > 0 {
                    store += self.dma_cycles_for(cfg, bytes, t.avg_contiguous_run);
                    has_work = true;
                }
            }
            if !has_work {
                continue;
            }
            let buffer_free = if double_buffered {
                if emitted >= 2 {
                    prev2_compute
                } else {
                    0.0
                }
            } else if emitted >= 1 {
                prev_store
            } else {
                0.0
            };
            let load_start = dma_free.max(buffer_free);
            let load_done = load_start + load;
            let pc = if emitted >= 1 { prev_compute } else { 0.0 };
            let compute_done = load_done.max(pc) + compute;
            let store_start = compute_done.max(load_done.max(dma_free));
            let store_done = store_start + store;
            dma_free = if double_buffered {
                load_done
            } else {
                store_done
            };
            prev2_compute = prev_compute;
            prev_compute = compute_done;
            prev_store = store_done;
            emitted += 1;
            end_max = end_max.max(store_done.max(compute_done));
            total_dma += load + store;
        }
        end_max.max(total_dma).max(1.0)
    }

    /// Runs a program and wraps the result in full [`Metrics`] (energy and
    /// area from the analytical model, latency from the trace).
    pub fn evaluate(
        &self,
        cfg: &AcceleratorConfig,
        program: &Program,
        double_buffered: bool,
        useful_macs: u64,
    ) -> Metrics {
        let sim = self.run(cfg, program, double_buffered);
        let plan = plan_from_program(program, double_buffered, useful_macs);
        let mut metrics = self.model.evaluate(cfg, &plan);
        // Replace the analytical latency with the simulated one and rescale
        // time-derived metrics.
        metrics.latency_cycles = sim.cycles;
        metrics.latency_ms = cfg.cycles_to_ms(sim.cycles);
        metrics.power_mw = if metrics.latency_ms > 0.0 {
            metrics.energy_uj / metrics.latency_ms
        } else {
            0.0
        };
        metrics.throughput_mops = if metrics.latency_ms > 0.0 {
            2.0 * useful_macs as f64 / (metrics.latency_ms * 1e3)
        } else {
            0.0
        };
        metrics
    }
}

/// Synthesizes a staged instruction stream from a plan — the inverse of
/// [`plan_from_program`], used by the trace-sim cost backend to replay an
/// analytically lowered schedule through the pipeline recurrence.
///
/// The plan's traffic and compute totals are spread evenly over
/// `min(plan.stages, max_stages)` barrier-separated stages (integer
/// splitting preserves every total exactly). Capping the stage count
/// bounds simulation time for plans with thousands of tile stages; the
/// pipeline reaches steady state within a few tens of stages, so the
/// latency estimate converges long before the cap matters.
pub fn program_from_plan(plan: &ExecutionPlan, max_stages: usize) -> Program {
    let stages = plan.stages.clamp(1, max_stages.max(1) as u64);
    // total * (i+1) / stages − total * i / stages, in u128 to avoid
    // overflow on byte counts that were built with saturating math.
    let split = |total: u64, i: u64| -> u64 {
        let t = total as u128;
        let s = stages as u128;
        (t * (i as u128 + 1) / s - t * i as u128 / s) as u64
    };
    let mut program = Program::new();
    for i in 0..stages {
        for t in &plan.dram_reads {
            let bytes = split(t.bytes, i);
            if bytes > 0 {
                program.push(Instr::Load {
                    tensor: t.tensor.clone(),
                    bytes,
                    contiguous_run: t.avg_contiguous_run,
                });
            }
        }
        let macs = split(plan.macs_padded, i);
        let calls = split(plan.intrinsic_calls, i);
        let spad_bytes = split(plan.spad_traffic_bytes, i);
        if macs > 0 || calls > 0 || spad_bytes > 0 {
            program.push(Instr::Compute {
                calls,
                macs,
                spad_bytes,
            });
        }
        for t in &plan.dram_writes {
            let bytes = split(t.bytes, i);
            if bytes > 0 {
                program.push(Instr::Store {
                    tensor: t.tensor.clone(),
                    bytes,
                    contiguous_run: t.avg_contiguous_run,
                });
            }
        }
        program.push(Instr::Barrier);
    }
    program
}

/// Reconstructs an [`ExecutionPlan`] from a program (for energy accounting).
pub fn plan_from_program(
    program: &Program,
    double_buffered: bool,
    useful_macs: u64,
) -> ExecutionPlan {
    let mut reads = Vec::new();
    let mut writes = Vec::new();
    let mut spad = 0;
    for i in &program.instrs {
        match i {
            Instr::Load {
                tensor,
                bytes,
                contiguous_run,
            } => {
                reads.push(TensorTraffic::new(tensor.clone(), *bytes, *contiguous_run));
            }
            Instr::Store {
                tensor,
                bytes,
                contiguous_run,
            } => {
                writes.push(TensorTraffic::new(tensor.clone(), *bytes, *contiguous_run));
            }
            Instr::Compute { spad_bytes, .. } => spad += spad_bytes,
            Instr::Barrier => {}
        }
    }
    ExecutionPlan {
        intrinsic_calls: program.total_calls(),
        macs_useful: useful_macs,
        macs_padded: program.total_macs().max(useful_macs),
        dram_reads: reads,
        dram_writes: writes,
        spad_traffic_bytes: spad,
        rearrange_bytes: 0,
        stages: program.stage_count() as u64,
        double_buffered,
        host_control_cycles: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::intrinsics::IntrinsicKind;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap()
    }

    fn program(stages: usize, load: u64, calls: u64) -> Program {
        let mut p = Program::new();
        for _ in 0..stages {
            p.push(Instr::Load {
                tensor: "A".into(),
                bytes: load,
                contiguous_run: 64,
            });
            p.push(Instr::Compute {
                calls,
                macs: calls * 4096,
                spad_bytes: load,
            });
            p.push(Instr::Store {
                tensor: "C".into(),
                bytes: load / 8,
                contiguous_run: 64,
            });
            p.push(Instr::Barrier);
        }
        p
    }

    #[test]
    fn double_buffering_is_faster() {
        let sim = TraceSimulator::default();
        let p = program(20, 32 * 1024, 16);
        let serial = sim.run(&cfg(), &p, false);
        let buffered = sim.run(&cfg(), &p, true);
        assert!(buffered.cycles < serial.cycles);
    }

    #[test]
    fn pipeline_bound_by_slowest_engine() {
        let sim = TraceSimulator::default();
        let c = cfg();
        // DMA-heavy program: total ≈ total DMA time.
        let p = program(50, 256 * 1024, 1);
        let r = sim.run(&c, &p, true);
        let per_load =
            sim.dma_cycles_for(&c, 256 * 1024, 64) + sim.dma_cycles_for(&c, 32 * 1024, 64);
        assert!(r.cycles >= 50.0 * per_load * 0.9);
        assert!(r.cycles <= 50.0 * per_load * 1.5);
    }

    #[test]
    fn stage_timings_are_monotone() {
        let sim = TraceSimulator::default();
        let r = sim.run(&cfg(), &program(10, 8192, 4), true);
        assert_eq!(r.stages.len(), 10);
        for w in r.stages.windows(2) {
            assert!(w[1].compute_done >= w[0].compute_done);
        }
        for t in &r.stages {
            assert!(t.compute_done >= t.load_done);
            assert!(t.store_done >= t.compute_done);
        }
    }

    #[test]
    fn simulator_agrees_with_analytical_model_within_2x() {
        let sim = TraceSimulator::default();
        let c = cfg();
        let p = program(30, 64 * 1024, 32);
        let traced = sim.run(&c, &p, true).cycles;
        let plan = plan_from_program(&p, true, p.total_macs());
        let analytical = sim.model.latency_cycles(&c, &plan);
        let ratio = traced / analytical;
        assert!((0.5..2.0).contains(&ratio), "ratio = {ratio}");
    }

    #[test]
    fn empty_program_costs_one_cycle() {
        let sim = TraceSimulator::default();
        let r = sim.run(&cfg(), &Program::new(), true);
        assert_eq!(r.cycles, 1.0);
        assert!(r.stages.is_empty());
    }

    #[test]
    fn evaluate_produces_full_metrics() {
        let sim = TraceSimulator::default();
        let p = program(10, 8192, 4);
        let m = sim.evaluate(&cfg(), &p, true, p.total_macs());
        assert!(m.latency_ms > 0.0 && m.power_mw > 0.0 && m.area_mm2 > 0.0);
        assert!((m.energy_uj - m.power_mw * m.latency_ms).abs() < 1e-6);
    }

    #[test]
    fn program_from_plan_preserves_totals() {
        let p = program(7, 10_000, 3);
        let plan = plan_from_program(&p, true, 100);
        let back = program_from_plan(&plan, 64);
        assert_eq!(back.total_macs(), plan.macs_padded);
        assert_eq!(back.total_calls(), plan.intrinsic_calls);
        assert_eq!(back.total_load_bytes(), 7 * 10_000);
        assert_eq!(back.total_store_bytes(), 7 * (10_000 / 8));
        assert_eq!(back.stage_count() as u64, plan.stages);
    }

    #[test]
    fn program_from_plan_caps_stage_count_without_losing_work() {
        let mut plan = plan_from_program(&program(50, 4096, 2), true, 100);
        plan.stages = 50;
        let capped = program_from_plan(&plan, 8);
        assert_eq!(capped.stage_count(), 8);
        assert_eq!(capped.total_macs(), plan.macs_padded);
        assert_eq!(capped.total_load_bytes(), 50 * 4096);
    }

    /// Pins the streamed recurrence against the materialized path at the
    /// bit level for one plan, at every buffering mode and stage cap.
    fn assert_streaming_matches_program(plan: &ExecutionPlan) {
        let sim = TraceSimulator::default();
        let c = cfg();
        for &double_buffered in &[false, true] {
            for &cap in &[1usize, 3, 8, 64] {
                let mut p = plan.clone();
                p.double_buffered = double_buffered;
                let program = program_from_plan(&p, cap);
                let materialized = sim.run(&c, &program, double_buffered).cycles;
                let streamed = sim.run_plan_cycles(&c, &p, cap);
                assert_eq!(
                    streamed.to_bits(),
                    materialized.to_bits(),
                    "db={double_buffered} cap={cap}: {streamed} vs {materialized}"
                );
            }
        }
    }

    #[test]
    fn run_plan_cycles_matches_materialized_program_bit_for_bit() {
        assert_streaming_matches_program(&plan_from_program(
            &program(20, 32 * 1024, 16),
            true,
            100,
        ));
    }

    #[test]
    fn run_plan_cycles_matches_on_sparse_stages() {
        // Totals smaller than the stage count leave some stages with no
        // instructions at all — the lowering forms no stage there, and
        // the streamed recurrence must not advance either.
        let mut plan = ExecutionPlan::compute_only(3, 3, 2);
        plan.dram_reads.push(TensorTraffic::new("A", 5, 4));
        plan.dram_writes.push(TensorTraffic::new("C", 2, 4));
        plan.stages = 8;
        assert_streaming_matches_program(&plan);
    }

    #[test]
    fn run_plan_cycles_matches_on_empty_plans() {
        let mut plan = ExecutionPlan::compute_only(0, 0, 0);
        plan.stages = 4;
        assert_streaming_matches_program(&plan);
        let sim = TraceSimulator::default();
        assert_eq!(sim.run_plan_cycles(&cfg(), &plan, 64), 1.0);
    }

    #[test]
    fn run_plan_cycles_matches_on_lopsided_traffic() {
        // Store-only and load-only plans exercise the DMA-queue branches.
        let mut stores = ExecutionPlan::compute_only(0, 0, 0);
        stores
            .dram_writes
            .push(TensorTraffic::new("C", 1 << 20, 128));
        stores.stages = 12;
        assert_streaming_matches_program(&stores);
        let mut loads = ExecutionPlan::compute_only(0, 0, 0);
        loads.dram_reads.push(TensorTraffic::new("A", 1 << 22, 64));
        loads.dram_reads.push(TensorTraffic::new("B", 977, 8));
        loads.stages = 5;
        assert_streaming_matches_program(&loads);
    }

    #[test]
    fn plan_from_program_roundtrips_totals() {
        let p = program(5, 1024, 2);
        let plan = plan_from_program(&p, true, 100);
        assert_eq!(plan.intrinsic_calls, 10);
        assert_eq!(plan.dram_reads.len(), 5);
        assert_eq!(plan.dram_writes.len(), 5);
        assert_eq!(plan.stages, 5);
        assert_eq!(plan.macs_padded, p.total_macs());
    }
}
