//! The accelerator instruction set (§VI-C).
//!
//! "There are two basic types of instructions: the data movement
//! instructions move data between the scratchpad memory and the DRAM, and
//! the compute instructions invoke computations on the PE array." Tensorize
//! interfaces lower to sequences of these instructions; the trace simulator
//! executes them.

use serde::{Deserialize, Serialize};

/// One accelerator instruction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Instr {
    /// DMA a tile from DRAM into the scratchpad.
    Load {
        /// Source tensor name.
        tensor: String,
        /// Tile size in bytes.
        bytes: u64,
        /// Average contiguous run length (bounds effective burst).
        contiguous_run: u64,
    },
    /// DMA a tile from the scratchpad back to DRAM.
    Store {
        /// Destination tensor name.
        tensor: String,
        /// Tile size in bytes.
        bytes: u64,
        /// Average contiguous run length.
        contiguous_run: u64,
    },
    /// Invoke the hardware intrinsic on staged data (the paper's
    /// `compute_accumulated`-style instruction).
    Compute {
        /// Number of intrinsic invocations in this stage.
        calls: u64,
        /// MACs executed (including padding).
        macs: u64,
        /// Scratchpad bytes streamed to/from the PEs during the stage.
        spad_bytes: u64,
    },
    /// Stage boundary: all previous work must complete before the next
    /// stage's *compute* (loads may still be double-buffered ahead).
    Barrier,
}

/// An instruction stream for one workload.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Program {
    /// The instructions, in program order.
    pub instrs: Vec<Instr>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends an instruction.
    pub fn push(&mut self, i: Instr) {
        self.instrs.push(i);
    }

    /// Number of stages (barrier-separated regions containing work).
    pub fn stage_count(&self) -> usize {
        let mut stages = 0;
        let mut has_work = false;
        for i in &self.instrs {
            match i {
                Instr::Barrier => {
                    if has_work {
                        stages += 1;
                        has_work = false;
                    }
                }
                _ => has_work = true,
            }
        }
        if has_work {
            stages += 1;
        }
        stages
    }

    /// Total bytes loaded from DRAM.
    pub fn total_load_bytes(&self) -> u64 {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Load { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Total bytes stored to DRAM.
    pub fn total_store_bytes(&self) -> u64 {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Store { bytes, .. } => Some(*bytes),
                _ => None,
            })
            .sum()
    }

    /// Total intrinsic invocations.
    pub fn total_calls(&self) -> u64 {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Compute { calls, .. } => Some(*calls),
                _ => None,
            })
            .sum()
    }

    /// Total MACs executed.
    pub fn total_macs(&self) -> u64 {
        self.instrs
            .iter()
            .filter_map(|i| match i {
                Instr::Compute { macs, .. } => Some(*macs),
                _ => None,
            })
            .sum()
    }
}

impl std::fmt::Display for Program {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "program: {} instrs, {} stages, {} calls, {} B in, {} B out",
            self.instrs.len(),
            self.stage_count(),
            self.total_calls(),
            self.total_load_bytes(),
            self.total_store_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(p: &mut Program, bytes: u64, calls: u64) {
        p.push(Instr::Load {
            tensor: "A".into(),
            bytes,
            contiguous_run: 64,
        });
        p.push(Instr::Compute {
            calls,
            macs: calls * 4096,
            spad_bytes: bytes,
        });
        p.push(Instr::Store {
            tensor: "C".into(),
            bytes: bytes / 4,
            contiguous_run: 64,
        });
        p.push(Instr::Barrier);
    }

    #[test]
    fn totals_accumulate() {
        let mut p = Program::new();
        stage(&mut p, 1024, 8);
        stage(&mut p, 2048, 16);
        assert_eq!(p.total_load_bytes(), 3072);
        assert_eq!(p.total_store_bytes(), 768);
        assert_eq!(p.total_calls(), 24);
        assert_eq!(p.total_macs(), 24 * 4096);
        assert_eq!(p.stage_count(), 2);
    }

    #[test]
    fn trailing_work_counts_as_stage() {
        let mut p = Program::new();
        p.push(Instr::Compute {
            calls: 1,
            macs: 10,
            spad_bytes: 0,
        });
        assert_eq!(p.stage_count(), 1);
    }

    #[test]
    fn empty_program_has_no_stages() {
        let p = Program::new();
        assert_eq!(p.stage_count(), 0);
        assert_eq!(p.total_calls(), 0);
    }

    #[test]
    fn consecutive_barriers_do_not_inflate_stages() {
        let mut p = Program::new();
        p.push(Instr::Barrier);
        p.push(Instr::Barrier);
        stage(&mut p, 64, 1);
        p.push(Instr::Barrier);
        assert_eq!(p.stage_count(), 1);
    }

    #[test]
    fn display_summarizes() {
        let mut p = Program::new();
        stage(&mut p, 1024, 8);
        let s = p.to_string();
        assert!(s.contains("1 stages") && s.contains("8 calls"));
    }
}
