//! Execution plans: the architecture-independent summary of a mapped
//! workload that the cost model prices.
//!
//! A software schedule (crate `sw-opt`) lowers to an [`ExecutionPlan`]; the
//! plan captures how much work and traffic the accelerator must perform —
//! intrinsic invocations, useful vs. padded MACs, per-tensor DRAM traffic
//! with contiguity information, scratchpad traffic, and any data
//! rearrangement bytes (im2col-style conversions or transposed tensorize
//! choices).

use serde::{Deserialize, Serialize};

/// DRAM traffic of one tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorTraffic {
    /// Tensor name (for reports).
    pub tensor: String,
    /// Total bytes moved between DRAM and the scratchpad.
    pub bytes: u64,
    /// Average contiguous run length in bytes; caps the effective DMA burst
    /// (non-contiguous tile slices cost one burst setup per run).
    pub avg_contiguous_run: u64,
}

impl TensorTraffic {
    /// Creates a traffic record.
    pub fn new(tensor: impl Into<String>, bytes: u64, avg_contiguous_run: u64) -> Self {
        TensorTraffic {
            tensor: tensor.into(),
            bytes,
            avg_contiguous_run: avg_contiguous_run.max(1),
        }
    }
}

/// The priced summary of one workload mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecutionPlan {
    /// Total hardware-intrinsic invocations.
    pub intrinsic_calls: u64,
    /// MACs the workload semantically requires.
    pub macs_useful: u64,
    /// MACs actually executed, including padding waste when workload
    /// extents do not divide the intrinsic tile.
    pub macs_padded: u64,
    /// Per-tensor DRAM read traffic.
    pub dram_reads: Vec<TensorTraffic>,
    /// Per-tensor DRAM write traffic.
    pub dram_writes: Vec<TensorTraffic>,
    /// Total scratchpad bytes moved between the scratchpad and the PEs.
    pub spad_traffic_bytes: u64,
    /// Bytes shuffled by data rearrangement (transpositions, window
    /// linearization, im2col conversions). Charged serially.
    pub rearrange_bytes: u64,
    /// Number of outer tile stages (DMA/compute double-buffer granularity).
    pub stages: u64,
    /// Whether the schedule double-buffers (tile fits twice in scratchpad).
    pub double_buffered: bool,
    /// Host-side loop-control/launch cycles (reduced by the `fuse`
    /// software primitive, which collapses outer loops into one launch
    /// loop).
    pub host_control_cycles: u64,
}

impl ExecutionPlan {
    /// A plan with compute work only — useful for unit tests and for
    /// microbenchmarks of the PE array.
    pub fn compute_only(macs_useful: u64, macs_padded: u64, intrinsic_calls: u64) -> Self {
        ExecutionPlan {
            intrinsic_calls,
            macs_useful,
            macs_padded: macs_padded.max(macs_useful),
            dram_reads: Vec::new(),
            dram_writes: Vec::new(),
            spad_traffic_bytes: 0,
            rearrange_bytes: 0,
            stages: 1,
            double_buffered: false,
            host_control_cycles: 0,
        }
    }

    /// Total DRAM bytes (reads + writes).
    pub fn dram_bytes(&self) -> u64 {
        self.dram_reads
            .iter()
            .chain(self.dram_writes.iter())
            .map(|t| t.bytes)
            .sum()
    }

    /// Fraction of executed MACs that are useful (1.0 = no padding waste).
    pub fn utilization(&self) -> f64 {
        if self.macs_padded == 0 {
            return 1.0;
        }
        self.macs_useful as f64 / self.macs_padded as f64
    }

    /// Merges another plan executed after this one (sequential stages of a
    /// multi-stage computation, e.g. the two MTTKRP stages or an im2col
    /// conversion followed by GEMM).
    pub fn then(&self, other: &ExecutionPlan) -> ExecutionPlan {
        let mut merged = self.clone();
        merged.intrinsic_calls += other.intrinsic_calls;
        merged.macs_useful += other.macs_useful;
        merged.macs_padded += other.macs_padded;
        merged.dram_reads.extend(other.dram_reads.iter().cloned());
        merged.dram_writes.extend(other.dram_writes.iter().cloned());
        merged.spad_traffic_bytes += other.spad_traffic_bytes;
        merged.rearrange_bytes += other.rearrange_bytes;
        merged.stages += other.stages;
        merged.double_buffered = self.double_buffered && other.double_buffered;
        merged.host_control_cycles += other.host_control_cycles;
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compute_only_clamps_padded() {
        let p = ExecutionPlan::compute_only(100, 50, 1);
        assert_eq!(p.macs_padded, 100);
        assert_eq!(p.utilization(), 1.0);
    }

    #[test]
    fn utilization_reflects_padding() {
        let p = ExecutionPlan::compute_only(75, 100, 1);
        assert!((p.utilization() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn utilization_of_empty_plan_is_one() {
        let p = ExecutionPlan::compute_only(0, 0, 0);
        assert_eq!(p.utilization(), 1.0);
    }

    #[test]
    fn dram_bytes_sums_reads_and_writes() {
        let mut p = ExecutionPlan::compute_only(1, 1, 1);
        p.dram_reads.push(TensorTraffic::new("A", 100, 10));
        p.dram_reads.push(TensorTraffic::new("B", 50, 50));
        p.dram_writes.push(TensorTraffic::new("C", 25, 25));
        assert_eq!(p.dram_bytes(), 175);
    }

    #[test]
    fn contiguous_run_is_clamped_to_one() {
        let t = TensorTraffic::new("A", 10, 0);
        assert_eq!(t.avg_contiguous_run, 1);
    }

    #[test]
    fn then_merges_sequentially() {
        let mut a = ExecutionPlan::compute_only(10, 20, 2);
        a.dram_reads.push(TensorTraffic::new("A", 100, 10));
        a.double_buffered = true;
        let mut b = ExecutionPlan::compute_only(5, 5, 1);
        b.dram_writes.push(TensorTraffic::new("C", 30, 30));
        b.rearrange_bytes = 7;
        b.double_buffered = true;
        let m = a.then(&b);
        assert_eq!(m.macs_useful, 15);
        assert_eq!(m.macs_padded, 25);
        assert_eq!(m.intrinsic_calls, 3);
        assert_eq!(m.dram_bytes(), 130);
        assert_eq!(m.rearrange_bytes, 7);
        assert_eq!(m.stages, 2);
        assert!(m.double_buffered);
    }
}
