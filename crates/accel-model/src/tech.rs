//! Technology constants for the energy/area models.
//!
//! Order-of-magnitude figures for a 28 nm process. Only *relative* behaviour
//! matters for reproducing the paper's trends (who wins, where crossovers
//! fall); the constants are deliberately round numbers.

use serde::{Deserialize, Serialize};

/// Per-operation energy and per-unit area constants.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TechParams {
    /// Energy per multiply-accumulate, picojoules.
    pub e_mac_pj: f64,
    /// Base scratchpad energy per byte accessed, picojoules (scaled with
    /// capacity by [`TechParams::spad_energy_per_byte`]).
    pub e_spad_base_pj: f64,
    /// Local (per-PE) memory energy per byte, picojoules.
    pub e_local_pj: f64,
    /// DRAM energy per byte, picojoules.
    pub e_dram_pj: f64,
    /// NoC energy per byte-hop, picojoules.
    pub e_hop_pj: f64,
    /// Data rearrangement energy per byte (shuffle network / CPU assist).
    pub e_rearrange_pj: f64,
    /// PE area, mm² (MAC + registers + control).
    pub a_pe_mm2: f64,
    /// SRAM area per KiB, mm².
    pub a_sram_mm2_per_kb: f64,
    /// Extra area fraction per additional scratchpad bank (periphery).
    pub bank_overhead_frac: f64,
    /// Fixed DMA engine area, mm².
    pub a_dma_mm2: f64,
    /// Fixed controller/decoder area, mm².
    pub a_ctrl_mm2: f64,
    /// Leakage power per mm², milliwatts.
    pub leakage_mw_per_mm2: f64,
    /// DMA fixed overhead per burst, cycles.
    pub burst_overhead_cycles: f64,
}

impl Default for TechParams {
    fn default() -> Self {
        TechParams {
            e_mac_pj: 0.8,
            e_spad_base_pj: 0.6,
            e_local_pj: 0.15,
            e_dram_pj: 16.0,
            e_hop_pj: 0.06,
            e_rearrange_pj: 4.0,
            a_pe_mm2: 0.012,
            a_sram_mm2_per_kb: 0.045,
            bank_overhead_frac: 0.03,
            a_dma_mm2: 0.25,
            a_ctrl_mm2: 0.35,
            leakage_mw_per_mm2: 6.0,
            burst_overhead_cycles: 18.0,
        }
    }
}

impl runtime::StableFingerprint for TechParams {
    // Every constant changes every backend's metrics, so all of them key
    // memoized evaluation results (a cache shared across a `--tech-sweep`
    // must never serve one node's prices for another's).
    fn fingerprint_into(&self, fp: &mut runtime::Fingerprinter) {
        for f in self.to_array() {
            fp.write_f64(f);
        }
    }
}

impl TechParams {
    /// Every constant in a fixed order — the one canonical flattening,
    /// shared by the fingerprint and the persisted surrogate-store image
    /// ([`TechParams::from_array`] is its inverse). Extending the struct
    /// means extending both, which also versions every derived
    /// fingerprint.
    pub fn to_array(&self) -> [f64; 13] {
        [
            self.e_mac_pj,
            self.e_spad_base_pj,
            self.e_local_pj,
            self.e_dram_pj,
            self.e_hop_pj,
            self.e_rearrange_pj,
            self.a_pe_mm2,
            self.a_sram_mm2_per_kb,
            self.bank_overhead_frac,
            self.a_dma_mm2,
            self.a_ctrl_mm2,
            self.leakage_mw_per_mm2,
            self.burst_overhead_cycles,
        ]
    }

    /// Rebuilds the constants from [`TechParams::to_array`]'s flattening.
    pub fn from_array(a: [f64; 13]) -> TechParams {
        TechParams {
            e_mac_pj: a[0],
            e_spad_base_pj: a[1],
            e_local_pj: a[2],
            e_dram_pj: a[3],
            e_hop_pj: a[4],
            e_rearrange_pj: a[5],
            a_pe_mm2: a[6],
            a_sram_mm2_per_kb: a[7],
            bank_overhead_frac: a[8],
            a_dma_mm2: a[9],
            a_ctrl_mm2: a[10],
            leakage_mw_per_mm2: a[11],
            burst_overhead_cycles: a[12],
        }
    }

    /// The named technology profiles swept by `--tech-sweep`: the default
    /// 28 nm constants plus a denser and an older node, scaled with the
    /// usual first-order trends (dynamic energy and area shrink faster
    /// than leakage improves; DRAM interface energy moves least).
    pub fn profiles() -> [(&'static str, TechParams); 3] {
        let base = TechParams::default();
        let scaled = |energy: f64, dram: f64, area: f64, leak: f64, burst: f64| TechParams {
            e_mac_pj: base.e_mac_pj * energy,
            e_spad_base_pj: base.e_spad_base_pj * energy,
            e_local_pj: base.e_local_pj * energy,
            e_dram_pj: base.e_dram_pj * dram,
            e_hop_pj: base.e_hop_pj * energy,
            e_rearrange_pj: base.e_rearrange_pj * energy,
            a_pe_mm2: base.a_pe_mm2 * area,
            a_sram_mm2_per_kb: base.a_sram_mm2_per_kb * area,
            bank_overhead_frac: base.bank_overhead_frac,
            a_dma_mm2: base.a_dma_mm2 * area,
            a_ctrl_mm2: base.a_ctrl_mm2 * area,
            leakage_mw_per_mm2: base.leakage_mw_per_mm2 * leak,
            burst_overhead_cycles: (base.burst_overhead_cycles * burst).round(),
        };
        [
            ("28nm", base.clone()),
            ("16nm", scaled(0.55, 0.80, 0.45, 0.85, 0.75)),
            ("40nm", scaled(1.80, 1.25, 1.90, 1.40, 1.35)),
        ]
    }

    /// Scratchpad energy per byte for a given capacity: grows with the
    /// square root of capacity (longer word/bit lines), normalized so a
    /// 128 KiB scratchpad costs exactly [`TechParams::e_spad_base_pj`].
    pub fn spad_energy_per_byte(&self, capacity_bytes: u64) -> f64 {
        let kb = (capacity_bytes as f64 / 1024.0).max(1.0);
        self.e_spad_base_pj * (kb / 128.0).sqrt().max(0.25)
    }

    /// Area of a scratchpad with the given capacity and bank count.
    pub fn spad_area_mm2(&self, capacity_bytes: u64, banks: u32) -> f64 {
        let kb = capacity_bytes as f64 / 1024.0;
        let base = kb * self.a_sram_mm2_per_kb;
        base * (1.0 + self.bank_overhead_frac * banks.saturating_sub(1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spad_energy_grows_with_capacity() {
        let t = TechParams::default();
        let small = t.spad_energy_per_byte(64 * 1024);
        let big = t.spad_energy_per_byte(1024 * 1024);
        assert!(big > small);
        assert!((t.spad_energy_per_byte(128 * 1024) - t.e_spad_base_pj).abs() < 1e-12);
    }

    #[test]
    fn spad_energy_has_floor() {
        let t = TechParams::default();
        assert!(t.spad_energy_per_byte(1) >= t.e_spad_base_pj * 0.25);
    }

    #[test]
    fn banking_adds_area() {
        let t = TechParams::default();
        let a1 = t.spad_area_mm2(256 * 1024, 1);
        let a8 = t.spad_area_mm2(256 * 1024, 8);
        assert!(a8 > a1);
        assert!((a8 / a1 - 1.21).abs() < 1e-9); // 7 extra banks * 3 %
    }

    #[test]
    fn defaults_are_positive() {
        let t = TechParams::default();
        assert!(t.e_mac_pj > 0.0 && t.e_dram_pj > t.e_spad_base_pj);
        assert!(t.a_pe_mm2 > 0.0 && t.leakage_mw_per_mm2 > 0.0);
    }

    #[test]
    fn array_round_trip_is_exact() {
        for (name, t) in TechParams::profiles() {
            assert_eq!(TechParams::from_array(t.to_array()), t, "{name}");
        }
    }

    #[test]
    fn profiles_are_distinct_and_ordered_by_node() {
        use runtime::StableFingerprint;
        let profiles = TechParams::profiles();
        assert_eq!(profiles[0].1, TechParams::default());
        let fps: Vec<_> = profiles.iter().map(|(_, t)| t.fingerprint()).collect();
        assert!(fps[0] != fps[1] && fps[1] != fps[2] && fps[0] != fps[2]);
        let mac = |i: usize| profiles[i].1.e_mac_pj;
        assert!(mac(1) < mac(0) && mac(0) < mac(2), "denser node = less pJ");
    }
}
