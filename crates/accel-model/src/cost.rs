//! The analytical cost model: latency + energy + area → [`Metrics`].
//!
//! Latency decomposes into three engines that can overlap:
//!
//! * **compute** — `macs_padded / PEs` streaming cycles plus a per-call
//!   pipeline fill/drain overhead that depends on the interconnect (a
//!   systolic array pays `rows + cols` per invocation, so over-provisioned
//!   arrays on small workloads *lose* latency — the effect visible in the
//!   paper's Fig. 9(a));
//! * **scratchpad** — PE-side traffic at one word per bank per cycle;
//! * **DMA** — per-tensor burst traffic, where non-contiguous tile slices
//!   cap the effective burst length (tensorize choice `b` of Fig. 7(c)).
//!
//! With double buffering the slowest engine hides the others (plus a small
//! imbalance tax); without it the phases serialize.

use crate::arch::{AcceleratorConfig, Dataflow, Interconnect};
use crate::area;
use crate::energy;
use crate::metrics::Metrics;
use crate::plan::ExecutionPlan;
use crate::tech::TechParams;

/// The analytical model with its technology constants.
#[derive(Debug, Clone, Default)]
pub struct CostModel {
    /// Technology constants used for energy/area.
    pub tech: TechParams,
}

impl CostModel {
    /// Creates a model with explicit technology parameters.
    pub fn new(tech: TechParams) -> Self {
        CostModel { tech }
    }

    /// Per-intrinsic-call pipeline fill/drain overhead in cycles.
    pub fn call_overhead_cycles(&self, cfg: &AcceleratorConfig) -> f64 {
        let rows = cfg.pe.rows as f64;
        let cols = cfg.pe.cols as f64;
        // 1-D vector engines load their lanes in parallel from the wide
        // scratchpad port; only 2-D systolic arrays pay the diagonal
        // fill/drain wavefront.
        if cfg.pe.is_linear() && cfg.interconnect != Interconnect::None {
            return (cfg.pes() as f64).log2().max(1.0) + 4.0;
        }
        match cfg.interconnect {
            // No forwarding links: operands are re-fetched from the
            // scratchpad and results drained one PE at a time.
            Interconnect::None => 2.0 * (rows + cols),
            Interconnect::Systolic => rows + cols,
            Interconnect::Full => (cfg.pes() as f64).log2().max(1.0) + 2.0,
        }
    }

    /// Streaming efficiency of the PE array (1.0 = one MAC per PE per
    /// cycle).
    pub fn stream_efficiency(&self, cfg: &AcceleratorConfig) -> f64 {
        let base = match cfg.interconnect {
            Interconnect::None => 0.5, // operand fetch serializes
            Interconnect::Systolic => 1.0,
            Interconnect::Full => 1.0,
        };
        base * self.dataflow_efficiency(cfg)
    }

    /// Small dataflow/intrinsic affinity factor: a dataflow that keeps the
    /// dominant-reuse operand stationary wastes fewer cycles re-staging it.
    pub fn dataflow_efficiency(&self, cfg: &AcceleratorConfig) -> f64 {
        use tensor_ir::intrinsics::IntrinsicKind as K;
        match (cfg.intrinsic, cfg.dataflow) {
            (K::Gemm, Dataflow::OutputStationary) => 1.0,
            (K::Gemm, Dataflow::WeightStationary) => 0.95,
            (K::Gemm, Dataflow::InputStationary) => 0.92,
            (K::Conv2d, Dataflow::WeightStationary) => 1.0,
            (K::Conv2d, Dataflow::OutputStationary) => 0.96,
            (K::Conv2d, Dataflow::InputStationary) => 0.9,
            (K::Gemv, Dataflow::OutputStationary) => 1.0,
            (K::Gemv, _) => 0.93,
            (K::Dot, _) => 1.0,
        }
    }

    /// Compute-engine cycles for a plan.
    pub fn compute_cycles(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> f64 {
        let stream =
            plan.macs_padded as f64 / (cfg.pes() as f64 * self.stream_efficiency(cfg)).max(1e-9);
        stream + plan.intrinsic_calls as f64 * self.call_overhead_cycles(cfg)
    }

    /// Scratchpad-engine cycles (PE-side traffic through the banks; the
    /// share served by local memories does not occupy bank bandwidth).
    pub fn spad_cycles(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> f64 {
        let local = energy::local_service_fraction(cfg);
        plan.spad_traffic_bytes as f64 * (1.0 - local) / cfg.spad_bytes_per_cycle().max(1e-9)
    }

    /// DMA-engine cycles: Σ per tensor of burst setups + wire time.
    pub fn dma_cycles(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> f64 {
        let mut cycles = 0.0;
        for t in plan.dram_reads.iter().chain(plan.dram_writes.iter()) {
            // One descriptor setup per contiguous run; runs shorter than the
            // configured burst still pay a full setup, longer runs amortize
            // it across `run / burst` back-to-back beats at ~no extra cost.
            let run = t.avg_contiguous_run.max(1).max(cfg.dma_burst_bytes.min(8));
            let setups = (t.bytes as f64 / run as f64).ceil();
            cycles += setups * self.tech.burst_overhead_cycles
                + t.bytes as f64 / cfg.bus_bytes_per_cycle();
        }
        cycles
    }

    /// Serial data-rearrangement cycles (round trip through the bus plus a
    /// shuffle cost).
    pub fn rearrange_cycles(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> f64 {
        if plan.rearrange_bytes == 0 {
            return 0.0;
        }
        // Rearrangement is a host-side elementwise gather: a round trip
        // over the bus plus ~1 cycle per two bytes of shuffled data.
        let wire = 2.0 * plan.rearrange_bytes as f64 / cfg.bus_bytes_per_cycle();
        let shuffle = plan.rearrange_bytes as f64 / 2.0;
        wire + shuffle
    }

    /// Total latency in cycles.
    pub fn latency_cycles(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> f64 {
        let compute = self.compute_cycles(cfg, plan);
        let spad = self.spad_cycles(cfg, plan);
        let dma = self.dma_cycles(cfg, plan);
        let onchip = compute.max(spad);
        let overlapped = if plan.double_buffered {
            // The slower engine hides the faster, modulo a per-stage
            // imbalance tax and a one-stage prologue.
            let prologue = if plan.stages > 0 {
                dma / plan.stages as f64
            } else {
                0.0
            };
            onchip.max(dma) + 0.1 * onchip.min(dma) + prologue
        } else {
            onchip + dma
        };
        overlapped + self.rearrange_cycles(cfg, plan) + plan.host_control_cycles as f64
    }

    /// Full evaluation: latency, energy, power, area, throughput.
    pub fn evaluate(&self, cfg: &AcceleratorConfig, plan: &ExecutionPlan) -> Metrics {
        let latency_cycles = self.latency_cycles(cfg, plan).max(1.0);
        let latency_ms = cfg.cycles_to_ms(latency_cycles);
        let dyn_e = energy::dynamic_energy(cfg, plan, &self.tech);
        let area_mm2 = area::area(cfg, &self.tech).total_mm2();
        let leak_mw = area_mm2 * self.tech.leakage_mw_per_mm2;
        // pJ → µJ, ms → s: power(mW) = energy(µJ) / time(ms).
        let dyn_uj = dyn_e.total_pj() / 1e6;
        let leak_uj = leak_mw * latency_ms;
        let energy_uj = dyn_uj + leak_uj;
        let power_mw = energy_uj / latency_ms;
        let throughput_mops = if latency_ms > 0.0 {
            (2.0 * plan.macs_useful as f64) / (latency_ms * 1e3)
        } else {
            0.0
        };
        Metrics {
            latency_cycles,
            latency_ms,
            energy_uj,
            power_mw,
            area_mm2,
            throughput_mops,
            utilization: plan.utilization(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::TensorTraffic;
    use tensor_ir::intrinsics::IntrinsicKind;

    fn cfg(rows: u32, cols: u32) -> AcceleratorConfig {
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .pe_array(rows, cols)
            .build()
            .unwrap()
    }

    fn traffic_plan() -> ExecutionPlan {
        let mut p = ExecutionPlan::compute_only(4_000_000, 4_200_000, 1000);
        p.dram_reads.push(TensorTraffic::new("A", 512_000, 128));
        p.dram_reads.push(TensorTraffic::new("B", 512_000, 128));
        p.dram_writes.push(TensorTraffic::new("C", 128_000, 128));
        p.spad_traffic_bytes = 2_000_000;
        p.stages = 50;
        p.double_buffered = true;
        p
    }

    /// A plan whose latency is dominated by the PE array, not memory.
    fn compute_bound_plan() -> ExecutionPlan {
        let mut p = ExecutionPlan::compute_only(40_000_000, 40_000_000, 1000);
        p.dram_reads.push(TensorTraffic::new("A", 100_000, 128));
        p.dram_writes.push(TensorTraffic::new("C", 50_000, 128));
        p.spad_traffic_bytes = 500_000;
        p.stages = 50;
        p.double_buffered = true;
        p
    }

    #[test]
    fn more_pes_speed_up_large_work() {
        let m = CostModel::default();
        let p = compute_bound_plan();
        let small = m.latency_cycles(&cfg(8, 8), &p);
        let big = m.latency_cycles(&cfg(16, 16), &p);
        assert!(big < small);
    }

    #[test]
    fn call_overhead_punishes_overprovisioned_arrays() {
        // Small workload, many calls: a 32x32 array pays more fill/drain
        // than it gains — the Fig. 9(a) effect.
        let m = CostModel::default();
        let mut p = ExecutionPlan::compute_only(50_000, 50_000, 2000);
        p.spad_traffic_bytes = 10_000;
        let lat16 = m.latency_cycles(&cfg(16, 16), &p);
        // On the 32x32 array the same tiles are mostly padding: 4X the
        // executed MACs, same call count.
        let mut p32 = p.clone();
        p32.macs_padded = 200_000;
        let lat32 = m.latency_cycles(&cfg(32, 32), &p32);
        assert!(
            lat32 > lat16,
            "over-provisioned array should be slower: {lat32} vs {lat16}"
        );
    }

    #[test]
    fn banks_increase_spad_bandwidth() {
        let m = CostModel::default();
        let mut one = cfg(16, 16);
        one.banks = 1;
        let mut eight = cfg(16, 16);
        eight.banks = 8;
        let p = traffic_plan();
        assert!(m.spad_cycles(&eight, &p) < m.spad_cycles(&one, &p));
    }

    #[test]
    fn non_contiguous_traffic_costs_more_dma() {
        let m = CostModel::default();
        let c = cfg(16, 16);
        let mut contig = ExecutionPlan::compute_only(1, 1, 1);
        contig
            .dram_reads
            .push(TensorTraffic::new("A", 1_000_000, 256));
        let mut strided = ExecutionPlan::compute_only(1, 1, 1);
        strided
            .dram_reads
            .push(TensorTraffic::new("A", 1_000_000, 8));
        assert!(m.dma_cycles(&c, &strided) > 2.0 * m.dma_cycles(&c, &contig));
    }

    #[test]
    fn double_buffering_hides_dma() {
        let m = CostModel::default();
        let c = cfg(16, 16);
        let mut serial = traffic_plan();
        serial.double_buffered = false;
        let buffered = traffic_plan();
        assert!(m.latency_cycles(&c, &buffered) < m.latency_cycles(&c, &serial));
    }

    #[test]
    fn rearrangement_adds_serial_latency() {
        let m = CostModel::default();
        let c = cfg(16, 16);
        let base = traffic_plan();
        let mut with_rearrange = traffic_plan();
        with_rearrange.rearrange_bytes = 4_000_000;
        assert!(m.latency_cycles(&c, &with_rearrange) > m.latency_cycles(&c, &base));
    }

    #[test]
    fn evaluate_produces_consistent_metrics() {
        let m = CostModel::default();
        let c = cfg(16, 16);
        let metrics = m.evaluate(&c, &traffic_plan());
        assert!(metrics.latency_ms > 0.0);
        assert!(metrics.power_mw > 0.0);
        assert!(metrics.area_mm2 > 0.0);
        assert!(metrics.throughput_mops > 0.0);
        assert!((0.9..1.0).contains(&metrics.utilization));
        // Energy must equal power * time.
        assert!((metrics.energy_uj - metrics.power_mw * metrics.latency_ms).abs() < 1e-6);
    }

    #[test]
    fn systolic_beats_unconnected_array() {
        let m = CostModel::default();
        let p = compute_bound_plan();
        let sys = cfg(16, 16);
        let mut none = cfg(16, 16);
        none.interconnect = Interconnect::None;
        assert!(m.latency_cycles(&sys, &p) < m.latency_cycles(&none, &p));
    }

    #[test]
    fn ga_l_vs_ga_s_power_and_throughput_shape() {
        // §II-C: GA_L (16x16, 256 KB) vs GA_S (8x8, 128 KB): more area, more
        // power, higher peak throughput.
        let m = CostModel::default();
        let ga_l = cfg(16, 16);
        let mut ga_s = cfg(8, 8);
        ga_s.scratchpad_bytes = 128 * 1024;
        let p = compute_bound_plan();
        let ml = m.evaluate(&ga_l, &p);
        let ms = m.evaluate(&ga_s, &p);
        assert!(ml.area_mm2 > ms.area_mm2);
        assert!(ml.throughput_mops > ms.throughput_mops);
        assert!(ml.power_mw > ms.power_mw);
    }

    #[test]
    fn latency_is_at_least_one_cycle() {
        let m = CostModel::default();
        let metrics = m.evaluate(&cfg(16, 16), &ExecutionPlan::compute_only(0, 0, 0));
        assert!(metrics.latency_cycles >= 1.0);
    }
}
