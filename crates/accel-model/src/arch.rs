//! Accelerator configurations — the template of the paper's Fig. 1.

use crate::ArchError;
use runtime::{Fingerprinter, StableFingerprint};
use serde::{Deserialize, Serialize};
use tensor_ir::intrinsics::{self, Intrinsic, IntrinsicKind};

/// Interconnection pattern between PEs (the `linkPEs` primitive of Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Interconnect {
    /// No PE-to-PE links; all operands come from the scratchpad.
    None,
    /// Systolic nearest-neighbor links (data flows through the array).
    Systolic,
    /// Full crossbar between PEs.
    Full,
}

impl std::fmt::Display for Interconnect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Interconnect::None => write!(f, "none"),
            Interconnect::Systolic => write!(f, "systolic"),
            Interconnect::Full => write!(f, "full"),
        }
    }
}

/// How tensors are distributed and reused across the PE array \[41\].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Dataflow {
    /// Outputs stay in PE registers; inputs stream.
    OutputStationary,
    /// Weights (second operand) pinned in PEs.
    WeightStationary,
    /// Inputs (first operand) pinned in PEs.
    InputStationary,
}

impl Dataflow {
    /// All supported dataflows.
    pub const ALL: [Dataflow; 3] = [
        Dataflow::OutputStationary,
        Dataflow::WeightStationary,
        Dataflow::InputStationary,
    ];
}

impl std::fmt::Display for Dataflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Dataflow::OutputStationary => write!(f, "output-stationary"),
            Dataflow::WeightStationary => write!(f, "weight-stationary"),
            Dataflow::InputStationary => write!(f, "input-stationary"),
        }
    }
}

/// Shape of the PE array (`reshapeArray` primitive). A 1-D array has
/// `rows == 1` or `cols == 1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PeArray {
    /// Number of PE rows.
    pub rows: u32,
    /// Number of PE columns.
    pub cols: u32,
}

impl PeArray {
    /// Creates a PE array shape.
    pub fn new(rows: u32, cols: u32) -> Self {
        PeArray { rows, cols }
    }

    /// Total PE count.
    pub fn count(&self) -> u64 {
        self.rows as u64 * self.cols as u64
    }

    /// True when the array is one-dimensional.
    pub fn is_linear(&self) -> bool {
        self.rows == 1 || self.cols == 1
    }
}

impl std::fmt::Display for PeArray {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

/// A complete spatial accelerator instance (one point of the hardware design
/// space). Construct through [`AcceleratorConfig::builder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorConfig {
    /// Display name of the instance.
    pub name: String,
    /// The hardware intrinsic family this accelerator implements.
    pub intrinsic: IntrinsicKind,
    /// PE array shape.
    pub pe: PeArray,
    /// PE interconnect pattern.
    pub interconnect: Interconnect,
    /// Dataflow.
    pub dataflow: Dataflow,
    /// Shared scratchpad capacity in bytes (`addCache`).
    pub scratchpad_bytes: u64,
    /// Scratchpad bank count (`partitionBanks`).
    pub banks: u32,
    /// Per-PE local memory in bytes (`distributeCache`), 0 if none.
    pub local_mem_bytes: u64,
    /// DMA burst length in bytes (`burstTransfer`).
    pub dma_burst_bytes: u64,
    /// DRAM bus width in bits (`burstTransfer`).
    pub bus_width_bits: u32,
    /// Clock frequency in MHz.
    pub freq_mhz: u64,
    /// Element size in bytes.
    pub dtype_bytes: u64,
}

impl AcceleratorConfig {
    /// Starts a builder for the given intrinsic kind with the defaults of
    /// the paper's Listing 2 (systolic, 256 KB scratchpad, 64 B bursts,
    /// 128-bit bus).
    pub fn builder(intrinsic: IntrinsicKind) -> AcceleratorConfigBuilder {
        AcceleratorConfigBuilder::new(intrinsic)
    }

    /// Total PE count.
    pub fn pes(&self) -> u64 {
        self.pe.count()
    }

    /// The concrete intrinsic computation this configuration implements:
    /// the intrinsic geometry is derived from the PE array shape (the
    /// `reshapeArray` primitive "specifies the PE array shape and the
    /// intrinsic size").
    pub fn intrinsic_comp(&self) -> Intrinsic {
        let (r, c) = (self.pe.rows as u64, self.pe.cols as u64);
        // Spatial engines stream their reduction dimension deep per call
        // (Gemmini-style systolic arrays take the full k stream; GEMV
        // engines stream long vectors) — the spatial extents come from the
        // PE array shape, the reduction depth is a fixed 64/128-element
        // stream.
        match self.intrinsic {
            IntrinsicKind::Dot => intrinsics::dot_intrinsic(self.pes()),
            IntrinsicKind::Gemv => intrinsics::gemv_intrinsic(self.pes(), 128),
            IntrinsicKind::Gemm => intrinsics::gemm_intrinsic(r, 128, c),
            IntrinsicKind::Conv2d => intrinsics::conv2d_intrinsic(r, c, 3, 3),
        }
    }

    /// DRAM bus bandwidth in bytes per cycle.
    pub fn bus_bytes_per_cycle(&self) -> f64 {
        self.bus_width_bits as f64 / 8.0
    }

    /// Scratchpad bandwidth in bytes per cycle: each bank port delivers a
    /// PE-array-row-wide word per cycle (as Gemmini-style scratchpads do),
    /// so bandwidth scales with both the bank count and the array width.
    pub fn spad_bytes_per_cycle(&self) -> f64 {
        let row_width = self.pe.rows.max(self.pe.cols) as f64;
        self.banks as f64 * self.dtype_bytes as f64 * row_width
    }

    /// Converts cycles to milliseconds at the configured frequency.
    pub fn cycles_to_ms(&self, cycles: f64) -> f64 {
        cycles / (self.freq_mhz as f64 * 1e3)
    }

    /// Validates the configuration invariants.
    ///
    /// # Errors
    /// Returns an [`ArchError`] describing the first violation.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.pe.rows == 0 || self.pe.cols == 0 {
            return Err(ArchError::EmptyPeArray);
        }
        if self.scratchpad_bytes < self.banks as u64 * self.dtype_bytes {
            return Err(ArchError::ScratchpadTooSmall {
                bytes: self.scratchpad_bytes,
            });
        }
        if self.banks == 0 {
            return Err(ArchError::BadBankCount { banks: self.banks });
        }
        if self.dma_burst_bytes == 0 {
            return Err(ArchError::ZeroBurst);
        }
        if self.bus_width_bits == 0 || !self.bus_width_bits.is_multiple_of(8) {
            return Err(ArchError::BadBusWidth {
                bits: self.bus_width_bits,
            });
        }
        Ok(())
    }
}

impl StableFingerprint for AcceleratorConfig {
    // Every field the cost model or lowering can observe, in declaration
    // order; the display name is cosmetic and deliberately excluded so
    // renamed copies of one configuration share memoized evaluations.
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        self.intrinsic.fingerprint_into(fp);
        fp.write_u32(self.pe.rows);
        fp.write_u32(self.pe.cols);
        fp.write_u32(match self.interconnect {
            Interconnect::None => 0,
            Interconnect::Systolic => 1,
            Interconnect::Full => 2,
        });
        fp.write_u32(match self.dataflow {
            Dataflow::OutputStationary => 0,
            Dataflow::WeightStationary => 1,
            Dataflow::InputStationary => 2,
        });
        fp.write_u64(self.scratchpad_bytes);
        fp.write_u32(self.banks);
        fp.write_u64(self.local_mem_bytes);
        fp.write_u64(self.dma_burst_bytes);
        fp.write_u32(self.bus_width_bits);
        fp.write_u64(self.freq_mhz);
        fp.write_u64(self.dtype_bytes);
    }
}

impl std::fmt::Display for AcceleratorConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} [{} {} PEs, {} KB spad x{} banks, {} dataflow]",
            self.name,
            self.intrinsic,
            self.pe,
            self.scratchpad_bytes / 1024,
            self.banks,
            self.dataflow
        )
    }
}

/// Builder for [`AcceleratorConfig`] (non-consuming terminal per the Rust
/// API guidelines).
#[derive(Debug, Clone)]
pub struct AcceleratorConfigBuilder {
    cfg: AcceleratorConfig,
}

impl AcceleratorConfigBuilder {
    fn new(intrinsic: IntrinsicKind) -> Self {
        AcceleratorConfigBuilder {
            cfg: AcceleratorConfig {
                name: format!("{intrinsic}-accel"),
                intrinsic,
                pe: PeArray::new(16, 16),
                interconnect: Interconnect::Systolic,
                dataflow: Dataflow::OutputStationary,
                scratchpad_bytes: 256 * 1024,
                banks: 4,
                local_mem_bytes: 0,
                dma_burst_bytes: 64,
                bus_width_bits: 128,
                freq_mhz: 500,
                dtype_bytes: 2,
            },
        }
    }

    /// Sets the instance name.
    pub fn name(&mut self, name: impl Into<String>) -> &mut Self {
        self.cfg.name = name.into();
        self
    }

    /// Sets the PE array shape (`reshapeArray`).
    pub fn pe_array(&mut self, rows: u32, cols: u32) -> &mut Self {
        self.cfg.pe = PeArray::new(rows, cols);
        self
    }

    /// Sets the interconnect pattern (`linkPEs`).
    pub fn interconnect(&mut self, i: Interconnect) -> &mut Self {
        self.cfg.interconnect = i;
        self
    }

    /// Sets the dataflow.
    pub fn dataflow(&mut self, d: Dataflow) -> &mut Self {
        self.cfg.dataflow = d;
        self
    }

    /// Sets the scratchpad size in KiB (`addCache`).
    pub fn scratchpad_kb(&mut self, kb: u64) -> &mut Self {
        self.cfg.scratchpad_bytes = kb * 1024;
        self
    }

    /// Sets the scratchpad bank count (`partitionBanks`).
    pub fn banks(&mut self, banks: u32) -> &mut Self {
        self.cfg.banks = banks;
        self
    }

    /// Sets the per-PE local memory in bytes (`distributeCache`).
    pub fn local_mem_bytes(&mut self, bytes: u64) -> &mut Self {
        self.cfg.local_mem_bytes = bytes;
        self
    }

    /// Sets DMA burst length and bus width (`burstTransfer`).
    pub fn dma(&mut self, burst_bytes: u64, bus_width_bits: u32) -> &mut Self {
        self.cfg.dma_burst_bytes = burst_bytes;
        self.cfg.bus_width_bits = bus_width_bits;
        self
    }

    /// Sets the clock frequency in MHz.
    pub fn freq_mhz(&mut self, mhz: u64) -> &mut Self {
        self.cfg.freq_mhz = mhz;
        self
    }

    /// Sets the element size in bytes.
    pub fn dtype_bytes(&mut self, bytes: u64) -> &mut Self {
        self.cfg.dtype_bytes = bytes;
        self
    }

    /// Validates and returns the configuration.
    ///
    /// # Errors
    /// Returns [`ArchError`] if an invariant is violated.
    pub fn build(&self) -> Result<AcceleratorConfig, ArchError> {
        self.cfg.validate()?;
        Ok(self.cfg.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_listing2_like() {
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap();
        assert_eq!(cfg.pe.count(), 256);
        assert_eq!(cfg.scratchpad_bytes, 256 * 1024);
        assert_eq!(cfg.interconnect, Interconnect::Systolic);
    }

    #[test]
    fn builder_is_chainable() {
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemv)
            .name("ga_s")
            .pe_array(8, 8)
            .scratchpad_kb(128)
            .banks(2)
            .local_mem_bytes(512)
            .dma(128, 256)
            .freq_mhz(200)
            .dtype_bytes(4)
            .dataflow(Dataflow::WeightStationary)
            .interconnect(Interconnect::Full)
            .build()
            .unwrap();
        assert_eq!(cfg.name, "ga_s");
        assert_eq!(cfg.pes(), 64);
        assert_eq!(cfg.bus_bytes_per_cycle(), 32.0);
        // 2 banks x 4 B x 8-wide array rows.
        assert_eq!(cfg.spad_bytes_per_cycle(), 64.0);
    }

    #[test]
    fn intrinsic_geometry_follows_pe_array() {
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .pe_array(8, 4)
            .build()
            .unwrap();
        let intr = cfg.intrinsic_comp();
        let i = intr.comp.index_by_name("i").unwrap();
        let j = intr.comp.index_by_name("j").unwrap();
        assert_eq!(intr.comp.index(i).extent, 8);
        assert_eq!(intr.comp.index(j).extent, 4);
    }

    #[test]
    fn dot_intrinsic_uses_all_pes() {
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Dot)
            .pe_array(1, 64)
            .build()
            .unwrap();
        assert_eq!(cfg.intrinsic_comp().macs_per_call(), 64);
        assert!(cfg.pe.is_linear());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        assert_eq!(
            AcceleratorConfig::builder(IntrinsicKind::Gemm)
                .pe_array(0, 4)
                .build()
                .unwrap_err(),
            ArchError::EmptyPeArray
        );
        assert!(matches!(
            AcceleratorConfig::builder(IntrinsicKind::Gemm)
                .banks(0)
                .build()
                .unwrap_err(),
            ArchError::BadBankCount { .. }
        ));
        assert_eq!(
            AcceleratorConfig::builder(IntrinsicKind::Gemm)
                .dma(0, 128)
                .build()
                .unwrap_err(),
            ArchError::ZeroBurst
        );
        assert!(matches!(
            AcceleratorConfig::builder(IntrinsicKind::Gemm)
                .dma(64, 12)
                .build()
                .unwrap_err(),
            ArchError::BadBusWidth { .. }
        ));
    }

    #[test]
    fn cycles_to_ms_uses_frequency() {
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .freq_mhz(1000)
            .build()
            .unwrap();
        assert!((cfg.cycles_to_ms(1_000_000.0) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn display_is_informative() {
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap();
        let s = cfg.to_string();
        assert!(s.contains("16x16"));
        assert!(s.contains("256 KB"));
    }
}
