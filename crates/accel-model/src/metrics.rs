//! Performance metrics returned by the cost model and the simulator.

use serde::{Deserialize, Serialize};

/// Latency, power, area, and derived metrics of one evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// End-to-end latency in accelerator cycles.
    pub latency_cycles: f64,
    /// End-to-end latency in milliseconds at the configured frequency.
    pub latency_ms: f64,
    /// Total dynamic + leakage energy, microjoules.
    pub energy_uj: f64,
    /// Average power, milliwatts.
    pub power_mw: f64,
    /// Accelerator area, mm².
    pub area_mm2: f64,
    /// Useful throughput, MOPS (2 ops per useful MAC over wall time).
    pub throughput_mops: f64,
    /// Useful-MAC fraction (1.0 = no padding waste).
    pub utilization: f64,
}

impl Metrics {
    /// The three objectives of the hardware DSE (§V-B), all to be
    /// *minimized*: latency (cycles), power (mW), area (mm²).
    pub fn objectives(&self) -> [f64; 3] {
        [self.latency_cycles, self.power_mw, self.area_mm2]
    }

    /// Pareto dominance on (latency, power, area): true if `self` is no
    /// worse in all objectives and strictly better in at least one.
    pub fn dominates(&self, other: &Metrics) -> bool {
        let a = self.objectives();
        let b = other.objectives();
        let mut strictly = false;
        for i in 0..3 {
            if a[i] > b[i] {
                return false;
            }
            if a[i] < b[i] {
                strictly = true;
            }
        }
        strictly
    }

    /// Sums latency/energy across sequentially executed workloads sharing
    /// one accelerator (area is unchanged; power re-averaged).
    pub fn sequential(parts: &[Metrics]) -> Metrics {
        assert!(!parts.is_empty(), "sequential() needs at least one part");
        let latency_cycles: f64 = parts.iter().map(|m| m.latency_cycles).sum();
        let latency_ms: f64 = parts.iter().map(|m| m.latency_ms).sum();
        let energy_uj: f64 = parts.iter().map(|m| m.energy_uj).sum();
        let area_mm2 = parts.iter().map(|m| m.area_mm2).fold(0.0, f64::max);
        let power_mw = if latency_ms > 0.0 {
            energy_uj / latency_ms
        } else {
            0.0
        };
        let total_util: f64 = parts
            .iter()
            .map(|m| m.utilization * m.latency_cycles)
            .sum::<f64>();
        let utilization = if latency_cycles > 0.0 {
            total_util / latency_cycles
        } else {
            1.0
        };
        let ops: f64 = parts.iter().map(|m| m.throughput_mops * m.latency_ms).sum();
        let throughput_mops = if latency_ms > 0.0 {
            ops / latency_ms
        } else {
            0.0
        };
        Metrics {
            latency_cycles,
            latency_ms,
            energy_uj,
            power_mw,
            area_mm2,
            throughput_mops,
            utilization,
        }
    }
}

impl std::fmt::Display for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "latency {:.3} ms ({:.0} cycles), power {:.1} mW, area {:.2} mm2, {:.1} MOPS, util {:.0}%",
            self.latency_ms,
            self.latency_cycles,
            self.power_mw,
            self.area_mm2,
            self.throughput_mops,
            self.utilization * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(lat: f64, pow: f64, area: f64) -> Metrics {
        Metrics {
            latency_cycles: lat,
            latency_ms: lat / 1e6,
            energy_uj: pow * lat / 1e6,
            power_mw: pow,
            area_mm2: area,
            throughput_mops: 1.0,
            utilization: 1.0,
        }
    }

    #[test]
    fn dominance_requires_strict_improvement() {
        let a = m(1.0, 1.0, 1.0);
        let b = m(1.0, 1.0, 1.0);
        assert!(!a.dominates(&b));
        let c = m(0.5, 1.0, 1.0);
        assert!(c.dominates(&a));
        assert!(!a.dominates(&c));
    }

    #[test]
    fn dominance_fails_on_tradeoff() {
        let a = m(0.5, 2.0, 1.0);
        let b = m(1.0, 1.0, 1.0);
        assert!(!a.dominates(&b));
        assert!(!b.dominates(&a));
    }

    #[test]
    fn sequential_sums_latency_keeps_area() {
        let total = Metrics::sequential(&[m(100.0, 10.0, 5.0), m(300.0, 20.0, 5.0)]);
        assert!((total.latency_cycles - 400.0).abs() < 1e-9);
        assert!((total.area_mm2 - 5.0).abs() < 1e-9);
        // Power is the energy-weighted average: (10*100 + 20*300)/400 = 17.5.
        assert!((total.power_mw - 17.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn sequential_rejects_empty() {
        let _ = Metrics::sequential(&[]);
    }

    #[test]
    fn display_mentions_all_metrics() {
        let s = m(1000.0, 5.0, 2.0).to_string();
        assert!(s.contains("mW") && s.contains("mm2") && s.contains("MOPS"));
    }
}
