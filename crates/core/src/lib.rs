//! HASCO: agile hardware/software co-design for tensor computation.
//!
//! This crate is the paper's primary contribution (§III, Fig. 3): given an
//! input description — the workloads of a tensor application, a hardware
//! generation method, and latency/power constraints — HASCO produces a
//! *holistic solution*: one accelerator shared by all workloads, a
//! tensorize interface per workload, and an optimized software program per
//! workload.
//!
//! The three steps of the co-design flow map onto:
//!
//! 1. **HW/SW partitioning** ([`partition`]) — tensor syntax trees plus the
//!    two-step matcher enumerate the tensorize choices;
//! 2. **Solution generation** ([`codesign`]) — multi-objective Bayesian
//!    optimization explores accelerator parameters (using the *optimized
//!    software latency* as the performance metric), while the heuristic +
//!    Q-learning explorer optimizes the software for each candidate
//!    accelerator;
//! 3. **Solution tuning** ([`tuning`]) — Pareto-optimal accelerators are
//!    checked against the user constraints and the best feasible point is
//!    selected (falling back to the least-violating one).
//!
//! # Example
//!
//! ```
//! use hasco::input::{Constraints, GenerationMethod, InputDescription};
//! use hasco::codesign::{CoDesigner, CoDesignOptions};
//! use tensor_ir::{suites, workload::TensorApp};
//!
//! let app = TensorApp::new("toy", vec![suites::gemm_workload("g", 128, 128, 128)]);
//! let input = InputDescription {
//!     app,
//!     method: GenerationMethod::Gemmini,
//!     constraints: Constraints::default(),
//! };
//! let mut opts = CoDesignOptions::quick(7);
//! opts.hw_trials = 6;
//! let solution = CoDesigner::new(opts).run(&input).unwrap();
//! assert!(solution.total.latency_ms > 0.0);
//! ```

pub mod codesign;
pub mod engine;
pub mod event;
pub mod input;
pub mod partition;
pub mod remote;
pub mod report;
pub mod solution;
pub mod tuning;

pub use codesign::{CoDesignOptions, CoDesigner, OptimizerKind};
pub use engine::{CampaignOutcome, CoDesignRequest, Engine, EngineConfig, JobHandle};
pub use event::{CampaignEvent, CampaignEvents, EventStream, RunEvent};
pub use input::{Constraints, GenerationMethod, InputDescription};
pub use report::{CampaignStats, RunStats};
pub use solution::{Solution, WorkloadSolution};

/// Errors produced by the co-design flow.
#[derive(Debug, Clone, PartialEq)]
pub enum HascoError {
    /// The application has no workloads.
    EmptyApp,
    /// The run options combine into something silently degenerate
    /// ([`CoDesignOptions::validate`] explains the specific combination).
    InvalidOptions(String),
    /// The job was cancelled ([`engine::JobHandle::cancel`]) before it
    /// produced a solution.
    Cancelled,
    /// The hardware DSE produced no feasible accelerator.
    NoFeasibleAccelerator,
    /// Software exploration failed for a workload on the chosen
    /// accelerator.
    Software(String),
    /// Hardware generation failed.
    Hardware(String),
    /// A network transport failure between a remote client/worker and the
    /// serving engine (connection loss, protocol violation). Never raised
    /// by in-process runs.
    Transport(String),
}

impl std::fmt::Display for HascoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HascoError::EmptyApp => write!(f, "application has no workloads"),
            HascoError::InvalidOptions(msg) => write!(f, "invalid co-design options: {msg}"),
            HascoError::Cancelled => write!(f, "job was cancelled"),
            HascoError::NoFeasibleAccelerator => {
                write!(f, "hardware DSE found no feasible accelerator")
            }
            HascoError::Software(msg) => write!(f, "software exploration failed: {msg}"),
            HascoError::Hardware(msg) => write!(f, "hardware generation failed: {msg}"),
            HascoError::Transport(msg) => write!(f, "transport failed: {msg}"),
        }
    }
}

impl std::error::Error for HascoError {}
