//! Step 1 — HW/SW partitioning (§IV): enumerate the tensorize choices of
//! every workload against the candidate intrinsics.

use tensor_ir::intrinsics::{self, IntrinsicKind};
use tensor_ir::matching::{find_tensorize_choices, MatchOptions, TensorizeChoice};
use tensor_ir::workload::TensorApp;

/// The partition space of one workload: its legal choices per intrinsic.
#[derive(Debug, Clone)]
pub struct WorkloadPartition {
    /// Workload name.
    pub workload: String,
    /// (intrinsic, legal tensorize choices) pairs.
    pub per_intrinsic: Vec<(IntrinsicKind, Vec<TensorizeChoice>)>,
}

impl WorkloadPartition {
    /// Total number of tensorize choices across intrinsics.
    pub fn total_choices(&self) -> usize {
        self.per_intrinsic.iter().map(|(_, v)| v.len()).sum()
    }

    /// The intrinsics that can implement at least one sub-workload.
    pub fn viable_intrinsics(&self) -> Vec<IntrinsicKind> {
        self.per_intrinsic
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(k, _)| *k)
            .collect()
    }
}

/// Enumerates the partition space of an application against the four
/// common intrinsics (or a caller-selected subset). PE count sizes the
/// intrinsic geometry, but matching only depends on structure.
pub fn partition_app(app: &TensorApp, kinds: &[IntrinsicKind], pes: u64) -> Vec<WorkloadPartition> {
    let opts = MatchOptions::default();
    app.workloads
        .iter()
        .map(|w| {
            let per_intrinsic = kinds
                .iter()
                .map(|&k| {
                    let intr = intrinsics::intrinsic_for(k, pes);
                    (k, find_tensorize_choices(&w.comp, &intr.comp, &opts))
                })
                .collect();
            WorkloadPartition {
                workload: w.name.clone(),
                per_intrinsic,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::suites;
    use tensor_ir::workload::TensorApp;

    #[test]
    fn conv_app_partitions_against_all_intrinsics() {
        let app = TensorApp::new(
            "t",
            vec![suites::conv2d_workload("c", 64, 64, 28, 28, 3, 3)],
        );
        let parts = partition_app(&app, &IntrinsicKind::ALL, 64);
        assert_eq!(parts.len(), 1);
        let p = &parts[0];
        // §VII-B: conv can be tiled into DOT, GEMV, GEMM, and CONV2D
        // sub-workloads.
        assert_eq!(p.viable_intrinsics().len(), 4);
        assert!(p.total_choices() > 6);
    }

    #[test]
    fn gemm_app_cannot_use_conv2d_intrinsic() {
        let app = TensorApp::new("t", vec![suites::gemm_workload("g", 64, 64, 64)]);
        let parts = partition_app(&app, &IntrinsicKind::ALL, 64);
        let viable = parts[0].viable_intrinsics();
        assert!(viable.contains(&IntrinsicKind::Dot));
        assert!(viable.contains(&IntrinsicKind::Gemv));
        assert!(viable.contains(&IntrinsicKind::Gemm));
        // §VII-B: "Only 2D convolutions can be tiled into CONV2D
        // sub-workloads".
        assert!(!viable.contains(&IntrinsicKind::Conv2d));
    }

    #[test]
    fn mttkrp_stage1_matches_gemv_and_gemm_fused_only_gemv() {
        // Fused MTTKRP only admits GEMV/DOT; the two-stage split opens GEMM
        // for stage 1 (§VII-B).
        let fused = TensorApp::new("t", vec![suites::mttkrp_workload("m", 64, 64, 64, 64)]);
        let parts = partition_app(&fused, &[IntrinsicKind::Gemv, IntrinsicKind::Gemm], 64);
        let viable = parts[0].viable_intrinsics();
        assert!(viable.contains(&IntrinsicKind::Gemv));
        assert!(!viable.contains(&IntrinsicKind::Gemm));
        let (s1, _) = suites::mttkrp_stages("m", 64, 64, 64, 64);
        let staged = TensorApp::new("t", vec![s1]);
        let parts = partition_app(&staged, &[IntrinsicKind::Gemv, IntrinsicKind::Gemm], 64);
        assert!(parts[0].viable_intrinsics().contains(&IntrinsicKind::Gemm));
    }

    #[test]
    fn subset_of_kinds_is_respected() {
        let app = TensorApp::new("t", vec![suites::gemm_workload("g", 64, 64, 64)]);
        let parts = partition_app(&app, &[IntrinsicKind::Dot], 64);
        assert_eq!(parts[0].per_intrinsic.len(), 1);
    }
}
