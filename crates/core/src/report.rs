//! Plain-text table formatting for the experiment harnesses (the bench
//! binaries print paper-style rows through these helpers), plus the
//! runtime-subsystem report attached to every solution.

use accel_model::BackendKind;
use runtime::CacheStats;

/// Execution statistics of one co-design run: how the parallel evaluation
/// runtime, the cost backends, the staging policy, and the memoizing
/// cost-model cache were used — where the time went.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Evaluation worker threads used.
    pub threads: usize,
    /// Feasible hardware design points evaluated (full app metrics).
    pub hw_evaluations: usize,
    /// Software explorations requested through the screening backend,
    /// memoized or not (one per (design point, workload) pair).
    pub sw_explorations: usize,
    /// Software explorations re-run at high fidelity on the top-k
    /// survivors of each screened batch (0 when staging is off).
    pub refine_explorations: usize,
    /// The screening cost backend.
    pub backend: BackendKind,
    /// The refinement backend, when fidelity staging is on.
    pub refine_backend: Option<BackendKind>,
    /// The refine budget each staged batch used, in batch order (empty
    /// when staging is off or the budget is fixed).
    pub refine_topk_trajectory: Vec<usize>,
    /// Surrogate screen-tier training-set size (0 when the screen tier
    /// is not a surrogate).
    pub surrogate_samples: usize,
    /// Whether the surrogate cleared cross-validation and served GP
    /// predictions.
    pub surrogate_trusted: bool,
    /// Entries loaded from the persistent cross-run cache at startup.
    pub warm_cache_entries: u64,
    /// Work-stealing operations performed by the evaluation pool.
    pub steals: u64,
    /// Memoizing evaluation-cache counters.
    pub cache: CacheStats,
}

impl RunStats {
    /// Renders the stats as a report table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["runtime", "value"]);
        t.row(vec!["threads".into(), self.threads.to_string()]);
        t.row(vec!["backend".into(), self.backend.to_string()]);
        t.row(vec![
            "hw evaluations".into(),
            self.hw_evaluations.to_string(),
        ]);
        t.row(vec![
            format!("sw explorations ({})", self.backend),
            self.sw_explorations.to_string(),
        ]);
        if let Some(refine) = self.refine_backend {
            t.row(vec![
                format!("refined ({refine})"),
                self.refine_explorations.to_string(),
            ]);
        }
        if !self.refine_topk_trajectory.is_empty() {
            t.row(vec![
                "adaptive top-k".into(),
                summarize_trajectory(&self.refine_topk_trajectory),
            ]);
        }
        if self.surrogate_samples > 0 {
            t.row(vec![
                "surrogate training".into(),
                format!(
                    "{} samples ({})",
                    self.surrogate_samples,
                    if self.surrogate_trusted {
                        "trusted"
                    } else {
                        "untrusted"
                    }
                ),
            ]);
        }
        t.row(vec![
            "warm cache entries".into(),
            self.warm_cache_entries.to_string(),
        ]);
        t.row(vec!["pool steals".into(), self.steals.to_string()]);
        t.row(vec!["cache hits".into(), self.cache.hits.to_string()]);
        t.row(vec!["cache misses".into(), self.cache.misses.to_string()]);
        t.row(vec![
            "cache evictions".into(),
            self.cache.evictions.to_string(),
        ]);
        t.row(vec![
            "cache hit rate".into(),
            format!("{:.1}%", self.cache.hit_rate() * 100.0),
        ]);
        t.render()
    }
}

/// Campaign-level rollup of per-scenario [`RunStats`].
///
/// A single scenario's `RunStats` is a faithful report of *that job*; a
/// campaign's totals cannot be read off any one of them, and summing
/// naively over every outcome double-counts deduplicated scenarios
/// (their solutions are clones of a representative that ran once).
/// [`CampaignStats::add_run`] therefore folds executed scenarios in full
/// and deduplicated ones only into the dedup counter, so every total is
/// monotone in work actually performed.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CampaignStats {
    /// Scenarios in the campaign (executed + deduplicated).
    pub scenarios: usize,
    /// Scenarios that actually ran a job.
    pub executed: usize,
    /// Scenarios answered by cloning an identical earlier scenario.
    pub deduplicated: usize,
    /// Feasible hardware design points evaluated, summed over executed
    /// scenarios.
    pub hw_evaluations: usize,
    /// Screen-tier software explorations, summed over executed scenarios.
    pub sw_explorations: usize,
    /// High-fidelity re-evaluations, summed over executed scenarios.
    pub refine_explorations: usize,
    /// Work-stealing operations, summed over executed scenarios.
    pub steals: u64,
    /// Warm cache entries seeded into executed scenarios.
    pub warm_cache_entries: u64,
    /// Memo-cache counters summed over executed scenarios.
    pub cache: CacheStats,
}

impl CampaignStats {
    /// Folds one scenario's stats into the rollup. `deduplicated`
    /// scenarios count toward `scenarios`/`deduplicated` only — their
    /// stats describe the representative job, which was already folded.
    pub fn add_run(&mut self, stats: &RunStats, deduplicated: bool) {
        self.scenarios += 1;
        if deduplicated {
            self.deduplicated += 1;
            return;
        }
        self.executed += 1;
        self.hw_evaluations += stats.hw_evaluations;
        self.sw_explorations += stats.sw_explorations;
        self.refine_explorations += stats.refine_explorations;
        self.steals += stats.steals;
        self.warm_cache_entries += stats.warm_cache_entries;
        self.cache.hits += stats.cache.hits;
        self.cache.misses += stats.cache.misses;
        self.cache.inserts += stats.cache.inserts;
        self.cache.evictions += stats.cache.evictions;
    }

    /// Fraction of scenarios answered without running a job.
    pub fn dedup_rate(&self) -> f64 {
        if self.scenarios == 0 {
            0.0
        } else {
            self.deduplicated as f64 / self.scenarios as f64
        }
    }

    /// Renders the rollup as a report table.
    pub fn render(&self) -> String {
        let mut t = Table::new(&["campaign", "value"]);
        t.row(vec!["scenarios".into(), self.scenarios.to_string()]);
        t.row(vec!["executed".into(), self.executed.to_string()]);
        t.row(vec![
            "deduplicated".into(),
            format!("{} ({:.1}%)", self.deduplicated, self.dedup_rate() * 100.0),
        ]);
        t.row(vec![
            "hw evaluations".into(),
            self.hw_evaluations.to_string(),
        ]);
        t.row(vec![
            "sw explorations".into(),
            self.sw_explorations.to_string(),
        ]);
        t.row(vec!["refined".into(), self.refine_explorations.to_string()]);
        t.row(vec![
            "warm cache entries".into(),
            self.warm_cache_entries.to_string(),
        ]);
        // No steals row on purpose: steal counts vary with thread timing,
        // and this table is part of the deterministic artifact output.
        // They are reported via telemetry and the BENCH_*.json rollup.
        t.row(vec!["cache hits".into(), self.cache.hits.to_string()]);
        t.row(vec!["cache misses".into(), self.cache.misses.to_string()]);
        t.row(vec![
            "cache hit rate".into(),
            format!("{:.1}%", self.cache.hit_rate() * 100.0),
        ]);
        t.render()
    }
}

/// Compresses a per-batch top-k trajectory into a compact report cell,
/// e.g. `4 -> 1 over 12 batches (min 1, max 4)`.
fn summarize_trajectory(trajectory: &[usize]) -> String {
    let first = trajectory.first().copied().unwrap_or(0);
    let last = trajectory.last().copied().unwrap_or(0);
    let min = trajectory.iter().copied().min().unwrap_or(0);
    let max = trajectory.iter().copied().max().unwrap_or(0);
    format!(
        "{first} -> {last} over {} batches (min {min}, max {max})",
        trajectory.len()
    )
}

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a header row.
    pub fn new(header: &[&str]) -> Self {
        Table {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    /// Panics when the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for c in 0..cols {
                widths[c] = widths[c].max(row[c].len());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(c, s)| format!("{:<width$}", s, width = widths[c]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let mut out = fmt_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(out.len().saturating_sub(1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// Formats a ratio as the paper writes speedups, e.g. `1.25X`.
pub fn speedup(baseline: f64, improved: f64) -> String {
    if improved <= 0.0 {
        return "inf".into();
    }
    format!("{:.2}X", baseline / improved)
}

/// Formats a float with engineering-style precision for table cells.
pub fn sig(v: f64) -> String {
    if v == 0.0 {
        "0".into()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 10.0 {
        format!("{v:.1}")
    } else {
        format!("{v:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["short".into(), "1".into()]);
        t.row(vec!["a-much-longer-name".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_row_panics() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn run_stats_render_shows_backends_and_steals() {
        let stats = RunStats {
            threads: 4,
            backend: BackendKind::Analytic,
            refine_backend: Some(BackendKind::TraceSim),
            refine_explorations: 6,
            refine_topk_trajectory: vec![4, 3, 2, 1, 1],
            surrogate_samples: 30,
            surrogate_trusted: true,
            warm_cache_entries: 12,
            steals: 3,
            ..RunStats::default()
        };
        let s = stats.render();
        assert!(s.contains("backend") && s.contains("analytic"));
        assert!(s.contains("refined (sim)") && s.contains('6'));
        assert!(s.contains("adaptive top-k"));
        assert!(s.contains("4 -> 1 over 5 batches (min 1, max 4)"));
        assert!(s.contains("surrogate training") && s.contains("30 samples (trusted)"));
        assert!(s.contains("warm cache entries"));
        assert!(s.contains("pool steals"));
        // Staging off: no refinement, adaptive, or surrogate rows.
        let off = RunStats::default().render();
        assert!(!off.contains("refined ("));
        assert!(!off.contains("adaptive top-k"));
        assert!(!off.contains("surrogate training"));
    }

    #[test]
    fn campaign_stats_skip_deduplicated_scenarios() {
        let executed = RunStats {
            hw_evaluations: 10,
            sw_explorations: 40,
            refine_explorations: 8,
            steals: 3,
            warm_cache_entries: 5,
            cache: CacheStats {
                hits: 20,
                misses: 30,
                inserts: 30,
                evictions: 1,
            },
            ..RunStats::default()
        };
        let mut rollup = CampaignStats::default();
        rollup.add_run(&executed, false);
        rollup.add_run(&executed, false);
        // The dedup clone carries the representative's stats — folding
        // them again would double-count, so only the counter moves.
        rollup.add_run(&executed, true);
        assert_eq!(rollup.scenarios, 3);
        assert_eq!(rollup.executed, 2);
        assert_eq!(rollup.deduplicated, 1);
        assert_eq!(rollup.hw_evaluations, 20);
        assert_eq!(rollup.sw_explorations, 80);
        assert_eq!(rollup.refine_explorations, 16);
        assert_eq!(rollup.steals, 6);
        assert_eq!(rollup.cache.hits, 40);
        assert!((rollup.dedup_rate() - 1.0 / 3.0).abs() < 1e-12);
        let s = rollup.render();
        assert!(s.contains("deduplicated") && s.contains("33.3%"));
        assert!(s.contains("hw evaluations") && s.contains("20"));
    }

    #[test]
    fn speedup_formats_like_paper() {
        assert_eq!(speedup(125.0, 100.0), "1.25X");
        assert_eq!(speedup(1.0, 0.0), "inf");
    }

    #[test]
    fn sig_scales_precision() {
        assert_eq!(sig(0.0), "0");
        assert_eq!(sig(12345.6), "12346");
        assert_eq!(sig(42.42), "42.4");
        assert_eq!(sig(1.2345), "1.234");
    }
}
