//! Step 2 — solution generation (§III, §V, §VI): joint exploration of the
//! hardware and software design spaces.
//!
//! The hardware DSE (MOBO) treats each design point as an accelerator
//! instance; evaluating a point runs the *software* explorer for every
//! workload on that accelerator and reports the summed optimized latency,
//! the average power, and the area — "the Bayesian-based hardware
//! optimization uses the software latency as the performance metric, while
//! the heuristic and Q-learning-based software optimization tailors the
//! software mappings for the hardware parameters".

use std::collections::BTreeMap;

use accel_model::arch::AcceleratorConfig;
use accel_model::Metrics;
use dse::mobo::Mobo;
use dse::problem::{Point, Problem, SearchSpace};
use dse::Optimizer;
use hw_gen::space::Generator;
use hw_gen::{ChiselGenerator, GemminiGenerator};
use sw_opt::explorer::{ExplorerOptions, SoftwareExplorer};
use tensor_ir::workload::Workload;

use crate::input::{GenerationMethod, InputDescription};
use crate::solution::{Solution, WorkloadSolution};
use crate::tuning;
use crate::HascoError;

/// Knobs of one co-design run.
#[derive(Debug, Clone)]
pub struct CoDesignOptions {
    /// Hardware DSE trial budget (the paper uses 20–40).
    pub hw_trials: usize,
    /// MOBO prior-sample count.
    pub mobo_prior: usize,
    /// Software exploration used *inside* the hardware loop (cheap).
    pub sw_inner: ExplorerOptions,
    /// Software exploration for the final chosen accelerator (thorough).
    pub sw_final: ExplorerOptions,
    /// Extra constraint-driven DSE rounds when the first solution violates
    /// the constraints (Step 3: "if the metrics violate the user
    /// constraints, they will drive the hardware DSE and generate a new
    /// accelerator"). Each round re-runs the explorer with a fresh seed
    /// and merges the histories.
    pub tuning_rounds: usize,
    /// RNG seed for the whole run.
    pub seed: u64,
}

impl CoDesignOptions {
    /// The paper-sized configuration (20 co-design trials).
    pub fn paper(seed: u64) -> Self {
        CoDesignOptions {
            hw_trials: 20,
            mobo_prior: 5,
            sw_inner: ExplorerOptions {
                pool: 8,
                rounds: 8,
                top_k: 3,
                ..ExplorerOptions::default()
            },
            sw_final: ExplorerOptions::default(),
            tuning_rounds: 2,
            seed,
        }
    }

    /// A fast configuration for tests and examples.
    pub fn quick(seed: u64) -> Self {
        CoDesignOptions {
            hw_trials: 8,
            mobo_prior: 4,
            sw_inner: ExplorerOptions {
                pool: 5,
                rounds: 4,
                top_k: 2,
                ..ExplorerOptions::default()
            },
            sw_final: ExplorerOptions {
                pool: 8,
                rounds: 8,
                top_k: 3,
                ..ExplorerOptions::default()
            },
            tuning_rounds: 1,
            seed,
        }
    }
}

/// The hardware design space wrapped as a [`dse::problem::Problem`].
pub struct HwProblem<'a> {
    generator: &'a dyn Generator,
    workloads: &'a [Workload],
    space: SearchSpace,
    explorer: SoftwareExplorer,
    sw_opts: ExplorerOptions,
    cache: BTreeMap<Point, Option<Vec<f64>>>,
    /// Evaluated (point, metrics) pairs for later reuse.
    pub evaluated: Vec<(Point, Metrics)>,
}

impl<'a> HwProblem<'a> {
    /// Wraps a generator + workloads as a 3-objective problem
    /// (latency cycles, power mW, area mm²).
    pub fn new(
        generator: &'a dyn Generator,
        workloads: &'a [Workload],
        sw_opts: ExplorerOptions,
        seed: u64,
    ) -> Self {
        let dim_sizes = generator.space().dims.iter().map(|d| d.len()).collect();
        HwProblem {
            generator,
            workloads,
            space: SearchSpace::new(dim_sizes),
            explorer: SoftwareExplorer::new(seed),
            sw_opts,
            cache: BTreeMap::new(),
            evaluated: Vec::new(),
        }
    }

    /// Evaluates an accelerator on all workloads (summed latency).
    pub fn app_metrics(
        explorer: &SoftwareExplorer,
        workloads: &[Workload],
        cfg: &AcceleratorConfig,
        sw_opts: &ExplorerOptions,
    ) -> Option<Metrics> {
        let mut parts = Vec::with_capacity(workloads.len());
        for w in workloads {
            match explorer.best_metrics(w, cfg, sw_opts) {
                Ok(m) => parts.push(m),
                Err(_) => return None,
            }
        }
        Some(Metrics::sequential(&parts))
    }
}

impl Problem for HwProblem<'_> {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn num_objectives(&self) -> usize {
        3
    }

    fn evaluate(&mut self, point: &Point) -> Option<Vec<f64>> {
        if let Some(cached) = self.cache.get(point) {
            return cached.clone();
        }
        let result = (|| {
            let cfg = self.generator.generate(point).ok()?;
            let metrics =
                Self::app_metrics(&self.explorer, self.workloads, &cfg, &self.sw_opts)?;
            self.evaluated.push((point.clone(), metrics));
            Some(vec![metrics.latency_cycles, metrics.power_mw, metrics.area_mm2])
        })();
        self.cache.insert(point.clone(), result.clone());
        result
    }
}

/// The co-design driver.
#[derive(Debug, Clone)]
pub struct CoDesigner {
    opts: CoDesignOptions,
}

impl CoDesigner {
    /// Creates a driver.
    pub fn new(opts: CoDesignOptions) -> Self {
        CoDesigner { opts }
    }

    fn make_generator(method: GenerationMethod) -> Box<dyn Generator> {
        match method {
            GenerationMethod::Gemmini => Box::new(GemminiGenerator::new()),
            GenerationMethod::Chisel(kind) => Box::new(ChiselGenerator::new(kind)),
        }
    }

    /// Runs the full three-step co-design flow.
    ///
    /// # Errors
    /// Returns [`HascoError`] when the app is empty or no accelerator in
    /// the explored set supports all workloads.
    pub fn run(&self, input: &InputDescription) -> Result<Solution, HascoError> {
        if input.app.is_empty() {
            return Err(HascoError::EmptyApp);
        }
        let generator = Self::make_generator(input.method);

        // Step 2: hardware DSE with software-in-the-loop evaluation.
        let mut problem = HwProblem::new(
            generator.as_ref(),
            &input.app.workloads,
            self.opts.sw_inner.clone(),
            self.opts.seed,
        );
        let mut mobo = Mobo::new(self.opts.seed).with_prior_samples(self.opts.mobo_prior);
        let mut history = mobo.run(&mut problem, self.opts.hw_trials);
        if history.evaluations.is_empty() {
            return Err(HascoError::NoFeasibleAccelerator);
        }

        // Step 3: pick the Pareto point satisfying the constraints (or the
        // least-violating one), re-optimizing thoroughly. When the metrics
        // violate the constraints, they "drive the hardware DSE and
        // generate a new accelerator": run extra exploration rounds with
        // fresh seeds and merge the histories before giving up.
        let mut solution = self.select_and_finalize(input, generator.as_ref(), &history)?;
        let mut round = 0;
        while !solution.meets_constraints && round < self.opts.tuning_rounds {
            round += 1;
            let mut retune =
                Mobo::new(self.opts.seed.wrapping_add(round as u64 * 0x9e37))
                    .with_prior_samples(self.opts.mobo_prior);
            let extra = retune.run(&mut problem, self.opts.hw_trials);
            for e in extra.evaluations {
                if !history.evaluations.iter().any(|h| h.point == e.point) {
                    history.evaluations.push(e);
                }
            }
            history.infeasible += extra.infeasible;
            let candidate = self.select_and_finalize(input, generator.as_ref(), &history)?;
            if candidate.meets_constraints
                || input.constraints.violation(&candidate.total)
                    < input.constraints.violation(&solution.total)
            {
                solution = candidate;
            }
        }
        // The solution reports the full (merged) exploration history even
        // when a retuning round did not improve on the incumbent.
        solution.hw_history = history;
        Ok(solution)
    }

    fn select_and_finalize(
        &self,
        input: &InputDescription,
        generator: &dyn Generator,
        history: &dse::problem::OptimizerResult,
    ) -> Result<Solution, HascoError> {
        let chosen = tuning::select_point(history, &input.constraints)
            .ok_or(HascoError::NoFeasibleAccelerator)?;
        let cfg = generator
            .generate(&chosen)
            .map_err(|e| HascoError::Hardware(e.to_string()))?;
        self.finalize(input, cfg, history.clone())
    }

    /// Optimizes the software thoroughly for a fixed accelerator and
    /// assembles the solution (also used by the "separate design"
    /// baseline, which skips the hardware DSE).
    ///
    /// # Errors
    /// Returns [`HascoError::Software`] when a workload cannot be mapped.
    pub fn finalize(
        &self,
        input: &InputDescription,
        cfg: AcceleratorConfig,
        hw_history: dse::problem::OptimizerResult,
    ) -> Result<Solution, HascoError> {
        let explorer = SoftwareExplorer::new(self.opts.seed);
        let mut per_workload = Vec::with_capacity(input.app.len());
        let mut parts = Vec::with_capacity(input.app.len());
        for w in &input.app.workloads {
            let optimized = explorer
                .optimize(w, &cfg, &self.opts.sw_final)
                .map_err(|e| HascoError::Software(format!("{}: {e}", w.name)))?;
            let intr = cfg.intrinsic_comp();
            let ctx = sw_opt::schedule::ScheduleContext::new(w, &intr)
                .map_err(|e| HascoError::Software(e.to_string()))?;
            let program = sw_opt::codegen::render(&optimized.schedule, &ctx);
            parts.push(optimized.metrics);
            per_workload.push(WorkloadSolution {
                workload: w.name.clone(),
                schedule: optimized.schedule,
                metrics: optimized.metrics,
                program,
            });
        }
        let total = Metrics::sequential(&parts);
        Ok(Solution {
            meets_constraints: input.constraints.satisfied_by(&total),
            accelerator: cfg,
            per_workload,
            total,
            hw_history,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::Constraints;
    use tensor_ir::suites;
    use tensor_ir::workload::TensorApp;

    fn toy_input() -> InputDescription {
        InputDescription {
            app: TensorApp::new(
                "toy",
                vec![
                    suites::gemm_workload("g1", 128, 128, 128),
                    suites::gemm_workload("g2", 256, 128, 64),
                ],
            ),
            method: GenerationMethod::Gemmini,
            constraints: Constraints::default(),
        }
    }

    #[test]
    fn codesign_produces_complete_solution() {
        let solution = CoDesigner::new(CoDesignOptions::quick(1)).run(&toy_input()).unwrap();
        assert_eq!(solution.per_workload.len(), 2);
        assert!(solution.total.latency_ms > 0.0);
        assert!(solution.meets_constraints);
        assert!(!solution.hw_history.evaluations.is_empty());
        assert!(solution.per_workload[0].program.contains("Tensorized_gemm"));
    }

    #[test]
    fn empty_app_is_rejected() {
        let mut input = toy_input();
        input.app = TensorApp::new("empty", vec![]);
        assert_eq!(
            CoDesigner::new(CoDesignOptions::quick(0)).run(&input).unwrap_err(),
            HascoError::EmptyApp
        );
    }

    #[test]
    fn codesign_beats_or_matches_default_hardware() {
        // The co-design headline: the explored accelerator + tuned software
        // should not lose to the fixed default accelerator with the same
        // software effort.
        let input = toy_input();
        let designer = CoDesigner::new(CoDesignOptions::quick(3));
        let co = designer.run(&input).unwrap();
        let baseline_cfg = hw_gen::GemminiGenerator::baseline(false);
        let base = designer
            .finalize(&input, baseline_cfg, dse::problem::OptimizerResult::new("fixed"))
            .unwrap();
        assert!(
            co.total.latency_cycles <= base.total.latency_cycles * 1.05,
            "co-design {} vs baseline {}",
            co.total.latency_cycles,
            base.total.latency_cycles
        );
    }

    #[test]
    fn retuning_rounds_expand_the_history_under_tight_constraints() {
        let mut input = toy_input();
        // Unreachable latency: retuning must kick in and merge extra
        // evaluations while returning a flagged best-effort solution.
        input.constraints = Constraints::latency_power(1e-9, 1e9);
        let mut opts = CoDesignOptions::quick(4);
        opts.hw_trials = 5;
        opts.tuning_rounds = 2;
        let with_retune = CoDesigner::new(opts.clone()).run(&input).unwrap();
        opts.tuning_rounds = 0;
        let without = CoDesigner::new(opts).run(&input).unwrap();
        assert!(!with_retune.meets_constraints);
        assert!(
            with_retune.hw_history.evaluations.len() > without.hw_history.evaluations.len(),
            "retuning added no evaluations: {} vs {}",
            with_retune.hw_history.evaluations.len(),
            without.hw_history.evaluations.len()
        );
        // Retuning never makes the solution worse.
        assert!(with_retune.total.latency_cycles <= without.total.latency_cycles * 1.0001);
    }

    #[test]
    fn hw_problem_caches_points() {
        let input = toy_input();
        let generator = GemminiGenerator::new();
        let mut p = HwProblem::new(
            &generator,
            &input.app.workloads,
            CoDesignOptions::quick(0).sw_inner,
            0,
        );
        let point = vec![0; p.space().len()];
        let a = p.evaluate(&point);
        let evals_after_first = p.evaluated.len();
        let b = p.evaluate(&point);
        assert_eq!(a, b);
        assert_eq!(p.evaluated.len(), evals_after_first);
    }

    #[test]
    fn chisel_method_works_too() {
        let mut input = toy_input();
        input.method =
            GenerationMethod::Chisel(tensor_ir::intrinsics::IntrinsicKind::Gemm);
        let mut opts = CoDesignOptions::quick(2);
        opts.hw_trials = 6;
        let solution = CoDesigner::new(opts).run(&input).unwrap();
        assert_eq!(solution.per_workload.len(), 2);
    }
}
