//! Step 2 — solution generation (§III, §V, §VI): joint exploration of the
//! hardware and software design spaces.
//!
//! The hardware DSE (MOBO) treats each design point as an accelerator
//! instance; evaluating a point runs the *software* explorer for every
//! workload on that accelerator and reports the summed optimized latency,
//! the average power, and the area — "the Bayesian-based hardware
//! optimization uses the software latency as the performance metric, while
//! the heuristic and Q-learning-based software optimization tailors the
//! software mappings for the hardware parameters".

use std::collections::{BTreeMap, BTreeSet};

use accel_model::arch::AcceleratorConfig;
use accel_model::Metrics;
use dse::mobo::Mobo;
use dse::problem::{Point, Problem, SearchSpace};
use dse::Optimizer;
use hw_gen::space::Generator;
use hw_gen::{ChiselGenerator, GemminiGenerator};
use runtime::{resolve_threads, Fingerprinter, MemoCache, StableFingerprint, WorkerPool};
use sw_opt::explorer::{ExplorerOptions, SoftwareExplorer};
use tensor_ir::workload::Workload;

use crate::input::{GenerationMethod, InputDescription};
use crate::report::RunStats;
use crate::solution::{Solution, WorkloadSolution};
use crate::tuning;
use crate::HascoError;

/// Knobs of one co-design run.
#[derive(Debug, Clone)]
pub struct CoDesignOptions {
    /// Hardware DSE trial budget (the paper uses 20–40).
    pub hw_trials: usize,
    /// MOBO prior-sample count.
    pub mobo_prior: usize,
    /// Software exploration used *inside* the hardware loop (cheap).
    pub sw_inner: ExplorerOptions,
    /// Software exploration for the final chosen accelerator (thorough).
    pub sw_final: ExplorerOptions,
    /// Extra constraint-driven DSE rounds when the first solution violates
    /// the constraints (Step 3: "if the metrics violate the user
    /// constraints, they will drive the hardware DSE and generate a new
    /// accelerator"). Each round re-runs the explorer with a fresh seed
    /// and merges the histories.
    pub tuning_rounds: usize,
    /// RNG seed for the whole run.
    pub seed: u64,
    /// Evaluation worker threads: `1` runs fully serial, `0` uses every
    /// available core. Thread count changes wall-clock time only — a
    /// fixed-seed run produces the identical solution at any setting.
    pub threads: usize,
    /// Capacity (entries) of the memoizing evaluation cache shared by the
    /// hardware DSE trials.
    pub cache_capacity: usize,
}

impl CoDesignOptions {
    /// The paper-sized configuration (20 co-design trials).
    pub fn paper(seed: u64) -> Self {
        CoDesignOptions {
            hw_trials: 20,
            mobo_prior: 5,
            sw_inner: ExplorerOptions {
                pool: 8,
                rounds: 8,
                top_k: 3,
                ..ExplorerOptions::default()
            },
            sw_final: ExplorerOptions::default(),
            tuning_rounds: 2,
            seed,
            threads: 1,
            cache_capacity: 4096,
        }
    }

    /// A fast configuration for tests and examples.
    pub fn quick(seed: u64) -> Self {
        CoDesignOptions {
            hw_trials: 8,
            mobo_prior: 4,
            sw_inner: ExplorerOptions {
                pool: 5,
                rounds: 4,
                top_k: 2,
                ..ExplorerOptions::default()
            },
            sw_final: ExplorerOptions {
                pool: 8,
                rounds: 8,
                top_k: 3,
                ..ExplorerOptions::default()
            },
            tuning_rounds: 1,
            seed,
            threads: 1,
            cache_capacity: 4096,
        }
    }

    /// Sets the evaluation worker count (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }
}

/// The hardware design space wrapped as a [`dse::problem::Problem`].
///
/// Evaluation is where the whole co-design loop spends its time: one
/// design point means one full software exploration per workload. The
/// problem therefore routes every batch through the parallel evaluation
/// runtime — [`Problem::evaluate_batch`] fans the batch's
/// `(accelerator, workload)` pairs out to a [`WorkerPool`] and answers
/// repeated pairs from a fingerprint-keyed [`MemoCache`] — while keeping
/// results bitwise identical to the serial path (order-preserving
/// reassembly; pure per-pair evaluations).
pub struct HwProblem<'a> {
    generator: &'a dyn Generator,
    workloads: &'a [Workload],
    space: SearchSpace,
    explorer: SoftwareExplorer,
    sw_opts: ExplorerOptions,
    workers: WorkerPool,
    /// Memoized per-(accelerator, workload) explorer outcomes, keyed by
    /// the stable fingerprint of config + workload + options + seed.
    /// `None` records a software-exploration failure (also worth caching).
    memo: MemoCache<(u64, u64), Option<Metrics>>,
    /// Exact per-point replay cache (a point hit skips config generation
    /// and the memo lookups entirely).
    cache: BTreeMap<Point, Option<Vec<f64>>>,
    /// Per-workload fingerprint bases: (workload, options, seed) are
    /// invariant for the life of the problem, so their hash state is
    /// computed once and cloned per pair instead of re-walking the
    /// workload structure on every lookup. Two independently-seeded
    /// states form a 128-bit key, so a 64-bit collision degrades to a
    /// cache miss instead of returning another design's metrics.
    pair_bases: Vec<(Fingerprinter, Fingerprinter)>,
    /// Total (design point, workload) evaluations requested through the
    /// batch seam, memoized or not.
    sw_requests: usize,
    /// Evaluated (point, metrics) pairs for later reuse.
    pub evaluated: Vec<(Point, Metrics)>,
}

impl<'a> HwProblem<'a> {
    /// Wraps a generator + workloads as a 3-objective problem
    /// (latency cycles, power mW, area mm²), evaluating serially.
    pub fn new(
        generator: &'a dyn Generator,
        workloads: &'a [Workload],
        sw_opts: ExplorerOptions,
        seed: u64,
    ) -> Self {
        let dim_sizes = generator.space().dims.iter().map(|d| d.len()).collect();
        let pair_bases = workloads
            .iter()
            .map(|w| {
                let mut lo = Fingerprinter::new();
                let mut hi = Fingerprinter::new();
                // Distinct prefixes give the two lanes independent states.
                hi.write_u64(0x9e3779b97f4a7c15);
                for fp in [&mut lo, &mut hi] {
                    w.fingerprint_into(fp);
                    sw_opts.fingerprint_into(fp);
                    fp.write_u64(seed);
                }
                (lo, hi)
            })
            .collect();
        HwProblem {
            generator,
            workloads,
            space: SearchSpace::new(dim_sizes),
            explorer: SoftwareExplorer::new(seed),
            sw_opts,
            workers: WorkerPool::serial(),
            memo: MemoCache::new(4096),
            cache: BTreeMap::new(),
            pair_bases,
            sw_requests: 0,
            evaluated: Vec::new(),
        }
    }

    /// Runs batch evaluations on the given worker pool.
    pub fn with_workers(mut self, workers: WorkerPool) -> Self {
        self.workers = workers;
        self
    }

    /// Bounds the memoizing evaluation cache.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.memo = MemoCache::new(capacity);
        self
    }

    /// Counters of the memoizing evaluation cache.
    pub fn cache_stats(&self) -> runtime::CacheStats {
        self.memo.stats()
    }

    /// The worker pool driving batch evaluation.
    pub fn workers(&self) -> &WorkerPool {
        &self.workers
    }

    /// Evaluates an accelerator on all workloads (summed latency) — the
    /// serial reference path; batch evaluation must agree with it exactly.
    pub fn app_metrics(
        explorer: &SoftwareExplorer,
        workloads: &[Workload],
        cfg: &AcceleratorConfig,
        sw_opts: &ExplorerOptions,
    ) -> Option<Metrics> {
        let mut parts = Vec::with_capacity(workloads.len());
        for w in workloads {
            match explorer.best_metrics(w, cfg, sw_opts) {
                Ok(m) => parts.push(m),
                Err(_) => return None,
            }
        }
        Some(Metrics::sequential(&parts))
    }

    /// Stable 128-bit memoization key for one (accelerator, workload)
    /// evaluation: the precomputed (workload, options, seed) bases
    /// extended by the accelerator config.
    fn pair_key(&self, cfg: &AcceleratorConfig, workload_idx: usize) -> (u64, u64) {
        let (mut lo, mut hi) = self.pair_bases[workload_idx].clone();
        cfg.fingerprint_into(&mut lo);
        cfg.fingerprint_into(&mut hi);
        (lo.finish().0, hi.finish().0)
    }

    /// Total (design point, workload) evaluations requested so far.
    pub fn sw_requests(&self) -> usize {
        self.sw_requests
    }

    fn objectives_of(metrics: &Metrics) -> Vec<f64> {
        vec![metrics.latency_cycles, metrics.power_mw, metrics.area_mm2]
    }
}

impl Problem for HwProblem<'_> {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn num_objectives(&self) -> usize {
        3
    }

    fn evaluate(&mut self, point: &Point) -> Option<Vec<f64>> {
        self.evaluate_batch(std::slice::from_ref(point))
            .pop()
            .expect("batch of one yields one response")
    }

    fn evaluate_batch(&mut self, points: &[Point]) -> Vec<Option<Vec<f64>>> {
        // Stage 1 (serial): answer point-cache hits, decode fresh points
        // into accelerator configs, and deduplicate within the batch.
        let mut fresh: Vec<(usize, AcceleratorConfig)> = Vec::new();
        let mut fresh_points: BTreeSet<Point> = BTreeSet::new();
        for (i, p) in points.iter().enumerate() {
            if self.cache.contains_key(p) || fresh_points.contains(p) {
                continue;
            }
            match self.generator.generate(p) {
                Ok(cfg) => {
                    fresh_points.insert(p.clone());
                    fresh.push((i, cfg));
                }
                Err(_) => {
                    self.cache.insert(p.clone(), None);
                }
            }
        }

        // Stage 2 (serial): expand fresh points into (config, workload)
        // pairs; memoized pairs are answered without occupying a worker,
        // and pairs sharing a fingerprint *within* the batch (equivalent
        // workloads, coinciding configs) are dispatched once.
        let mut pair_results: Vec<Vec<Option<Option<Metrics>>>> = fresh
            .iter()
            .map(|_| vec![None; self.workloads.len()])
            .collect();
        let mut jobs: Vec<(usize, usize, (u64, u64))> = Vec::new();
        let mut duplicates: Vec<(usize, usize, (u64, u64))> = Vec::new();
        let mut pending: BTreeSet<(u64, u64)> = BTreeSet::new();
        self.sw_requests += fresh.len() * self.workloads.len();
        for (fi, (_, cfg)) in fresh.iter().enumerate() {
            for (wi, slot) in pair_results[fi].iter_mut().enumerate() {
                let key = self.pair_key(cfg, wi);
                // Duplicates of a key already dispatched in this batch skip
                // the memo probe: they are resolved (and counted as hits)
                // in stage 4, once the first occurrence has been computed.
                if pending.contains(&key) {
                    duplicates.push((fi, wi, key));
                    continue;
                }
                match self.memo.get(&key) {
                    Some(memoized) => *slot = Some(memoized),
                    None => {
                        pending.insert(key);
                        jobs.push((fi, wi, key));
                    }
                }
            }
        }

        // Stage 3 (parallel): run the software explorer for every
        // non-memoized pair. Each job is a pure function of
        // (seed, config, workload, options), so completion order is
        // irrelevant — the pool reassembles in submission order.
        let explorer = &self.explorer;
        let workloads = self.workloads;
        let sw_opts = &self.sw_opts;
        let fresh_ref = &fresh;
        let outcomes = self.workers.map(&jobs, |_, &(fi, wi, _)| {
            explorer
                .best_metrics(&workloads[wi], &fresh_ref[fi].1, sw_opts)
                .ok()
        });

        // Stage 4 (serial): memoize and reassemble per point, in
        // submission order.
        let mut fresh_outcomes: BTreeMap<(u64, u64), Option<Metrics>> = BTreeMap::new();
        for (&(fi, wi, key), outcome) in jobs.iter().zip(outcomes) {
            self.memo.insert(key, outcome);
            fresh_outcomes.insert(key, outcome);
            pair_results[fi][wi] = Some(outcome);
        }
        for (fi, wi, key) in duplicates {
            // The memo lookup both answers the duplicate and credits the
            // hit; the local map covers the pathological case where a
            // tiny cache already evicted the entry.
            let outcome = self.memo.get(&key).unwrap_or_else(|| fresh_outcomes[&key]);
            pair_results[fi][wi] = Some(outcome);
        }
        for ((i, _), per_workload) in fresh.iter().zip(pair_results) {
            let parts: Option<Vec<Metrics>> = per_workload
                .into_iter()
                .map(|m| m.expect("every pair was resolved"))
                .collect();
            let response = parts.map(|parts| {
                let metrics = Metrics::sequential(&parts);
                self.evaluated.push((points[*i].clone(), metrics));
                Self::objectives_of(&metrics)
            });
            self.cache.insert(points[*i].clone(), response);
        }

        points
            .iter()
            .map(|p| self.cache.get(p).expect("every point was resolved").clone())
            .collect()
    }
}

/// The co-design driver.
#[derive(Debug, Clone)]
pub struct CoDesigner {
    opts: CoDesignOptions,
}

impl CoDesigner {
    /// Creates a driver.
    pub fn new(opts: CoDesignOptions) -> Self {
        CoDesigner { opts }
    }

    fn make_generator(method: GenerationMethod) -> Box<dyn Generator> {
        match method {
            GenerationMethod::Gemmini => Box::new(GemminiGenerator::new()),
            GenerationMethod::Chisel(kind) => Box::new(ChiselGenerator::new(kind)),
        }
    }

    /// Runs the full three-step co-design flow.
    ///
    /// # Errors
    /// Returns [`HascoError`] when the app is empty or no accelerator in
    /// the explored set supports all workloads.
    pub fn run(&self, input: &InputDescription) -> Result<Solution, HascoError> {
        if input.app.is_empty() {
            return Err(HascoError::EmptyApp);
        }
        let generator = Self::make_generator(input.method);
        let workers = WorkerPool::new(resolve_threads(self.opts.threads));

        // Step 2: hardware DSE with software-in-the-loop evaluation,
        // batched onto the evaluation runtime.
        let mut problem = HwProblem::new(
            generator.as_ref(),
            &input.app.workloads,
            self.opts.sw_inner.clone(),
            self.opts.seed,
        )
        .with_workers(workers.clone())
        .with_cache_capacity(self.opts.cache_capacity);
        let mut mobo = Mobo::new(self.opts.seed).with_prior_samples(self.opts.mobo_prior);
        let mut history = mobo.run(&mut problem, self.opts.hw_trials);
        if history.evaluations.is_empty() {
            return Err(HascoError::NoFeasibleAccelerator);
        }

        // Step 3: pick the Pareto point satisfying the constraints (or the
        // least-violating one), re-optimizing thoroughly. When the metrics
        // violate the constraints, they "drive the hardware DSE and
        // generate a new accelerator": run extra exploration rounds with
        // fresh seeds and merge the histories before giving up.
        let mut solution = self.select_and_finalize(input, generator.as_ref(), &history)?;
        let mut round = 0;
        while !solution.meets_constraints && round < self.opts.tuning_rounds {
            round += 1;
            let mut retune = Mobo::new(self.opts.seed.wrapping_add(round as u64 * 0x9e37))
                .with_prior_samples(self.opts.mobo_prior);
            let extra = retune.run(&mut problem, self.opts.hw_trials);
            for e in extra.evaluations {
                if !history.evaluations.iter().any(|h| h.point == e.point) {
                    history.evaluations.push(e);
                }
            }
            history.infeasible += extra.infeasible;
            let candidate = self.select_and_finalize(input, generator.as_ref(), &history)?;
            if candidate.meets_constraints
                || input.constraints.violation(&candidate.total)
                    < input.constraints.violation(&solution.total)
            {
                solution = candidate;
            }
        }
        // The solution reports the full (merged) exploration history even
        // when a retuning round did not improve on the incumbent.
        solution.hw_history = history;
        solution.stats = RunStats {
            threads: workers.threads(),
            hw_evaluations: solution.hw_history.evaluations.len(),
            sw_explorations: problem.sw_requests(),
            cache: problem.cache_stats(),
        };
        Ok(solution)
    }

    fn select_and_finalize(
        &self,
        input: &InputDescription,
        generator: &dyn Generator,
        history: &dse::problem::OptimizerResult,
    ) -> Result<Solution, HascoError> {
        let chosen = tuning::select_point(history, &input.constraints)
            .ok_or(HascoError::NoFeasibleAccelerator)?;
        let cfg = generator
            .generate(&chosen)
            .map_err(|e| HascoError::Hardware(e.to_string()))?;
        self.finalize(input, cfg, history.clone())
    }

    /// Optimizes the software thoroughly for a fixed accelerator and
    /// assembles the solution (also used by the "separate design"
    /// baseline, which skips the hardware DSE).
    ///
    /// # Errors
    /// Returns [`HascoError::Software`] when a workload cannot be mapped.
    pub fn finalize(
        &self,
        input: &InputDescription,
        cfg: AcceleratorConfig,
        hw_history: dse::problem::OptimizerResult,
    ) -> Result<Solution, HascoError> {
        let workers = WorkerPool::new(resolve_threads(self.opts.threads));
        let explorer = SoftwareExplorer::new(self.opts.seed);
        // The thorough per-workload explorations are independent pure
        // runs, so they fan out across the pool; errors are reported in
        // workload order (first failure wins), matching the serial path.
        let outcomes = workers.map(&input.app.workloads, |_, w| {
            let optimized = explorer
                .optimize(w, &cfg, &self.opts.sw_final)
                .map_err(|e| HascoError::Software(format!("{}: {e}", w.name)))?;
            let intr = cfg.intrinsic_comp();
            let ctx = sw_opt::schedule::ScheduleContext::new(w, &intr)
                .map_err(|e| HascoError::Software(e.to_string()))?;
            let program = sw_opt::codegen::render(&optimized.schedule, &ctx);
            Ok(WorkloadSolution {
                workload: w.name.clone(),
                schedule: optimized.schedule,
                metrics: optimized.metrics,
                program,
            })
        });
        let mut per_workload = Vec::with_capacity(input.app.len());
        let mut parts = Vec::with_capacity(input.app.len());
        for outcome in outcomes {
            let ws = outcome?;
            parts.push(ws.metrics);
            per_workload.push(ws);
        }
        let total = Metrics::sequential(&parts);
        Ok(Solution {
            meets_constraints: input.constraints.satisfied_by(&total),
            accelerator: cfg,
            per_workload,
            total,
            hw_history,
            stats: RunStats {
                threads: workers.threads(),
                ..RunStats::default()
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::Constraints;
    use tensor_ir::suites;
    use tensor_ir::workload::TensorApp;

    fn toy_input() -> InputDescription {
        InputDescription {
            app: TensorApp::new(
                "toy",
                vec![
                    suites::gemm_workload("g1", 128, 128, 128),
                    suites::gemm_workload("g2", 256, 128, 64),
                ],
            ),
            method: GenerationMethod::Gemmini,
            constraints: Constraints::default(),
        }
    }

    #[test]
    fn codesign_produces_complete_solution() {
        let solution = CoDesigner::new(CoDesignOptions::quick(1))
            .run(&toy_input())
            .unwrap();
        assert_eq!(solution.per_workload.len(), 2);
        assert!(solution.total.latency_ms > 0.0);
        assert!(solution.meets_constraints);
        assert!(!solution.hw_history.evaluations.is_empty());
        assert!(solution.per_workload[0].program.contains("Tensorized_gemm"));
    }

    #[test]
    fn empty_app_is_rejected() {
        let mut input = toy_input();
        input.app = TensorApp::new("empty", vec![]);
        assert_eq!(
            CoDesigner::new(CoDesignOptions::quick(0))
                .run(&input)
                .unwrap_err(),
            HascoError::EmptyApp
        );
    }

    #[test]
    fn codesign_beats_or_matches_default_hardware() {
        // The co-design headline: the explored accelerator + tuned software
        // should not lose to the fixed default accelerator with the same
        // software effort.
        let input = toy_input();
        let designer = CoDesigner::new(CoDesignOptions::quick(3));
        let co = designer.run(&input).unwrap();
        let baseline_cfg = hw_gen::GemminiGenerator::baseline(false);
        let base = designer
            .finalize(
                &input,
                baseline_cfg,
                dse::problem::OptimizerResult::new("fixed"),
            )
            .unwrap();
        assert!(
            co.total.latency_cycles <= base.total.latency_cycles * 1.05,
            "co-design {} vs baseline {}",
            co.total.latency_cycles,
            base.total.latency_cycles
        );
    }

    #[test]
    fn retuning_rounds_expand_the_history_under_tight_constraints() {
        let mut input = toy_input();
        // Unreachable latency: retuning must kick in and merge extra
        // evaluations while returning a flagged best-effort solution.
        input.constraints = Constraints::latency_power(1e-9, 1e9);
        let mut opts = CoDesignOptions::quick(4);
        opts.hw_trials = 5;
        opts.tuning_rounds = 2;
        let with_retune = CoDesigner::new(opts.clone()).run(&input).unwrap();
        opts.tuning_rounds = 0;
        let without = CoDesigner::new(opts).run(&input).unwrap();
        assert!(!with_retune.meets_constraints);
        assert!(
            with_retune.hw_history.evaluations.len() > without.hw_history.evaluations.len(),
            "retuning added no evaluations: {} vs {}",
            with_retune.hw_history.evaluations.len(),
            without.hw_history.evaluations.len()
        );
        // Retuning never makes the solution worse.
        assert!(with_retune.total.latency_cycles <= without.total.latency_cycles * 1.0001);
    }

    #[test]
    fn hw_problem_caches_points() {
        let input = toy_input();
        let generator = GemminiGenerator::new();
        let mut p = HwProblem::new(
            &generator,
            &input.app.workloads,
            CoDesignOptions::quick(0).sw_inner,
            0,
        );
        let point = vec![0; p.space().len()];
        let a = p.evaluate(&point);
        let evals_after_first = p.evaluated.len();
        let b = p.evaluate(&point);
        assert_eq!(a, b);
        assert_eq!(p.evaluated.len(), evals_after_first);
    }

    #[test]
    fn hw_problem_memoizes_repeated_pairs_across_points() {
        // Two points whose configs coincide on everything the fingerprint
        // sees hit the memo cache instead of re-running the explorer.
        let input = toy_input();
        let generator = GemminiGenerator::new();
        let mut p = HwProblem::new(
            &generator,
            &input.app.workloads,
            CoDesignOptions::quick(0).sw_inner,
            0,
        );
        let point = vec![0; p.space().len()];
        let _ = p.evaluate(&point);
        let misses_after_first = p.cache_stats().misses;
        assert!(misses_after_first >= input.app.len() as u64);
        // Re-evaluating the same point is answered by the point cache; the
        // memo cache is not even consulted.
        let _ = p.evaluate(&point);
        assert_eq!(p.cache_stats().misses, misses_after_first);
        assert_eq!(p.cache_stats().inserts, misses_after_first);
    }

    #[test]
    fn hw_problem_batches_match_serial_at_any_worker_count() {
        let input = toy_input();
        let generator = GemminiGenerator::new();
        let sw = CoDesignOptions::quick(0).sw_inner;
        let points: Vec<Point> = {
            let probe = HwProblem::new(&generator, &input.app.workloads, sw.clone(), 0);
            let dims = probe.space().dim_sizes.clone();
            (0..6)
                .map(|k| dims.iter().map(|&s| k % s).collect())
                .collect()
        };
        let mut serial = HwProblem::new(&generator, &input.app.workloads, sw.clone(), 0);
        let mut parallel = HwProblem::new(&generator, &input.app.workloads, sw, 0)
            .with_workers(WorkerPool::new(4));
        let a = serial.evaluate_batch(&points);
        let b = parallel.evaluate_batch(&points);
        assert_eq!(a, b);
        assert_eq!(serial.evaluated.len(), parallel.evaluated.len());
        for ((pa, ma), (pb, mb)) in serial.evaluated.iter().zip(&parallel.evaluated) {
            assert_eq!(pa, pb);
            assert_eq!(ma.latency_cycles, mb.latency_cycles);
        }
    }

    #[test]
    fn codesign_threads_do_not_change_the_solution() {
        let input = toy_input();
        let serial = CoDesigner::new(CoDesignOptions::quick(6))
            .run(&input)
            .unwrap();
        let parallel = CoDesigner::new(CoDesignOptions::quick(6).with_threads(4))
            .run(&input)
            .unwrap();
        assert_eq!(serial.accelerator, parallel.accelerator);
        assert_eq!(serial.total.latency_cycles, parallel.total.latency_cycles);
        assert_eq!(serial.hw_history, parallel.hw_history);
        assert_eq!(parallel.stats.threads, 4);
        assert!(parallel.stats.hw_evaluations > 0);
    }

    #[test]
    fn chisel_method_works_too() {
        let mut input = toy_input();
        input.method = GenerationMethod::Chisel(tensor_ir::intrinsics::IntrinsicKind::Gemm);
        let mut opts = CoDesignOptions::quick(2);
        opts.hw_trials = 6;
        let solution = CoDesigner::new(opts).run(&input).unwrap();
        assert_eq!(solution.per_workload.len(), 2);
    }
}
