//! Step 2 — solution generation (§III, §V, §VI): joint exploration of the
//! hardware and software design spaces.
//!
//! The hardware DSE (MOBO) treats each design point as an accelerator
//! instance; evaluating a point runs the *software* explorer for every
//! workload on that accelerator and reports the summed optimized latency,
//! the average power, and the area — "the Bayesian-based hardware
//! optimization uses the software latency as the performance metric, while
//! the heuristic and Q-learning-based software optimization tailors the
//! software mappings for the hardware parameters".

use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use accel_model::arch::AcceleratorConfig;
use accel_model::tech::TechParams;
use accel_model::{BackendKind, CostBackend, Metrics};
use dse::anneal::Annealer;
use dse::mobo::Mobo;
use dse::nsga2::Nsga2;
use dse::problem::{Point, Problem, SearchSpace};
use dse::progress::{BatchUpdate, Progress};
use dse::random::RandomSearch;
use dse::staged::AdaptiveTopK;
use dse::Optimizer;
use hw_gen::space::Generator;
use hw_gen::{ChiselGenerator, GemminiGenerator};
use runtime::{
    resolve_threads, Fingerprinter, MemoCache, StableFingerprint, Telemetry, TierRecorder,
    WorkerPool,
};
use sw_opt::explorer::{ExplorerOptions, SoftwareExplorer};
use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::workload::Workload;

use crate::engine::{CoDesignRequest, Engine, EngineConfig};
use crate::event::{EventSink, RunEvent};
use crate::input::{GenerationMethod, InputDescription};
use crate::partition::partition_app;
use crate::report::RunStats;
use crate::solution::{Solution, WorkloadSolution};
use crate::tuning;
use crate::HascoError;

/// The hardware-DSE optimizer a run drives (the paper's flow uses MOBO;
/// the baselines exist so convergence studies — Fig. 10 — can run the
/// exact co-design pipeline under every method).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum OptimizerKind {
    /// Multi-objective Bayesian optimization (the paper's method).
    #[default]
    Mobo,
    /// The NSGA-II genetic baseline.
    Nsga2,
    /// The random-search baseline.
    Random,
    /// The simulated-annealing baseline.
    Anneal,
}

impl OptimizerKind {
    /// Builds the optimizer. `prior` is MOBO's prior-sample count
    /// (ignored by the baselines).
    pub fn build(self, seed: u64, prior: usize) -> Box<dyn Optimizer> {
        match self {
            OptimizerKind::Mobo => Box::new(Mobo::new(seed).with_prior_samples(prior)),
            OptimizerKind::Nsga2 => Box::new(Nsga2::new(seed)),
            OptimizerKind::Random => Box::new(RandomSearch::new(seed)),
            OptimizerKind::Anneal => Box::new(Annealer::new(seed)),
        }
    }

    /// Short stable identifier (also used in request fingerprints).
    pub fn as_str(self) -> &'static str {
        match self {
            OptimizerKind::Mobo => "mobo",
            OptimizerKind::Nsga2 => "nsga2",
            OptimizerKind::Random => "random",
            OptimizerKind::Anneal => "anneal",
        }
    }
}

impl std::fmt::Display for OptimizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Knobs of one co-design run.
#[derive(Debug, Clone)]
pub struct CoDesignOptions {
    /// Hardware DSE trial budget (the paper uses 20–40).
    pub hw_trials: usize,
    /// MOBO prior-sample count.
    pub mobo_prior: usize,
    /// Software exploration used *inside* the hardware loop (cheap).
    pub sw_inner: ExplorerOptions,
    /// Software exploration for the final chosen accelerator (thorough).
    pub sw_final: ExplorerOptions,
    /// Extra constraint-driven DSE rounds when the first solution violates
    /// the constraints (Step 3: "if the metrics violate the user
    /// constraints, they will drive the hardware DSE and generate a new
    /// accelerator"). Each round re-runs the explorer with a fresh seed
    /// and merges the histories.
    pub tuning_rounds: usize,
    /// RNG seed for the whole run.
    pub seed: u64,
    /// Evaluation worker threads: `1` runs fully serial, `0` uses every
    /// available core. Thread count changes wall-clock time only — a
    /// fixed-seed run produces the identical solution at any setting.
    pub threads: usize,
    /// Work-stealing in the evaluation pool (on by default). Like the
    /// thread count, this changes wall-clock time only, never results.
    pub work_stealing: bool,
    /// Capacity (entries) of the memoizing evaluation cache shared by the
    /// hardware DSE trials.
    pub cache_capacity: usize,
    /// Cost backend used to screen every candidate evaluation.
    pub backend: BackendKind,
    /// High-fidelity backend for the staged refinement pass (and the
    /// final software optimization, so reported metrics are high-fidelity
    /// whenever staging is on).
    pub refine_backend: BackendKind,
    /// Survivors per screened batch re-evaluated with `refine_backend`
    /// before entering the Pareto front / GP training set. `0` disables
    /// fidelity staging (every evaluation uses `backend` only). With
    /// `adaptive_refinement` on, this is the *initial* budget of the
    /// adaptive controller.
    pub refine_top_k: usize,
    /// Adaptive fidelity staging: grow/shrink the per-batch refine budget
    /// from the observed screen-vs-refine rank disagreement
    /// ([`dse::staged::AdaptiveTopK`]). Like the fixed policy, the
    /// adaptive trajectory is a pure function of batch content, so thread
    /// count never changes results.
    pub adaptive_refinement: bool,
    /// Technology parameters every backend tier is built with (the
    /// `--tech-sweep` scenario axis; part of every memo fingerprint).
    pub tech: TechParams,
    /// Persistent cross-run evaluation cache: loaded (warm start) before
    /// the hardware DSE and saved afterwards — merged newest-wins into
    /// whatever the file already holds, so runs sharing a cache file
    /// accumulate warmth. `None` keeps the cache in-memory only.
    pub cache_path: Option<PathBuf>,
    /// The hardware-DSE optimizer (MOBO by default; the baselines let
    /// convergence studies drive the whole pipeline under every method).
    pub optimizer: OptimizerKind,
    /// Forces a surrogate screen tier onto its from-scratch reference
    /// refit path (O(n³) per observation) instead of the default
    /// incremental factor extension (O(n²)). The two paths are pinned
    /// bit-identical — this knob exists so the determinism suite can
    /// compare whole runs across them, and as an escape hatch. Never part
    /// of any fingerprint, because it cannot change results.
    pub surrogate_full_refit: bool,
}

impl CoDesignOptions {
    /// The paper-sized configuration (20 co-design trials).
    pub fn paper(seed: u64) -> Self {
        CoDesignOptions {
            hw_trials: 20,
            mobo_prior: 5,
            sw_inner: ExplorerOptions {
                pool: 8,
                rounds: 8,
                top_k: 3,
                ..ExplorerOptions::default()
            },
            sw_final: ExplorerOptions::default(),
            tuning_rounds: 2,
            seed,
            threads: 1,
            work_stealing: true,
            cache_capacity: 4096,
            backend: BackendKind::Analytic,
            refine_backend: BackendKind::TraceSim,
            refine_top_k: 0,
            adaptive_refinement: false,
            tech: TechParams::default(),
            cache_path: None,
            optimizer: OptimizerKind::Mobo,
            surrogate_full_refit: false,
        }
    }

    /// A fast configuration for tests and examples.
    pub fn quick(seed: u64) -> Self {
        CoDesignOptions {
            hw_trials: 8,
            mobo_prior: 4,
            sw_inner: ExplorerOptions {
                pool: 5,
                rounds: 4,
                top_k: 2,
                ..ExplorerOptions::default()
            },
            sw_final: ExplorerOptions {
                pool: 8,
                rounds: 8,
                top_k: 3,
                ..ExplorerOptions::default()
            },
            tuning_rounds: 1,
            seed,
            threads: 1,
            work_stealing: true,
            cache_capacity: 4096,
            backend: BackendKind::Analytic,
            refine_backend: BackendKind::TraceSim,
            refine_top_k: 0,
            adaptive_refinement: false,
            tech: TechParams::default(),
            cache_path: None,
            optimizer: OptimizerKind::Mobo,
            surrogate_full_refit: false,
        }
    }

    /// Sets the evaluation worker count (`0` = all cores).
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Toggles work-stealing in the evaluation pool.
    pub fn with_work_stealing(mut self, stealing: bool) -> Self {
        self.work_stealing = stealing;
        self
    }

    /// Sets the screening cost backend.
    pub fn with_backend(mut self, backend: BackendKind) -> Self {
        self.backend = backend;
        self
    }

    /// Enables fidelity staging: re-evaluate the `top_k` best-screened
    /// candidates of every batch with `refine_backend`.
    pub fn with_refinement(mut self, refine_backend: BackendKind, top_k: usize) -> Self {
        self.refine_backend = refine_backend;
        self.refine_top_k = top_k;
        self.adaptive_refinement = false;
        self
    }

    /// Enables *adaptive* fidelity staging: start refining `initial_top_k`
    /// survivors per batch and let the controller grow/shrink the budget
    /// from the observed screen-vs-refine rank disagreement.
    pub fn with_adaptive_refinement(
        mut self,
        refine_backend: BackendKind,
        initial_top_k: usize,
    ) -> Self {
        self.refine_backend = refine_backend;
        self.refine_top_k = initial_top_k;
        self.adaptive_refinement = initial_top_k > 0;
        self
    }

    /// Builds every backend tier with the given technology parameters.
    pub fn with_tech(mut self, tech: TechParams) -> Self {
        self.tech = tech;
        self
    }

    /// Persists the evaluation cache at `path` across runs.
    pub fn with_cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Selects the hardware-DSE optimizer.
    pub fn with_optimizer(mut self, optimizer: OptimizerKind) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Forces a surrogate screen tier onto its from-scratch reference
    /// refit path (see [`CoDesignOptions::surrogate_full_refit`]).
    pub fn with_surrogate_full_refit(mut self, full_refit: bool) -> Self {
        self.surrogate_full_refit = full_refit;
        self
    }

    /// Builds the screen backend, honoring the surrogate refit-mode knob.
    pub(crate) fn build_screen_backend(&self) -> Arc<dyn CostBackend> {
        if self.surrogate_full_refit && self.backend == BackendKind::Surrogate {
            let model = accel_model::CostModel::new(self.tech.clone());
            let inner = Arc::new(accel_model::TraceSimBackend::new(model.clone()));
            Arc::new(accel_model::SurrogateBackend::new(model, inner).with_full_refit())
        } else {
            self.backend.build_with(self.tech.clone())
        }
    }

    /// Rejects option combinations that would silently degenerate instead
    /// of doing what they look like they do. Called by
    /// [`Engine::submit`](crate::engine::Engine::submit) and
    /// [`CoDesigner::run`], so every entry point fails fast with a clear
    /// [`HascoError::InvalidOptions`] rather than running a misconfigured
    /// study to completion.
    ///
    /// # Errors
    /// Returns [`HascoError::InvalidOptions`] when:
    /// * the trial budget or the software-exploration pools are zero;
    /// * fidelity staging is on but the refine tier equals the screen
    ///   tier (the "refinement" would re-price with the same backend);
    /// * the refine tier is the surrogate (it *trains from* the refine
    ///   tier — wrapping it around itself is self-referential);
    /// * adaptive staging is requested with a zero initial budget (the
    ///   controller could never refine, so it could never observe
    ///   disagreement and grow).
    pub fn validate(&self) -> Result<(), HascoError> {
        let invalid = |msg: &str| Err(HascoError::InvalidOptions(msg.into()));
        if self.hw_trials == 0 {
            return invalid("hw_trials must be at least 1");
        }
        if self.sw_inner.pool == 0 || self.sw_final.pool == 0 {
            return invalid("software exploration pools must be non-empty");
        }
        let staging = self.refine_top_k > 0;
        if staging && self.refine_backend == self.backend {
            return invalid(
                "refine tier equals the screen tier — staging would re-price every survivor \
                 with the backend that already screened it; pick a higher-fidelity \
                 refine_backend or disable staging (refine_top_k = 0)",
            );
        }
        if staging && self.refine_backend == BackendKind::Surrogate {
            return invalid(
                "the surrogate cannot be the refine tier — it trains from refine-tier \
                 observations, so wrapping it around itself is self-referential; use sim \
                 or calibrated as the refine backend",
            );
        }
        if self.adaptive_refinement && self.refine_top_k == 0 {
            return invalid(
                "adaptive staging needs a nonzero initial refine_top_k — with a zero budget \
                 the controller never refines, so it can never observe disagreement and \
                 grow",
            );
        }
        Ok(())
    }
}

/// The high-fidelity refinement tier of a fidelity-staged problem.
struct RefineTier {
    /// Explorer wired to the high-fidelity cost backend.
    explorer: SoftwareExplorer,
    /// Survivors per screened batch re-evaluated at high fidelity (the
    /// fixed policy; ignored while `controller` is installed).
    top_k: usize,
    /// The adaptive refine-budget controller, when adaptive staging is
    /// on. Updated serially between batches, so its trajectory is a pure
    /// function of batch content.
    controller: Option<AdaptiveTopK>,
    /// Memo-key bases for this tier (distinct from the screen tier's via
    /// the backend fingerprint).
    bases: Vec<(Fingerprinter, Fingerprinter)>,
    /// Remote dispatch for this tier's fresh evaluations, when installed
    /// and the tier's backend is remote-eligible.
    remote: Option<RemoteTierHook>,
}

/// One tier's remote-dispatch hook: the evaluator that ships batches out
/// of process, plus the `(backend, tech)` recipe workers rebuild the
/// tier's cost backend from. Results are bit-identical to the in-process
/// path because per-pair evaluations are pure (see [`crate::remote`]).
#[derive(Clone)]
pub struct RemoteTierHook {
    evaluator: crate::remote::SharedPairEvaluator,
    kind: BackendKind,
    tech: TechParams,
}

/// The hardware design space wrapped as a [`dse::problem::Problem`].
///
/// Evaluation is where the whole co-design loop spends its time: one
/// design point means one full software exploration per workload. The
/// problem therefore routes every batch through the parallel evaluation
/// runtime — [`Problem::evaluate_batch`] fans the batch's
/// `(accelerator, workload)` pairs out to a [`WorkerPool`] and answers
/// repeated pairs from a fingerprint-keyed [`MemoCache`] — while keeping
/// results bitwise identical to the serial path (order-preserving
/// reassembly; pure per-pair evaluations).
///
/// Pricing dispatches through a pluggable [`CostBackend`]
/// ([`HwProblem::with_backend`]); with [`HwProblem::with_refinement`] the
/// problem becomes fidelity-staged: the whole batch is screened by the
/// cheap backend, then only the top-k screened survivors are re-priced by
/// the high-fidelity tier before their objectives enter the Pareto front
/// and the GP training set. Survivor selection is a pure function of the
/// batch's screened responses (ties broken by submission order), so
/// staging preserves the thread-count-independence invariant.
pub struct HwProblem<'a> {
    generator: &'a dyn Generator,
    workloads: &'a [Workload],
    space: SearchSpace,
    explorer: SoftwareExplorer,
    sw_opts: ExplorerOptions,
    seed: u64,
    workers: WorkerPool,
    /// Memoized per-(accelerator, workload) explorer outcomes, keyed by
    /// the stable fingerprint of config + workload + options + seed +
    /// cost backend. `None` records a software-exploration failure (also
    /// worth caching). Shared by the screen and refine tiers (their keys
    /// differ through the backend fingerprint) and persistable across
    /// runs ([`HwProblem::save_cache`]).
    memo: MemoCache<(u64, u64), Option<Metrics>>,
    /// Exact per-point replay cache (a point hit skips config generation
    /// and the memo lookups entirely).
    cache: BTreeMap<Point, Option<Vec<f64>>>,
    /// Per-workload fingerprint bases: (workload, options, seed, backend)
    /// are invariant *between retrainings* of the screen backend, so
    /// their hash state is computed once and cloned per pair instead of
    /// re-walking the workload structure on every lookup; a surrogate
    /// screen tier advancing its training generation triggers a rebuild
    /// (see `refresh_screen_bases`). Two independently-seeded states form
    /// a 128-bit key, so a 64-bit collision degrades to a cache miss
    /// instead of returning another design's metrics.
    pair_bases: Vec<(Fingerprinter, Fingerprinter)>,
    /// The screen backend fingerprint `pair_bases` was computed from.
    screen_fp: runtime::Fingerprint,
    /// The optional high-fidelity stage.
    refine: Option<RefineTier>,
    /// Remote dispatch for the screen tier's fresh evaluations, when
    /// installed and the screen backend is remote-eligible.
    remote_screen: Option<RemoteTierHook>,
    /// Total (design point, workload) evaluations requested through the
    /// screen tier, memoized or not.
    sw_requests: usize,
    /// (design point, workload) evaluations re-run at high fidelity.
    refine_requests: usize,
    /// Staged batches processed (the `Refined` event sequence number).
    staged_batches: usize,
    /// Progress-event sink (disabled by default; the engine installs a
    /// live one per job).
    events: EventSink,
    /// Wall-clock side channel (disabled by default). Strictly
    /// observation-only: nothing recorded here reaches memo fingerprints,
    /// [`RunStats`], or the event stream.
    telemetry: Telemetry,
    /// Evaluated (point, metrics) pairs for later reuse.
    pub evaluated: Vec<(Point, Metrics)>,
}

impl<'a> HwProblem<'a> {
    /// Wraps a generator + workloads as a 3-objective problem
    /// (latency cycles, power mW, area mm²), evaluating serially with the
    /// analytic backend.
    pub fn new(
        generator: &'a dyn Generator,
        workloads: &'a [Workload],
        sw_opts: ExplorerOptions,
        seed: u64,
    ) -> Self {
        let dim_sizes = generator.space().dims.iter().map(|d| d.len()).collect();
        let explorer = SoftwareExplorer::new(seed);
        let pair_bases = Self::make_bases(workloads, &sw_opts, seed, &explorer);
        let screen_fp = explorer.backend_fingerprint();
        HwProblem {
            generator,
            workloads,
            space: SearchSpace::new(dim_sizes),
            explorer,
            sw_opts,
            seed,
            workers: WorkerPool::serial(),
            memo: MemoCache::new(4096),
            cache: BTreeMap::new(),
            pair_bases,
            screen_fp,
            refine: None,
            remote_screen: None,
            sw_requests: 0,
            refine_requests: 0,
            staged_batches: 0,
            events: EventSink::disabled(),
            telemetry: Telemetry::disabled(),
            evaluated: Vec::new(),
        }
    }

    /// Builds the per-workload fingerprint bases for one explorer tier.
    /// The explorer's cost backend is part of the key: different backends
    /// legitimately produce different metrics for the same pair.
    fn make_bases(
        workloads: &[Workload],
        sw_opts: &ExplorerOptions,
        seed: u64,
        explorer: &SoftwareExplorer,
    ) -> Vec<(Fingerprinter, Fingerprinter)> {
        let backend_fp = explorer.backend_fingerprint();
        workloads
            .iter()
            .map(|w| {
                let mut lo = Fingerprinter::new();
                let mut hi = Fingerprinter::new();
                // Distinct prefixes give the two lanes independent states.
                hi.write_u64(0x9e3779b97f4a7c15);
                for fp in [&mut lo, &mut hi] {
                    w.fingerprint_into(fp);
                    sw_opts.fingerprint_into(fp);
                    fp.write_u64(seed);
                    fp.write_u64(backend_fp.0);
                }
                (lo, hi)
            })
            .collect()
    }

    /// Runs batch evaluations on the given worker pool.
    pub fn with_workers(mut self, workers: WorkerPool) -> Self {
        self.workers = workers;
        self
    }

    /// Bounds the memoizing evaluation cache (call before
    /// [`HwProblem::load_cache`] — resizing resets the cache).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.memo = MemoCache::new(capacity);
        self
    }

    /// Screens every candidate evaluation through the given cost backend.
    pub fn with_backend(mut self, backend: Arc<dyn CostBackend>) -> Self {
        self.explorer = SoftwareExplorer::new(self.seed).with_backend(backend);
        self.pair_bases =
            Self::make_bases(self.workloads, &self.sw_opts, self.seed, &self.explorer);
        self.screen_fp = self.explorer.backend_fingerprint();
        self
    }

    /// Enables fidelity staging: the `top_k` best-screened points of every
    /// batch are re-evaluated through `backend` before their objectives
    /// are reported. `top_k == 0` disables staging.
    pub fn with_refinement(mut self, backend: Arc<dyn CostBackend>, top_k: usize) -> Self {
        if top_k == 0 {
            self.refine = None;
            return self;
        }
        let explorer = SoftwareExplorer::new(self.seed).with_backend(backend);
        let bases = Self::make_bases(self.workloads, &self.sw_opts, self.seed, &explorer);
        self.refine = Some(RefineTier {
            explorer,
            top_k,
            controller: None,
            bases,
            remote: None,
        });
        self
    }

    /// Installs remote batch dispatch: fresh (non-memoized) evaluations
    /// of a tier whose `(BackendKind, TechParams)` recipe is given flow
    /// through `evaluator` instead of the local worker pool. Call after
    /// [`HwProblem::with_backend`] / [`HwProblem::with_refinement`] so
    /// the hooks attach to the installed tiers. Memo probing, in-batch
    /// deduplication, and submission-order reassembly are unchanged, and
    /// per-pair evaluations are pure, so results are bit-identical to
    /// local execution at any worker count.
    pub fn with_remote_evaluator(
        mut self,
        evaluator: crate::remote::SharedPairEvaluator,
        screen: Option<(BackendKind, TechParams)>,
        refine: Option<(BackendKind, TechParams)>,
    ) -> Self {
        self.remote_screen = screen.map(|(kind, tech)| RemoteTierHook {
            evaluator: Arc::clone(&evaluator),
            kind,
            tech,
        });
        if let (Some(tier), Some((kind, tech))) = (&mut self.refine, refine) {
            tier.remote = Some(RemoteTierHook {
                evaluator,
                kind,
                tech,
            });
        }
        self
    }

    /// Enables *adaptive* fidelity staging: like
    /// [`HwProblem::with_refinement`], but the per-batch refine budget
    /// starts at `initial_top_k` and is grown/shrunk by an
    /// [`AdaptiveTopK`] controller from the observed screen-vs-refine
    /// rank disagreement. When the screen backend is a
    /// [`accel_model::SurrogateBackend`], every refined configuration is
    /// also fed back as GP training data, so the screen tier improves as
    /// the run progresses. `initial_top_k == 0` disables staging.
    pub fn with_adaptive_refinement(
        mut self,
        backend: Arc<dyn CostBackend>,
        initial_top_k: usize,
    ) -> Self {
        self = self.with_refinement(backend, initial_top_k);
        if let Some(tier) = &mut self.refine {
            tier.controller = Some(AdaptiveTopK::new(initial_top_k));
        }
        self
    }

    /// Rebuilds the screen tier's memo-key bases if the screen backend's
    /// fingerprint moved (a surrogate advancing its training
    /// generation) — stale-generation memo entries become unreachable
    /// instead of being served.
    fn refresh_screen_bases(&mut self) {
        let fp = self.explorer.backend_fingerprint();
        if fp != self.screen_fp {
            self.pair_bases =
                Self::make_bases(self.workloads, &self.sw_opts, self.seed, &self.explorer);
            self.screen_fp = fp;
        }
    }

    /// Streams staging progress ([`RunEvent::Refined`]) to the given
    /// sink. Events are emitted from the thread driving
    /// [`Problem::evaluate_batch`] — never from workers — so the stream
    /// is identical at any thread count.
    pub fn with_events(mut self, events: EventSink) -> Self {
        self.events = events;
        self
    }

    /// Attaches the telemetry side channel: per-tier evaluation latency,
    /// staging spans, and end-of-run cache counters flow into it. A
    /// surrogate screen backend additionally reports its GP fit/predict
    /// timings. Call after [`HwProblem::with_backend`] /
    /// [`HwProblem::with_refinement`] so the installed backends are the
    /// ones that run.
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Self {
        if let Some(surrogate) = self.explorer.backend().as_surrogate() {
            surrogate.install_telemetry(telemetry.clone());
        }
        self.telemetry = telemetry;
        self
    }

    /// Seeds the memoizing evaluation cache with entries from a shared
    /// store (the engine's cross-request warm state), preserving each
    /// entry's age. Warm entries only skip recomputation — memoized
    /// evaluations are pure, so seeding changes cache statistics, never
    /// results.
    pub(crate) fn seed_memo(&self, entries: &[((u64, u64), Option<Metrics>, u64)]) {
        for (key, value, stamp) in entries {
            self.memo.insert_stamped(*key, *value, *stamp);
        }
    }

    /// Snapshot of the memo cache with entry ages — what a job publishes
    /// back into the engine's shared store on completion.
    pub(crate) fn memo_snapshot(&self) -> Vec<((u64, u64), Option<Metrics>, u64)> {
        self.memo.snapshot_stamped()
    }

    /// Counters of the memoizing evaluation cache.
    pub fn cache_stats(&self) -> runtime::CacheStats {
        self.memo.stats()
    }

    /// The worker pool driving batch evaluation.
    pub fn workers(&self) -> &WorkerPool {
        &self.workers
    }

    /// Loads the persistent evaluation cache (warm start). Returns the
    /// number of entries loaded; a missing or corrupted file is a clean
    /// cold start (0).
    pub fn load_cache(&self, path: &std::path::Path) -> u64 {
        self.memo
            .load_from_file(path, Self::decode_cache_entry)
            .unwrap_or(0)
    }

    /// Persists the evaluation cache for future runs, merging
    /// newest-wins into whatever the file already holds (so cache files
    /// shared across runs and bench binaries accumulate instead of
    /// thrash) and writing atomically (a crash mid-save never truncates
    /// the previous image).
    ///
    /// # Errors
    /// Propagates I/O errors from writing the file.
    pub fn save_cache(&self, path: &std::path::Path) -> std::io::Result<u64> {
        self.save_cache_with_max_age(path, None)
    }

    /// Like [`HwProblem::save_cache`], but additionally drops merged
    /// entries older than `max_age` — the same age-based GC the engine's
    /// persisted store uses, for callers persisting a problem directly.
    ///
    /// # Errors
    /// Propagates I/O errors from writing the file.
    pub fn save_cache_with_max_age(
        &self,
        path: &std::path::Path,
        max_age: Option<std::time::Duration>,
    ) -> std::io::Result<u64> {
        self.memo.save_merged_with_max_age(
            path,
            Self::encode_cache_entry,
            Self::decode_cache_entry,
            max_age,
        )
    }

    pub(crate) fn encode_cache_entry(key: &(u64, u64), value: &Option<Metrics>, out: &mut Vec<u8>) {
        out.extend_from_slice(&key.0.to_le_bytes());
        out.extend_from_slice(&key.1.to_le_bytes());
        match value {
            None => out.push(0),
            Some(m) => {
                out.push(1);
                for f in [
                    m.latency_cycles,
                    m.latency_ms,
                    m.energy_uj,
                    m.power_mw,
                    m.area_mm2,
                    m.throughput_mops,
                    m.utilization,
                ] {
                    out.extend_from_slice(&f.to_bits().to_le_bytes());
                }
            }
        }
    }

    pub(crate) fn decode_cache_entry(bytes: &[u8]) -> Option<((u64, u64), Option<Metrics>)> {
        let key = (
            u64::from_le_bytes(bytes.get(..8)?.try_into().ok()?),
            u64::from_le_bytes(bytes.get(8..16)?.try_into().ok()?),
        );
        match *bytes.get(16)? {
            0 if bytes.len() == 17 => Some((key, None)),
            1 if bytes.len() == 17 + 7 * 8 => {
                let mut f = [0.0f64; 7];
                for (i, slot) in f.iter_mut().enumerate() {
                    let at = 17 + i * 8;
                    *slot =
                        f64::from_bits(u64::from_le_bytes(bytes.get(at..at + 8)?.try_into().ok()?));
                }
                Some((
                    key,
                    Some(Metrics {
                        latency_cycles: f[0],
                        latency_ms: f[1],
                        energy_uj: f[2],
                        power_mw: f[3],
                        area_mm2: f[4],
                        throughput_mops: f[5],
                        utilization: f[6],
                    }),
                ))
            }
            _ => None,
        }
    }

    /// Evaluates an accelerator on all workloads (summed latency) — the
    /// serial reference path; batch evaluation must agree with it exactly.
    pub fn app_metrics(
        explorer: &SoftwareExplorer,
        workloads: &[Workload],
        cfg: &AcceleratorConfig,
        sw_opts: &ExplorerOptions,
    ) -> Option<Metrics> {
        let mut parts = Vec::with_capacity(workloads.len());
        for w in workloads {
            match explorer.best_metrics(w, cfg, sw_opts) {
                Ok(m) => parts.push(m),
                Err(_) => return None,
            }
        }
        Some(Metrics::sequential(&parts))
    }

    /// Stable 128-bit memoization key for one (accelerator, workload)
    /// evaluation: the precomputed (workload, options, seed, backend)
    /// bases extended by the accelerator config.
    fn pair_key(
        bases: &[(Fingerprinter, Fingerprinter)],
        cfg: &AcceleratorConfig,
        workload_idx: usize,
    ) -> (u64, u64) {
        let (mut lo, mut hi) = bases[workload_idx].clone();
        cfg.fingerprint_into(&mut lo);
        cfg.fingerprint_into(&mut hi);
        (lo.finish().0, hi.finish().0)
    }

    /// Total (design point, workload) evaluations requested through the
    /// screen tier so far.
    pub fn sw_requests(&self) -> usize {
        self.sw_requests
    }

    /// Total (design point, workload) evaluations re-run at high fidelity.
    pub fn refine_requests(&self) -> usize {
        self.refine_requests
    }

    /// The refine budget each staged batch used (empty when staging is
    /// off or the budget is fixed).
    pub fn topk_trajectory(&self) -> Vec<usize> {
        self.refine
            .as_ref()
            .and_then(|t| t.controller.as_ref())
            .map(|c| c.trajectory().to_vec())
            .unwrap_or_default()
    }

    /// Surrogate screen-tier state as `(training samples, trusted)`;
    /// `None` when the screen backend is not a surrogate.
    pub fn surrogate_stats(&self) -> Option<(usize, bool)> {
        self.explorer
            .backend()
            .as_surrogate()
            .map(|s| (s.training_len(), s.is_trusted()))
    }

    fn objectives_of(metrics: &Metrics) -> Vec<f64> {
        vec![metrics.latency_cycles, metrics.power_mw, metrics.area_mm2]
    }

    /// Evaluates every (config, workload) pair of one tier: memoized
    /// pairs are answered without occupying a worker, duplicates within
    /// the batch are dispatched once, and the rest fan out to the worker
    /// pool. Each job is a pure function of (seed, backend, config,
    /// workload, options), so completion order is irrelevant — the pool
    /// reassembles in submission order, keeping results identical at any
    /// thread count.
    #[allow(clippy::too_many_arguments)] // static worker threading the batch's whole context
    fn eval_pairs(
        explorer: &SoftwareExplorer,
        bases: &[(Fingerprinter, Fingerprinter)],
        memo: &MemoCache<(u64, u64), Option<Metrics>>,
        workers: &WorkerPool,
        workloads: &[Workload],
        sw_opts: &ExplorerOptions,
        configs: &[&AcceleratorConfig],
        tier: &TierRecorder,
        remote: Option<&RemoteTierHook>,
        seed: u64,
    ) -> Vec<Vec<Option<Metrics>>> {
        let mut results: Vec<Vec<Option<Option<Metrics>>>> = configs
            .iter()
            .map(|_| vec![None; workloads.len()])
            .collect();
        let mut jobs: Vec<(usize, usize, (u64, u64))> = Vec::new();
        let mut duplicates: Vec<(usize, usize, (u64, u64))> = Vec::new();
        let mut pending: BTreeSet<(u64, u64)> = BTreeSet::new();
        for ((ci, cfg), per_workload) in configs.iter().enumerate().zip(results.iter_mut()) {
            for (wi, slot) in per_workload.iter_mut().enumerate() {
                let key = Self::pair_key(bases, cfg, wi);
                // Duplicates of a key already dispatched in this batch
                // skip the memo probe: they are resolved (and counted as
                // hits) once the first occurrence has been computed.
                if pending.contains(&key) {
                    duplicates.push((ci, wi, key));
                    continue;
                }
                match memo.get(&key) {
                    Some(memoized) => *slot = Some(memoized),
                    None => {
                        pending.insert(key);
                        jobs.push((ci, wi, key));
                    }
                }
            }
        }

        // Only real (non-memoized) evaluations are timed, so the tier's
        // latency histogram measures the backend, not the cache.
        //
        // With a remote hook installed, the deduplicated fresh jobs ship
        // through the remote evaluator instead of the local pool. The
        // evaluator contract (order-preserving, pure per item) makes the
        // two paths bit-identical: everything around the dispatch — memo
        // probes, duplicate resolution, reassembly — is shared code.
        let outcomes = match remote {
            Some(hook) if !jobs.is_empty() => {
                let items: Vec<crate::remote::RemoteEvalRequest> = jobs
                    .iter()
                    .map(|&(ci, wi, _)| crate::remote::RemoteEvalRequest {
                        backend: hook.kind,
                        tech: hook.tech.clone(),
                        seed,
                        sw_opts: sw_opts.clone(),
                        workload: workloads[wi].clone(),
                        config: configs[ci].clone(),
                    })
                    .collect();
                hook.evaluator.evaluate_batch(&items)
            }
            _ => workers.map(&jobs, |_, &(ci, wi, _)| {
                tier.time(|| {
                    explorer
                        .best_metrics(&workloads[wi], configs[ci], sw_opts)
                        .ok()
                })
            }),
        };

        let mut fresh_outcomes: BTreeMap<(u64, u64), Option<Metrics>> = BTreeMap::new();
        for (&(ci, wi, key), outcome) in jobs.iter().zip(outcomes) {
            memo.insert(key, outcome);
            fresh_outcomes.insert(key, outcome);
            results[ci][wi] = Some(outcome);
        }
        for (ci, wi, key) in duplicates {
            // The memo lookup both answers the duplicate and credits the
            // hit; the local map covers the pathological case where a
            // tiny cache already evicted the entry.
            let outcome = memo.get(&key).unwrap_or_else(|| fresh_outcomes[&key]);
            results[ci][wi] = Some(outcome);
        }
        results
            .into_iter()
            .map(|per| {
                per.into_iter()
                    .map(|slot| slot.expect("every pair was resolved"))
                    .collect()
            })
            .collect()
    }
}

impl Problem for HwProblem<'_> {
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn num_objectives(&self) -> usize {
        3
    }

    fn evaluate(&mut self, point: &Point) -> Option<Vec<f64>> {
        self.evaluate_batch(std::slice::from_ref(point))
            .pop()
            .expect("batch of one yields one response")
    }

    fn evaluate_batch(&mut self, points: &[Point]) -> Vec<Option<Vec<f64>>> {
        // Stage 1 (serial): answer point-cache hits, decode fresh points
        // into accelerator configs, and deduplicate within the batch.
        let mut fresh: Vec<(usize, AcceleratorConfig)> = Vec::new();
        let mut fresh_points: BTreeSet<Point> = BTreeSet::new();
        for (i, p) in points.iter().enumerate() {
            if self.cache.contains_key(p) || fresh_points.contains(p) {
                continue;
            }
            match self.generator.generate(p) {
                Ok(cfg) => {
                    fresh_points.insert(p.clone());
                    fresh.push((i, cfg));
                }
                Err(_) => {
                    self.cache.insert(p.clone(), None);
                }
            }
        }

        // Stage 2 (screen): price every fresh point on every workload
        // through the screening backend — memo-deduplicated, fanned out
        // to the worker pool.
        self.sw_requests += fresh.len() * self.workloads.len();
        let configs: Vec<&AcceleratorConfig> = fresh.iter().map(|(_, cfg)| cfg).collect();
        let screen_span = self.telemetry.span("job/hw_dse/screen");
        let screened = Self::eval_pairs(
            &self.explorer,
            &self.pair_bases,
            &self.memo,
            &self.workers,
            self.workloads,
            &self.sw_opts,
            &configs,
            &self.telemetry.tier(self.explorer.backend().name()),
            self.remote_screen.as_ref(),
            self.seed,
        );
        drop(screen_span);
        let mut fresh_metrics: Vec<Option<Metrics>> = screened
            .into_iter()
            .map(|per| {
                per.into_iter()
                    .collect::<Option<Vec<Metrics>>>()
                    .map(|parts| Metrics::sequential(&parts))
            })
            .collect();

        // Stage 3 (refine): re-price only the top-k screened survivors at
        // high fidelity before anything enters the Pareto front / GP
        // training set. Selection ranks by screened latency with
        // submission-index tie-breaks, and the adaptive controller (when
        // installed) resizes the budget from the survivors' screen-vs-
        // refine rank disagreement — both pure functions of the batch, so
        // thread count still never changes results.
        let mut refined_survivors: Vec<usize> = Vec::new();
        if let Some(tier) = &mut self.refine {
            let top_k = match &mut tier.controller {
                Some(c) if !fresh.is_empty() => c.begin_batch(),
                Some(c) => c.current(),
                None => tier.top_k,
            };
            let survivors = dse::staged::rank_top_k(&fresh_metrics, top_k, |m| {
                m.as_ref().map(|metrics| metrics.latency_cycles)
            });
            if !fresh.is_empty() {
                self.staged_batches += 1;
                self.events.emit(RunEvent::Refined {
                    batch: self.staged_batches,
                    survivors: survivors.len(),
                    budget: top_k,
                });
            }
            if !survivors.is_empty() {
                self.refine_requests += survivors.len() * self.workloads.len();
                let screened_latency: Vec<f64> = survivors
                    .iter()
                    .map(|&fi| {
                        fresh_metrics[fi]
                            .as_ref()
                            .expect("survivors are feasible")
                            .latency_cycles
                    })
                    .collect();
                let sub: Vec<&AcceleratorConfig> =
                    survivors.iter().map(|&fi| &fresh[fi].1).collect();
                let refine_span = self.telemetry.span("job/hw_dse/refine");
                let refined = Self::eval_pairs(
                    &tier.explorer,
                    &tier.bases,
                    &self.memo,
                    &self.workers,
                    self.workloads,
                    &self.sw_opts,
                    &sub,
                    &self.telemetry.tier(tier.explorer.backend().name()),
                    tier.remote.as_ref(),
                    self.seed,
                );
                drop(refine_span);
                for (&fi, per) in survivors.iter().zip(refined) {
                    // A refine-tier failure (impossible mappings are
                    // backend-independent, so this is purely defensive)
                    // keeps the screened estimate.
                    if let Some(parts) = per.into_iter().collect::<Option<Vec<Metrics>>>() {
                        fresh_metrics[fi] = Some(Metrics::sequential(&parts));
                    }
                }
                if let Some(c) = &mut tier.controller {
                    let refined_latency: Vec<f64> = survivors
                        .iter()
                        .map(|&fi| {
                            fresh_metrics[fi]
                                .as_ref()
                                .expect("survivors stay feasible")
                                .latency_cycles
                        })
                        .collect();
                    c.observe(&screened_latency, &refined_latency);
                }
                refined_survivors = survivors;
            }
        }

        // Stage 3b (learn): a surrogate screen tier trains on every
        // configuration the refine tier just priced, then the memo-key
        // bases move to the new training generation. Serial and in batch
        // order, so the learning trajectory is thread-count-independent.
        if !refined_survivors.is_empty() {
            if let Some(surrogate) = self.explorer.backend().as_surrogate() {
                for &fi in &refined_survivors {
                    surrogate.observe(&fresh[fi].1);
                }
            }
            self.refresh_screen_bases();
        }

        // Stage 4 (serial): record final metrics per point, in submission
        // order.
        for ((i, _), metrics) in fresh.iter().zip(fresh_metrics) {
            let response = metrics.map(|metrics| {
                self.evaluated.push((points[*i].clone(), metrics));
                Self::objectives_of(&metrics)
            });
            self.cache.insert(points[*i].clone(), response);
        }

        points
            .iter()
            .map(|p| self.cache.get(p).expect("every point was resolved").clone())
            .collect()
    }
}

/// A [`Progress`] observer wired to one job: forwards hardware-DSE
/// batches as [`RunEvent::BatchEvaluated`] (when `forward` is set) and
/// stops the observed loop once the job's cancel flag rises. Observation
/// happens on the thread driving the loop, so forwarding keeps event
/// streams deterministic; the software explorer gets a non-forwarding
/// observer (its rounds run on worker threads during the final
/// optimization, where emission order would depend on scheduling).
#[derive(Debug)]
struct RunObserver {
    events: EventSink,
    cancel: Arc<AtomicBool>,
    forward: bool,
}

impl Progress for RunObserver {
    fn on_batch(&self, update: &BatchUpdate<'_>) -> bool {
        if self.forward {
            self.events.emit(RunEvent::BatchEvaluated {
                optimizer: update.optimizer.to_string(),
                phase: update.phase.to_string(),
                batch: update.batch,
                evaluated: update.evaluated,
                feasible: update.feasible,
            });
        }
        // detlint-allow(atomics): cooperative cancel latch; a late observation only delays the Cancelled exit, never changes results
        !self.cancel.load(Ordering::Relaxed)
    }
}

/// One memo-cache entry with its age, as exchanged between a job's
/// private cache and the engine's shared store.
pub(crate) type MemoEntry = ((u64, u64), Option<Metrics>, u64);

/// Per-job execution context handed down by the engine.
pub(crate) struct ExecCtx {
    /// The request label (reporting only).
    pub label: String,
    /// Where the job's [`RunEvent`]s go.
    pub events: EventSink,
    /// Raised by [`JobHandle::cancel`](crate::engine::JobHandle::cancel).
    pub cancel: Arc<AtomicBool>,
    /// Warm memo entries captured from the shared store at submit time.
    pub warm: Vec<MemoEntry>,
    /// Engine-provided screen backend (a forked surrogate carrying
    /// accumulated training); `None` builds a fresh one from the options.
    pub screen_backend: Option<Arc<dyn CostBackend>>,
    /// The engine's telemetry side channel (disabled unless the engine
    /// was configured with metrics). Observation-only: nothing recorded
    /// through it feeds back into results, stats, or events.
    pub telemetry: Telemetry,
    /// Engine-provided remote batch evaluator. Remote-eligible tiers
    /// (see [`crate::remote::remote_eligible`]) dispatch their fresh
    /// evaluations through it instead of the local worker pool; results
    /// stay bit-identical either way.
    pub remote: Option<crate::remote::SharedPairEvaluator>,
}

/// What one executed job hands back to the engine.
pub(crate) struct ExecOutcome {
    /// The job's result.
    pub result: Result<Solution, HascoError>,
    /// The job's memo entries — published into the shared store when the
    /// caller observes completion. Empty for cancelled jobs, so published
    /// warmth never depends on *when* a cancellation landed.
    pub memo: Vec<MemoEntry>,
    /// The job's screen backend when it is a (now further-trained)
    /// surrogate, for the engine's per-technology registry.
    pub surrogate: Option<Arc<dyn CostBackend>>,
}

/// Runs one co-design request end to end (validation, partitioning, the
/// hardware DSE with software-in-the-loop evaluation, constraint-driven
/// tuning, final software optimization), emitting [`RunEvent`]s along the
/// way. This is the engine's job body; [`CoDesigner::run`] reaches it
/// through a single-slot engine.
pub(crate) fn execute(
    input: &InputDescription,
    opts: &CoDesignOptions,
    ctx: &ExecCtx,
) -> ExecOutcome {
    let mut memo = Vec::new();
    let mut surrogate = None;
    let result = execute_inner(input, opts, ctx, &mut memo, &mut surrogate);
    match &result {
        Ok(s) => ctx.events.emit(RunEvent::Solved {
            meets_constraints: s.meets_constraints,
            latency_ms: s.total.latency_ms,
        }),
        Err(HascoError::Cancelled) => ctx.events.emit(RunEvent::Cancelled),
        Err(e) => ctx.events.emit(RunEvent::Failed {
            error: e.to_string(),
        }),
    }
    ExecOutcome {
        result,
        memo,
        surrogate,
    }
}

fn execute_inner(
    input: &InputDescription,
    opts: &CoDesignOptions,
    ctx: &ExecCtx,
    memo_out: &mut Vec<MemoEntry>,
    surrogate_out: &mut Option<Arc<dyn CostBackend>>,
) -> Result<Solution, HascoError> {
    opts.validate()?;
    if input.app.is_empty() {
        return Err(HascoError::EmptyApp);
    }
    // detlint-allow(atomics): cooperative cancel latch; see Progress::observe above
    let cancelled = || ctx.cancel.load(Ordering::Relaxed);
    if cancelled() {
        return Err(HascoError::Cancelled);
    }
    // Held to the end of the job (including error returns): records the
    // whole-job span on drop.
    let _job_span = ctx.telemetry.span("job");
    ctx.events.emit(RunEvent::Started {
        label: ctx.label.clone(),
        workloads: input.app.len(),
    });

    // Step 1: enumerate the tensorize-choice space (reported per
    // workload; the explorer re-derives its own choices per accelerator,
    // so this is observability-only and skipped when nobody listens).
    if ctx.events.is_enabled() {
        let partition_span = ctx.telemetry.span("job/partition");
        for part in partition_app(&input.app, &IntrinsicKind::ALL, 64) {
            ctx.events.emit(RunEvent::Partitioned {
                choices: part.total_choices(),
                workload: part.workload,
            });
        }
        drop(partition_span);
    }

    let generator = CoDesigner::make_generator(input.method);
    let workers = WorkerPool::new(resolve_threads(opts.threads))
        .with_stealing(opts.work_stealing)
        .with_telemetry(ctx.telemetry.clone());

    // Step 2: hardware DSE with software-in-the-loop evaluation, batched
    // onto the evaluation runtime and priced through the configured cost
    // backend(s). The screen backend may arrive pre-trained from the
    // engine's surrogate registry.
    let screen = ctx
        .screen_backend
        .clone()
        .unwrap_or_else(|| opts.build_screen_backend());
    let refine_backend = opts.refine_backend.build_with(opts.tech.clone());
    let mut problem = HwProblem::new(
        generator.as_ref(),
        &input.app.workloads,
        opts.sw_inner.clone(),
        opts.seed,
    )
    .with_workers(workers.clone())
    .with_cache_capacity(opts.cache_capacity)
    .with_backend(Arc::clone(&screen))
    .with_events(ctx.events.clone());
    problem = if opts.adaptive_refinement {
        problem.with_adaptive_refinement(refine_backend, opts.refine_top_k)
    } else {
        problem.with_refinement(refine_backend, opts.refine_top_k)
    };
    // Remote dispatch, tier by tier: only backends reconstructible from
    // (kind, tech) alone leave the process. A surrogate screen keeps its
    // training local; the analytic tier is cheaper than a round trip.
    if let Some(remote) = &ctx.remote {
        let screen_hook =
            crate::remote::remote_eligible(opts.backend).then(|| (opts.backend, opts.tech.clone()));
        let refine_hook = (opts.refine_top_k > 0
            && crate::remote::remote_eligible(opts.refine_backend))
        .then(|| (opts.refine_backend, opts.tech.clone()));
        if screen_hook.is_some() || refine_hook.is_some() {
            problem = problem.with_remote_evaluator(Arc::clone(remote), screen_hook, refine_hook);
        }
    }
    problem = problem.with_telemetry(ctx.telemetry.clone());
    problem.seed_memo(&ctx.warm);
    let warm_cache_entries = ctx.warm.len() as u64;

    let observer = RunObserver {
        events: ctx.events.clone(),
        cancel: Arc::clone(&ctx.cancel),
        forward: true,
    };
    let mut optimizer = opts.optimizer.build(opts.seed, opts.mobo_prior);
    let dse_span = ctx.telemetry.span("job/hw_dse");
    let mut history = optimizer.run_with_progress(&mut problem, opts.hw_trials, &observer);
    drop(dse_span);
    if cancelled() {
        return Err(HascoError::Cancelled);
    }
    if history.evaluations.is_empty() {
        *memo_out = problem.memo_snapshot();
        return Err(HascoError::NoFeasibleAccelerator);
    }

    // Step 3: pick the Pareto point satisfying the constraints (or the
    // least-violating one), re-optimizing thoroughly. When the metrics
    // violate the constraints, they "drive the hardware DSE and generate
    // a new accelerator": run extra exploration rounds with fresh seeds
    // and merge the histories before giving up.
    let tuned = (|| -> Result<Solution, HascoError> {
        let mut solution = select_and_finalize(opts, input, generator.as_ref(), &history, ctx)?;
        ctx.events.emit(RunEvent::Tuned {
            round: 0,
            meets_constraints: solution.meets_constraints,
        });
        let mut round = 0;
        while !solution.meets_constraints && round < opts.tuning_rounds {
            if cancelled() {
                return Err(HascoError::Cancelled);
            }
            round += 1;
            let mut retune = opts.optimizer.build(
                opts.seed.wrapping_add(round as u64 * 0x9e37),
                opts.mobo_prior,
            );
            let tuning_span = ctx.telemetry.span("job/tuning");
            let extra = retune.run_with_progress(&mut problem, opts.hw_trials, &observer);
            drop(tuning_span);
            if cancelled() {
                return Err(HascoError::Cancelled);
            }
            for e in extra.evaluations {
                if !history.evaluations.iter().any(|h| h.point == e.point) {
                    history.evaluations.push(e);
                }
            }
            history.infeasible += extra.infeasible;
            let candidate = select_and_finalize(opts, input, generator.as_ref(), &history, ctx)?;
            if candidate.meets_constraints
                || input.constraints.violation(&candidate.total)
                    < input.constraints.violation(&solution.total)
            {
                solution = candidate;
            }
            ctx.events.emit(RunEvent::Tuned {
                round,
                meets_constraints: solution.meets_constraints,
            });
        }
        if cancelled() {
            return Err(HascoError::Cancelled);
        }
        Ok(solution)
    })();

    // The job's warm state goes back to the engine: memo entries for the
    // shared store, the screen surrogate (with whatever it learned this
    // run) for the registry. Every *completed* outcome publishes — a
    // selection or finalization failure still paid for its evaluations,
    // and a retry should not start cold — while a cancelled job publishes
    // nothing (what it had computed depends on when the cancel landed).
    if !matches!(tuned, Err(HascoError::Cancelled)) {
        *memo_out = problem.memo_snapshot();
        if screen.as_surrogate().is_some() {
            *surrogate_out = Some(Arc::clone(&screen));
        }
        // Per-shard cache traffic of this job's memo, accumulated across
        // jobs (the engine's shared store is snapshotted separately).
        ctx.telemetry
            .add_cache_shards("jobs", &problem.memo.shard_stats());
        if let Some(budget) = problem.topk_trajectory().last() {
            ctx.telemetry
                .gauge_set("staging.topk_budget", *budget as u64);
        }
        if let Some(disagreement) = problem
            .refine
            .as_ref()
            .and_then(|tier| tier.controller.as_ref())
            .and_then(AdaptiveTopK::evidence_disagreement)
        {
            ctx.telemetry.gauge_set(
                "staging.rank_disagreement_milli",
                (disagreement * 1000.0) as u64,
            );
        }
    }
    let mut solution = tuned?;

    // The solution reports the full (merged) exploration history even
    // when a retuning round did not improve on the incumbent.
    solution.hw_history = history;
    let (surrogate_samples, surrogate_trusted) = problem.surrogate_stats().unwrap_or((0, false));
    solution.stats = RunStats {
        threads: workers.threads(),
        hw_evaluations: solution.hw_history.evaluations.len(),
        sw_explorations: problem.sw_requests(),
        refine_explorations: problem.refine_requests(),
        backend: opts.backend,
        refine_backend: (opts.refine_top_k > 0).then_some(opts.refine_backend),
        refine_topk_trajectory: problem.topk_trajectory(),
        surrogate_samples,
        surrogate_trusted,
        warm_cache_entries,
        steals: workers.stats().steals,
        cache: problem.cache_stats(),
    };
    Ok(solution)
}

fn select_and_finalize(
    opts: &CoDesignOptions,
    input: &InputDescription,
    generator: &dyn Generator,
    history: &dse::problem::OptimizerResult,
    ctx: &ExecCtx,
) -> Result<Solution, HascoError> {
    let chosen = tuning::select_point(history, &input.constraints)
        .ok_or(HascoError::NoFeasibleAccelerator)?;
    let cfg = generator
        .generate(&chosen)
        .map_err(|e| HascoError::Hardware(e.to_string()))?;
    finalize_solution(
        opts,
        input,
        cfg,
        history.clone(),
        &ctx.events,
        &ctx.cancel,
        &ctx.telemetry,
    )
}

/// Optimizes the software thoroughly for a fixed accelerator and
/// assembles the solution (shared by the engine path, the one-shot
/// [`CoDesigner::finalize`], and the "separate design" baseline).
fn finalize_solution(
    opts: &CoDesignOptions,
    input: &InputDescription,
    cfg: AcceleratorConfig,
    hw_history: dse::problem::OptimizerResult,
    events: &EventSink,
    cancel: &Arc<AtomicBool>,
    telemetry: &Telemetry,
) -> Result<Solution, HascoError> {
    let _finalize_span = telemetry.span("job/finalize");
    let workers = WorkerPool::new(resolve_threads(opts.threads))
        .with_stealing(opts.work_stealing)
        .with_telemetry(telemetry.clone());
    // With fidelity staging on, the final thorough optimization runs
    // at the high-fidelity tier so reported metrics match the
    // refinement the Pareto front saw.
    let final_backend = if opts.refine_top_k > 0 {
        opts.refine_backend
    } else {
        opts.backend
    };
    // The explorer watches the cancel flag between revision rounds (its
    // observer forwards no events: these rounds run on worker threads,
    // where emission order would depend on scheduling).
    let backend = final_backend.build_with(opts.tech.clone());
    let tier = telemetry.tier(backend.name());
    let explorer = SoftwareExplorer::new(opts.seed)
        .with_backend(backend)
        .with_progress(Arc::new(RunObserver {
            events: EventSink::disabled(),
            cancel: Arc::clone(cancel),
            forward: false,
        }));
    // The thorough per-workload explorations are independent pure
    // runs, so they fan out across the pool; errors are reported in
    // workload order (first failure wins), matching the serial path.
    let outcomes = workers.map(&input.app.workloads, |_, w| {
        let optimized = tier
            .time(|| explorer.optimize(w, &cfg, &opts.sw_final))
            .map_err(|e| HascoError::Software(format!("{}: {e}", w.name)))?;
        let intr = cfg.intrinsic_comp();
        let ctx = sw_opt::schedule::ScheduleContext::new(w, &intr)
            .map_err(|e| HascoError::Software(e.to_string()))?;
        let program = sw_opt::codegen::render(&optimized.schedule, &ctx);
        Ok((
            WorkloadSolution {
                workload: w.name.clone(),
                schedule: optimized.schedule,
                metrics: optimized.metrics,
                program,
            },
            optimized.history.len(),
        ))
    });
    // detlint-allow(atomics): cooperative cancel latch; a late observation only delays the exit
    if cancel.load(Ordering::Relaxed) {
        return Err(HascoError::Cancelled);
    }
    let mut per_workload = Vec::with_capacity(input.app.len());
    let mut parts = Vec::with_capacity(input.app.len());
    for outcome in outcomes {
        let (ws, rounds) = outcome?;
        // Emitted here — on the driver thread, in workload order — so the
        // event stream never depends on which worker finished first.
        events.emit(RunEvent::SoftwareOptimized {
            workload: ws.workload.clone(),
            rounds,
            latency_ms: ws.metrics.latency_ms,
        });
        parts.push(ws.metrics);
        per_workload.push(ws);
    }
    let total = Metrics::sequential(&parts);
    Ok(Solution {
        meets_constraints: input.constraints.satisfied_by(&total),
        accelerator: cfg,
        per_workload,
        total,
        hw_history,
        stats: RunStats {
            threads: workers.threads(),
            backend: final_backend,
            ..RunStats::default()
        },
    })
}

/// The co-design driver — the paper's one-shot entry point, now a thin
/// wrapper over the resident [`Engine`]: [`CoDesigner::run`] spins up a
/// single-slot engine configured from the options (including the
/// persistent-cache path), submits one request, waits for it, and
/// persists the engine's cache store. Behavior is unchanged from the
/// pre-engine API; long-lived callers serving many requests should hold
/// an [`Engine`] instead and keep its warm state across submissions.
#[derive(Debug, Clone)]
pub struct CoDesigner {
    opts: CoDesignOptions,
}

impl CoDesigner {
    /// Creates a driver.
    pub fn new(opts: CoDesignOptions) -> Self {
        CoDesigner { opts }
    }

    pub(crate) fn make_generator(method: GenerationMethod) -> Box<dyn Generator> {
        match method {
            GenerationMethod::Gemmini => Box::new(GemminiGenerator::new()),
            GenerationMethod::Chisel(kind) => Box::new(ChiselGenerator::new(kind)),
        }
    }

    /// Runs the full three-step co-design flow through a one-shot engine.
    ///
    /// # Errors
    /// Returns [`HascoError`] when the options are invalid
    /// ([`CoDesignOptions::validate`]), the app is empty, or no
    /// accelerator in the explored set supports all workloads.
    pub fn run(&self, input: &InputDescription) -> Result<Solution, HascoError> {
        let engine = Engine::new(EngineConfig::one_shot(&self.opts));
        // The quiet submission: no event channel, so the one-shot path
        // buffers nothing it will never read.
        let handle = engine.submit_quiet(
            CoDesignRequest::new(input.clone(), self.opts.clone()).with_label("one-shot"),
        )?;
        let solution = handle.wait()?;
        // Persist the evaluation cache for the next run (best effort: a
        // failed save costs future warmth, never correctness).
        let _ = engine.persist();
        Ok(solution)
    }

    /// Optimizes the software thoroughly for a fixed accelerator and
    /// assembles the solution (also used by the "separate design"
    /// baseline, which skips the hardware DSE).
    ///
    /// # Errors
    /// Returns [`HascoError::Software`] when a workload cannot be mapped.
    pub fn finalize(
        &self,
        input: &InputDescription,
        cfg: AcceleratorConfig,
        hw_history: dse::problem::OptimizerResult,
    ) -> Result<Solution, HascoError> {
        finalize_solution(
            &self.opts,
            input,
            cfg,
            hw_history,
            &EventSink::disabled(),
            &Arc::new(AtomicBool::new(false)),
            &Telemetry::disabled(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::Constraints;
    use tensor_ir::suites;
    use tensor_ir::workload::TensorApp;

    fn toy_input() -> InputDescription {
        InputDescription {
            app: TensorApp::new(
                "toy",
                vec![
                    suites::gemm_workload("g1", 128, 128, 128),
                    suites::gemm_workload("g2", 256, 128, 64),
                ],
            ),
            method: GenerationMethod::Gemmini,
            constraints: Constraints::default(),
        }
    }

    #[test]
    fn codesign_produces_complete_solution() {
        let solution = CoDesigner::new(CoDesignOptions::quick(1))
            .run(&toy_input())
            .unwrap();
        assert_eq!(solution.per_workload.len(), 2);
        assert!(solution.total.latency_ms > 0.0);
        assert!(solution.meets_constraints);
        assert!(!solution.hw_history.evaluations.is_empty());
        assert!(solution.per_workload[0].program.contains("Tensorized_gemm"));
    }

    #[test]
    fn empty_app_is_rejected() {
        let mut input = toy_input();
        input.app = TensorApp::new("empty", vec![]);
        assert_eq!(
            CoDesigner::new(CoDesignOptions::quick(0))
                .run(&input)
                .unwrap_err(),
            HascoError::EmptyApp
        );
    }

    #[test]
    fn codesign_beats_or_matches_default_hardware() {
        // The co-design headline: the explored accelerator + tuned software
        // should not lose to the fixed default accelerator with the same
        // software effort.
        let input = toy_input();
        let designer = CoDesigner::new(CoDesignOptions::quick(3));
        let co = designer.run(&input).unwrap();
        let baseline_cfg = hw_gen::GemminiGenerator::baseline(false);
        let base = designer
            .finalize(
                &input,
                baseline_cfg,
                dse::problem::OptimizerResult::new("fixed"),
            )
            .unwrap();
        assert!(
            co.total.latency_cycles <= base.total.latency_cycles * 1.05,
            "co-design {} vs baseline {}",
            co.total.latency_cycles,
            base.total.latency_cycles
        );
    }

    #[test]
    fn retuning_rounds_expand_the_history_under_tight_constraints() {
        let mut input = toy_input();
        // Unreachable latency: retuning must kick in and merge extra
        // evaluations while returning a flagged best-effort solution.
        input.constraints = Constraints::latency_power(1e-9, 1e9);
        let mut opts = CoDesignOptions::quick(4);
        opts.hw_trials = 5;
        opts.tuning_rounds = 2;
        let with_retune = CoDesigner::new(opts.clone()).run(&input).unwrap();
        opts.tuning_rounds = 0;
        let without = CoDesigner::new(opts).run(&input).unwrap();
        assert!(!with_retune.meets_constraints);
        assert!(
            with_retune.hw_history.evaluations.len() > without.hw_history.evaluations.len(),
            "retuning added no evaluations: {} vs {}",
            with_retune.hw_history.evaluations.len(),
            without.hw_history.evaluations.len()
        );
        // Retuning never makes the solution worse.
        assert!(with_retune.total.latency_cycles <= without.total.latency_cycles * 1.0001);
    }

    #[test]
    fn hw_problem_caches_points() {
        let input = toy_input();
        let generator = GemminiGenerator::new();
        let mut p = HwProblem::new(
            &generator,
            &input.app.workloads,
            CoDesignOptions::quick(0).sw_inner,
            0,
        );
        let point = vec![0; p.space().len()];
        let a = p.evaluate(&point);
        let evals_after_first = p.evaluated.len();
        let b = p.evaluate(&point);
        assert_eq!(a, b);
        assert_eq!(p.evaluated.len(), evals_after_first);
    }

    #[test]
    fn hw_problem_memoizes_repeated_pairs_across_points() {
        // Two points whose configs coincide on everything the fingerprint
        // sees hit the memo cache instead of re-running the explorer.
        let input = toy_input();
        let generator = GemminiGenerator::new();
        let mut p = HwProblem::new(
            &generator,
            &input.app.workloads,
            CoDesignOptions::quick(0).sw_inner,
            0,
        );
        let point = vec![0; p.space().len()];
        let _ = p.evaluate(&point);
        let misses_after_first = p.cache_stats().misses;
        assert!(misses_after_first >= input.app.len() as u64);
        // Re-evaluating the same point is answered by the point cache; the
        // memo cache is not even consulted.
        let _ = p.evaluate(&point);
        assert_eq!(p.cache_stats().misses, misses_after_first);
        assert_eq!(p.cache_stats().inserts, misses_after_first);
    }

    #[test]
    fn hw_problem_batches_match_serial_at_any_worker_count() {
        let input = toy_input();
        let generator = GemminiGenerator::new();
        let sw = CoDesignOptions::quick(0).sw_inner;
        let points: Vec<Point> = {
            let probe = HwProblem::new(&generator, &input.app.workloads, sw.clone(), 0);
            let dims = probe.space().dim_sizes.clone();
            (0..6)
                .map(|k| dims.iter().map(|&s| k % s).collect())
                .collect()
        };
        let mut serial = HwProblem::new(&generator, &input.app.workloads, sw.clone(), 0);
        let mut parallel = HwProblem::new(&generator, &input.app.workloads, sw, 0)
            .with_workers(WorkerPool::new(4));
        let a = serial.evaluate_batch(&points);
        let b = parallel.evaluate_batch(&points);
        assert_eq!(a, b);
        assert_eq!(serial.evaluated.len(), parallel.evaluated.len());
        for ((pa, ma), (pb, mb)) in serial.evaluated.iter().zip(&parallel.evaluated) {
            assert_eq!(pa, pb);
            assert_eq!(ma.latency_cycles, mb.latency_cycles);
        }
    }

    fn temp_cache(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("hasco-codesign-{name}-{}.bin", std::process::id()));
        p
    }

    #[test]
    fn staged_refinement_refines_top_k_only() {
        let input = toy_input();
        let generator = GemminiGenerator::new();
        let sw = CoDesignOptions::quick(0).sw_inner;
        let mut p = HwProblem::new(&generator, &input.app.workloads, sw, 0)
            .with_backend(BackendKind::Analytic.build())
            .with_refinement(BackendKind::TraceSim.build(), 2);
        let dims = p.space().dim_sizes.clone();
        let points: Vec<Point> = (0..5)
            .map(|k| dims.iter().map(|&s| k % s).collect())
            .collect();
        let responses = p.evaluate_batch(&points);
        assert_eq!(responses.len(), 5);
        // Exactly top-k of the fresh feasible points were re-priced.
        let feasible = responses.iter().filter(|r| r.is_some()).count();
        assert!(feasible > 2, "toy batch should be mostly feasible");
        assert_eq!(p.refine_requests(), 2 * input.app.len());
        assert_eq!(p.sw_requests(), 5 * input.app.len());
    }

    #[test]
    fn staged_batches_are_thread_count_independent() {
        let input = toy_input();
        let generator = GemminiGenerator::new();
        let sw = CoDesignOptions::quick(0).sw_inner;
        let points: Vec<Point> = {
            let probe = HwProblem::new(&generator, &input.app.workloads, sw.clone(), 0);
            let dims = probe.space().dim_sizes.clone();
            (0..6)
                .map(|k| dims.iter().map(|&s| (k * 2) % s).collect())
                .collect()
        };
        let mut serial = HwProblem::new(&generator, &input.app.workloads, sw.clone(), 0)
            .with_refinement(BackendKind::TraceSim.build(), 2);
        let mut parallel = HwProblem::new(&generator, &input.app.workloads, sw, 0)
            .with_refinement(BackendKind::TraceSim.build(), 2)
            .with_workers(WorkerPool::new(4));
        assert_eq!(
            serial.evaluate_batch(&points),
            parallel.evaluate_batch(&points)
        );
        assert_eq!(serial.refine_requests(), parallel.refine_requests());
    }

    #[test]
    fn backend_choice_changes_objectives_not_feasibility() {
        let input = toy_input();
        let generator = GemminiGenerator::new();
        let sw = CoDesignOptions::quick(0).sw_inner;
        let point: Point = {
            let probe = HwProblem::new(&generator, &input.app.workloads, sw.clone(), 0);
            vec![0; probe.space().len()]
        };
        let mut per_backend = Vec::new();
        for kind in BackendKind::ALL {
            let mut p = HwProblem::new(&generator, &input.app.workloads, sw.clone(), 0)
                .with_backend(kind.build());
            let r = p.evaluate(&point).expect("toy point is feasible");
            per_backend.push(r[0]);
        }
        // Latencies differ across tiers but stay within one order of
        // magnitude — same hardware, different pipeline detail.
        let (lo, hi) = per_backend
            .iter()
            .fold((f64::INFINITY, 0.0f64), |(lo, hi), &l| {
                (lo.min(l), hi.max(l))
            });
        assert!(hi / lo < 10.0, "{per_backend:?}");
    }

    #[test]
    fn persistent_cache_warms_repeat_runs() {
        let input = toy_input();
        let path = temp_cache("warm");
        std::fs::remove_file(&path).ok();
        let opts = CoDesignOptions::quick(5).with_cache_path(&path);
        let cold = CoDesigner::new(opts.clone()).run(&input).unwrap();
        assert_eq!(cold.stats.warm_cache_entries, 0);
        assert!(path.exists(), "cache file must be written");
        let warm = CoDesigner::new(opts).run(&input).unwrap();
        assert!(warm.stats.warm_cache_entries > 0);
        // Identical run, warm cache: same solution, strictly fewer
        // explorer executions (= cache misses).
        assert_eq!(cold.accelerator, warm.accelerator);
        assert_eq!(cold.hw_history, warm.hw_history);
        assert!(
            warm.stats.cache.misses < cold.stats.cache.misses,
            "warm run recomputed as much as cold: {} vs {}",
            warm.stats.cache.misses,
            cold.stats.cache.misses
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_persistent_cache_is_a_clean_cold_start() {
        let input = toy_input();
        let path = temp_cache("corrupt");
        let opts = CoDesignOptions::quick(6).with_cache_path(&path);
        let reference = CoDesigner::new(opts.clone()).run(&input).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let recovered = CoDesigner::new(opts).run(&input).unwrap();
        assert_eq!(recovered.stats.warm_cache_entries, 0);
        assert_eq!(reference.accelerator, recovered.accelerator);
        assert_eq!(reference.hw_history, recovered.hw_history);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn staged_codesign_reports_both_tiers() {
        let input = toy_input();
        let mut opts = CoDesignOptions::quick(8).with_refinement(BackendKind::TraceSim, 2);
        opts.hw_trials = 6;
        let solution = CoDesigner::new(opts).run(&input).unwrap();
        let stats = &solution.stats;
        assert_eq!(stats.backend, BackendKind::Analytic);
        assert_eq!(stats.refine_backend, Some(BackendKind::TraceSim));
        assert!(stats.refine_explorations > 0);
        assert!(
            stats.refine_explorations < stats.sw_explorations,
            "refinement must touch strictly fewer pairs than screening: {} vs {}",
            stats.refine_explorations,
            stats.sw_explorations
        );
        assert!(solution.stats.render().contains("refined (sim)"));
    }

    #[test]
    fn adaptive_staging_reports_a_trajectory_and_refines_no_more_than_fixed() {
        let input = toy_input();
        let mut fixed_opts = CoDesignOptions::quick(8).with_refinement(BackendKind::TraceSim, 3);
        fixed_opts.hw_trials = 6;
        let mut adaptive_opts =
            CoDesignOptions::quick(8).with_adaptive_refinement(BackendKind::TraceSim, 3);
        adaptive_opts.hw_trials = 6;
        let fixed = CoDesigner::new(fixed_opts).run(&input).unwrap();
        let adaptive = CoDesigner::new(adaptive_opts).run(&input).unwrap();

        assert!(fixed.stats.refine_topk_trajectory.is_empty());
        let trajectory = &adaptive.stats.refine_topk_trajectory;
        assert!(!trajectory.is_empty(), "adaptive run must record budgets");
        assert_eq!(trajectory[0], 3, "budget starts at the initial top-k");
        assert!(
            adaptive.stats.refine_explorations <= fixed.stats.refine_explorations,
            "adaptive staging must not refine more than the fixed policy \
             when the tiers agree: {} vs {}",
            adaptive.stats.refine_explorations,
            fixed.stats.refine_explorations
        );
        // No regression from refining less: the solutions stay equivalent
        // (the screen tier hands the refiner the same leaders).
        assert!(
            adaptive.total.latency_cycles <= fixed.total.latency_cycles * 1.05,
            "adaptive {} vs fixed {}",
            adaptive.total.latency_cycles,
            fixed.total.latency_cycles
        );
        assert!(adaptive.stats.render().contains("adaptive top-k"));
    }

    #[test]
    fn surrogate_screen_tier_trains_during_codesign() {
        let input = toy_input();
        let mut opts = CoDesignOptions::quick(9)
            .with_backend(BackendKind::Surrogate)
            .with_adaptive_refinement(BackendKind::TraceSim, 2);
        opts.hw_trials = 6;
        let solution = CoDesigner::new(opts).run(&input).unwrap();
        assert_eq!(solution.stats.backend, BackendKind::Surrogate);
        assert!(
            solution.stats.surrogate_samples > 0,
            "refined configs must feed the surrogate's training set"
        );
        assert!(solution.stats.render().contains("surrogate training"));
        assert!(solution.total.latency_cycles > 0.0);
    }

    #[test]
    fn tech_profiles_shift_metrics_not_feasibility() {
        let input = toy_input();
        let profiles = accel_model::tech::TechParams::profiles();
        let mut totals = Vec::new();
        for (name, tech) in profiles {
            let mut opts = CoDesignOptions::quick(5).with_tech(tech);
            opts.hw_trials = 5;
            let solution = CoDesigner::new(opts).run(&input).unwrap();
            assert!(solution.total.latency_ms > 0.0, "{name}");
            totals.push((name, solution.total.energy_uj));
        }
        // A denser node never costs more energy than an older one for the
        // same workloads.
        let by_name = |n: &str| totals.iter().find(|(name, _)| *name == n).unwrap().1;
        assert!(by_name("16nm") < by_name("40nm"), "{totals:?}");
    }

    #[test]
    fn codesign_threads_do_not_change_the_solution() {
        let input = toy_input();
        let serial = CoDesigner::new(CoDesignOptions::quick(6))
            .run(&input)
            .unwrap();
        let parallel = CoDesigner::new(CoDesignOptions::quick(6).with_threads(4))
            .run(&input)
            .unwrap();
        assert_eq!(serial.accelerator, parallel.accelerator);
        assert_eq!(serial.total.latency_cycles, parallel.total.latency_cycles);
        assert_eq!(serial.hw_history, parallel.hw_history);
        assert_eq!(parallel.stats.threads, 4);
        assert!(parallel.stats.hw_evaluations > 0);
    }

    #[test]
    fn chisel_method_works_too() {
        let mut input = toy_input();
        input.method = GenerationMethod::Chisel(tensor_ir::intrinsics::IntrinsicKind::Gemm);
        let mut opts = CoDesignOptions::quick(2);
        opts.hw_trials = 6;
        let solution = CoDesigner::new(opts).run(&input).unwrap();
        assert_eq!(solution.per_workload.len(), 2);
    }
}
