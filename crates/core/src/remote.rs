//! The remote-evaluation seam: self-contained evaluation requests that a
//! worker process can answer bit-identically to the in-process path.
//!
//! The hardware DSE's inner loop ([`crate::codesign`]'s `eval_pairs`)
//! prices `(accelerator, workload)` pairs through a [`SoftwareExplorer`]
//! whose `optimize` is a *pure function* of `(seed, backend, workload,
//! config, options)`: every call constructs a fresh seeded RNG and
//! Q-learner, so where the call runs — this thread, another thread, or
//! another process — cannot change its result. [`RemoteEvalRequest`]
//! captures exactly those five inputs, and [`RemoteEvalRequest::evaluate`]
//! replays the in-process closure verbatim. A serving front-end shards
//! batches of these requests across worker processes through the
//! [`BatchEvaluator`] seam (`crates/net`'s `RemoteEvaluator`) and
//! reassembles responses in submission order, which is all determinism
//! needs.
//!
//! Only the *stateless* backend tiers are remote-eligible
//! ([`remote_eligible`]): trace-sim and calibrated backends are rebuilt
//! from `(BackendKind, TechParams)` alone. The surrogate tier carries
//! online GP training state that lives in the front-end, and the analytic
//! tier is cheaper than a network round trip; both stay local.

use std::sync::Arc;

use accel_model::tech::TechParams;
use accel_model::{BackendKind, Metrics};
use runtime::BatchEvaluator;
use sw_opt::explorer::{ExplorerOptions, SoftwareExplorer};
use tensor_ir::workload::Workload;

/// One self-contained `(accelerator, workload)` pricing request — the
/// unit the front-end ships to remote workers. Everything the in-process
/// evaluation closure touches is captured by value.
#[derive(Debug, Clone)]
pub struct RemoteEvalRequest {
    /// The cost-backend tier to rebuild ([`remote_eligible`] tiers only).
    pub backend: BackendKind,
    /// Technology constants the backend is built with.
    pub tech: TechParams,
    /// The run seed (the explorer derives its RNG and Q-learner from it).
    pub seed: u64,
    /// Software-exploration budget options.
    pub sw_opts: ExplorerOptions,
    /// The workload half of the pair.
    pub workload: Workload,
    /// The accelerator half of the pair.
    pub config: accel_model::arch::AcceleratorConfig,
}

impl RemoteEvalRequest {
    /// Prices the pair exactly as the in-process path does: a fresh
    /// explorer seeded with `seed` over a backend rebuilt from
    /// `(backend, tech)`, optimizing `workload` on `config`. Pure — the
    /// same request yields the same bits on any machine.
    pub fn evaluate(&self) -> Option<Metrics> {
        SoftwareExplorer::new(self.seed)
            .with_backend(self.backend.build_with(self.tech.clone()))
            .best_metrics(&self.workload, &self.config, &self.sw_opts)
            .ok()
    }
}

/// The trait object the engine dispatches remote-eligible batches
/// through: any [`BatchEvaluator`] over [`RemoteEvalRequest`]s. The
/// network crate's `RemoteEvaluator` (sharding across worker processes)
/// is the production implementation; tests can plug in
/// [`runtime::FnEvaluator`].
pub type PairEvaluator =
    dyn BatchEvaluator<Request = RemoteEvalRequest, Response = Option<Metrics>> + Send + Sync;

/// A shared handle to a [`PairEvaluator`].
pub type SharedPairEvaluator = Arc<PairEvaluator>;

/// Whether a backend tier can be evaluated remotely: the tier must be
/// reconstructible from `(BackendKind, TechParams)` alone (no in-process
/// training state) and expensive enough to beat a round trip.
pub fn remote_eligible(kind: BackendKind) -> bool {
    matches!(kind, BackendKind::TraceSim | BackendKind::Calibrated)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligibility_is_the_stateless_expensive_tiers() {
        assert!(remote_eligible(BackendKind::TraceSim));
        assert!(remote_eligible(BackendKind::Calibrated));
        assert!(!remote_eligible(BackendKind::Analytic));
        assert!(!remote_eligible(BackendKind::Surrogate));
    }

    #[test]
    fn evaluate_matches_the_in_process_closure() {
        let workload = tensor_ir::suites::gemm_workload("g", 32, 32, 32);
        let config = accel_model::arch::AcceleratorConfig::builder(
            tensor_ir::intrinsics::IntrinsicKind::Gemm,
        )
        .build()
        .unwrap();
        let sw_opts = ExplorerOptions {
            pool: 4,
            rounds: 3,
            top_k: 2,
            max_pool: 8,
            use_qlearning: true,
            fixed_choice: None,
        };
        let req = RemoteEvalRequest {
            backend: BackendKind::TraceSim,
            tech: TechParams::default(),
            seed: 42,
            sw_opts: sw_opts.clone(),
            workload: workload.clone(),
            config: config.clone(),
        };
        let local = SoftwareExplorer::new(42)
            .with_backend(BackendKind::TraceSim.build_with(TechParams::default()))
            .best_metrics(&workload, &config, &sw_opts)
            .ok();
        // Purity: the request replays the identical computation, twice.
        assert_eq!(req.evaluate(), local);
        assert_eq!(req.evaluate(), local);
    }
}
