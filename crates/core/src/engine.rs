//! `hasco::Engine` — the long-lived co-design service.
//!
//! The one-shot [`CoDesigner`](crate::CoDesigner) rebuilds every piece of
//! warm state — the evaluation cache, surrogate training, worker
//! configuration — on each call. [`Engine`] is the resident form: it owns
//! a job scheduler with a fixed number of concurrent slots, a
//! cross-request memo **store** (periodically persisted, with optional
//! age-based GC), and a per-technology registry of trained surrogate
//! backends — itself persistable
//! ([`EngineConfig::with_surrogate_store`]), so a restarted engine prices
//! with the same surrogate generation, bit-identical to a process that
//! never exited. Requests are submitted ([`Engine::submit`]) and observed
//! ([`JobHandle::events`]) while they run; whole scenario matrices fan
//! out through [`Engine::campaign`] with cross-scenario dedup, or
//! through [`Engine::campaign_events`] when the caller wants an
//! aggregate, per-request-attributed progress stream.
//!
//! # Determinism
//!
//! The runtime invariant — *thread count, work-stealing, and concurrent
//! job interleaving never change any job's results* — extends to the
//! engine by construction:
//!
//! * a job's **solution** is a pure function of its request and the
//!   warm state it was admitted with — and for every non-learning screen
//!   tier, of the request alone: warm cache entries only skip
//!   recomputation of pure evaluations. The one deliberate exception is
//!   a **surrogate** screen tier, which forks the registry's accumulated
//!   training at submit (its fingerprint tracks the training content, so
//!   memoization stays sound): sequential surrogate jobs learn from each
//!   other by design, deterministically per the submit/wait program,
//!   while same-wave jobs still see identical forks;
//! * a job's **statistics and event stream** are a pure function of its
//!   request *plus the warm state it was admitted with* — and that warm
//!   state is itself deterministic, because completed jobs publish into
//!   the shared store only when the caller **observes completion**
//!   ([`JobHandle::wait`]), never at racy completion time. Submit N jobs
//!   back-to-back and they all see the identical pre-wave store, no
//!   matter how execution interleaves; wait between submissions and the
//!   later job deterministically starts warm.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use std::collections::BTreeMap;
use std::sync::mpsc::Sender;

use accel_model::tech::TechParams;
use accel_model::{BackendKind, CostBackend, Metrics, SurrogateBackend, SurrogateSnapshot};
use runtime::{
    persist, Fingerprinter, JobScheduler, MemoCache, StableFingerprint, Telemetry,
    TelemetrySnapshot,
};

use crate::codesign::{execute, CoDesignOptions, ExecCtx, ExecOutcome, HwProblem};
use crate::event::{CampaignEvent, CampaignEvents, EventSink, EventStream, RunEvent};
use crate::input::InputDescription;
use crate::solution::Solution;
use crate::HascoError;

/// Locks an engine mutex, recovering from poisoning instead of
/// panicking. Every structure these mutexes guard — the surrogate
/// registry map, a job's outcome/event slots, the save serializer — is
/// written in single whole-value steps, so a peer that panicked cannot
/// have left it torn; propagating its panic here would kill a second
/// serving thread and silently drop the job it carries.
fn lock_recover<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Engine construction knobs.
#[derive(Clone)]
pub struct EngineConfig {
    /// Concurrent job slots (queued jobs wait FIFO for a free one).
    pub job_slots: usize,
    /// Capacity of the shared cross-request memo store.
    pub cache_capacity: usize,
    /// Persistent image of the store: loaded at engine creation, written
    /// by [`Engine::persist`] (merged newest-wins) and best-effort on
    /// drop. `None` keeps the store in-memory only.
    pub cache_path: Option<PathBuf>,
    /// Age-based GC for the persisted image: entries older than this are
    /// dropped at persist time ([`MemoCache::save_merged_with_max_age`]).
    pub cache_max_age: Option<Duration>,
    /// Persistent image of the surrogate registry: loaded at engine
    /// creation (a missing or corrupt image is a cold start) and written
    /// whenever an observed job publishes a trained surrogate — at
    /// [`JobHandle::wait`], so saves are observation-ordered like the
    /// publications themselves — as well as by [`Engine::persist`] and
    /// best-effort on drop. `None` keeps the registry in-memory only.
    pub surrogate_store: Option<PathBuf>,
    /// Telemetry handle threaded through every job, pool, backend, and
    /// the scheduler ([`EngineConfig::with_metrics`]). Disabled by
    /// default; always out-of-band — enabling it never changes a result
    /// bit.
    pub metrics: Telemetry,
    /// Remote batch evaluator for remote-eligible tiers
    /// ([`EngineConfig::with_remote_evaluator`]). `None` (the default)
    /// evaluates everything in-process. Dispatch routing only — results
    /// are bit-identical with or without it, at any worker count.
    pub remote: Option<crate::remote::SharedPairEvaluator>,
}

impl std::fmt::Debug for EngineConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineConfig")
            .field("job_slots", &self.job_slots)
            .field("cache_capacity", &self.cache_capacity)
            .field("cache_path", &self.cache_path)
            .field("cache_max_age", &self.cache_max_age)
            .field("surrogate_store", &self.surrogate_store)
            .field("metrics", &self.metrics)
            .field("remote", &self.remote.as_ref().map(|_| "installed"))
            .finish()
    }
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            job_slots: 2,
            cache_capacity: 4096,
            cache_path: None,
            cache_max_age: None,
            surrogate_store: None,
            metrics: Telemetry::disabled(),
            remote: None,
        }
    }
}

impl EngineConfig {
    /// The single-slot configuration [`CoDesigner::run`](crate::CoDesigner::run)
    /// wraps one request in: cache capacity and persistence path come
    /// from the run options, so one-shot behavior is unchanged.
    pub fn one_shot(opts: &CoDesignOptions) -> Self {
        EngineConfig {
            job_slots: 1,
            cache_capacity: opts.cache_capacity,
            cache_path: opts.cache_path.clone(),
            cache_max_age: None,
            surrogate_store: None,
            metrics: Telemetry::disabled(),
            remote: None,
        }
    }

    /// Sets the concurrent job slots.
    pub fn with_job_slots(mut self, slots: usize) -> Self {
        self.job_slots = slots;
        self
    }

    /// Sets the shared store capacity.
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Persists the shared store at `path` across engine lifetimes.
    pub fn with_cache_path(mut self, path: impl Into<PathBuf>) -> Self {
        self.cache_path = Some(path.into());
        self
    }

    /// Drops persisted entries older than `max_age` at persist time.
    pub fn with_cache_max_age(mut self, max_age: Duration) -> Self {
        self.cache_max_age = Some(max_age);
        self
    }

    /// Persists the surrogate registry at `path` across engine lifetimes:
    /// a restarted engine prices with the same surrogate generation —
    /// training set, CV trust state, and memo-keying content digest —
    /// as the engine that wrote the image.
    pub fn with_surrogate_store(mut self, path: impl Into<PathBuf>) -> Self {
        self.surrogate_store = Some(path.into());
        self
    }

    /// Attaches a telemetry handle ([`Telemetry::enabled`] to record;
    /// the default handle is a no-op). The same handle can be shared
    /// with the caller's own spans, so engine metrics and harness
    /// metrics land in one registry; snapshot it through
    /// [`Engine::metrics`] or directly. Telemetry is a wall-clock side
    /// channel: it never enters memo fingerprints, `RunStats`, event
    /// streams, or persisted images.
    pub fn with_metrics(mut self, metrics: Telemetry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Routes remote-eligible evaluation batches (trace-sim and
    /// calibrated tiers — see [`crate::remote::remote_eligible`])
    /// through the given [`crate::remote::PairEvaluator`] instead of the
    /// in-process worker pool. The production evaluator is the network
    /// crate's worker-sharding `RemoteEvaluator`; because per-pair
    /// evaluations are pure and batches reassemble in submission order,
    /// installing one changes where the work runs, never what it
    /// computes.
    pub fn with_remote_evaluator(mut self, evaluator: crate::remote::SharedPairEvaluator) -> Self {
        self.remote = Some(evaluator);
        self
    }
}

/// One co-design request: the input description plus the run options,
/// under a caller-chosen label (used in events, campaign reports, and
/// dedup attribution).
///
/// The options' own `cache_path` is ignored by the engine — warm state
/// flows through the engine's shared store instead, so jobs never race on
/// a file.
#[derive(Debug, Clone)]
pub struct CoDesignRequest {
    /// The application, generation method, and constraints.
    pub input: InputDescription,
    /// The run options ([`CoDesignOptions::validate`]d at submit).
    pub options: CoDesignOptions,
    /// Label for events and reports (defaults to the application name).
    pub label: String,
}

impl CoDesignRequest {
    /// Builds a request labeled with the application name.
    pub fn new(input: InputDescription, options: CoDesignOptions) -> Self {
        let label = input.app.name.clone();
        CoDesignRequest {
            input,
            options,
            label,
        }
    }

    /// Overrides the label.
    pub fn with_label(mut self, label: impl Into<String>) -> Self {
        self.label = label.into();
        self
    }

    /// Stable 128-bit identity of everything that can change the
    /// produced [`Solution`] or its statistics — the campaign dedup key.
    /// The label and the (engine-ignored) options `cache_path` are
    /// excluded. Public so transport layers can assert that a request
    /// survived serialization bit-for-bit.
    pub fn fingerprint(&self) -> (u64, u64) {
        let mut lo = Fingerprinter::new();
        let mut hi = Fingerprinter::new();
        hi.write_u64(0x9e3779b97f4a7c15);
        for fp in [&mut lo, &mut hi] {
            for w in &self.input.app.workloads {
                w.fingerprint_into(fp);
            }
            fp.write_str(&format!("{:?}", self.input.method));
            for bound in [
                self.input.constraints.max_latency_ms,
                self.input.constraints.max_power_mw,
                self.input.constraints.max_area_mm2,
            ] {
                match bound {
                    Some(v) => fp.write_bool(true).write_f64(v),
                    None => fp.write_bool(false),
                };
            }
            let o = &self.options;
            fp.write_usize(o.hw_trials).write_usize(o.mobo_prior);
            o.sw_inner.fingerprint_into(fp);
            o.sw_final.fingerprint_into(fp);
            fp.write_usize(o.tuning_rounds)
                .write_u64(o.seed)
                .write_usize(o.threads)
                .write_bool(o.work_stealing)
                .write_usize(o.cache_capacity);
            o.backend.fingerprint_into(fp);
            o.refine_backend.fingerprint_into(fp);
            fp.write_usize(o.refine_top_k)
                .write_bool(o.adaptive_refinement);
            o.tech.fingerprint_into(fp);
            fp.write_str(o.optimizer.as_str());
        }
        (lo.finish().0, hi.finish().0)
    }
}

/// How a job's execution ended inside the executor.
enum Completion {
    /// The request ran to a result (success, failure, or cancellation).
    Done(Box<ExecOutcome>),
    /// The job panicked; the payload is re-raised by [`JobHandle::wait`].
    Panicked(Box<dyn std::any::Any + Send>),
}

/// Per-job state shared between the executor, the handle, and the engine.
struct JobState {
    id: u64,
    label: String,
    cancel: Arc<AtomicBool>,
    outcome: Mutex<Option<Completion>>,
    done: Condvar,
    events: Mutex<Option<Receiver<RunEvent>>>,
    published: AtomicBool,
    /// Registry key for the job's surrogate, when its screen tier is one.
    surrogate_key: Option<(u64, u64)>,
}

/// Engine-level shared state.
struct EngineShared {
    /// The cross-request memo store (entries published at observed job
    /// completion; snapshotted into every new job at submit).
    store: MemoCache<(u64, u64), Option<Metrics>>,
    /// Trained surrogate screen backends, keyed per technology. New
    /// surrogate jobs fork the registered instance; observed completions
    /// replace it. Loaded from `surrogate_store` at engine creation.
    surrogates: Mutex<BTreeMap<(u64, u64), Arc<dyn CostBackend>>>,
    cache_path: Option<PathBuf>,
    cache_max_age: Option<Duration>,
    /// Persistent image of the surrogate registry (see
    /// [`EngineConfig::with_surrogate_store`]).
    surrogate_store: Option<PathBuf>,
    /// Serializes [`EngineShared::save_surrogates`]'s read-merge-write:
    /// two concurrent `wait()`-time saves interleaving on the file could
    /// otherwise overwrite a just-published surrogate with a stale
    /// snapshot and lose it for the engine's lifetime.
    surrogate_save: Mutex<()>,
    /// Set when the registry changed since its last save.
    surrogate_dirty: AtomicBool,
    /// Highest training generation restored from the surrogate store at
    /// engine creation (0 on a cold start) — warm-restart observability.
    restored_surrogate_generation: u64,
    /// Surrogate backends restored from the store at engine creation.
    restored_surrogate_backends: usize,
    /// Set when the store changed since the last persist.
    dirty: AtomicBool,
    /// Jobs actually executed (campaign dedup skips duplicates).
    jobs_executed: AtomicU64,
    next_job_id: AtomicU64,
    /// The engine-wide telemetry handle (no-op unless the configuration
    /// attached an enabled one).
    telemetry: Telemetry,
    /// Remote batch evaluator handed to every job's [`ExecCtx`] (see
    /// [`EngineConfig::with_remote_evaluator`]).
    remote: Option<crate::remote::SharedPairEvaluator>,
}

impl EngineShared {
    /// Merges an observed job's warm state into the engine. Called from
    /// [`JobHandle::wait`] — the caller's thread — exactly once per job,
    /// so the store's content is a pure function of the caller's
    /// submit/wait program, never of executor timing.
    fn publish(&self, outcome: &ExecOutcome, surrogate_key: Option<(u64, u64)>) {
        for (key, value, stamp) in &outcome.memo {
            // Newer-stamp-wins: a slow job must not regress the age of an
            // entry some faster job republished in the meantime.
            self.store.insert_stamped_newest(*key, *value, *stamp);
        }
        if !outcome.memo.is_empty() {
            // detlint-allow(atomics): dirty flag only schedules a later mutex-serialized save; a stale read delays persistence, never changes results
            self.dirty.store(true, Ordering::Relaxed);
        }
        if let (Some(key), Some(surrogate)) = (surrogate_key, &outcome.surrogate) {
            lock_recover(&self.surrogates).insert(key, Arc::clone(surrogate));
            // detlint-allow(atomics): same contract as the memo dirty flag above — save scheduling only
            self.surrogate_dirty.store(true, Ordering::Relaxed);
        }
    }

    /// Writes the surrogate registry to the configured store path, merged
    /// with whatever the file already holds: entries for technologies
    /// this engine never touched survive, and on a collision the
    /// **newer-generation** snapshot wins, so a save never regresses a
    /// generation another process wrote to a shared store file (ties go
    /// to the live registry). Entries are ordered by registry key, so
    /// the image is a pure function of its content. `Ok(0)` without a
    /// configured path.
    fn save_surrogates(&self) -> std::io::Result<usize> {
        let Some(path) = &self.surrogate_store else {
            return Ok(0);
        };
        // One saver at a time: the read-merge-write below must not
        // interleave with another wait()'s save, or the later writer's
        // pre-publication registry snapshot could clobber the earlier
        // writer's published surrogate on disk.
        let _saving = lock_recover(&self.surrogate_save);
        // Clear the dirty flag before snapshotting the registry: a
        // publication landing after the snapshot re-raises it, so a later
        // persist/drop knows this save missed it.
        // detlint-allow(atomics): cleared under the saver mutex; a racing publication re-raises it, so no save is ever lost
        self.surrogate_dirty.store(false, Ordering::Relaxed);
        // An unreadable or corrupt existing image contributes nothing
        // (the save degrades to a plain write), like the memo merge.
        let mut merged: BTreeMap<(u64, u64), SurrogateSnapshot> = load_surrogate_snapshots(path)
            .unwrap_or_default()
            .into_iter()
            .map(|snap| (surrogate_key_for_tech(&snap.tech), snap))
            .collect();
        {
            let registry = lock_recover(&self.surrogates);
            for backend in registry.values() {
                if let Some(surrogate) = backend.as_surrogate() {
                    let snap = surrogate.snapshot();
                    let key = surrogate_key_for_tech(&snap.tech);
                    match merged.get(&key) {
                        Some(prev) if prev.generation > snap.generation => {}
                        _ => {
                            merged.insert(key, snap);
                        }
                    }
                }
            }
        }
        let mut payload = Vec::new();
        payload.extend_from_slice(&(merged.len() as u64).to_le_bytes());
        for snap in merged.values() {
            let mut entry = Vec::new();
            snap.encode_into(&mut entry);
            payload.extend_from_slice(&(entry.len() as u32).to_le_bytes());
            payload.extend_from_slice(&entry);
        }
        if let Err(e) = persist::save_frame(path, SURROGATE_STORE_MAGIC, &payload) {
            // The registry still holds unsaved state.
            // detlint-allow(atomics): failed save re-raises the flag; worst case is an extra save attempt
            self.surrogate_dirty.store(true, Ordering::Relaxed);
            return Err(e);
        }
        Ok(merged.len())
    }
}

/// File magic + format version of the persisted surrogate-registry store.
const SURROGATE_STORE_MAGIC: &[u8; 8] = b"HASCOSR1";

/// Parses a persisted surrogate store into its snapshots; `None` on any
/// corruption (and on real I/O failures — loading is always best-effort,
/// a store that cannot be read is a cold start, never an error).
fn load_surrogate_snapshots(path: &std::path::Path) -> Option<Vec<SurrogateSnapshot>> {
    let payload = persist::load_frame(path, SURROGATE_STORE_MAGIC).ok()??;
    let mut rest = payload.as_slice();
    let count = u64::from_le_bytes(rest.get(..8)?.try_into().ok()?);
    rest = rest.get(8..)?;
    let mut out = Vec::new();
    for _ in 0..count {
        let len = u32::from_le_bytes(rest.get(..4)?.try_into().ok()?) as usize;
        rest = rest.get(4..)?;
        out.push(SurrogateSnapshot::decode(rest.get(..len)?)?);
        rest = rest.get(len..)?;
    }
    rest.is_empty().then_some(out)
}

/// Registry key for surrogate state: the technology constants (the only
/// construction axis of `BackendKind::Surrogate.build_with`).
fn surrogate_key(opts: &CoDesignOptions) -> (u64, u64) {
    surrogate_key_for_tech(&opts.tech)
}

/// [`surrogate_key`] from the technology constants alone — also how
/// restored store entries are re-keyed at load time.
fn surrogate_key_for_tech(tech: &TechParams) -> (u64, u64) {
    let mut lo = Fingerprinter::new();
    let mut hi = Fingerprinter::new();
    hi.write_u64(0x9e3779b97f4a7c15);
    for fp in [&mut lo, &mut hi] {
        fp.write_str("surrogate-registry");
        tech.fingerprint_into(fp);
    }
    (lo.finish().0, hi.finish().0)
}

/// A handle to one submitted job. Dropping the handle does not cancel
/// the job, but an unobserved job never publishes warm state. Handles
/// are cheaply cloneable and clones share the job: the live event stream
/// is still taken once across all clones, and the first `wait` anywhere
/// publishes.
#[derive(Clone)]
pub struct JobHandle {
    state: Arc<JobState>,
    shared: Arc<EngineShared>,
}

impl JobHandle {
    /// The engine-assigned job id (submission order).
    pub fn id(&self) -> u64 {
        self.state.id
    }

    /// The request label.
    pub fn label(&self) -> &str {
        &self.state.label
    }

    /// Requests cancellation. A still-queued job is discarded when its
    /// turn comes (it does not execute or count as an executed job);
    /// running jobs stop at the next optimizer batch / explorer round.
    /// Either way the job reports [`HascoError::Cancelled`].
    /// Cancellation is cooperative — `wait` still blocks until the job
    /// acknowledges. A cancel that arrives after the job already
    /// completed is a no-op: the computed solution stays `Ok`.
    pub fn cancel(&self) {
        // detlint-allow(atomics): cancellation is a sticky one-way latch; a late observation only delays the cooperative exit
        self.state.cancel.store(true, Ordering::Relaxed);
    }

    /// True once the job has a result (`wait` would not block).
    pub fn is_finished(&self) -> bool {
        lock_recover(&self.state.outcome).is_some()
    }

    /// The job's [`RunEvent`] stream: a blocking iterator yielding events
    /// as the job emits them, ending after the terminal event. The live
    /// stream can be taken once; later calls return an empty stream.
    pub fn events(&self) -> EventStream {
        match lock_recover(&self.state.events).take() {
            Some(rx) => EventStream::live(rx),
            None => EventStream::empty(),
        }
    }

    /// Blocks until the job finishes and returns its result. The first
    /// `wait` on a completed job **publishes** its warm state (memo
    /// entries, trained surrogate) into the engine — the deterministic
    /// alternative to publishing at racy completion time — and, when the
    /// engine has a surrogate store configured, saves the updated
    /// registry image right after the publication, so on-disk warmth
    /// follows the same observation order as the in-memory registry. A
    /// panic inside the job is re-raised here.
    ///
    /// A `cancel` that lands after the job already completed does not
    /// retract the result: a computed solution is returned as `Ok`, never
    /// converted into [`HascoError::Cancelled`].
    pub fn wait(&self) -> Result<Solution, HascoError> {
        let mut guard = lock_recover(&self.state.outcome);
        while guard.is_none() {
            guard = self
                .state
                .done
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
        // detlint-allow(panic-safety): the loop above exits only once the slot is Some, and no other thread ever takes the outcome back out
        match guard.as_mut().expect("checked above") {
            Completion::Panicked(payload) => {
                let payload = std::mem::replace(payload, Box::new("panic already re-raised"));
                drop(guard);
                std::panic::resume_unwind(payload);
            }
            Completion::Done(outcome) => {
                // SeqCst pairs every waiter's swap into one total order so
                // exactly one caller wins publication and runs the
                // side-effecting warm-state publish below.
                if !self.state.published.swap(true, Ordering::SeqCst) {
                    self.shared.publish(outcome, self.state.surrogate_key);
                    if self.state.surrogate_key.is_some() && outcome.surrogate.is_some() {
                        // Best effort: a failed save costs restart warmth,
                        // never correctness.
                        let _ = self.shared.save_surrogates();
                    }
                }
                outcome.result.clone()
            }
        }
    }
}

/// One scenario's result in a campaign report.
#[derive(Debug, Clone)]
pub struct CampaignOutcome {
    /// The request's label.
    pub label: String,
    /// Its solution (cloned from the representative when deduplicated).
    pub solution: Solution,
    /// When this scenario was identical to an earlier one, the label of
    /// the request that actually ran.
    pub shared_with: Option<String>,
}

impl crate::report::CampaignStats {
    /// Rolls a campaign's outcomes up into dedup-aware totals: executed
    /// scenarios contribute their full [`crate::report::RunStats`];
    /// deduplicated ones (whose solutions are clones of a representative
    /// already counted) move only the dedup counter, keeping every total
    /// monotone in work actually performed.
    pub fn from_outcomes(outcomes: &[CampaignOutcome]) -> Self {
        let mut rollup = Self::default();
        for outcome in outcomes {
            rollup.add_run(&outcome.solution.stats, outcome.shared_with.is_some());
        }
        rollup
    }
}

/// The long-lived co-design service; see the module docs.
pub struct Engine {
    shared: Arc<EngineShared>,
    scheduler: JobScheduler,
}

impl Engine {
    /// Builds an engine, loading the persisted memo store and surrogate
    /// registry when the configuration names them (a missing or corrupt
    /// image is a cold start, exactly like the one-shot cache path —
    /// never an error).
    pub fn new(config: EngineConfig) -> Self {
        let store = MemoCache::new(config.cache_capacity);
        if let Some(path) = &config.cache_path {
            let _ = store.load_from_file(path, HwProblem::decode_cache_entry);
        }
        let mut surrogates: BTreeMap<(u64, u64), Arc<dyn CostBackend>> = BTreeMap::new();
        let mut restored_generation = 0;
        if let Some(path) = &config.surrogate_store {
            for snap in load_surrogate_snapshots(path).unwrap_or_default() {
                restored_generation = restored_generation.max(snap.generation);
                surrogates.insert(
                    surrogate_key_for_tech(&snap.tech),
                    Arc::new(SurrogateBackend::from_snapshot(&snap)),
                );
            }
        }
        Engine {
            shared: Arc::new(EngineShared {
                store,
                restored_surrogate_backends: surrogates.len(),
                restored_surrogate_generation: restored_generation,
                surrogates: Mutex::new(surrogates),
                cache_path: config.cache_path,
                cache_max_age: config.cache_max_age,
                surrogate_store: config.surrogate_store,
                surrogate_save: Mutex::new(()),
                surrogate_dirty: AtomicBool::new(false),
                dirty: AtomicBool::new(false),
                jobs_executed: AtomicU64::new(0),
                next_job_id: AtomicU64::new(1),
                telemetry: config.metrics.clone(),
                remote: config.remote,
            }),
            scheduler: JobScheduler::new(config.job_slots).with_telemetry(config.metrics),
        }
    }

    /// Concurrent job slots.
    pub fn job_slots(&self) -> usize {
        self.scheduler.slots()
    }

    /// Entries currently in the shared store.
    pub fn warm_entries(&self) -> usize {
        self.shared.store.len()
    }

    /// Jobs actually executed so far (campaign duplicates excluded).
    pub fn jobs_executed(&self) -> u64 {
        // detlint-allow(atomics): monotone counter read for observability accessors
        self.shared.jobs_executed.load(Ordering::Relaxed)
    }

    /// Trained surrogate backends currently in the registry (restored
    /// ones included).
    pub fn surrogate_backends(&self) -> usize {
        lock_recover(&self.shared.surrogates).len()
    }

    /// Surrogate backends restored from the persisted store at engine
    /// creation (0 on a cold start).
    pub fn restored_surrogate_backends(&self) -> usize {
        self.shared.restored_surrogate_backends
    }

    /// Highest training generation restored from the persisted surrogate
    /// store at engine creation (0 on a cold start) — the warm-restart
    /// smoke signal: a restarted engine that re-learned nothing reports
    /// the generation its predecessor had reached.
    pub fn restored_surrogate_generation(&self) -> u64 {
        self.shared.restored_surrogate_generation
    }

    /// Validates and enqueues one request; it starts as soon as a slot is
    /// free. The returned handle streams events, cancels, and waits.
    ///
    /// The job's warm memo snapshot is captured **now**, synchronously —
    /// not when the job starts — so what a job sees depends only on the
    /// submissions and waits the caller already performed.
    ///
    /// # Errors
    /// Returns [`HascoError::InvalidOptions`] for option combinations
    /// that would silently degenerate ([`CoDesignOptions::validate`]) and
    /// [`HascoError::EmptyApp`] for an empty application.
    pub fn submit(&self, request: CoDesignRequest) -> Result<JobHandle, HascoError> {
        self.submit_inner(request, true)
    }

    /// [`Engine::submit`] without an event channel: the one-shot
    /// [`CoDesigner::run`](crate::CoDesigner::run) path, which would
    /// otherwise buffer a whole run's events nobody reads.
    /// [`JobHandle::events`] on the returned handle yields nothing.
    pub(crate) fn submit_quiet(&self, request: CoDesignRequest) -> Result<JobHandle, HascoError> {
        self.submit_inner(request, false)
    }

    fn submit_inner(
        &self,
        request: CoDesignRequest,
        with_events: bool,
    ) -> Result<JobHandle, HascoError> {
        request.options.validate()?;
        if request.input.app.is_empty() {
            return Err(HascoError::EmptyApp);
        }
        let warm = self.shared.store.snapshot_stamped();
        // A surrogate screen tier starts from the registry's accumulated
        // training (forked, so this job's own training stays private
        // until its completion is observed).
        let (screen_backend, job_surrogate_key) =
            if request.options.backend == BackendKind::Surrogate {
                let key = surrogate_key(&request.options);
                let forked = lock_recover(&self.shared.surrogates)
                    .get(&key)
                    .and_then(|prev| prev.as_surrogate())
                    .map(|prev| {
                        let fork = prev.fork();
                        // GP fit/predict timings land in the engine's
                        // registry (no-op if a handle is already
                        // installed or telemetry is disabled).
                        fork.install_telemetry(self.shared.telemetry.clone());
                        Arc::new(fork) as Arc<dyn CostBackend>
                    });
                (forked, Some(key))
            } else {
                (None, None)
            };

        let (sink, rx) = if with_events {
            let (tx, rx) = channel();
            (EventSink::new(tx), Some(rx))
        } else {
            (EventSink::disabled(), None)
        };
        let state = Arc::new(JobState {
            // detlint-allow(atomics): fetch_add hands out unique ids under any ordering; ids follow the caller's submit program order
            id: self.shared.next_job_id.fetch_add(1, Ordering::Relaxed),
            label: request.label.clone(),
            cancel: Arc::new(AtomicBool::new(false)),
            outcome: Mutex::new(None),
            done: Condvar::new(),
            events: Mutex::new(rx),
            published: AtomicBool::new(false),
            surrogate_key: job_surrogate_key,
        });

        let job_state = Arc::clone(&state);
        let shared = Arc::clone(&self.shared);
        let ctx = ExecCtx {
            label: request.label.clone(),
            events: sink,
            cancel: Arc::clone(&state.cancel),
            warm,
            screen_backend,
            telemetry: self.shared.telemetry.clone(),
            remote: self.shared.remote.clone(),
        };
        self.scheduler.spawn(Box::new(move || {
            // A job cancelled while still queued is discarded without
            // executing (and without counting as an executed job).
            // detlint-allow(atomics): cancel latch read; see JobHandle::cancel
            let completion = if job_state.cancel.load(Ordering::Relaxed) {
                ctx.events.emit(RunEvent::Cancelled);
                Completion::Done(Box::new(ExecOutcome {
                    result: Err(HascoError::Cancelled),
                    memo: Vec::new(),
                    surrogate: None,
                }))
            } else {
                // detlint-allow(atomics): executed-jobs counter; each unique job increments exactly once
                shared.jobs_executed.fetch_add(1, Ordering::Relaxed);
                shared.telemetry.counter_add("engine.jobs_executed", 1);
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    execute(&request.input, &request.options, &ctx)
                })) {
                    Ok(outcome) => Completion::Done(Box::new(outcome)),
                    Err(payload) => Completion::Panicked(payload),
                }
            };
            *lock_recover(&job_state.outcome) = Some(completion);
            job_state.done.notify_all();
        }));

        Ok(JobHandle {
            state,
            shared: Arc::clone(&self.shared),
        })
    }

    /// Fans a scenario matrix through the engine: deduplicates identical
    /// requests (same workloads, method, constraints, and options — the
    /// duplicate gets the representative's solution without running), then
    /// submits the unique ones in waves of [`Engine::job_slots`], waiting
    /// out each wave before admitting the next so later scenarios start
    /// warm from everything earlier waves evaluated. Results come back in
    /// input order; for non-learning screen tiers they are independent of
    /// wave boundaries and job interleaving (warmth changes statistics,
    /// never solutions). Surrogate-screened scenarios inherit training
    /// from earlier waves by design — deterministic in the matrix order,
    /// but a different split into waves can shift what each wave's fork
    /// has learned.
    ///
    /// # Errors
    /// The first failing scenario aborts the campaign with its error.
    pub fn campaign(
        &self,
        requests: Vec<CoDesignRequest>,
    ) -> Result<Vec<CampaignOutcome>, HascoError> {
        self.campaign_inner(requests, None)
    }

    /// [`Engine::campaign`] with an aggregate progress stream: every
    /// executed job's [`RunEvent`]s come back attributed to their request
    /// label ([`CampaignEvent::Job`]), and dedup-aware
    /// [`CampaignEvent::ScenarioDone`] markers count every input scenario
    /// — deduplicated ones complete together with their representative,
    /// without running.
    ///
    /// The stream is observation-ordered (each job's events are forwarded
    /// as one contiguous run when the campaign driver observes its
    /// completion, wave by wave), so it is bit-identical across thread
    /// counts, slot counts, and job interleavings — the same determinism
    /// contract as [`JobHandle::events`].
    ///
    /// # Errors
    /// The first failing scenario aborts the campaign with its error (the
    /// events emitted up to that point are discarded with it).
    pub fn campaign_events(
        &self,
        requests: Vec<CoDesignRequest>,
    ) -> Result<(Vec<CampaignOutcome>, CampaignEvents), HascoError> {
        let (tx, rx) = channel();
        let outcomes = self.campaign_inner(requests, Some(&tx))?;
        drop(tx);
        Ok((outcomes, CampaignEvents::live(rx)))
    }

    fn campaign_inner(
        &self,
        requests: Vec<CoDesignRequest>,
        sink: Option<&Sender<CampaignEvent>>,
    ) -> Result<Vec<CampaignOutcome>, HascoError> {
        // Exact-request dedup across the matrix. Duplicates never get a
        // job (or a handle) of their own — they are resolved to a clone
        // of the representative's solution after it completes, so there
        // is nothing a duplicate could cancel out from under the other
        // waiters, and `jobs_executed` counts each unique request once.
        let mut representative: BTreeMap<(u64, u64), usize> = BTreeMap::new();
        let mut unique: Vec<CoDesignRequest> = Vec::new();
        // Per input request: (index into `unique`, own label when this
        // request was deduplicated away).
        let mut assignment: Vec<(usize, Option<String>)> = Vec::with_capacity(requests.len());
        for request in requests {
            let fp = request.fingerprint();
            match representative.get(&fp) {
                Some(&slot) => assignment.push((slot, Some(request.label))),
                None => {
                    representative.insert(fp, unique.len());
                    assignment.push((unique.len(), None));
                    unique.push(request);
                }
            }
        }
        let emit = |event: CampaignEvent| {
            if let Some(tx) = sink {
                let _ = tx.send(event);
            }
        };
        emit(CampaignEvent::Planned {
            scenarios: assignment.len(),
            unique_jobs: unique.len(),
            deduplicated: assignment.len() - unique.len(),
        });
        // Dedup-rate counters accumulate across campaigns, so a session's
        // snapshot reports how much the fingerprint dedup actually saved.
        self.shared
            .telemetry
            .counter_add("campaign.scenarios", assignment.len() as u64);
        self.shared
            .telemetry
            .counter_add("campaign.unique_jobs", unique.len() as u64);
        self.shared.telemetry.counter_add(
            "campaign.deduplicated",
            (assignment.len() - unique.len()) as u64,
        );

        // Waves: within a wave, jobs share the pre-wave store (all
        // snapshots are taken before any wave member is waited on);
        // between waves, each wait publishes, so the next wave starts
        // warm — this is where cross-scenario dedup of equivalent
        // evaluations (e.g. edge vs. cloud rows, which differ only in
        // constraints) pays off.
        let mut solutions: Vec<Option<Solution>> = (0..unique.len()).map(|_| None).collect();
        let mut labels: Vec<String> = unique.iter().map(|r| r.label.clone()).collect();
        for (slot, label) in labels.iter_mut().enumerate() {
            if label.is_empty() {
                *label = format!("scenario-{slot}");
            }
        }
        // Slot indices below come from `enumerate()` over `unique`, and
        // `labels` was built with one entry per `unique` element — a
        // missing label degrades to an empty string instead of panicking
        // a serving thread.
        let label_of = |slot: usize| labels.get(slot).cloned().unwrap_or_default();
        let wave_size = self.job_slots().max(1);
        let mut pending: Vec<(usize, CoDesignRequest)> = unique.into_iter().enumerate().collect();
        let mut completed = 0usize;
        while !pending.is_empty() {
            let wave: Vec<(usize, CoDesignRequest)> =
                pending.drain(..wave_size.min(pending.len())).collect();
            let mut handles = Vec::with_capacity(wave.len());
            for (slot, request) in wave {
                // Without a sink, quiet submissions: nothing would drain
                // the per-job event streams, so don't buffer them.
                handles.push((slot, self.submit_inner(request, sink.is_some())?));
            }
            for (slot, handle) in handles {
                // detlint-allow(panic-safety): slot < unique.len() by construction (enumerate over unique) and solutions was sized to unique.len()
                solutions[slot] = Some(handle.wait()?);
                if sink.is_some() {
                    // The job is complete, so its stream is a finished
                    // buffer: forward it as one contiguous, attributed
                    // run.
                    for event in handle.events() {
                        emit(CampaignEvent::Job {
                            label: label_of(slot),
                            event,
                        });
                    }
                    // Dedup-aware progress: the representative and every
                    // scenario it answers complete together, in matrix
                    // order.
                    for (at_slot, own_label) in &assignment {
                        if *at_slot != slot {
                            continue;
                        }
                        completed += 1;
                        emit(CampaignEvent::ScenarioDone {
                            label: own_label.clone().unwrap_or_else(|| label_of(slot)),
                            shared_with: own_label.is_some().then(|| label_of(slot)),
                            completed,
                            total: assignment.len(),
                        });
                    }
                }
            }
        }

        Ok(assignment
            .into_iter()
            .map(|(slot, own_label)| CampaignOutcome {
                // detlint-allow(panic-safety): every assignment slot was drained through a wave above, which filled solutions[slot] before returning
                solution: solutions[slot].clone().expect("every wave was awaited"),
                shared_with: own_label.is_some().then(|| label_of(slot)),
                label: own_label.unwrap_or_else(|| label_of(slot)),
            })
            .collect())
    }

    /// Writes the shared store to the configured cache path (merged
    /// newest-wins with whatever the file holds, age-GC'd when the
    /// configuration sets `cache_max_age`) and the surrogate registry to
    /// the configured surrogate store. Returns the memo entries written;
    /// `Ok(0)` without a configured cache path.
    ///
    /// # Errors
    /// Propagates I/O errors from writing either image. Both saves are
    /// always attempted — a failing surrogate-store path never costs memo
    /// persistence, and vice versa; the memo error is reported first.
    pub fn persist(&self) -> std::io::Result<u64> {
        let memo = match &self.shared.cache_path {
            None => Ok(0),
            Some(path) => self
                .shared
                .store
                .save_merged_with_max_age(
                    path,
                    HwProblem::encode_cache_entry,
                    HwProblem::decode_cache_entry,
                    self.shared.cache_max_age,
                )
                // detlint-allow(atomics): cleared only after a successful save; a racing insert re-raises it
                .inspect(|_| self.shared.dirty.store(false, Ordering::Relaxed)),
        };
        let surrogates = self.shared.save_surrogates();
        let written = memo?;
        surrogates?;
        Ok(written)
    }

    /// Drops every store entry older than `max_age` (explicit compaction
    /// of the in-memory shared store); returns how many were removed.
    pub fn compact(&self, max_age: Duration) -> usize {
        self.shared.store.compact(max_age)
    }

    /// The engine's telemetry handle (a no-op handle unless the
    /// configuration attached an enabled one).
    pub fn telemetry(&self) -> &Telemetry {
        &self.shared.telemetry
    }

    /// Snapshots the telemetry registry (`None` when metrics are
    /// disabled), refreshing the point-in-time gauges first: the shared
    /// store's per-shard counters (scope `"store"`), warm-entry count,
    /// jobs executed, and registered surrogate backends.
    pub fn metrics(&self) -> Option<TelemetrySnapshot> {
        let telemetry = &self.shared.telemetry;
        if !telemetry.is_enabled() {
            return None;
        }
        telemetry.set_cache_shards("store", &self.shared.store.shard_stats());
        telemetry.gauge_set("engine.warm_entries", self.warm_entries() as u64);
        telemetry.gauge_set("engine.jobs_observed", self.jobs_executed());
        telemetry.gauge_set(
            "engine.surrogate_backends",
            self.surrogate_backends() as u64,
        );
        telemetry.snapshot()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Best-effort persistence of state published since the last
        // explicit persist. (Unobserved jobs never published, so there is
        // nothing of theirs to save; the scheduler join below still lets
        // them finish.)
        // detlint-allow(atomics): dirty-flag read decides whether drop persists; a stale read at worst saves once more
        if self.shared.dirty.load(Ordering::Relaxed) {
            let _ = self.persist();
        // detlint-allow(atomics): same drop-time save gating as the memo flag above
        } else if self.shared.surrogate_dirty.load(Ordering::Relaxed) {
            let _ = self.shared.save_surrogates();
        }
    }
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("job_slots", &self.job_slots())
            .field("warm_entries", &self.warm_entries())
            .field("jobs_executed", &self.jobs_executed())
            .finish()
    }
}
