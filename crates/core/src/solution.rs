//! Holistic solutions (the right box of Fig. 3): one accelerator, plus a
//! tensorize interface and an optimized program per workload.

use accel_model::arch::AcceleratorConfig;
use accel_model::Metrics;
use dse::problem::OptimizerResult;
use sw_opt::schedule::Schedule;

use crate::report::RunStats;

/// The per-workload software half of a solution.
#[derive(Debug, Clone)]
pub struct WorkloadSolution {
    /// The workload's name.
    pub workload: String,
    /// The optimized schedule (tensorize choice, tiles, order, fusion).
    pub schedule: Schedule,
    /// Metrics of this workload on the shared accelerator.
    pub metrics: Metrics,
    /// Listing-1-style pseudo program for inspection.
    pub program: String,
}

/// A holistic HW/SW solution for an application.
#[derive(Debug, Clone)]
pub struct Solution {
    /// The shared accelerator.
    pub accelerator: AcceleratorConfig,
    /// Per-workload schedules and metrics.
    pub per_workload: Vec<WorkloadSolution>,
    /// Application-level metrics (latencies summed, area shared).
    pub total: Metrics,
    /// Whether the user constraints are met.
    pub meets_constraints: bool,
    /// The hardware DSE history (for hypervolume/convergence reporting).
    pub hw_history: OptimizerResult,
    /// Evaluation-runtime statistics (thread count, cache behavior).
    pub stats: RunStats,
}

impl Solution {
    /// Latency of one workload by name, if present.
    pub fn workload_latency_ms(&self, name: &str) -> Option<f64> {
        self.per_workload
            .iter()
            .find(|w| w.workload == name)
            .map(|w| w.metrics.latency_ms)
    }
}

impl std::fmt::Display for Solution {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "accelerator: {}", self.accelerator)?;
        writeln!(
            f,
            "total: {} ({} workloads, constraints {})",
            self.total,
            self.per_workload.len(),
            if self.meets_constraints {
                "met"
            } else {
                "violated"
            }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::intrinsics::IntrinsicKind;

    #[test]
    fn display_and_lookup() {
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap();
        let m = Metrics {
            latency_cycles: 100.0,
            latency_ms: 0.1,
            energy_uj: 1.0,
            power_mw: 10.0,
            area_mm2: 5.0,
            throughput_mops: 2.0,
            utilization: 1.0,
        };
        let s = Solution {
            accelerator: cfg,
            per_workload: vec![],
            total: m,
            meets_constraints: true,
            hw_history: OptimizerResult::new("mobo"),
            stats: RunStats::default(),
        };
        assert!(s.to_string().contains("constraints met"));
        assert_eq!(s.workload_latency_ms("nope"), None);
        assert!(s.stats.render().contains("cache hit rate"));
    }
}
