//! Input descriptions (the left box of the paper's Fig. 3): workloads,
//! hardware generation method, and constraints.

use serde::{Deserialize, Serialize};
use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::workload::TensorApp;

/// User constraints on the holistic solution (the paper's examples:
/// "latency: 10 ms, power: 15 watt").
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Constraints {
    /// Maximum end-to-end latency in milliseconds.
    pub max_latency_ms: Option<f64>,
    /// Maximum average power in milliwatts.
    pub max_power_mw: Option<f64>,
    /// Maximum accelerator area in mm².
    pub max_area_mm2: Option<f64>,
}

impl Constraints {
    /// A latency + power constraint pair (the Table II/III form).
    pub fn latency_power(max_latency_ms: f64, max_power_mw: f64) -> Self {
        Constraints {
            max_latency_ms: Some(max_latency_ms),
            max_power_mw: Some(max_power_mw),
            max_area_mm2: None,
        }
    }

    /// True when the metrics satisfy every set constraint.
    pub fn satisfied_by(&self, m: &accel_model::Metrics) -> bool {
        self.max_latency_ms.is_none_or(|c| m.latency_ms <= c)
            && self.max_power_mw.is_none_or(|c| m.power_mw <= c)
            && self.max_area_mm2.is_none_or(|c| m.area_mm2 <= c)
    }

    /// Relative violation magnitude (0.0 when satisfied); used to pick the
    /// least-violating fallback solution.
    pub fn violation(&self, m: &accel_model::Metrics) -> f64 {
        let mut v = 0.0;
        if let Some(c) = self.max_latency_ms {
            v += ((m.latency_ms - c) / c).max(0.0);
        }
        if let Some(c) = self.max_power_mw {
            v += ((m.power_mw - c) / c).max(0.0);
        }
        if let Some(c) = self.max_area_mm2 {
            v += ((m.area_mm2 - c) / c).max(0.0);
        }
        v
    }
}

/// Which generator builds the accelerator (Fig. 3's "Hardware Generation").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GenerationMethod {
    /// The built-in Chisel generator with the given intrinsic.
    Chisel(IntrinsicKind),
    /// The Gemmini systolic GEMM generator.
    Gemmini,
}

impl GenerationMethod {
    /// The intrinsic family the generated accelerators implement.
    pub fn intrinsic(&self) -> IntrinsicKind {
        match self {
            GenerationMethod::Chisel(k) => *k,
            GenerationMethod::Gemmini => IntrinsicKind::Gemm,
        }
    }
}

/// The full input description.
#[derive(Debug, Clone)]
pub struct InputDescription {
    /// The tensor application (all workloads share one accelerator).
    pub app: TensorApp,
    /// The hardware generation method.
    pub method: GenerationMethod,
    /// The user constraints.
    pub constraints: Constraints,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics(lat: f64, pow: f64, area: f64) -> accel_model::Metrics {
        accel_model::Metrics {
            latency_cycles: lat * 1e6,
            latency_ms: lat,
            energy_uj: pow * lat,
            power_mw: pow,
            area_mm2: area,
            throughput_mops: 1.0,
            utilization: 1.0,
        }
    }

    #[test]
    fn unset_constraints_always_satisfied() {
        let c = Constraints::default();
        assert!(c.satisfied_by(&metrics(1e9, 1e9, 1e9)));
        assert_eq!(c.violation(&metrics(1e9, 1e9, 1e9)), 0.0);
    }

    #[test]
    fn latency_power_constraint_checks_both() {
        let c = Constraints::latency_power(10.0, 2000.0);
        assert!(c.satisfied_by(&metrics(9.0, 1999.0, 50.0)));
        assert!(!c.satisfied_by(&metrics(11.0, 1999.0, 50.0)));
        assert!(!c.satisfied_by(&metrics(9.0, 2100.0, 50.0)));
    }

    #[test]
    fn violation_is_relative_and_additive() {
        let c = Constraints::latency_power(10.0, 1000.0);
        let v = c.violation(&metrics(20.0, 1500.0, 1.0));
        assert!((v - (1.0 + 0.5)).abs() < 1e-12);
    }

    #[test]
    fn method_intrinsics() {
        assert_eq!(GenerationMethod::Gemmini.intrinsic(), IntrinsicKind::Gemm);
        assert_eq!(
            GenerationMethod::Chisel(IntrinsicKind::Conv2d).intrinsic(),
            IntrinsicKind::Conv2d
        );
    }
}
