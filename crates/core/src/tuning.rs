//! Step 3 — solution tuning (§III): check metrics against the user
//! constraints and steer the selection along the Pareto set.
//!
//! "If the metrics violate the user constraints, they will drive the
//! hardware DSE and generate a new accelerator." In this reproduction the
//! DSE history already contains the Pareto set, so tuning selects the
//! feasible point with the lowest latency and falls back to the
//! least-violating point when nothing is feasible.

use dse::problem::{OptimizerResult, Point};

use crate::input::Constraints;

/// Approximates [`accel_model::Metrics`] from an objective vector
/// `(latency cycles, power mW, area mm²)` at a given clock, for constraint
/// checks. Latency in ms assumes the configured 500 MHz default clock.
fn objectives_to_view(objs: &[f64]) -> accel_model::Metrics {
    let latency_cycles = objs[0];
    let latency_ms = latency_cycles / 5e5;
    accel_model::Metrics {
        latency_cycles,
        latency_ms,
        energy_uj: objs[1] * latency_ms,
        power_mw: objs[1],
        area_mm2: objs[2],
        throughput_mops: 0.0,
        utilization: 1.0,
    }
}

/// Selects the design point to carry into the final solution: among the
/// Pareto front of the history, the feasible point with the lowest
/// latency; otherwise the least-violating point overall.
pub fn select_point(history: &OptimizerResult, constraints: &Constraints) -> Option<Point> {
    let front = history.pareto_front();
    if front.is_empty() {
        return None;
    }
    let feasible = front
        .iter()
        .filter(|e| constraints.satisfied_by(&objectives_to_view(&e.objectives)))
        .min_by(|a, b| {
            a.objectives[0]
                .partial_cmp(&b.objectives[0])
                .expect("finite latency")
        });
    if let Some(e) = feasible {
        return Some(e.point.clone());
    }
    front
        .iter()
        .min_by(|a, b| {
            let va = constraints.violation(&objectives_to_view(&a.objectives));
            let vb = constraints.violation(&objectives_to_view(&b.objectives));
            va.partial_cmp(&vb).expect("finite violations")
        })
        .map(|e| e.point.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dse::problem::Evaluation;

    fn history(objs: &[[f64; 3]]) -> OptimizerResult {
        let mut h = OptimizerResult::new("test");
        for (i, o) in objs.iter().enumerate() {
            h.evaluations.push(Evaluation {
                point: vec![i],
                objectives: o.to_vec(),
            });
        }
        h
    }

    #[test]
    fn picks_lowest_latency_feasible_pareto_point() {
        // Points: (cycles, mW, mm2). At 500 MHz, 5e8 cycles = 1000 ms.
        let h = history(&[
            [5e8, 100.0, 10.0],   // 1000 ms
            [2.5e8, 200.0, 20.0], // 500 ms
            [1e8, 900.0, 50.0],   // 200 ms but power-hungry
        ]);
        let c = Constraints::latency_power(800.0, 500.0);
        // Feasible: #1 (500 ms, 200 mW). #2 violates power.
        assert_eq!(select_point(&h, &c), Some(vec![1]));
    }

    #[test]
    fn unconstrained_picks_fastest() {
        let h = history(&[[5e8, 100.0, 10.0], [2.5e8, 200.0, 20.0]]);
        assert_eq!(select_point(&h, &Constraints::default()), Some(vec![1]));
    }

    #[test]
    fn infeasible_falls_back_to_least_violation() {
        let h = history(&[
            [5e8, 5000.0, 10.0], // 1000 ms, heavy power violation
            [4e8, 1200.0, 20.0], // 800 ms, small power violation
        ]);
        let c = Constraints::latency_power(2000.0, 1000.0);
        assert_eq!(select_point(&h, &c), Some(vec![1]));
    }

    #[test]
    fn dominated_points_are_ignored() {
        let h = history(&[
            [1e8, 100.0, 10.0],
            [2e8, 200.0, 20.0], // dominated by #0
        ]);
        assert_eq!(select_point(&h, &Constraints::default()), Some(vec![0]));
    }

    #[test]
    fn empty_history_yields_none() {
        let h = OptimizerResult::new("empty");
        assert_eq!(select_point(&h, &Constraints::default()), None);
    }
}
