//! Typed progress events of one co-design run.
//!
//! A job admitted by the [`Engine`](crate::engine::Engine) does not only
//! produce a final [`Solution`](crate::Solution) — it streams
//! [`RunEvent`]s as the three-step flow advances: partitioning, batch
//! evaluation inside the hardware DSE, fidelity-staged refinement,
//! constraint-driven retuning, and the final software optimization.
//! Events are emitted from the job's driver thread at serial points of
//! the flow, so **the event stream of a job is bit-identical across
//! thread counts, work-stealing modes, and concurrent-job interleavings**
//! — the same determinism contract the solutions themselves obey.
//!
//! Wall-clock observability deliberately lives elsewhere: timings,
//! latency histograms, and cache/steal counters flow through the
//! [`runtime::Telemetry`] side channel (see
//! [`EngineConfig::with_metrics`](crate::engine::EngineConfig::with_metrics)),
//! never through events. Carrying a timestamp here would break the
//! bit-identical contract on the first re-run.

use std::sync::mpsc::{Receiver, Sender};

/// One progress event of a co-design run. The stream of a successful job
/// starts with [`RunEvent::Started`] and ends with a terminal event
/// ([`RunEvent::Solved`], [`RunEvent::Cancelled`], or
/// [`RunEvent::Failed`]).
#[derive(Debug, Clone, PartialEq)]
pub enum RunEvent {
    /// The job was admitted and its inputs validated.
    Started {
        /// The request label.
        label: String,
        /// Number of workloads in the application.
        workloads: usize,
    },
    /// Step 1: one workload's tensorize-choice space was enumerated.
    Partitioned {
        /// The workload's name.
        workload: String,
        /// Total legal tensorize choices across candidate intrinsics.
        choices: usize,
    },
    /// The hardware DSE evaluated one batch of design points
    /// (reported by the optimizer loop — MOBO prior bursts and
    /// acquisitions, NSGA-II generations, annealer probes/walks).
    BatchEvaluated {
        /// The optimizer (`"mobo"`, `"nsga2"`, `"random"`, `"anneal"`).
        optimizer: String,
        /// The loop phase (`"prior"`, `"acquire"`, `"generation"`, …).
        phase: String,
        /// 1-based batch number within the optimizer run.
        batch: usize,
        /// Design points evaluated in the batch.
        evaluated: usize,
        /// How many of them were feasible.
        feasible: usize,
    },
    /// Fidelity staging re-priced a batch's survivors at high fidelity.
    Refined {
        /// 1-based staged-batch number within the job.
        batch: usize,
        /// Survivors re-priced at the refine tier.
        survivors: usize,
        /// The refine budget the batch ran with (the adaptive controller
        /// moves this between batches).
        budget: usize,
    },
    /// The final thorough software optimization finished one workload.
    SoftwareOptimized {
        /// The workload's name.
        workload: String,
        /// Revision rounds the explorer ran.
        rounds: usize,
        /// The optimized latency (ms) on the chosen accelerator.
        latency_ms: f64,
    },
    /// Step 3: a solution candidate was checked against the constraints
    /// (round 0 is the initial selection; later rounds are
    /// constraint-driven retunes).
    Tuned {
        /// Tuning round (0 = initial selection).
        round: usize,
        /// Whether the candidate meets the user constraints.
        meets_constraints: bool,
    },
    /// Terminal: the job produced a solution.
    Solved {
        /// Whether the solution meets the user constraints.
        meets_constraints: bool,
        /// The solution's application latency in milliseconds.
        latency_ms: f64,
    },
    /// Terminal: the job was cancelled before completing.
    Cancelled,
    /// Terminal: the job failed.
    Failed {
        /// The rendered [`HascoError`](crate::HascoError).
        error: String,
    },
}

impl RunEvent {
    /// True for the events that end a job's stream.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            RunEvent::Solved { .. } | RunEvent::Cancelled | RunEvent::Failed { .. }
        )
    }
}

/// The emitting end of a job's event stream. Cloneable and cheap; a
/// disabled sink ([`EventSink::disabled`]) swallows everything, so code
/// paths shared with the one-shot API emit unconditionally.
#[derive(Debug, Clone, Default)]
pub struct EventSink {
    tx: Option<Sender<RunEvent>>,
}

impl EventSink {
    /// A sink that discards every event (the one-shot `CoDesigner` path).
    pub fn disabled() -> Self {
        EventSink { tx: None }
    }

    /// A sink feeding the given channel.
    pub(crate) fn new(tx: Sender<RunEvent>) -> Self {
        EventSink { tx: Some(tx) }
    }

    /// Emits one event. Never fails: a dropped receiver (nobody is
    /// listening) is not an error — the run continues.
    pub fn emit(&self, event: RunEvent) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(event);
        }
    }

    /// True when events go anywhere at all — observability-only work
    /// (e.g. the partition enumeration) is skipped for a disabled sink.
    pub fn is_enabled(&self) -> bool {
        self.tx.is_some()
    }
}

/// The consuming end of a job's event stream: a blocking iterator that
/// yields events as the job emits them and ends once the job finished and
/// the buffer drained. Obtained from
/// [`JobHandle::events`](crate::engine::JobHandle::events).
#[derive(Debug)]
pub struct EventStream {
    rx: Option<Receiver<RunEvent>>,
}

impl EventStream {
    /// A live stream over the given channel. Public for transport layers
    /// (the network client) that rebuild a job's stream on the consuming
    /// side of a connection; in-process callers obtain streams from
    /// [`JobHandle::events`](crate::engine::JobHandle::events).
    pub fn live(rx: Receiver<RunEvent>) -> Self {
        EventStream { rx: Some(rx) }
    }

    /// A stream that yields nothing (the events were already taken).
    pub fn empty() -> Self {
        EventStream { rx: None }
    }
}

impl Iterator for EventStream {
    type Item = RunEvent;

    fn next(&mut self) -> Option<RunEvent> {
        self.rx.as_ref()?.recv().ok()
    }
}

/// One event of a campaign's aggregate stream
/// ([`Engine::campaign_events`](crate::engine::Engine::campaign_events)).
///
/// The aggregate stream is **observation-ordered**: each executed job's
/// [`RunEvent`]s are forwarded as one contiguous run when the campaign
/// driver observes that job's completion (wave by wave, in wave order),
/// never interleaved at racy emission time — so the whole campaign stream
/// is a pure function of the request matrix, bit-identical across thread
/// counts, slot counts, and job interleavings.
#[derive(Debug, Clone, PartialEq)]
pub enum CampaignEvent {
    /// Emitted once, first: the matrix was deduplicated and scheduled.
    Planned {
        /// Scenarios in the input matrix.
        scenarios: usize,
        /// Unique jobs that will actually execute.
        unique_jobs: usize,
        /// Scenarios answered by an earlier identical request.
        deduplicated: usize,
    },
    /// One executed job's [`RunEvent`], attributed to its request label.
    Job {
        /// The label of the request that ran.
        label: String,
        /// The forwarded event.
        event: RunEvent,
    },
    /// A scenario finished. Dedup-aware: a deduplicated scenario
    /// completes together with its representative, without running, and
    /// still advances the progress count.
    ScenarioDone {
        /// The scenario's own label.
        label: String,
        /// The representative's label when this scenario was
        /// deduplicated away (`None` for the scenario that ran).
        shared_with: Option<String>,
        /// Scenarios completed so far, this one included.
        completed: usize,
        /// Total scenarios in the matrix.
        total: usize,
    },
}

/// The consuming end of a campaign's aggregate event stream: a blocking
/// iterator over [`CampaignEvent`]s that ends once the campaign finished
/// and the buffer drained. Obtained from
/// [`Engine::campaign_events`](crate::engine::Engine::campaign_events).
#[derive(Debug)]
pub struct CampaignEvents {
    rx: Receiver<CampaignEvent>,
}

impl CampaignEvents {
    /// A live stream over the given channel. Public for transport layers
    /// (the network client) that rebuild a campaign's stream on the
    /// consuming side of a connection; in-process callers obtain streams
    /// from [`Engine::campaign_events`](crate::engine::Engine::campaign_events).
    pub fn live(rx: Receiver<CampaignEvent>) -> Self {
        CampaignEvents { rx }
    }
}

impl Iterator for CampaignEvents {
    type Item = CampaignEvent;

    fn next(&mut self) -> Option<CampaignEvent> {
        self.rx.recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_classification() {
        assert!(RunEvent::Solved {
            meets_constraints: true,
            latency_ms: 1.0
        }
        .is_terminal());
        assert!(RunEvent::Cancelled.is_terminal());
        assert!(RunEvent::Failed { error: "x".into() }.is_terminal());
        assert!(!RunEvent::Started {
            label: "j".into(),
            workloads: 1
        }
        .is_terminal());
        assert!(!RunEvent::Tuned {
            round: 0,
            meets_constraints: false
        }
        .is_terminal());
    }

    #[test]
    fn disabled_sink_swallows_and_dropped_receiver_is_harmless() {
        EventSink::disabled().emit(RunEvent::Cancelled);
        let (tx, rx) = std::sync::mpsc::channel();
        let sink = EventSink::new(tx);
        drop(rx);
        sink.emit(RunEvent::Cancelled); // must not panic
    }

    #[test]
    fn stream_drains_buffer_then_ends() {
        let (tx, rx) = std::sync::mpsc::channel();
        let sink = EventSink::new(tx);
        sink.emit(RunEvent::Cancelled);
        drop(sink);
        let events: Vec<RunEvent> = EventStream::live(rx).collect();
        assert_eq!(events, vec![RunEvent::Cancelled]);
        assert_eq!(EventStream::empty().count(), 0);
    }
}
