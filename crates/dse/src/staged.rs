//! Fidelity-staged batch evaluation: screen everything cheaply, refine
//! only the survivors.
//!
//! The co-design loop's high-fidelity evaluations (trace simulation) cost
//! orders of magnitude more than the analytic screen, yet only the
//! candidates that might enter the Pareto front or the GP training set
//! deserve them. [`FidelityStaged`] composes two [`BatchEvaluator`]s into
//! that policy: the screen engine prices the full batch, a deterministic
//! ranking ([`rank_top_k`]) picks the `top_k` most promising responses,
//! and only those are re-evaluated by the refine engine — the rest keep
//! their screened values.
//!
//! Determinism: survivor selection depends only on the batch's screened
//! responses (ties broken by submission index), never on thread count or
//! completion order, so staging composes with the parallel runtime
//! without weakening the "thread count never changes results" invariant.

use std::sync::atomic::{AtomicU64, Ordering};

use runtime::BatchEvaluator;

/// Indices of the `k` best-scoring items, deterministic under ties.
///
/// `score` returns `None` for items that cannot be ranked (infeasible
/// candidates); those never survive. Lower scores are better (the
/// minimization convention of every objective in this crate). Ties are
/// broken by submission index, so the selection is a pure function of the
/// batch content. The returned indices are in ascending index order.
pub fn rank_top_k<T>(items: &[T], k: usize, score: impl Fn(&T) -> Option<f64>) -> Vec<usize> {
    let mut ranked: Vec<(f64, usize)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, t)| score(t).map(|s| (s, i)))
        .filter(|(s, _)| !s.is_nan())
        .collect();
    ranked.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("NaN scores were filtered")
            .then(a.1.cmp(&b.1))
    });
    ranked.truncate(k);
    let mut idx: Vec<usize> = ranked.into_iter().map(|(_, i)| i).collect();
    idx.sort_unstable();
    idx
}

/// Point-in-time counters of a staged evaluator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StagedStats {
    /// Requests priced by the screen engine.
    pub screened: u64,
    /// Survivors re-priced by the refine engine.
    pub refined: u64,
}

/// Two-tier evaluator: screen the batch, refine the top-k survivors.
///
/// `score` maps a screened response to a ranking key (`None` =
/// unrankable/infeasible, lower = better). With `top_k == 0` the refine
/// engine is never consulted and this is exactly the screen engine.
pub struct FidelityStaged<S, R, F> {
    /// The cheap full-batch engine.
    pub screen: S,
    /// The expensive survivor engine.
    pub refine: R,
    /// Survivors per batch re-evaluated at high fidelity.
    pub top_k: usize,
    score: F,
    screened: AtomicU64,
    refined: AtomicU64,
}

impl<S, R, F> FidelityStaged<S, R, F> {
    /// Composes the two engines.
    pub fn new(screen: S, refine: R, top_k: usize, score: F) -> Self {
        FidelityStaged {
            screen,
            refine,
            top_k,
            score,
            screened: AtomicU64::new(0),
            refined: AtomicU64::new(0),
        }
    }

    /// Snapshot of the per-tier evaluation counters.
    pub fn stats(&self) -> StagedStats {
        StagedStats {
            screened: self.screened.load(Ordering::Relaxed),
            refined: self.refined.load(Ordering::Relaxed),
        }
    }
}

impl<Q, P, S, R, F> BatchEvaluator for FidelityStaged<S, R, F>
where
    Q: Clone,
    S: BatchEvaluator<Request = Q, Response = P>,
    R: BatchEvaluator<Request = Q, Response = P>,
    F: Fn(&P) -> Option<f64>,
{
    type Request = Q;
    type Response = P;

    fn evaluate_batch(&self, batch: &[Q]) -> Vec<P> {
        let mut responses = self.screen.evaluate_batch(batch);
        self.screened
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        if self.top_k == 0 {
            return responses;
        }
        let survivors = rank_top_k(&responses, self.top_k, &self.score);
        if survivors.is_empty() {
            return responses;
        }
        let requests: Vec<Q> = survivors.iter().map(|&i| batch[i].clone()).collect();
        let refined = self.refine.evaluate_batch(&requests);
        self.refined
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        for (i, r) in survivors.into_iter().zip(refined) {
            responses[i] = r;
        }
        responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::batch::FnEvaluator;

    #[test]
    fn rank_top_k_is_deterministic_and_tie_stable() {
        let items = [3.0, 1.0, 2.0, 1.0, f64::NAN];
        let top = rank_top_k(&items, 3, |&x| Some(x));
        // The two 1.0s tie: the earlier index wins first, and 2.0 fills
        // the third slot; NaN never survives.
        assert_eq!(top, vec![1, 2, 3]);
        assert_eq!(rank_top_k(&items, 0, |&x| Some(x)), Vec::<usize>::new());
        assert_eq!(rank_top_k(&items, 10, |&x| Some(x)).len(), 4);
    }

    #[test]
    fn rank_top_k_skips_unrankable_items() {
        let items = [Some(5.0), None, Some(1.0)];
        assert_eq!(rank_top_k(&items, 2, |x| *x), vec![0, 2]);
    }

    #[test]
    fn staged_refines_only_survivors() {
        let staged = FidelityStaged::new(
            FnEvaluator::new(|&x: &u64| x as f64),
            FnEvaluator::new(|&x: &u64| x as f64 + 1000.0),
            2,
            |&p: &f64| Some(p),
        );
        let out = staged.evaluate_batch(&[5, 1, 9, 3]);
        // The two smallest screened values (1 and 3) get refined.
        assert_eq!(out, vec![5.0, 1001.0, 9.0, 1003.0]);
        let s = staged.stats();
        assert_eq!(s.screened, 4);
        assert_eq!(s.refined, 2);
    }

    #[test]
    fn top_k_zero_is_the_screen_engine() {
        let staged = FidelityStaged::new(
            FnEvaluator::new(|&x: &u64| x * 2),
            FnEvaluator::new(|_: &u64| unreachable!("refine must not run")),
            0,
            |&p: &u64| Some(p as f64),
        );
        assert_eq!(staged.evaluate_batch(&[1, 2, 3]), vec![2, 4, 6]);
        assert_eq!(staged.stats().refined, 0);
    }

    #[test]
    fn all_unrankable_batches_skip_refinement() {
        let staged = FidelityStaged::new(
            FnEvaluator::new(|&x: &u64| x),
            FnEvaluator::new(|_: &u64| unreachable!("refine must not run")),
            3,
            |_: &u64| None,
        );
        assert_eq!(staged.evaluate_batch(&[1, 2]), vec![1, 2]);
    }
}
