//! Fidelity-staged batch evaluation: screen everything cheaply, refine
//! only the survivors.
//!
//! The co-design loop's high-fidelity evaluations (trace simulation) cost
//! orders of magnitude more than the analytic screen, yet only the
//! candidates that might enter the Pareto front or the GP training set
//! deserve them. [`FidelityStaged`] composes two [`BatchEvaluator`]s into
//! that policy: the screen engine prices the full batch, a deterministic
//! ranking ([`rank_top_k`]) picks the `top_k` most promising responses,
//! and only those are re-evaluated by the refine engine — the rest keep
//! their screened values.
//!
//! Determinism: survivor selection depends only on the batch's screened
//! responses (ties broken by submission index), never on thread count or
//! completion order, so staging composes with the parallel runtime
//! without weakening the "thread count never changes results" invariant.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use runtime::BatchEvaluator;

/// Indices of the `k` best-scoring items, deterministic under ties.
///
/// `score` returns `None` for items that cannot be ranked (infeasible
/// candidates); those never survive. Lower scores are better (the
/// minimization convention of every objective in this crate). Ties are
/// broken by submission index, so the selection is a pure function of the
/// batch content. The returned indices are in ascending index order.
pub fn rank_top_k<T>(items: &[T], k: usize, score: impl Fn(&T) -> Option<f64>) -> Vec<usize> {
    let mut ranked: Vec<(f64, usize)> = items
        .iter()
        .enumerate()
        .filter_map(|(i, t)| score(t).map(|s| (s, i)))
        .filter(|(s, _)| !s.is_nan())
        .collect();
    ranked.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            .expect("NaN scores were filtered")
            .then(a.1.cmp(&b.1))
    });
    ranked.truncate(k);
    let mut idx: Vec<usize> = ranked.into_iter().map(|(_, i)| i).collect();
    idx.sort_unstable();
    idx
}

/// Pairwise rank disagreement between two score vectors over the same
/// items — a Kendall-tau-style statistic in `[0, 1]`.
///
/// A pair `(i, j)` is *discordant* when the two scores order it in
/// opposite directions; ties in either score count as concordant (the
/// cheap tier not separating two near-equal candidates is not a ranking
/// error). The result is the discordant fraction of all pairs: `0.0` =
/// identical rankings, `1.0` = fully reversed, and fewer than two items
/// yield `0.0`. Deterministic — a pure function of the two slices — so
/// staging policies built on it preserve the thread-count invariant.
pub fn rank_disagreement(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "score vectors must align");
    let n = a.len();
    if n < 2 {
        return 0.0;
    }
    let mut discordant = 0usize;
    let mut total = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += 1;
            if (a[i] - a[j]) * (b[i] - b[j]) < 0.0 {
                discordant += 1;
            }
        }
    }
    discordant as f64 / total as f64
}

/// Adaptive fidelity-staging controller: grows or shrinks the per-batch
/// refine budget (`top_k`) from the observed screen-vs-refine rank
/// disagreement.
///
/// After each refined batch the caller reports the survivors' screen-tier
/// and refine-tier scores ([`AdaptiveTopK::observe`]). The pairs
/// accumulate in a bounded sliding window spanning recent batches — so
/// the controller keeps learning even in optimizer regimes that evaluate
/// one point at a time (MOBO acquisitions) — and the window's rank
/// disagreement steers the budget: agreement below `shrink_below` means
/// the screen tier ranks like the refiner and the budget shrinks
/// (possibly to zero, skipping refinement entirely); disagreement above
/// `grow_above` grows it toward `max_k`. While the budget sits at zero,
/// every `audit_every`-th batch still refines one survivor so fresh
/// evidence keeps flowing and a drifting screen tier is caught. All
/// decisions are pure functions of the batch sequence, so adaptive
/// trajectories are identical at any thread count and stealing mode.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveTopK {
    k: usize,
    min_k: usize,
    max_k: usize,
    shrink_below: f64,
    grow_above: f64,
    /// While the budget is 0, refine one survivor every this many
    /// batches anyway (evidence audit).
    audit_every: usize,
    /// Batches begun so far (drives the audit cadence).
    batches: usize,
    /// Sliding `(screen, refine)` score window across recent batches.
    window: std::collections::VecDeque<(f64, f64)>,
    trajectory: Vec<usize>,
}

/// Cross-batch evidence window size: big enough for a stable
/// discordant-pair estimate, small enough to track a retraining screen
/// tier.
const EVIDENCE_WINDOW: usize = 8;

/// Minimum window fill before the controller acts on its estimate.
const EVIDENCE_MIN: usize = 3;

impl AdaptiveTopK {
    /// Creates a controller starting at `initial` survivors per batch,
    /// bounded to `[0, 4 * initial]`, shrinking below 10% window
    /// disagreement and growing above 30%, with an audit refinement
    /// every 4th batch while the budget is zero.
    pub fn new(initial: usize) -> Self {
        let initial = initial.max(1);
        AdaptiveTopK {
            k: initial,
            min_k: 0,
            max_k: initial.saturating_mul(4),
            shrink_below: 0.10,
            grow_above: 0.30,
            audit_every: 4,
            batches: 0,
            window: std::collections::VecDeque::new(),
            trajectory: Vec::new(),
        }
    }

    /// Overrides the budget bounds (`max_k >= min_k` is enforced; the
    /// current budget is re-clamped into the new band). A `min_k` of 0
    /// (the default) lets a fully-trusted screen tier skip refinement,
    /// modulo the audit cadence.
    pub fn with_bounds(mut self, min_k: usize, max_k: usize) -> Self {
        self.min_k = min_k;
        self.max_k = max_k.max(self.min_k);
        self.k = self.k.clamp(self.min_k, self.max_k);
        self
    }

    /// Overrides the disagreement thresholds (`shrink_below <=
    /// grow_above` is enforced by clamping).
    pub fn with_thresholds(mut self, shrink_below: f64, grow_above: f64) -> Self {
        self.shrink_below = shrink_below;
        self.grow_above = grow_above.max(shrink_below);
        self
    }

    /// The refine budget the next batch will use (0 = refinement off
    /// except for audits).
    pub fn current(&self) -> usize {
        self.k
    }

    /// Starts a batch: resolves the effective budget (the current one,
    /// or a single audit survivor when the budget is zero and the audit
    /// cadence fires), records it in the trajectory, and returns it.
    pub fn begin_batch(&mut self) -> usize {
        self.batches += 1;
        let effective = if self.k == 0 && (self.batches - 1).is_multiple_of(self.audit_every.max(1))
        {
            1
        } else {
            self.k
        };
        self.trajectory.push(effective);
        effective
    }

    /// Reports one refined batch's survivor scores at both tiers
    /// (aligned by survivor; lower = better, as everywhere in this
    /// crate). The pairs join the sliding evidence window; once the
    /// window holds enough pairs, its rank disagreement adjusts the
    /// budget by one step.
    pub fn observe(&mut self, screen_scores: &[f64], refine_scores: &[f64]) {
        for (&s, &r) in screen_scores.iter().zip(refine_scores) {
            if self.window.len() == EVIDENCE_WINDOW {
                self.window.pop_front();
            }
            self.window.push_back((s, r));
        }
        if self.window.len() < EVIDENCE_MIN {
            return;
        }
        let (screen, refine): (Vec<f64>, Vec<f64>) = self.window.iter().copied().unzip();
        let d = rank_disagreement(&screen, &refine);
        if d > self.grow_above {
            // Re-arm from 0 before clamping, so max_k stays a hard bound.
            self.k = (self.k + 1).max(1).min(self.max_k);
        } else if d < self.shrink_below {
            self.k = self.k.saturating_sub(1).max(self.min_k);
        }
    }

    /// The effective budget each batch used, in batch order (audit
    /// batches show their single audit survivor).
    pub fn trajectory(&self) -> &[usize] {
        &self.trajectory
    }

    /// The current evidence-window rank disagreement the controller is
    /// acting on, in `[0, 1]` — `None` until the window holds enough
    /// pairs ([`AdaptiveTopK::observe`]). Read-only: exposed so
    /// telemetry can gauge how much the screen and refine tiers disagree
    /// without re-deriving the window.
    pub fn evidence_disagreement(&self) -> Option<f64> {
        if self.window.len() < EVIDENCE_MIN {
            return None;
        }
        let (screen, refine): (Vec<f64>, Vec<f64>) = self.window.iter().copied().unzip();
        Some(rank_disagreement(&screen, &refine))
    }
}

/// Point-in-time counters of a staged evaluator.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StagedStats {
    /// Requests priced by the screen engine.
    pub screened: u64,
    /// Survivors re-priced by the refine engine.
    pub refined: u64,
}

/// Two-tier evaluator: screen the batch, refine the top-k survivors.
///
/// `score` maps a screened response to a ranking key (`None` =
/// unrankable/infeasible, lower = better). With `top_k == 0` the refine
/// engine is never consulted and this is exactly the screen engine.
/// [`FidelityStaged::with_adaptive`] replaces the fixed `top_k` with an
/// [`AdaptiveTopK`] controller that resizes the refine budget per batch
/// from the observed screen-vs-refine rank disagreement.
pub struct FidelityStaged<S, R, F> {
    /// The cheap full-batch engine.
    pub screen: S,
    /// The expensive survivor engine.
    pub refine: R,
    /// Survivors per batch re-evaluated at high fidelity (ignored while
    /// an adaptive controller is installed).
    pub top_k: usize,
    score: F,
    adaptive: Option<Mutex<AdaptiveTopK>>,
    screened: AtomicU64,
    refined: AtomicU64,
}

impl<S, R, F> FidelityStaged<S, R, F> {
    /// Composes the two engines.
    pub fn new(screen: S, refine: R, top_k: usize, score: F) -> Self {
        FidelityStaged {
            screen,
            refine,
            top_k,
            score,
            adaptive: None,
            screened: AtomicU64::new(0),
            refined: AtomicU64::new(0),
        }
    }

    /// Installs an adaptive refine-budget controller; every batch then
    /// draws its `top_k` from the controller instead of the fixed field.
    pub fn with_adaptive(mut self, controller: AdaptiveTopK) -> Self {
        self.adaptive = Some(Mutex::new(controller));
        self
    }

    /// The refine budget each batch used so far (empty when the fixed
    /// policy is active).
    pub fn topk_trajectory(&self) -> Vec<usize> {
        self.adaptive
            .as_ref()
            .map(|c| c.lock().expect("controller poisoned").trajectory().to_vec())
            .unwrap_or_default()
    }

    /// Snapshot of the per-tier evaluation counters.
    pub fn stats(&self) -> StagedStats {
        StagedStats {
            screened: self.screened.load(Ordering::Relaxed),
            refined: self.refined.load(Ordering::Relaxed),
        }
    }
}

impl<Q, P, S, R, F> BatchEvaluator for FidelityStaged<S, R, F>
where
    Q: Clone,
    S: BatchEvaluator<Request = Q, Response = P>,
    R: BatchEvaluator<Request = Q, Response = P>,
    F: Fn(&P) -> Option<f64>,
{
    type Request = Q;
    type Response = P;

    fn evaluate_batch(&self, batch: &[Q]) -> Vec<P> {
        let mut responses = self.screen.evaluate_batch(batch);
        self.screened
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        let top_k = match &self.adaptive {
            Some(c) => c.lock().expect("controller poisoned").begin_batch(),
            None => self.top_k,
        };
        if top_k == 0 {
            return responses;
        }
        let survivors = rank_top_k(&responses, top_k, &self.score);
        if survivors.is_empty() {
            return responses;
        }
        let requests: Vec<Q> = survivors.iter().map(|&i| batch[i].clone()).collect();
        let refined = self.refine.evaluate_batch(&requests);
        self.refined
            .fetch_add(requests.len() as u64, Ordering::Relaxed);
        let screen_scores: Vec<f64> = survivors
            .iter()
            .filter_map(|&i| (self.score)(&responses[i]))
            .collect();
        for (&i, r) in survivors.iter().zip(refined) {
            responses[i] = r;
        }
        if let Some(c) = &self.adaptive {
            // Survivor scores at both tiers, aligned by survivor; an
            // unrankable response at either tier voids the comparison
            // (lengths no longer align), leaving the budget unchanged.
            let refine_scores: Vec<f64> = survivors
                .iter()
                .filter_map(|&i| (self.score)(&responses[i]))
                .collect();
            if screen_scores.len() == survivors.len() && refine_scores.len() == survivors.len() {
                c.lock()
                    .expect("controller poisoned")
                    .observe(&screen_scores, &refine_scores);
            }
        }
        responses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use runtime::batch::FnEvaluator;

    #[test]
    fn rank_top_k_is_deterministic_and_tie_stable() {
        let items = [3.0, 1.0, 2.0, 1.0, f64::NAN];
        let top = rank_top_k(&items, 3, |&x| Some(x));
        // The two 1.0s tie: the earlier index wins first, and 2.0 fills
        // the third slot; NaN never survives.
        assert_eq!(top, vec![1, 2, 3]);
        assert_eq!(rank_top_k(&items, 0, |&x| Some(x)), Vec::<usize>::new());
        assert_eq!(rank_top_k(&items, 10, |&x| Some(x)).len(), 4);
    }

    #[test]
    fn rank_top_k_skips_unrankable_items() {
        let items = [Some(5.0), None, Some(1.0)];
        assert_eq!(rank_top_k(&items, 2, |x| *x), vec![0, 2]);
    }

    #[test]
    fn staged_refines_only_survivors() {
        let staged = FidelityStaged::new(
            FnEvaluator::new(|&x: &u64| x as f64),
            FnEvaluator::new(|&x: &u64| x as f64 + 1000.0),
            2,
            |&p: &f64| Some(p),
        );
        let out = staged.evaluate_batch(&[5, 1, 9, 3]);
        // The two smallest screened values (1 and 3) get refined.
        assert_eq!(out, vec![5.0, 1001.0, 9.0, 1003.0]);
        let s = staged.stats();
        assert_eq!(s.screened, 4);
        assert_eq!(s.refined, 2);
    }

    #[test]
    fn top_k_zero_is_the_screen_engine() {
        let staged = FidelityStaged::new(
            FnEvaluator::new(|&x: &u64| x * 2),
            FnEvaluator::new(|_: &u64| unreachable!("refine must not run")),
            0,
            |&p: &u64| Some(p as f64),
        );
        assert_eq!(staged.evaluate_batch(&[1, 2, 3]), vec![2, 4, 6]);
        assert_eq!(staged.stats().refined, 0);
    }

    #[test]
    fn rank_disagreement_measures_discordant_pairs() {
        assert_eq!(rank_disagreement(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(rank_disagreement(&[1.0, 2.0, 3.0], &[3.0, 2.0, 1.0]), 1.0);
        // One discordant pair of three: (b, c) swap.
        let d = rank_disagreement(&[1.0, 2.0, 3.0], &[1.0, 3.0, 2.0]);
        assert!((d - 1.0 / 3.0).abs() < 1e-12);
        // Ties never count as disagreement.
        assert_eq!(rank_disagreement(&[1.0, 1.0], &[2.0, 5.0]), 0.0);
        assert_eq!(rank_disagreement(&[1.0], &[9.0]), 0.0);
        assert_eq!(rank_disagreement(&[], &[]), 0.0);
    }

    /// Eight fully-reversed score pairs: replaces the whole evidence
    /// window with maximal disagreement.
    fn reversed_window() -> ([f64; 8], [f64; 8]) {
        (
            [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0],
            [8.0, 7.0, 6.0, 5.0, 4.0, 3.0, 2.0, 1.0],
        )
    }

    #[test]
    fn adaptive_topk_shrinks_on_agreement_and_grows_on_disagreement() {
        let mut c = AdaptiveTopK::new(4);
        assert_eq!(c.current(), 4);
        assert_eq!(c.begin_batch(), 4);
        // Tiers agree: budget shrinks.
        c.observe(&[1.0, 2.0, 3.0, 4.0], &[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(c.current(), 3);
        assert_eq!(c.begin_batch(), 3);
        // Tiers fully disagree (the window flips wholesale): budget grows
        // back.
        let (s, r) = reversed_window();
        c.observe(&s, &r);
        assert_eq!(c.current(), 4);
        assert_eq!(c.trajectory(), &[4, 3]);
    }

    #[test]
    fn adaptive_topk_learns_from_singleton_batches_and_audits_at_zero() {
        // MOBO acquisitions refine one survivor per batch; the evidence
        // window accumulates those singletons, walks the budget to zero,
        // and then only the audit cadence (every 4th batch) refines.
        let mut c = AdaptiveTopK::new(2);
        let mut used = Vec::new();
        for i in 0..10 {
            let k = c.begin_batch();
            used.push(k);
            if k > 0 {
                let s = i as f64;
                c.observe(&[s], &[s * 10.0 + 5.0]); // rank-consistent tiers
            }
        }
        assert_eq!(used, vec![2, 2, 2, 1, 1, 0, 0, 0, 1, 0]);
        assert_eq!(c.current(), 0);
        assert_eq!(c.trajectory(), used.as_slice());
    }

    #[test]
    fn adaptive_topk_respects_bounds() {
        let mut c = AdaptiveTopK::new(2).with_bounds(2, 3);
        for i in 0..6 {
            // Agreement: try to shrink below min_k.
            c.observe(&[i as f64], &[i as f64 + 100.0]);
        }
        assert_eq!(c.current(), 2, "never below min_k");
        let (s, r) = reversed_window();
        for _ in 0..5 {
            c.observe(&s, &r); // disagreement: try to grow past max_k
        }
        assert_eq!(c.current(), 3, "never above max_k");
    }

    #[test]
    fn adaptive_staged_shrinks_refinement_when_tiers_agree() {
        // Screen and refine rank identically (refine = screen + 1000), so
        // the controller walks the budget down to zero and the fourth
        // batch skips refinement entirely (no audit due yet).
        let staged = FidelityStaged::new(
            FnEvaluator::new(|&x: &u64| x as f64),
            FnEvaluator::new(|&x: &u64| x as f64 + 1000.0),
            0, // ignored: adaptive controller installed below
            |&p: &f64| Some(p % 1000.0),
        )
        .with_adaptive(AdaptiveTopK::new(3));
        for _ in 0..4 {
            let _ = staged.evaluate_batch(&[5, 1, 9, 3, 7]);
        }
        assert_eq!(staged.topk_trajectory(), vec![3, 2, 1, 0]);
        assert_eq!(staged.stats().refined, 3 + 2 + 1);
    }

    #[test]
    fn all_unrankable_batches_skip_refinement() {
        let staged = FidelityStaged::new(
            FnEvaluator::new(|&x: &u64| x),
            FnEvaluator::new(|_: &u64| unreachable!("refine must not run")),
            3,
            |_: &u64| None,
        );
        assert_eq!(staged.evaluate_batch(&[1, 2]), vec![1, 2]);
    }
}
