//! NSGA-II \[22\] — the genetic-algorithm baseline of §VII-C.
//!
//! Integer-coded chromosomes over the discrete space, binary tournament
//! selection on (rank, crowding distance), uniform crossover, and
//! random-reset mutation, with the standard elitist environmental selection.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::pareto::{crowding_distance, non_dominated_sort};
use crate::problem::{Evaluation, OptimizerResult, Point, Problem};
use crate::progress::{BatchUpdate, Progress};
use crate::Optimizer;

/// NSGA-II configuration.
#[derive(Debug, Clone)]
pub struct Nsga2 {
    seed: u64,
    /// Population size (the paper uses 5 for its 40-trial runs).
    pub population: usize,
    /// Per-individual crossover probability.
    pub crossover_prob: f64,
    /// Per-gene mutation probability (defaults to 1/d at run time if 0).
    pub mutation_prob: f64,
}

impl Nsga2 {
    /// Creates NSGA-II with the paper's population size of 5.
    pub fn new(seed: u64) -> Self {
        Nsga2 {
            seed,
            population: 5,
            crossover_prob: 0.9,
            mutation_prob: 0.0,
        }
    }

    /// Sets the population size.
    pub fn with_population(mut self, population: usize) -> Self {
        self.population = population.max(2);
        self
    }
}

struct Individual {
    point: Point,
    objectives: Vec<f64>,
}

impl Optimizer for Nsga2 {
    fn name(&self) -> &'static str {
        "nsga2"
    }

    fn run_with_progress(
        &mut self,
        problem: &mut dyn Problem,
        max_evals: usize,
        progress: &dyn Progress,
    ) -> OptimizerResult {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut result = OptimizerResult::new(self.name());
        // Generations are reported from this (driver) thread in a fixed
        // order, so observers see the identical stream at any thread
        // count.
        let mut batch_no = 0usize;
        let mut report = |evaluated: usize, feasible: usize| -> bool {
            batch_no += 1;
            progress.on_batch(&BatchUpdate {
                optimizer: "nsga2",
                phase: "generation",
                batch: batch_no,
                evaluated,
                feasible,
            })
        };
        let d = problem.space().len();
        let mut_prob = if self.mutation_prob > 0.0 {
            self.mutation_prob
        } else {
            1.0 / d.max(1) as f64
        };

        let mut budget = max_evals;
        // Candidates within one generation are independent, so they are
        // evaluated through the problem's batch seam (parallel for
        // runtime-backed problems). Batch sizes derive from the population
        // and remaining budget only — never the thread count — keeping
        // fixed-seed runs identical at any parallelism.
        let evaluate_generation = |children: Vec<Point>,
                                   problem: &mut dyn Problem,
                                   result: &mut OptimizerResult,
                                   budget: &mut usize|
         -> Vec<Individual> {
            debug_assert!(children.len() <= *budget);
            *budget -= children.len();
            let responses = problem.evaluate_batch(&children);
            let mut fresh = Vec::with_capacity(children.len());
            for (point, objs) in children.into_iter().zip(responses) {
                match objs {
                    Some(objs) => {
                        result.evaluations.push(Evaluation {
                            point: point.clone(),
                            objectives: objs.clone(),
                        });
                        fresh.push(Individual {
                            point,
                            objectives: objs,
                        });
                    }
                    None => result.infeasible += 1,
                }
            }
            fresh
        };

        // Initial population.
        let mut pop: Vec<Individual> = Vec::new();
        let mut guard = 0;
        while pop.len() < self.population && budget > 0 && guard < max_evals * 10 {
            let want = (self.population - pop.len()).min(budget);
            let mut batch: Vec<Point> = Vec::with_capacity(want);
            while batch.len() < want && guard < max_evals * 10 {
                guard += 1;
                batch.push(problem.space().random_point(&mut rng));
            }
            if batch.is_empty() {
                break;
            }
            let submitted = batch.len();
            let fresh = evaluate_generation(batch, problem, &mut result, &mut budget);
            let feasible = fresh.len();
            pop.extend(fresh);
            if !report(submitted, feasible) {
                return result;
            }
        }
        if pop.is_empty() {
            return result;
        }

        while budget > 0 {
            // Rank and crowd the current population.
            let objs: Vec<Vec<f64>> = pop.iter().map(|i| i.objectives.clone()).collect();
            let fronts = non_dominated_sort(&objs);
            let mut rank = vec![0usize; pop.len()];
            let mut crowd = vec![0.0f64; pop.len()];
            for (fi, front) in fronts.iter().enumerate() {
                let cd = crowding_distance(&objs, front);
                for (k, &i) in front.iter().enumerate() {
                    rank[i] = fi;
                    crowd[i] = cd[k];
                }
            }
            let tournament = |rng: &mut SmallRng| -> usize {
                let a = rng.gen_range(0..pop.len());
                let b = rng.gen_range(0..pop.len());
                if rank[a] < rank[b] || (rank[a] == rank[b] && crowd[a] > crowd[b]) {
                    a
                } else {
                    b
                }
            };

            // Generate offspring: breed a whole brood serially (selection,
            // crossover, and mutation advance the RNG in a fixed order),
            // then evaluate it as one batch.
            let mut offspring: Vec<Individual> = Vec::new();
            let mut stall = 0;
            while offspring.len() < self.population && budget > 0 && stall < 200 {
                let want = (self.population - offspring.len()).min(budget);
                let mut brood: Vec<Point> = Vec::with_capacity(want);
                for _ in 0..want {
                    let pa = &pop[tournament(&mut rng)].point;
                    let pb = &pop[tournament(&mut rng)].point;
                    let mut child: Point = if rng.gen_bool(self.crossover_prob) {
                        pa.iter()
                            .zip(pb.iter())
                            .map(|(&a, &b)| if rng.gen_bool(0.5) { a } else { b })
                            .collect()
                    } else {
                        pa.clone()
                    };
                    for (g, c) in child.iter_mut().enumerate() {
                        if rng.gen_bool(mut_prob) {
                            *c = rng.gen_range(0..problem.space().dim_sizes[g]);
                        }
                    }
                    brood.push(child);
                }
                let fresh = evaluate_generation(brood, problem, &mut result, &mut budget);
                stall += want - fresh.len();
                let feasible = fresh.len();
                offspring.extend(fresh);
                if !report(want, feasible) {
                    return result;
                }
            }

            // Environmental selection over parents + offspring.
            pop.extend(offspring);
            let objs: Vec<Vec<f64>> = pop.iter().map(|i| i.objectives.clone()).collect();
            let fronts = non_dominated_sort(&objs);
            let mut next: Vec<usize> = Vec::new();
            for front in &fronts {
                if next.len() + front.len() <= self.population {
                    next.extend(front.iter().copied());
                } else {
                    let cd = crowding_distance(&objs, front);
                    let mut order: Vec<usize> = (0..front.len()).collect();
                    order.sort_by(|&a, &b| {
                        cd[b]
                            .partial_cmp(&cd[a])
                            .expect("crowding distances comparable")
                    });
                    for &k in &order {
                        if next.len() == self.population {
                            break;
                        }
                        next.push(front[k]);
                    }
                }
                if next.len() >= self.population {
                    break;
                }
            }
            next.sort_unstable();
            next.dedup();
            let mut selected = Vec::with_capacity(next.len());
            // Drain in index order (descending to keep indices valid).
            for &i in next.iter().rev() {
                selected.push(pop.swap_remove(i));
            }
            pop = selected;
            if pop.is_empty() {
                break;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SearchSpace;
    use crate::random::RandomSearch;

    /// ZDT1-like bi-objective over a 4-D space: the front needs all the
    /// `g`-coordinates driven to zero, which random sampling rarely does.
    struct ZdtLike {
        space: SearchSpace,
    }

    impl Problem for ZdtLike {
        fn space(&self) -> &SearchSpace {
            &self.space
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&mut self, p: &Point) -> Option<Vec<f64>> {
            let x = p[0] as f64 / 20.0;
            let g = 1.0 + 9.0 * (p[1] as f64 + p[2] as f64 + p[3] as f64) / (3.0 * 20.0);
            Some(vec![x, g * (1.0 - (x / g).sqrt())])
        }
    }

    fn zdt_space() -> SearchSpace {
        SearchSpace::new(vec![21, 21, 21, 21])
    }

    #[test]
    fn respects_budget() {
        let mut prob = ZdtLike { space: zdt_space() };
        let r = Nsga2::new(5).run(&mut prob, 40);
        assert!(r.evaluations.len() + r.infeasible <= 40);
        assert!(r.evaluations.len() >= 30);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut p1 = ZdtLike { space: zdt_space() };
        let mut p2 = ZdtLike { space: zdt_space() };
        let a = Nsga2::new(7).run(&mut p1, 30);
        let b = Nsga2::new(7).run(&mut p2, 30);
        assert_eq!(a, b);
    }

    #[test]
    fn beats_random_on_structured_problem() {
        // On ZDT-like landscapes a GA should dominate random search's final
        // hypervolume given the same budget (averaged over seeds).
        let reference = [2.0, 12.0];
        let mut nsga_wins = 0;
        for seed in 0..5 {
            let mut p1 = ZdtLike { space: zdt_space() };
            let mut p2 = ZdtLike { space: zdt_space() };
            let n = Nsga2::new(seed).with_population(8).run(&mut p1, 60);
            let r = RandomSearch::new(seed).run(&mut p2, 60);
            let hn = *n.hypervolume_history(&reference).last().unwrap();
            let hr = *r.hypervolume_history(&reference).last().unwrap();
            if hn >= hr {
                nsga_wins += 1;
            }
        }
        assert!(nsga_wins >= 3, "NSGA-II won only {nsga_wins}/5 seeds");
    }

    #[test]
    fn handles_infeasible_regions() {
        struct Holey(SearchSpace);
        impl Problem for Holey {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn evaluate(&mut self, p: &Point) -> Option<Vec<f64>> {
                (!(p[0] + p[1]).is_multiple_of(3)).then(|| vec![p[0] as f64, p[1] as f64])
            }
        }
        let mut prob = Holey(SearchSpace::new(vec![10, 10]));
        let r = Nsga2::new(3).run(&mut prob, 30);
        assert!(!r.evaluations.is_empty());
        assert!(r.infeasible > 0);
    }

    #[test]
    fn population_floor_is_two() {
        assert_eq!(Nsga2::new(0).with_population(1).population, 2);
    }
}
