//! Pareto dominance and non-dominated set maintenance (minimization).

/// True when `a` Pareto-dominates `b`: no worse in every objective and
/// strictly better in at least one.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    let mut strictly = false;
    for (x, y) in a.iter().zip(b.iter()) {
        if x > y {
            return false;
        }
        if x < y {
            strictly = true;
        }
    }
    strictly
}

/// Indices of the non-dominated vectors among `objs` (first occurrence wins
/// among exact duplicates).
pub fn pareto_indices(objs: &[&[f64]]) -> Vec<usize> {
    let mut out = Vec::new();
    'outer: for (i, a) in objs.iter().enumerate() {
        for (j, b) in objs.iter().enumerate() {
            if i == j {
                continue;
            }
            if dominates(b, a) || (a == b && j < i) {
                continue 'outer;
            }
        }
        out.push(i);
    }
    out
}

/// Fast non-dominated sorting (NSGA-II): partitions indices into fronts,
/// front 0 being the Pareto front.
pub fn non_dominated_sort(objs: &[Vec<f64>]) -> Vec<Vec<usize>> {
    let n = objs.len();
    let mut dominated_by: Vec<Vec<usize>> = vec![Vec::new(); n]; // i dominates these
    let mut domination_count = vec![0usize; n];
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            if dominates(&objs[i], &objs[j]) {
                dominated_by[i].push(j);
            } else if dominates(&objs[j], &objs[i]) {
                domination_count[i] += 1;
            }
        }
    }
    let mut fronts: Vec<Vec<usize>> = Vec::new();
    let mut current: Vec<usize> = (0..n).filter(|&i| domination_count[i] == 0).collect();
    while !current.is_empty() {
        let mut next = Vec::new();
        for &i in &current {
            for &j in &dominated_by[i] {
                domination_count[j] -= 1;
                if domination_count[j] == 0 {
                    next.push(j);
                }
            }
        }
        fronts.push(std::mem::replace(&mut current, next));
    }
    fronts
}

/// Crowding distance of each member of one front (NSGA-II diversity
/// measure). Boundary points get `f64::INFINITY`.
pub fn crowding_distance(objs: &[Vec<f64>], front: &[usize]) -> Vec<f64> {
    let n = front.len();
    let mut dist = vec![0.0f64; n];
    if n == 0 {
        return dist;
    }
    if n <= 2 {
        return vec![f64::INFINITY; n];
    }
    let m = objs[front[0]].len();
    // `obj` is the *inner* subscript of a permuted double index, so a
    // range loop is the clear form.
    #[allow(clippy::needless_range_loop)]
    for obj in 0..m {
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            objs[front[a]][obj]
                .partial_cmp(&objs[front[b]][obj])
                .expect("no NaN objectives")
        });
        let lo = objs[front[order[0]]][obj];
        let hi = objs[front[order[n - 1]]][obj];
        dist[order[0]] = f64::INFINITY;
        dist[order[n - 1]] = f64::INFINITY;
        let span = (hi - lo).max(1e-12);
        for k in 1..n - 1 {
            let prev = objs[front[order[k - 1]]][obj];
            let next = objs[front[order[k + 1]]][obj];
            dist[order[k]] += (next - prev) / span;
        }
    }
    dist
}

/// An incrementally maintained archive of non-dominated (point, objectives)
/// pairs.
#[derive(Debug, Clone, Default)]
pub struct ParetoArchive<P> {
    entries: Vec<(P, Vec<f64>)>,
}

impl<P: Clone + PartialEq> ParetoArchive<P> {
    /// Creates an empty archive.
    pub fn new() -> Self {
        ParetoArchive {
            entries: Vec::new(),
        }
    }

    /// Inserts a candidate; returns `true` if it joined the archive (i.e.
    /// it was not dominated). Dominated incumbents are evicted.
    pub fn insert(&mut self, point: P, objectives: Vec<f64>) -> bool {
        for (_, o) in &self.entries {
            if dominates(o, &objectives) || *o == objectives {
                return false;
            }
        }
        self.entries.retain(|(_, o)| !dominates(&objectives, o));
        self.entries.push((point, objectives));
        true
    }

    /// The archived entries.
    pub fn entries(&self) -> &[(P, Vec<f64>)] {
        &self.entries
    }

    /// The archived objective vectors.
    pub fn objectives(&self) -> Vec<Vec<f64>> {
        self.entries.iter().map(|(_, o)| o.clone()).collect()
    }

    /// Number of archived entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_basics() {
        assert!(dominates(&[1.0, 1.0], &[2.0, 2.0]));
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]));
        assert!(!dominates(&[1.0, 3.0], &[2.0, 2.0]));
    }

    #[test]
    fn pareto_indices_filters_dominated() {
        let v: Vec<Vec<f64>> = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0],
            vec![2.0, 2.0],
        ];
        let refs: Vec<&[f64]> = v.iter().map(|x| x.as_slice()).collect();
        // [3,3] dominated by [2,2]; duplicate [2,2] kept once.
        assert_eq!(pareto_indices(&refs), vec![0, 1, 2]);
    }

    #[test]
    fn nds_orders_fronts() {
        let objs = vec![
            vec![1.0, 1.0], // front 0
            vec![2.0, 2.0], // front 1
            vec![3.0, 3.0], // front 2
            vec![0.5, 3.0], // front 0
        ];
        let fronts = non_dominated_sort(&objs);
        assert_eq!(fronts.len(), 3);
        assert_eq!(fronts[0], vec![0, 3]);
        assert_eq!(fronts[1], vec![1]);
        assert_eq!(fronts[2], vec![2]);
    }

    #[test]
    fn crowding_boundary_is_infinite() {
        let objs = vec![
            vec![1.0, 4.0],
            vec![2.0, 3.0],
            vec![3.0, 2.0],
            vec![4.0, 1.0],
        ];
        let front = vec![0, 1, 2, 3];
        let d = crowding_distance(&objs, &front);
        assert!(d[0].is_infinite());
        assert!(d[3].is_infinite());
        assert!(d[1].is_finite() && d[1] > 0.0);
    }

    #[test]
    fn crowding_small_fronts_are_infinite() {
        let objs = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let d = crowding_distance(&objs, &[0, 1]);
        assert!(d.iter().all(|x| x.is_infinite()));
        assert!(crowding_distance(&objs, &[]).is_empty());
    }

    #[test]
    fn archive_inserts_and_evicts() {
        let mut a: ParetoArchive<usize> = ParetoArchive::new();
        assert!(a.insert(0, vec![2.0, 2.0]));
        assert!(a.insert(1, vec![1.0, 3.0]));
        assert!(!a.insert(2, vec![3.0, 3.0])); // dominated
        assert!(!a.insert(3, vec![2.0, 2.0])); // duplicate
        assert_eq!(a.len(), 2);
        assert!(a.insert(4, vec![0.5, 0.5])); // dominates everything
        assert_eq!(a.len(), 1);
        assert!(!a.is_empty());
        assert_eq!(a.objectives(), vec![vec![0.5, 0.5]]);
    }
}
