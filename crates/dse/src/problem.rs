//! Problem abstraction shared by all DSE algorithms.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::pareto;

/// A point in a discrete search space: one choice index per dimension.
pub type Point = Vec<usize>;

/// A discrete search space described by its per-dimension cardinalities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchSpace {
    /// Number of choices in each dimension.
    pub dim_sizes: Vec<usize>,
}

impl SearchSpace {
    /// Creates a space.
    ///
    /// # Panics
    /// Panics if any dimension has zero choices.
    pub fn new(dim_sizes: Vec<usize>) -> Self {
        assert!(
            dim_sizes.iter().all(|&s| s > 0),
            "dimensions must be non-empty"
        );
        SearchSpace { dim_sizes }
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dim_sizes.len()
    }

    /// True when the space has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dim_sizes.is_empty()
    }

    /// Total point count.
    pub fn size(&self) -> u64 {
        self.dim_sizes.iter().map(|&s| s as u64).product()
    }

    /// Uniformly random point.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        self.dim_sizes
            .iter()
            .map(|&s| rng.gen_range(0..s))
            .collect()
    }

    /// Normalizes a point into `[0, 1]^d`.
    pub fn normalize(&self, p: &Point) -> Vec<f64> {
        p.iter()
            .zip(self.dim_sizes.iter())
            .map(|(&c, &s)| {
                if s <= 1 {
                    0.0
                } else {
                    c as f64 / (s - 1) as f64
                }
            })
            .collect()
    }

    /// True when `p` has the right shape and in-range coordinates.
    pub fn contains(&self, p: &Point) -> bool {
        p.len() == self.dim_sizes.len() && p.iter().zip(&self.dim_sizes).all(|(&c, &s)| c < s)
    }

    /// Single-step neighbors of a point.
    pub fn neighbors(&self, p: &Point) -> Vec<Point> {
        let mut out = Vec::new();
        for (i, &c) in p.iter().enumerate() {
            if c > 0 {
                let mut q = p.clone();
                q[i] -= 1;
                out.push(q);
            }
            if c + 1 < self.dim_sizes[i] {
                let mut q = p.clone();
                q[i] += 1;
                out.push(q);
            }
        }
        out
    }
}

/// A black-box multi-objective minimization problem over a discrete space.
///
/// Evaluations may be expensive ("it takes minutes to hours to model,
/// implement, and profile accelerators per trial"); optimizers are budgeted
/// by evaluation count.
pub trait Problem {
    /// The search space.
    fn space(&self) -> &SearchSpace;

    /// Number of objectives (all minimized).
    fn num_objectives(&self) -> usize;

    /// Evaluates a point, returning `None` when the point is infeasible
    /// (e.g. the generator rejects the configuration).
    fn evaluate(&mut self, point: &Point) -> Option<Vec<f64>>;

    /// Evaluates a batch of points, returning objective vectors **in
    /// submission order** — the [`runtime::BatchEvaluator`] seam as seen
    /// by optimizers. The default runs serially; problems backed by a
    /// parallel evaluation runtime (e.g. the co-design `HwProblem`)
    /// override this to fan the batch out to worker threads. Overrides
    /// must return exactly what repeated [`Problem::evaluate`] calls
    /// would, so thread count never changes optimizer trajectories.
    fn evaluate_batch(&mut self, points: &[Point]) -> Vec<Option<Vec<f64>>> {
        points.iter().map(|p| self.evaluate(p)).collect()
    }
}

/// Adapts any order-preserving [`runtime::BatchEvaluator`] over points
/// into a [`Problem`], so every optimizer in this crate can drive an
/// evaluation engine (worker pools, caches, future remote backends)
/// directly — the inverse bridge to [`Problem::evaluate_batch`].
pub struct EvaluatorProblem<E> {
    space: SearchSpace,
    objectives: usize,
    /// The wrapped engine.
    pub engine: E,
}

impl<E> EvaluatorProblem<E>
where
    E: runtime::BatchEvaluator<Request = Point, Response = Option<Vec<f64>>>,
{
    /// Wraps an engine evaluating points of `space` into `objectives`
    /// minimization objectives.
    pub fn new(space: SearchSpace, objectives: usize, engine: E) -> Self {
        EvaluatorProblem {
            space,
            objectives,
            engine,
        }
    }
}

impl<E> Problem for EvaluatorProblem<E>
where
    E: runtime::BatchEvaluator<Request = Point, Response = Option<Vec<f64>>>,
{
    fn space(&self) -> &SearchSpace {
        &self.space
    }

    fn num_objectives(&self) -> usize {
        self.objectives
    }

    fn evaluate(&mut self, point: &Point) -> Option<Vec<f64>> {
        self.engine.evaluate_one(point.clone())
    }

    fn evaluate_batch(&mut self, points: &[Point]) -> Vec<Option<Vec<f64>>> {
        self.engine.evaluate_batch(points)
    }
}

/// One recorded evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// The evaluated point.
    pub point: Point,
    /// Its objective vector (minimization).
    pub objectives: Vec<f64>,
}

/// The full history of an optimizer run, in evaluation order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct OptimizerResult {
    /// Optimizer name.
    pub optimizer: String,
    /// Every feasible evaluation, in order.
    pub evaluations: Vec<Evaluation>,
    /// Number of infeasible probes (not counted in `evaluations`).
    pub infeasible: usize,
}

impl OptimizerResult {
    /// Creates an empty result for an optimizer.
    pub fn new(optimizer: impl Into<String>) -> Self {
        OptimizerResult {
            optimizer: optimizer.into(),
            evaluations: Vec::new(),
            infeasible: 0,
        }
    }

    /// Indices of the non-dominated evaluations.
    pub fn pareto_indices(&self) -> Vec<usize> {
        let objs: Vec<&[f64]> = self
            .evaluations
            .iter()
            .map(|e| e.objectives.as_slice())
            .collect();
        pareto::pareto_indices(&objs)
    }

    /// The non-dominated evaluations.
    pub fn pareto_front(&self) -> Vec<&Evaluation> {
        self.pareto_indices()
            .into_iter()
            .map(|i| &self.evaluations[i])
            .collect()
    }

    /// Hypervolume of the front formed by the first `n` evaluations, for
    /// each `n` in `1..=len` — the convergence curve of Fig. 10.
    pub fn hypervolume_history(&self, reference: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.evaluations.len());
        let mut front: Vec<Vec<f64>> = Vec::new();
        for e in &self.evaluations {
            front.push(e.objectives.clone());
            let refs: Vec<&[f64]> = front.iter().map(|v| v.as_slice()).collect();
            let idx = pareto::pareto_indices(&refs);
            let nd: Vec<Vec<f64>> = idx.into_iter().map(|i| front[i].clone()).collect();
            out.push(crate::hypervolume::hypervolume(&nd, reference));
        }
        out
    }

    /// The best (minimum) value of a single objective across the history.
    pub fn best_objective(&self, idx: usize) -> Option<f64> {
        self.evaluations
            .iter()
            .map(|e| e.objectives[idx])
            .fold(None, |acc, v| match acc {
                None => Some(v),
                Some(a) => Some(a.min(v)),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn space_basics() {
        let s = SearchSpace::new(vec![3, 4, 5]);
        assert_eq!(s.size(), 60);
        assert_eq!(s.len(), 3);
        assert!(s.contains(&vec![2, 3, 4]));
        assert!(!s.contains(&vec![3, 0, 0]));
        assert!(!s.contains(&vec![0, 0]));
    }

    #[test]
    fn normalize_unit_cube() {
        let s = SearchSpace::new(vec![2, 1]);
        assert_eq!(s.normalize(&vec![1, 0]), vec![1.0, 0.0]);
    }

    #[test]
    fn random_points_in_space() {
        let s = SearchSpace::new(vec![7, 9]);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..50 {
            assert!(s.contains(&s.random_point(&mut rng)));
        }
    }

    #[test]
    fn neighbors_edge_cases() {
        let s = SearchSpace::new(vec![3]);
        assert_eq!(s.neighbors(&vec![0]), vec![vec![1]]);
        assert_eq!(s.neighbors(&vec![2]), vec![vec![1]]);
        assert_eq!(s.neighbors(&vec![1]).len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_dim_panics() {
        let _ = SearchSpace::new(vec![3, 0]);
    }

    #[test]
    fn result_pareto_and_best() {
        let mut r = OptimizerResult::new("test");
        r.evaluations.push(Evaluation {
            point: vec![0],
            objectives: vec![1.0, 2.0],
        });
        r.evaluations.push(Evaluation {
            point: vec![1],
            objectives: vec![2.0, 1.0],
        });
        r.evaluations.push(Evaluation {
            point: vec![2],
            objectives: vec![3.0, 3.0],
        });
        assert_eq!(r.pareto_indices(), vec![0, 1]);
        assert_eq!(r.best_objective(0), Some(1.0));
        assert_eq!(r.best_objective(1), Some(1.0));
        assert_eq!(r.pareto_front().len(), 2);
    }

    #[test]
    fn hypervolume_history_is_monotone() {
        let mut r = OptimizerResult::new("test");
        r.evaluations.push(Evaluation {
            point: vec![0],
            objectives: vec![3.0, 3.0],
        });
        r.evaluations.push(Evaluation {
            point: vec![1],
            objectives: vec![1.0, 4.0],
        });
        r.evaluations.push(Evaluation {
            point: vec![2],
            objectives: vec![2.0, 2.0],
        });
        let hv = r.hypervolume_history(&[5.0, 5.0]);
        assert_eq!(hv.len(), 3);
        assert!(hv.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }
}
