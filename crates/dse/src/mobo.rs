//! Multi-objective Bayesian optimization — Algorithm 1 of the paper.
//!
//! One Gaussian process per objective (fit on log-scaled metrics — latency,
//! power, and area all span orders of magnitude), and a hypervolume-based
//! probability-of-improvement acquisition \[5\]: candidates are scored by the
//! Monte-Carlo expected hypervolume improvement of their posterior over the
//! current Pareto front.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

use crate::gp::{GaussianProcess, PredictScratch};
use crate::hypervolume::hypervolume;
use crate::pareto::pareto_indices;
use crate::problem::{Evaluation, OptimizerResult, Point, Problem};
use crate::progress::{BatchUpdate, Progress};
use crate::Optimizer;

/// MOBO configuration (the paper's defaults: 5–10 prior samples, then
/// iterate to the trial budget).
#[derive(Debug, Clone)]
pub struct Mobo {
    seed: u64,
    /// Number of random evaluations used to build the prior dataset `D`.
    pub prior_samples: usize,
    /// Random candidates scored by the acquisition function per iteration.
    pub candidate_pool: usize,
    /// Monte-Carlo samples per candidate for the expected hypervolume
    /// improvement.
    pub mc_samples: usize,
    /// Every `explore_every`-th acquisition evaluates a fresh random point
    /// instead of the EHVI argmax. The GP is confidently mediocre far from
    /// its training data, so pure EHVI degenerates into local refinement
    /// around the prior's incumbents; interleaved exploration keeps
    /// feeding the surrogate distant regions (`0` disables).
    pub explore_every: usize,
}

impl Mobo {
    /// Creates MOBO with the paper's §VII-C configuration (10 prior
    /// samples).
    pub fn new(seed: u64) -> Self {
        Mobo {
            seed,
            prior_samples: 10,
            candidate_pool: 192,
            mc_samples: 24,
            explore_every: 3,
        }
    }

    /// Sets the prior sample count (the paper uses 5 in the 20-trial study
    /// and 10 in the 40-trial study).
    pub fn with_prior_samples(mut self, n: usize) -> Self {
        self.prior_samples = n.max(2);
        self
    }
}

/// Standard-normal draw via Box–Muller (keeps us off `rand_distr`).
fn normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

fn log_scale(objs: &[f64]) -> Vec<f64> {
    objs.iter().map(|&o| o.max(1e-12).ln()).collect()
}

impl Optimizer for Mobo {
    fn name(&self) -> &'static str {
        "mobo"
    }

    fn run_with_progress(
        &mut self,
        problem: &mut dyn Problem,
        max_evals: usize,
        progress: &dyn Progress,
    ) -> OptimizerResult {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut result = OptimizerResult::new(self.name());
        let mut seen: BTreeSet<Point> = BTreeSet::new();
        let m = problem.num_objectives();

        // Batches are reported from this (driver) thread in a fixed order
        // — a pure function of the run parameters — so observers see the
        // identical stream at any thread count.
        let mut batch_no = 0usize;
        let mut report = |phase: &str, evaluated: usize, feasible: usize| -> bool {
            batch_no += 1;
            progress.on_batch(&BatchUpdate {
                optimizer: "mobo",
                phase,
                batch: batch_no,
                evaluated,
                feasible,
            })
        };

        let mut trials = 0usize;
        let try_evaluate = |p: &Point,
                            problem: &mut dyn Problem,
                            result: &mut OptimizerResult,
                            trials: &mut usize|
         -> bool {
            *trials += 1;
            match problem.evaluate(p) {
                Some(objs) => {
                    result.evaluations.push(Evaluation {
                        point: p.clone(),
                        objectives: objs,
                    });
                    true
                }
                None => {
                    result.infeasible += 1;
                    false
                }
            }
        };

        // Line 1: init the prior D with random samples. The prior points
        // are independent, so they are drawn as one burst and handed to
        // the problem as a batch — the runtime seam that lets co-design
        // problems evaluate them on parallel workers. Burst sizes depend
        // only on the budget, never on thread count, so fixed-seed runs
        // are identical at any parallelism.
        let mut guard = 0;
        while result.evaluations.len() < self.prior_samples
            && trials < max_evals
            && guard < max_evals * 50
        {
            let want = (self.prior_samples - result.evaluations.len()).min(max_evals - trials);
            let mut batch: Vec<Point> = Vec::with_capacity(want);
            while batch.len() < want && guard < max_evals * 50 {
                guard += 1;
                let p = problem.space().random_point(&mut rng);
                if seen.insert(p.clone()) {
                    batch.push(p);
                }
            }
            if batch.is_empty() {
                break;
            }
            trials += batch.len();
            let mut feasible = 0usize;
            for (p, objs) in batch.iter().zip(problem.evaluate_batch(&batch)) {
                match objs {
                    Some(objs) => {
                        feasible += 1;
                        result.evaluations.push(Evaluation {
                            point: p.clone(),
                            objectives: objs,
                        });
                    }
                    None => result.infeasible += 1,
                }
            }
            if !report("prior", batch.len(), feasible) {
                return result;
            }
        }

        // Lines 2–9: iterate — fit surrogate, acquire, evaluate, update.
        let mut acquisitions = 0usize;
        while trials < max_evals {
            acquisitions += 1;
            if self.explore_every > 0 && acquisitions.is_multiple_of(self.explore_every) {
                // Scheduled exploration step (see `explore_every`).
                let p = problem.space().random_point(&mut rng);
                if seen.insert(p.clone()) {
                    let feasible = try_evaluate(&p, problem, &mut result, &mut trials);
                    if !report("acquire", 1, feasible as usize) {
                        return result;
                    }
                    continue;
                }
            }
            if result.evaluations.len() < 2 {
                // Not enough data for a surrogate; keep sampling randomly.
                let p = problem.space().random_point(&mut rng);
                if seen.insert(p.clone()) {
                    let feasible = try_evaluate(&p, problem, &mut result, &mut trials);
                    if !report("acquire", 1, feasible as usize) {
                        return result;
                    }
                }
                continue;
            }
            // Fit one GP per objective on log-scaled metrics.
            let xs: Vec<Vec<f64>> = result
                .evaluations
                .iter()
                .map(|e| problem.space().normalize(&e.point))
                .collect();
            let mut gps: Vec<GaussianProcess> = Vec::with_capacity(m);
            let mut fit_failed = false;
            for obj in 0..m {
                let ys: Vec<f64> = result
                    .evaluations
                    .iter()
                    .map(|e| e.objectives[obj].max(1e-12).ln())
                    .collect();
                match GaussianProcess::fit(&xs, &ys) {
                    Ok(gp) => gps.push(gp),
                    Err(_) => {
                        fit_failed = true;
                        break;
                    }
                }
            }
            if fit_failed {
                let p = problem.space().random_point(&mut rng);
                if seen.insert(p.clone()) {
                    let feasible = try_evaluate(&p, problem, &mut result, &mut trials);
                    if !report("acquire", 1, feasible as usize) {
                        return result;
                    }
                }
                continue;
            }

            // Current front and reference point in *normalized* log space.
            // Each log-objective is rescaled to [0, 1] over its observed
            // range before hypervolume computation: without this, the
            // objective spanning the widest log range (often power or
            // area) dominates the expected improvement and the acquisition
            // ignores latency — the unit-cube normalization standard for
            // EHVI keeps all objectives competitive.
            let log_objs: Vec<Vec<f64>> = result
                .evaluations
                .iter()
                .map(|e| log_scale(&e.objectives))
                .collect();
            let mut lo = vec![f64::INFINITY; m];
            let mut hi = vec![f64::NEG_INFINITY; m];
            for o in &log_objs {
                for ((l, h), &v) in lo.iter_mut().zip(hi.iter_mut()).zip(o.iter()) {
                    *l = l.min(v);
                    *h = h.max(v);
                }
            }
            let normalize = |v: &[f64]| -> Vec<f64> {
                v.iter()
                    .zip(lo.iter().zip(hi.iter()))
                    .map(|(&x, (&l, &h))| {
                        if h - l < 1e-12 {
                            0.5
                        } else {
                            (x - l) / (h - l)
                        }
                    })
                    .collect()
            };
            let refs: Vec<&[f64]> = log_objs.iter().map(|v| v.as_slice()).collect();
            let front: Vec<Vec<f64>> = pareto_indices(&refs)
                .into_iter()
                .map(|i| normalize(&log_objs[i]))
                .collect();
            // Margin past the unit cube so boundary points contribute.
            let reference = vec![1.1; m];
            let base_hv = hypervolume(&front, &reference);

            // Candidate pool: random points plus neighbors of Pareto
            // incumbents (local refinement).
            let mut candidates: Vec<Point> = Vec::new();
            let mut cand_set: BTreeSet<Point> = BTreeSet::new();
            for idx in pareto_indices(&refs) {
                for n in problem.space().neighbors(&result.evaluations[idx].point) {
                    if !seen.contains(&n) && cand_set.insert(n.clone()) {
                        candidates.push(n);
                    }
                }
            }
            let mut guard2 = 0;
            while candidates.len() < self.candidate_pool && guard2 < self.candidate_pool * 20 {
                guard2 += 1;
                let p = problem.space().random_point(&mut rng);
                if !seen.contains(&p) && cand_set.insert(p.clone()) {
                    candidates.push(p);
                }
            }
            if candidates.is_empty() {
                break; // space exhausted
            }

            // Acquisition: Monte-Carlo expected hypervolume improvement.
            // One scratch + posterior buffer serves the whole candidate
            // sweep — prediction is allocation-free inside the loop.
            let mut best: Option<(f64, Point)> = None;
            let mut scratch = PredictScratch::default();
            let mut posts = Vec::with_capacity(m);
            for cand in candidates {
                let x = problem.space().normalize(&cand);
                posts.clear();
                posts.extend(gps.iter().map(|gp| gp.predict_with(&x, &mut scratch)));
                let mut improvement = 0.0;
                for _ in 0..self.mc_samples {
                    // Posterior samples live in log space; bring them into
                    // the same normalized cube as the front.
                    let sample: Vec<f64> = posts
                        .iter()
                        .map(|p| p.mean + p.std * normal(&mut rng))
                        .collect();
                    let mut augmented = front.clone();
                    augmented.push(normalize(&sample));
                    let hv = hypervolume(&augmented, &reference);
                    improvement += (hv - base_hv).max(0.0);
                }
                improvement /= self.mc_samples as f64;
                if best.as_ref().is_none_or(|(b, _)| improvement > *b) {
                    best = Some((improvement, cand));
                }
            }
            let (_, chosen) = best.expect("candidates were non-empty");
            seen.insert(chosen.clone());
            let feasible = try_evaluate(&chosen, problem, &mut result, &mut trials);
            if !report("acquire", 1, feasible as usize) {
                return result;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SearchSpace;
    use crate::random::RandomSearch;

    /// Smooth bi-objective with a clear Pareto ridge.
    struct Smooth {
        space: SearchSpace,
    }

    impl Problem for Smooth {
        fn space(&self) -> &SearchSpace {
            &self.space
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&mut self, p: &Point) -> Option<Vec<f64>> {
            let x = p[0] as f64 / 19.0;
            let y = p[1] as f64 / 19.0;
            // f1 best at x=1, f2 best at x=0; y adds separable noise-free bowl.
            Some(vec![
                (1.0 - x) + 2.0 * (y - 0.5) * (y - 0.5) + 0.1,
                x + 2.0 * (y - 0.5) * (y - 0.5) + 0.1,
            ])
        }
    }

    #[test]
    fn respects_budget() {
        let mut prob = Smooth {
            space: SearchSpace::new(vec![20, 20]),
        };
        let r = Mobo::new(0).with_prior_samples(5).run(&mut prob, 20);
        assert!(r.evaluations.len() + r.infeasible <= 20);
        assert!(r.evaluations.len() >= 15);
    }

    #[test]
    fn deterministic_per_seed() {
        let mut p1 = Smooth {
            space: SearchSpace::new(vec![20, 20]),
        };
        let mut p2 = Smooth {
            space: SearchSpace::new(vec![20, 20]),
        };
        let a = Mobo::new(4).with_prior_samples(5).run(&mut p1, 15);
        let b = Mobo::new(4).with_prior_samples(5).run(&mut p2, 15);
        assert_eq!(a, b);
    }

    #[test]
    fn beats_random_hypervolume_on_smooth_problem() {
        // The headline property behind Fig. 10: the model-based explorer
        // reaches a larger hypervolume than random search at equal budget.
        let reference = [3.0, 3.0];
        let mut wins = 0;
        for seed in 0..5 {
            let mut p1 = Smooth {
                space: SearchSpace::new(vec![20, 20]),
            };
            let mut p2 = Smooth {
                space: SearchSpace::new(vec![20, 20]),
            };
            let mobo = Mobo::new(seed).with_prior_samples(6).run(&mut p1, 25);
            let rand = RandomSearch::new(seed).run(&mut p2, 25);
            let hm = *mobo.hypervolume_history(&reference).last().unwrap();
            let hr = *rand.hypervolume_history(&reference).last().unwrap();
            if hm >= hr {
                wins += 1;
            }
        }
        assert!(wins >= 4, "MOBO won only {wins}/5 seeds");
    }

    #[test]
    fn skips_infeasible_points() {
        struct Holey(SearchSpace);
        impl Problem for Holey {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn evaluate(&mut self, p: &Point) -> Option<Vec<f64>> {
                (!p[0].is_multiple_of(3)).then(|| vec![p[0] as f64 + 0.5, 10.0 - p[0] as f64])
            }
        }
        let mut prob = Holey(SearchSpace::new(vec![30]));
        let r = Mobo::new(1).with_prior_samples(4).run(&mut prob, 20);
        assert!(!r.evaluations.is_empty());
        assert_eq!(r.evaluations.len() + r.infeasible, 20);
    }

    #[test]
    fn prior_floor_is_two() {
        assert_eq!(Mobo::new(0).with_prior_samples(0).prior_samples, 2);
    }

    #[test]
    fn scheduled_exploration_is_deterministic_and_optional() {
        let run_with = |explore_every: usize| {
            let mut prob = Smooth {
                space: SearchSpace::new(vec![20, 20]),
            };
            let mut mobo = Mobo::new(8).with_prior_samples(5);
            mobo.explore_every = explore_every;
            mobo.run(&mut prob, 20)
        };
        // The knob is deterministic per seed...
        assert_eq!(run_with(0), run_with(0));
        assert_eq!(run_with(3), run_with(3));
        // ...and actually changes the trajectory when enabled.
        assert_ne!(run_with(0), run_with(3));
    }

    #[test]
    fn normal_draws_are_standard() {
        let mut rng = SmallRng::seed_from_u64(42);
        let n = 20_000;
        let draws: Vec<f64> = (0..n).map(|_| normal(&mut rng)).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }
}
