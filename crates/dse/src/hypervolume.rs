//! Exact hypervolume indicator (minimization) via the "hypervolume by
//! slicing objectives" (HSO) recursion.
//!
//! "In multi-objective optimizations, the hypervolume indicator measures
//! the size of the space dominated by a set of design points" (§VII-C).
//! The fronts produced by 20–40-trial DSE runs are tiny, so the exact
//! recursive algorithm is more than fast enough.

use crate::pareto;

/// Hypervolume of `points` with respect to `reference` (all objectives
/// minimized; points not strictly better than the reference in every
/// objective contribute only their clipped region).
///
/// # Panics
/// Panics if a point's dimensionality differs from the reference's.
pub fn hypervolume(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let d = reference.len();
    // Clip to the reference box and drop points outside it.
    let mut clipped: Vec<Vec<f64>> = Vec::new();
    for p in points {
        assert_eq!(p.len(), d, "point dimensionality mismatch");
        if p.iter().zip(reference.iter()).all(|(x, r)| x < r) {
            clipped.push(p.clone());
        }
    }
    if clipped.is_empty() {
        return 0.0;
    }
    // Keep only the non-dominated subset.
    let refs: Vec<&[f64]> = clipped.iter().map(|v| v.as_slice()).collect();
    let idx = pareto::pareto_indices(&refs);
    let front: Vec<Vec<f64>> = idx.into_iter().map(|i| clipped[i].clone()).collect();
    hso(&front, reference)
}

fn hso(points: &[Vec<f64>], reference: &[f64]) -> f64 {
    let d = reference.len();
    if points.is_empty() {
        return 0.0;
    }
    if d == 1 {
        let best = points.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min);
        return (reference[0] - best).max(0.0);
    }
    // Slice along the last objective.
    let axis = d - 1;
    let mut sorted: Vec<&Vec<f64>> = points.iter().collect();
    sorted.sort_by(|a, b| a[axis].partial_cmp(&b[axis]).expect("no NaN objectives"));
    let mut volume = 0.0;
    for k in 0..sorted.len() {
        let z_lo = sorted[k][axis];
        let z_hi = if k + 1 < sorted.len() {
            sorted[k + 1][axis]
        } else {
            reference[axis]
        };
        let depth = z_hi - z_lo;
        if depth <= 0.0 {
            continue;
        }
        // Points active in this slice: those with coordinate <= z_lo.
        let active: Vec<Vec<f64>> = sorted[..=k].iter().map(|p| p[..axis].to_vec()).collect();
        let sub_ref = &reference[..axis];
        // Non-dominated filtering of the projection keeps the recursion
        // cheap.
        let refs: Vec<&[f64]> = active.iter().map(|v| v.as_slice()).collect();
        let idx = pareto::pareto_indices(&refs);
        let proj: Vec<Vec<f64>> = idx.into_iter().map(|i| active[i].clone()).collect();
        volume += depth * hso(&proj, sub_ref);
    }
    volume
}

/// Normalized hypervolume: the fraction of the reference box the front
/// dominates, given the box's ideal corner. Useful for plotting Fig. 10's
/// "normalized hypervolume" axis.
pub fn normalized_hypervolume(points: &[Vec<f64>], ideal: &[f64], reference: &[f64]) -> f64 {
    let total: f64 = ideal
        .iter()
        .zip(reference.iter())
        .map(|(i, r)| (r - i).max(1e-300))
        .product();
    hypervolume(points, reference) / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_point_2d() {
        let hv = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 4.0).abs() < 1e-12);
    }

    #[test]
    fn two_overlapping_points_2d() {
        // [1,2] and [2,1] vs ref [3,3]: 2 + 2 - 1 = 3.
        let hv = hypervolume(&[vec![1.0, 2.0], vec![2.0, 1.0]], &[3.0, 3.0]);
        assert!((hv - 3.0).abs() < 1e-12);
    }

    #[test]
    fn dominated_point_adds_nothing() {
        let base = hypervolume(&[vec![1.0, 1.0]], &[3.0, 3.0]);
        let more = hypervolume(&[vec![1.0, 1.0], vec![2.0, 2.0]], &[3.0, 3.0]);
        assert!((base - more).abs() < 1e-12);
    }

    #[test]
    fn point_outside_reference_is_ignored() {
        let hv = hypervolume(&[vec![4.0, 1.0]], &[3.0, 3.0]);
        assert_eq!(hv, 0.0);
        let hv2 = hypervolume(&[vec![4.0, 1.0], vec![1.0, 1.0]], &[3.0, 3.0]);
        assert!((hv2 - 4.0).abs() < 1e-12);
    }

    #[test]
    fn single_point_3d_is_box_volume() {
        let hv = hypervolume(&[vec![1.0, 1.0, 1.0]], &[2.0, 3.0, 4.0]);
        assert!((hv - 1.0 * 2.0 * 3.0).abs() < 1e-12);
    }

    #[test]
    fn three_d_union() {
        // Two boxes: [0,0,0] to ref [2,2,2] clipped at... points [1,1,0] and
        // [0,0,1] vs ref [2,2,2]:
        // box A = (2-1)(2-1)(2-0) = 2; box B = (2)(2)(2-1) = 4;
        // overlap = (2-1)(2-1)(2-1) = 1; union = 5.
        let hv = hypervolume(
            &[vec![1.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]],
            &[2.0, 2.0, 2.0],
        );
        assert!((hv - 5.0).abs() < 1e-12, "hv = {hv}");
    }

    #[test]
    fn adding_nondominated_point_grows_hv() {
        let r = [10.0, 10.0, 10.0];
        let a = hypervolume(&[vec![5.0, 5.0, 5.0]], &r);
        let b = hypervolume(&[vec![5.0, 5.0, 5.0], vec![1.0, 9.0, 9.0]], &r);
        assert!(b > a);
    }

    #[test]
    fn hv_is_permutation_invariant() {
        let pts = vec![
            vec![1.0, 5.0, 3.0],
            vec![2.0, 2.0, 4.0],
            vec![4.0, 1.0, 1.0],
        ];
        let r = [6.0, 6.0, 6.0];
        let a = hypervolume(&pts, &r);
        let mut rev = pts.clone();
        rev.reverse();
        let b = hypervolume(&rev, &r);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn normalized_hv_is_fraction() {
        let nhv = normalized_hypervolume(&[vec![0.0, 0.0]], &[0.0, 0.0], &[2.0, 2.0]);
        assert!((nhv - 1.0).abs() < 1e-12);
        let half = normalized_hypervolume(&[vec![1.0, 0.0]], &[0.0, 0.0], &[2.0, 2.0]);
        assert!((half - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_front_is_zero() {
        assert_eq!(hypervolume(&[], &[1.0, 1.0]), 0.0);
    }
}
