//! Minimal dense linear algebra for the Gaussian-process surrogate:
//! symmetric matrices, jittered Cholesky factorization, and triangular
//! solves. Sizes are tiny (≤ the DSE trial budget, ~40), so simplicity wins
//! over cleverness.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics when `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum())
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Errors from the factorization routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not positive definite even after adding jitter.
    NotPositiveDefinite,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite")
    }
}

impl std::error::Error for LinalgError {}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric matrix, retrying with
/// exponentially growing diagonal jitter — the standard GP trick for nearly
/// singular kernel matrices.
///
/// # Errors
/// Returns [`LinalgError::NotPositiveDefinite`] if factorization fails even
/// with the largest jitter.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    assert_eq!(a.rows, a.cols, "cholesky needs a square matrix");
    let n = a.rows;
    let mut jitter = 0.0;
    for attempt in 0..8 {
        if attempt > 0 {
            jitter = 1e-10 * 10f64.powi(attempt);
        }
        if let Some(l) = try_cholesky(a, jitter, n) {
            return Ok(l);
        }
    }
    Err(LinalgError::NotPositiveDefinite)
}

fn try_cholesky(a: &Matrix, jitter: f64, n: usize) -> Option<Matrix> {
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)] + if i == j { jitter } else { 0.0 };
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves `L·x = b` (forward substitution, `L` lower triangular).
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows;
    let mut x = vec![0.0; n];
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Solves `Lᵀ·x = b` (backward substitution).
pub fn solve_upper_transposed(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows;
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Solves `A·x = b` given `A = L·Lᵀ`.
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    solve_upper_transposed(l, &solve_lower(l, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ·B + I is SPD.
        Matrix::from_fn(3, 3, |r, c| {
            let b = [[1.0, 2.0, 0.5], [0.0, 1.0, 1.0], [0.7, 0.3, 2.0]];
            let mut s = 0.0;
            for bk in &b {
                s += bk[r] * bk[c];
            }
            s + if r == c { 1.0 } else { 0.0 }
        })
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!((s - a[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_roundtrips() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = cholesky_solve(&l, &b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-deficient Gram matrix of duplicated inputs.
        let a = Matrix::from_fn(3, 3, |_, _| 1.0);
        let l = cholesky(&a);
        assert!(l.is_ok());
    }

    #[test]
    fn non_pd_fails() {
        let a = Matrix::from_fn(2, 2, |r, c| if r == c { -1.0 } else { 0.0 });
        assert_eq!(cholesky(&a).unwrap_err(), LinalgError::NotPositiveDefinite);
    }

    #[test]
    fn triangular_solves() {
        let mut l = Matrix::zeros(2, 2);
        l[(0, 0)] = 2.0;
        l[(1, 0)] = 1.0;
        l[(1, 1)] = 3.0;
        let x = solve_lower(&l, &[4.0, 11.0]);
        assert_eq!(x, vec![2.0, 3.0]);
        let y = solve_upper_transposed(&l, &[5.0, 6.0]);
        // Lᵀ y = b: [2 1; 0 3] y = [5, 6] → y1 = 2, y0 = (5-2)/2 = 1.5
        assert_eq!(y, vec![1.5, 2.0]);
    }

    #[test]
    fn matvec_works() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn cholesky_rejects_rectangular() {
        let _ = cholesky(&Matrix::zeros(2, 3));
    }
}
