//! Minimal dense linear algebra for the Gaussian-process surrogate:
//! symmetric matrices, jittered Cholesky factorization, and triangular
//! solves. Sizes are tiny (≤ the DSE trial budget, ~40), so simplicity wins
//! over cleverness.

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    /// Row count.
    pub rows: usize,
    /// Column count.
    pub cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a closure over (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m[(r, c)] = f(r, c);
            }
        }
        m
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics when `v.len() != self.cols`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols);
        (0..self.rows)
            .map(|r| (0..self.cols).map(|c| self[(r, c)] * v[c]).sum())
            .collect()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }
}

/// Errors from the factorization routines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is not positive definite even after adding jitter.
    NotPositiveDefinite,
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix is not positive definite")
    }
}

impl std::error::Error for LinalgError {}

/// A Cholesky factorization `A + jitter·I = L·Lᵀ` that remembers which
/// diagonal jitter made it succeed, so it can later be *extended* by one
/// row ([`Cholesky::extend`]) bit-identically to refactorizing the grown
/// matrix from scratch.
#[derive(Debug, Clone, PartialEq)]
pub struct Cholesky {
    /// The lower-triangular factor.
    pub l: Matrix,
    /// The diagonal jitter the successful attempt used (0.0 on clean
    /// factorizations).
    pub jitter: f64,
}

impl Cholesky {
    /// Extends an `n×n` factor to `(n+1)×(n+1)` given the grown matrix's
    /// new bottom row `row` (length `n + 1`, diagonal entry last, *without*
    /// jitter — the factor's own jitter is applied internally).
    ///
    /// Returns `false` — leaving `self` untouched — when the new diagonal
    /// pivot is not positive, i.e. when a from-scratch factorization of
    /// the grown matrix would have to escalate to a larger jitter; the
    /// caller must then refactorize via [`cholesky_jittered`].
    ///
    /// **Bit-exactness:** on success the extended factor is bit-identical
    /// to a from-scratch factorization of the grown matrix. A from-scratch
    /// run replays the identical floating-point sequence: attempts with
    /// smaller jitter fail at the same (unchanged) leading rows they
    /// failed at before, the first `n` rows under this factor's jitter
    /// reproduce `self.l` exactly (column-ordered Cholesky never reads
    /// ahead), and the new row is computed here with the same operations
    /// in the same order as `try_cholesky`'s last row.
    ///
    /// # Panics
    /// Panics when `row.len() != self.l.rows + 1`.
    pub fn extend(&mut self, row: &[f64]) -> bool {
        let n = self.l.rows;
        assert_eq!(row.len(), n + 1, "extension row must cover the diagonal");
        // Compute the candidate row first; commit only if the pivot holds.
        let mut new_row = vec![0.0f64; n + 1];
        for j in 0..=n {
            let mut sum = row[j] + if j == n { self.jitter } else { 0.0 };
            for (k, &nk) in new_row.iter().enumerate().take(j) {
                let ljk = if j == n { nk } else { self.l[(j, k)] };
                sum -= nk * ljk;
            }
            if j == n {
                if sum <= 0.0 || !sum.is_finite() {
                    return false;
                }
                new_row[j] = sum.sqrt();
            } else {
                new_row[j] = sum / self.l[(j, j)];
            }
        }
        let mut grown = Matrix::zeros(n + 1, n + 1);
        for r in 0..n {
            for c in 0..=r {
                grown[(r, c)] = self.l[(r, c)];
            }
        }
        for (c, v) in new_row.iter().enumerate() {
            grown[(n, c)] = *v;
        }
        self.l = grown;
        true
    }
}

/// Cholesky factorization `A = L·Lᵀ` of a symmetric matrix, retrying with
/// exponentially growing diagonal jitter — the standard GP trick for nearly
/// singular kernel matrices.
///
/// # Errors
/// Returns [`LinalgError::NotPositiveDefinite`] if factorization fails even
/// with the largest jitter.
pub fn cholesky(a: &Matrix) -> Result<Matrix, LinalgError> {
    cholesky_jittered(a).map(|c| c.l)
}

/// Like [`cholesky`], additionally reporting the jitter the successful
/// attempt used — the state an incrementally extendable factor
/// ([`Cholesky`]) needs.
///
/// # Errors
/// Returns [`LinalgError::NotPositiveDefinite`] if factorization fails even
/// with the largest jitter.
pub fn cholesky_jittered(a: &Matrix) -> Result<Cholesky, LinalgError> {
    assert_eq!(a.rows, a.cols, "cholesky needs a square matrix");
    let n = a.rows;
    let mut jitter = 0.0;
    for attempt in 0..8 {
        if attempt > 0 {
            jitter = 1e-10 * 10f64.powi(attempt);
        }
        if let Some(l) = try_cholesky(a, jitter, n) {
            return Ok(Cholesky { l, jitter });
        }
    }
    Err(LinalgError::NotPositiveDefinite)
}

fn try_cholesky(a: &Matrix, jitter: f64, n: usize) -> Option<Matrix> {
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)] + if i == j { jitter } else { 0.0 };
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return None;
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Some(l)
}

/// Solves `L·x = b` (forward substitution, `L` lower triangular).
pub fn solve_lower(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let mut x = Vec::new();
    solve_lower_into(l, b, &mut x);
    x
}

/// [`solve_lower`] into a reusable buffer — the allocation-free variant
/// for hot paths that solve many right-hand sides against one factor.
pub fn solve_lower_into(l: &Matrix, b: &[f64], x: &mut Vec<f64>) {
    let n = l.rows;
    x.clear();
    x.resize(n, 0.0);
    for i in 0..n {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[(i, k)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
}

/// Solves `Lᵀ·x = b` (backward substitution).
pub fn solve_upper_transposed(l: &Matrix, b: &[f64]) -> Vec<f64> {
    let n = l.rows;
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut sum = b[i];
        for k in i + 1..n {
            sum -= l[(k, i)] * x[k];
        }
        x[i] = sum / l[(i, i)];
    }
    x
}

/// Solves `A·x = b` given `A = L·Lᵀ`.
pub fn cholesky_solve(l: &Matrix, b: &[f64]) -> Vec<f64> {
    solve_upper_transposed(l, &solve_lower(l, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ·B + I is SPD.
        Matrix::from_fn(3, 3, |r, c| {
            let b = [[1.0, 2.0, 0.5], [0.0, 1.0, 1.0], [0.7, 0.3, 2.0]];
            let mut s = 0.0;
            for bk in &b {
                s += bk[r] * bk[c];
            }
            s + if r == c { 1.0 } else { 0.0 }
        })
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += l[(i, k)] * l[(j, k)];
                }
                assert!((s - a[(i, j)]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_roundtrips() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = cholesky_solve(&l, &b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-9);
        }
    }

    #[test]
    fn jitter_rescues_near_singular() {
        // Rank-deficient Gram matrix of duplicated inputs.
        let a = Matrix::from_fn(3, 3, |_, _| 1.0);
        let l = cholesky(&a);
        assert!(l.is_ok());
    }

    #[test]
    fn non_pd_fails() {
        let a = Matrix::from_fn(2, 2, |r, c| if r == c { -1.0 } else { 0.0 });
        assert_eq!(cholesky(&a).unwrap_err(), LinalgError::NotPositiveDefinite);
    }

    #[test]
    fn triangular_solves() {
        let mut l = Matrix::zeros(2, 2);
        l[(0, 0)] = 2.0;
        l[(1, 0)] = 1.0;
        l[(1, 1)] = 3.0;
        let x = solve_lower(&l, &[4.0, 11.0]);
        assert_eq!(x, vec![2.0, 3.0]);
        let y = solve_upper_transposed(&l, &[5.0, 6.0]);
        // Lᵀ y = b: [2 1; 0 3] y = [5, 6] → y1 = 2, y0 = (5-2)/2 = 1.5
        assert_eq!(y, vec![1.5, 2.0]);
    }

    #[test]
    fn matvec_works() {
        let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f64);
        assert_eq!(m.matvec(&[1.0, 1.0, 1.0]), vec![3.0, 12.0]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn cholesky_rejects_rectangular() {
        let _ = cholesky(&Matrix::zeros(2, 3));
    }

    #[test]
    fn jittered_reports_zero_jitter_on_clean_matrices() {
        let c = cholesky_jittered(&spd3()).unwrap();
        assert_eq!(c.jitter, 0.0);
        assert_eq!(c.l, cholesky(&spd3()).unwrap());
    }

    #[test]
    fn jittered_reports_the_rescuing_jitter() {
        let ones = Matrix::from_fn(3, 3, |_, _| 1.0);
        let c = cholesky_jittered(&ones).unwrap();
        assert!(c.jitter > 0.0);
    }

    #[test]
    fn extend_is_bit_identical_to_from_scratch() {
        // Grow a 5×5 SPD matrix row by row; the extended factor must match
        // a from-scratch factorization of every leading submatrix exactly.
        let a = Matrix::from_fn(5, 5, |r, c| {
            let d = (r as f64 - c as f64).abs();
            (-d * d / 8.0).exp() + if r == c { 0.5 } else { 0.0 }
        });
        let sub = |n: usize| Matrix::from_fn(n, n, |r, c| a[(r, c)]);
        let mut inc = cholesky_jittered(&sub(1)).unwrap();
        for n in 1..5 {
            let row: Vec<f64> = (0..=n).map(|c| a[(n, c)]).collect();
            assert!(inc.extend(&row), "extension failed at n={n}");
            let scratch = cholesky_jittered(&sub(n + 1)).unwrap();
            assert_eq!(inc.jitter, scratch.jitter);
            for r in 0..=n {
                for c in 0..=r {
                    assert_eq!(
                        inc.l[(r, c)].to_bits(),
                        scratch.l[(r, c)].to_bits(),
                        "entry ({r},{c}) diverged at n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn extend_refuses_a_degenerate_pivot_and_leaves_the_factor_intact() {
        // A near-duplicate of row 2 whose diagonal falls short by 1e-6
        // drives the new pivot negative: extend must refuse, and the
        // caller falls back to a full refactorization (which escalates
        // the jitter and succeeds).
        let a = spd3();
        let mut inc = cholesky_jittered(&a).unwrap();
        let before = inc.clone();
        let deficient = a[(2, 2)] - 1e-6;
        let dup_row = vec![a[(2, 0)], a[(2, 1)], a[(2, 2)], deficient];
        assert!(!inc.extend(&dup_row));
        assert_eq!(inc, before, "failed extension must not mutate the factor");
        // The from-scratch fallback on the grown matrix still succeeds.
        let grown = Matrix::from_fn(4, 4, |r, c| {
            if r == 3 && c == 3 {
                deficient
            } else {
                a[(r.min(2), c.min(2))]
            }
        });
        assert!(cholesky_jittered(&grown).unwrap().jitter > 0.0);
    }

    #[test]
    fn solve_lower_into_reuses_the_buffer() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let mut buf = vec![9.0; 7]; // stale, wrongly sized
        solve_lower_into(&l, &b, &mut buf);
        assert_eq!(buf, solve_lower(&l, &b));
    }

    #[test]
    #[should_panic(expected = "cover the diagonal")]
    fn extend_rejects_short_rows() {
        let mut c = cholesky_jittered(&spd3()).unwrap();
        c.extend(&[1.0, 2.0]);
    }
}
