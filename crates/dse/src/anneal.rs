//! Multi-objective simulated annealing via Chebyshev scalarization — the
//! "Simulated Annealing" box of the paper's Fig. 3, offered as an
//! additional DSE baseline and used by the ablation benches.
//!
//! Each restart draws a random weight vector; the walk minimizes the
//! weighted Chebyshev distance to the running ideal point, accepting uphill
//! moves with the usual Boltzmann probability. Restarts with different
//! weights spread the accepted points along the Pareto front.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::problem::{Evaluation, OptimizerResult, Point, Problem};
use crate::progress::{BatchUpdate, Progress};
use crate::Optimizer;

/// Simulated-annealing configuration.
#[derive(Debug, Clone)]
pub struct Annealer {
    seed: u64,
    /// Number of weight-vector restarts (each gets an equal slice of the
    /// evaluation budget).
    pub restarts: usize,
    /// Initial temperature (relative objective scale).
    pub initial_temperature: f64,
    /// Multiplicative cooling factor per step.
    pub cooling: f64,
    /// Random points probed per burst when hunting a feasible restart
    /// point. Probes go through the problem's batch seam, so bursts > 1
    /// evaluate concurrently on runtime-backed problems; every probe is
    /// recorded and counts against the budget. `1` reproduces the classic
    /// one-at-a-time probe. Burst size never depends on thread count.
    pub probe_batch: usize,
}

impl Annealer {
    /// Creates an annealer with three restarts and a standard schedule.
    pub fn new(seed: u64) -> Self {
        Annealer {
            seed,
            restarts: 3,
            initial_temperature: 1.0,
            cooling: 0.92,
            probe_batch: 1,
        }
    }

    /// Sets the restart count.
    pub fn with_restarts(mut self, restarts: usize) -> Self {
        self.restarts = restarts.max(1);
        self
    }

    /// Sets the feasible-start probe burst size.
    pub fn with_probe_batch(mut self, probe_batch: usize) -> Self {
        self.probe_batch = probe_batch.max(1);
        self
    }
}

fn chebyshev(objs: &[f64], ideal: &[f64], weights: &[f64]) -> f64 {
    objs.iter()
        .zip(ideal.iter())
        .zip(weights.iter())
        .map(|((&o, &i), &w)| w * ((o.max(1e-12).ln()) - (i.max(1e-12).ln())))
        .fold(f64::NEG_INFINITY, f64::max)
}

impl Optimizer for Annealer {
    fn name(&self) -> &'static str {
        "anneal"
    }

    fn run_with_progress(
        &mut self,
        problem: &mut dyn Problem,
        max_evals: usize,
        progress: &dyn Progress,
    ) -> OptimizerResult {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut result = OptimizerResult::new(self.name());
        // Probe bursts and walk steps are reported from this (driver)
        // thread in a fixed order, so observers see the identical stream
        // at any thread count.
        let mut batch_no = 0usize;
        let mut report = |phase: &str, evaluated: usize, feasible: usize| -> bool {
            batch_no += 1;
            progress.on_batch(&BatchUpdate {
                optimizer: "anneal",
                phase,
                batch: batch_no,
                evaluated,
                feasible,
            })
        };
        let m = problem.num_objectives();
        let budget_per_restart = (max_evals / self.restarts).max(1);
        let mut ideal = vec![f64::INFINITY; m];
        let mut trials = 0usize;

        for _ in 0..self.restarts {
            if trials >= max_evals {
                break;
            }
            // Random positive weights, normalized.
            let mut weights: Vec<f64> = (0..m).map(|_| rng.gen_range(0.1..1.0)).collect();
            let sum: f64 = weights.iter().sum();
            for w in &mut weights {
                *w /= sum;
            }
            // Random feasible start, probed in bursts through the batch
            // seam. Every probe is recorded (feasible ones join the
            // history and refine the ideal point); the first feasible one
            // seeds the walk.
            let mut current: Option<(Point, Vec<f64>)> = None;
            let mut guard = 0;
            while current.is_none() && trials < max_evals && guard < max_evals * 10 {
                let want = self.probe_batch.min(max_evals - trials);
                let mut batch: Vec<Point> = Vec::with_capacity(want);
                while batch.len() < want && guard < max_evals * 10 {
                    guard += 1;
                    batch.push(problem.space().random_point(&mut rng));
                }
                if batch.is_empty() {
                    break;
                }
                trials += batch.len();
                let mut feasible = 0usize;
                for (p, objs) in batch.iter().zip(problem.evaluate_batch(&batch)) {
                    match objs {
                        Some(objs) => {
                            feasible += 1;
                            for (i, &o) in ideal.iter_mut().zip(objs.iter()) {
                                *i = i.min(o);
                            }
                            result.evaluations.push(Evaluation {
                                point: p.clone(),
                                objectives: objs.clone(),
                            });
                            if current.is_none() {
                                current = Some((p.clone(), objs));
                            }
                        }
                        None => result.infeasible += 1,
                    }
                }
                if !report("probe", batch.len(), feasible) {
                    return result;
                }
            }
            let Some((mut cur_p, mut cur_o)) = current else {
                continue;
            };
            let mut temperature = self.initial_temperature;
            let restart_end = (trials + budget_per_restart).min(max_evals);
            while trials < restart_end {
                // Temperature-scaled jump: hot walks leap across the grid,
                // cold walks refine locally.
                let dims = problem.space().dim_sizes.clone();
                let d = rng.gen_range(0..dims.len());
                let span = ((dims[d] as f64 / 2.0) * temperature).ceil().max(1.0) as i64;
                let step = rng.gen_range(1..=span) * if rng.gen_bool(0.5) { 1 } else { -1 };
                let mut cand = cur_p.clone();
                cand[d] = (cand[d] as i64 + step).clamp(0, dims[d] as i64 - 1) as usize;
                if cand == cur_p {
                    temperature *= self.cooling;
                    continue;
                }
                trials += 1;
                let Some(objs) = problem.evaluate(&cand) else {
                    result.infeasible += 1;
                    if !report("walk", 1, 0) {
                        return result;
                    }
                    temperature *= self.cooling;
                    continue;
                };
                for (i, &o) in ideal.iter_mut().zip(objs.iter()) {
                    *i = i.min(o);
                }
                result.evaluations.push(Evaluation {
                    point: cand.clone(),
                    objectives: objs.clone(),
                });
                if !report("walk", 1, 1) {
                    return result;
                }
                let delta =
                    chebyshev(&objs, &ideal, &weights) - chebyshev(&cur_o, &ideal, &weights);
                let accept = delta < 0.0
                    || rng.gen_bool((-delta / temperature.max(1e-9)).exp().clamp(0.0, 1.0));
                if accept {
                    cur_p = cand;
                    cur_o = objs;
                }
                temperature *= self.cooling;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::SearchSpace;
    use crate::random::RandomSearch;

    struct Bowl {
        space: SearchSpace,
    }

    impl Problem for Bowl {
        fn space(&self) -> &SearchSpace {
            &self.space
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&mut self, p: &Point) -> Option<Vec<f64>> {
            let x = p[0] as f64 / 30.0;
            let y = p[1] as f64 / 30.0;
            Some(vec![
                0.1 + (x - 0.8).powi(2) + (y - 0.5).powi(2),
                0.1 + (x - 0.2).powi(2) + (y - 0.5).powi(2),
            ])
        }
    }

    #[test]
    fn respects_budget() {
        let mut prob = Bowl {
            space: SearchSpace::new(vec![31, 31]),
        };
        let r = Annealer::new(1).run(&mut prob, 40);
        assert!(r.evaluations.len() + r.infeasible <= 40);
        assert!(!r.evaluations.is_empty());
    }

    #[test]
    fn deterministic_per_seed() {
        let mut p1 = Bowl {
            space: SearchSpace::new(vec![31, 31]),
        };
        let mut p2 = Bowl {
            space: SearchSpace::new(vec![31, 31]),
        };
        assert_eq!(
            Annealer::new(5).run(&mut p1, 30),
            Annealer::new(5).run(&mut p2, 30)
        );
    }

    #[test]
    fn converges_better_than_random_on_scalarized_best() {
        // SA is a point-convergence method: on a large smooth landscape it
        // should find lower scalarized optima than uniform sampling at the
        // same budget (spread across the front is MOBO/NSGA-II territory).
        // Both objectives share one optimum, so every weight vector pulls
        // the walk toward it.
        struct Aligned {
            space: SearchSpace,
        }
        impl Problem for Aligned {
            fn space(&self) -> &SearchSpace {
                &self.space
            }
            fn num_objectives(&self) -> usize {
                2
            }
            fn evaluate(&mut self, p: &Point) -> Option<Vec<f64>> {
                let x = p[0] as f64 / 100.0;
                let y = p[1] as f64 / 100.0;
                let d2 = (x - 0.73).powi(2) + (y - 0.41).powi(2);
                Some(vec![0.01 + d2, 0.05 + 2.0 * d2])
            }
        }
        // Budget sized so the walk's cold phase dominates sampling noise:
        // at 60 evaluations the SA-vs-random margin is within a couple of
        // grid cells and flips with the PRNG stream (the vendored
        // SmallRng differs from upstream rand's).
        let best = |r: &OptimizerResult| r.best_objective(0).unwrap_or(f64::INFINITY);
        let mut wins = 0;
        for seed in 0..5 {
            let mut p1 = Aligned {
                space: SearchSpace::new(vec![101, 101]),
            };
            let mut p2 = Aligned {
                space: SearchSpace::new(vec![101, 101]),
            };
            let a = Annealer::new(seed).with_restarts(2).run(&mut p1, 120);
            let r = RandomSearch::new(seed).run(&mut p2, 120);
            if best(&a) <= best(&r) {
                wins += 1;
            }
        }
        assert!(wins >= 3, "annealer won only {wins}/5 seeds");
    }

    #[test]
    fn restart_floor_is_one() {
        assert_eq!(Annealer::new(0).with_restarts(0).restarts, 1);
        assert_eq!(Annealer::new(0).with_probe_batch(0).probe_batch, 1);
    }

    #[test]
    fn probe_bursts_respect_budget_and_stay_deterministic() {
        let mut p1 = Bowl {
            space: SearchSpace::new(vec![31, 31]),
        };
        let mut p2 = Bowl {
            space: SearchSpace::new(vec![31, 31]),
        };
        let a = Annealer::new(9).with_probe_batch(4).run(&mut p1, 40);
        let b = Annealer::new(9).with_probe_batch(4).run(&mut p2, 40);
        assert_eq!(a, b);
        assert!(a.evaluations.len() + a.infeasible <= 40);
    }

    #[test]
    fn chebyshev_is_zero_at_ideal() {
        let d = chebyshev(&[1.0, 2.0], &[1.0, 2.0], &[0.5, 0.5]);
        assert!(d.abs() < 1e-12);
        let worse = chebyshev(&[2.0, 2.0], &[1.0, 2.0], &[0.5, 0.5]);
        assert!(worse > 0.0);
    }
}
