//! Random search — the simplest DSE baseline of §VII-C.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

use crate::problem::{Evaluation, OptimizerResult, Problem};
use crate::progress::{BatchUpdate, Progress};
use crate::Optimizer;

/// Uniform random sampling without replacement (up to a retry budget).
#[derive(Debug, Clone)]
pub struct RandomSearch {
    seed: u64,
}

impl RandomSearch {
    /// Creates a random search with a deterministic seed.
    pub fn new(seed: u64) -> Self {
        RandomSearch { seed }
    }
}

impl Optimizer for RandomSearch {
    fn name(&self) -> &'static str {
        "random"
    }

    fn run_with_progress(
        &mut self,
        problem: &mut dyn Problem,
        max_evals: usize,
        progress: &dyn Progress,
    ) -> OptimizerResult {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let mut result = OptimizerResult::new(self.name());
        let mut seen: BTreeSet<Vec<usize>> = BTreeSet::new();
        let mut attempts = 0usize;
        let mut batch_no = 0usize;
        while result.evaluations.len() + result.infeasible < max_evals && attempts < max_evals * 50
        {
            attempts += 1;
            let p = problem.space().random_point(&mut rng);
            if !seen.insert(p.clone()) {
                continue;
            }
            let feasible = match problem.evaluate(&p) {
                Some(objs) => {
                    result.evaluations.push(Evaluation {
                        point: p,
                        objectives: objs,
                    });
                    1
                }
                None => {
                    result.infeasible += 1;
                    0
                }
            };
            batch_no += 1;
            let keep_going = progress.on_batch(&BatchUpdate {
                optimizer: "random",
                phase: "sample",
                batch: batch_no,
                evaluated: 1,
                feasible,
            });
            if !keep_going {
                return result;
            }
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Point, SearchSpace};

    struct Sphere {
        space: SearchSpace,
        evals: usize,
    }

    impl Problem for Sphere {
        fn space(&self) -> &SearchSpace {
            &self.space
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&mut self, p: &Point) -> Option<Vec<f64>> {
            self.evals += 1;
            let x = p[0] as f64 - 5.0;
            let y = p[1] as f64 - 5.0;
            Some(vec![x * x + y * y, (10.0 - p[0] as f64).abs()])
        }
    }

    #[test]
    fn respects_budget_and_dedup() {
        let mut prob = Sphere {
            space: SearchSpace::new(vec![11, 11]),
            evals: 0,
        };
        let r = RandomSearch::new(1).run(&mut prob, 30);
        assert!(r.evaluations.len() <= 30);
        assert_eq!(prob.evals, r.evaluations.len());
        // All evaluated points distinct.
        let set: BTreeSet<_> = r.evaluations.iter().map(|e| &e.point).collect();
        assert_eq!(set.len(), r.evaluations.len());
    }

    #[test]
    fn is_deterministic_per_seed() {
        let mut p1 = Sphere {
            space: SearchSpace::new(vec![11, 11]),
            evals: 0,
        };
        let mut p2 = Sphere {
            space: SearchSpace::new(vec![11, 11]),
            evals: 0,
        };
        let a = RandomSearch::new(9).run(&mut p1, 15);
        let b = RandomSearch::new(9).run(&mut p2, 15);
        assert_eq!(a, b);
    }

    #[test]
    fn counts_infeasible() {
        struct HalfFeasible(SearchSpace);
        impl Problem for HalfFeasible {
            fn space(&self) -> &SearchSpace {
                &self.0
            }
            fn num_objectives(&self) -> usize {
                1
            }
            fn evaluate(&mut self, p: &Point) -> Option<Vec<f64>> {
                (p[0].is_multiple_of(2)).then(|| vec![p[0] as f64])
            }
        }
        let mut prob = HalfFeasible(SearchSpace::new(vec![50]));
        let r = RandomSearch::new(2).run(&mut prob, 20);
        assert!(r.infeasible > 0);
        assert_eq!(r.evaluations.len() + r.infeasible, 20);
    }

    #[test]
    fn exhausts_small_space() {
        let mut prob = Sphere {
            space: SearchSpace::new(vec![2, 2]),
            evals: 0,
        };
        let r = RandomSearch::new(3).run(&mut prob, 100);
        assert_eq!(r.evaluations.len(), 4);
    }
}
