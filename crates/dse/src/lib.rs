//! Design-space exploration algorithms for HASCO (§V-B, Algorithm 1).
//!
//! This crate implements the hardware DSE machinery of the paper from
//! scratch:
//!
//! * [`mobo::Mobo`] — multi-objective Bayesian optimization with a
//!   Gaussian-process surrogate per objective and a hypervolume-based
//!   probability-of-improvement acquisition function (the paper's method);
//! * [`nsga2::Nsga2`] — the NSGA-II genetic algorithm \[22\] baseline;
//! * [`random::RandomSearch`] — the random-search baseline;
//! * [`pareto`] / [`hypervolume`] — Pareto-set maintenance and the exact
//!   hypervolume indicator used to compare convergence (Fig. 10).
//!
//! All optimizers minimize a vector of objectives over a discrete
//! [`problem::SearchSpace`] through the [`problem::Problem`] trait, and
//! record every evaluation so benches can replay convergence histories.
//!
//! # Example
//!
//! ```
//! use dse::problem::{Problem, SearchSpace, Point};
//! use dse::random::RandomSearch;
//! use dse::Optimizer;
//!
//! struct Toy(SearchSpace);
//! impl Problem for Toy {
//!     fn space(&self) -> &SearchSpace { &self.0 }
//!     fn num_objectives(&self) -> usize { 2 }
//!     fn evaluate(&mut self, p: &Point) -> Option<Vec<f64>> {
//!         Some(vec![p[0] as f64, (10 - p[1]) as f64])
//!     }
//! }
//! let mut toy = Toy(SearchSpace::new(vec![11, 11]));
//! let result = RandomSearch::new(42).run(&mut toy, 20);
//! assert!(!result.pareto_front().is_empty());
//! ```

pub mod anneal;
pub mod gp;
pub mod hypervolume;
pub mod linalg;
pub mod mobo;
pub mod nsga2;
pub mod pareto;
pub mod problem;
pub mod random;

pub use problem::{Evaluation, OptimizerResult, Point, Problem, SearchSpace};

/// A budgeted multi-objective optimizer over a discrete space.
pub trait Optimizer {
    /// Runs the optimizer for at most `max_evals` problem evaluations and
    /// returns the full evaluation history.
    fn run(&mut self, problem: &mut dyn Problem, max_evals: usize) -> OptimizerResult;

    /// Name for reports.
    fn name(&self) -> &'static str;
}
