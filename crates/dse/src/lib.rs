//! Design-space exploration algorithms for HASCO (§V-B, Algorithm 1).
//!
//! This crate implements the hardware DSE machinery of the paper from
//! scratch:
//!
//! * [`mobo::Mobo`] — multi-objective Bayesian optimization with a
//!   Gaussian-process surrogate per objective and a hypervolume-based
//!   probability-of-improvement acquisition function (the paper's method);
//! * [`nsga2::Nsga2`] — the NSGA-II genetic algorithm \[22\] baseline;
//! * [`random::RandomSearch`] — the random-search baseline;
//! * [`pareto`] / [`hypervolume`] — Pareto-set maintenance and the exact
//!   hypervolume indicator used to compare convergence (Fig. 10).
//!
//! All optimizers minimize a vector of objectives over a discrete
//! [`problem::SearchSpace`] through the [`problem::Problem`] trait, and
//! record every evaluation so benches can replay convergence histories.
//!
//! # Example
//!
//! ```
//! use dse::problem::{Problem, SearchSpace, Point};
//! use dse::random::RandomSearch;
//! use dse::Optimizer;
//!
//! struct Toy(SearchSpace);
//! impl Problem for Toy {
//!     fn space(&self) -> &SearchSpace { &self.0 }
//!     fn num_objectives(&self) -> usize { 2 }
//!     fn evaluate(&mut self, p: &Point) -> Option<Vec<f64>> {
//!         Some(vec![p[0] as f64, (10 - p[1]) as f64])
//!     }
//! }
//! let mut toy = Toy(SearchSpace::new(vec![11, 11]));
//! let result = RandomSearch::new(42).run(&mut toy, 20);
//! assert!(!result.pareto_front().is_empty());
//! ```

pub mod anneal;
pub mod gp;
pub mod hypervolume;
pub mod linalg;
pub mod mobo;
pub mod nsga2;
pub mod pareto;
pub mod problem;
pub mod progress;
pub mod random;
pub mod staged;

pub use problem::{Evaluation, EvaluatorProblem, OptimizerResult, Point, Problem, SearchSpace};
pub use progress::{BatchUpdate, NoProgress, Progress};
pub use staged::{rank_top_k, FidelityStaged, StagedStats};
// The batch-evaluation seam: optimizers hand candidate batches to
// `Problem::evaluate_batch`; `EvaluatorProblem` adapts any standalone
// `BatchEvaluator` engine into that interface.
pub use runtime::{BatchEvaluator, WorkerPool};

/// A budgeted multi-objective optimizer over a discrete space.
pub trait Optimizer {
    /// Runs the optimizer for at most `max_evals` problem evaluations and
    /// returns the full evaluation history.
    ///
    /// Equivalent to [`Optimizer::run_with_progress`] with [`NoProgress`]
    /// — same trajectory, evaluation for evaluation.
    fn run(&mut self, problem: &mut dyn Problem, max_evals: usize) -> OptimizerResult {
        self.run_with_progress(problem, max_evals, &NoProgress)
    }

    /// Like [`Optimizer::run`], but reports every evaluated batch to
    /// `progress` (from the driver thread, in an order independent of the
    /// problem's internal parallelism) and stops early — returning the
    /// history so far — when the observer answers `false`.
    fn run_with_progress(
        &mut self,
        problem: &mut dyn Problem,
        max_evals: usize,
        progress: &dyn Progress,
    ) -> OptimizerResult;

    /// Name for reports.
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod batch_seam_tests {
    //! The seam contract: an optimizer driven through a problem with a
    //! custom `evaluate_batch` (here instrumented, as a parallel runtime
    //! would be) produces exactly the history the serial default produces.

    use crate::anneal::Annealer;
    use crate::mobo::Mobo;
    use crate::nsga2::Nsga2;
    use crate::problem::{Point, Problem, SearchSpace};
    use crate::Optimizer;

    fn objectives(p: &Point) -> Option<Vec<f64>> {
        // A hole makes infeasible paths exercise too.
        if (p[0] + p[1]).is_multiple_of(5) {
            return None;
        }
        let x = p[0] as f64 / 12.0;
        let y = p[1] as f64 / 12.0;
        Some(vec![0.1 + x * x + y, 0.1 + (1.0 - x) * (1.0 - x) + y])
    }

    struct Serial(SearchSpace);
    impl Problem for Serial {
        fn space(&self) -> &SearchSpace {
            &self.0
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&mut self, p: &Point) -> Option<Vec<f64>> {
            objectives(p)
        }
    }

    struct Batched {
        space: SearchSpace,
        batch_calls: usize,
        largest_batch: usize,
    }
    impl Problem for Batched {
        fn space(&self) -> &SearchSpace {
            &self.space
        }
        fn num_objectives(&self) -> usize {
            2
        }
        fn evaluate(&mut self, p: &Point) -> Option<Vec<f64>> {
            objectives(p)
        }
        fn evaluate_batch(&mut self, points: &[Point]) -> Vec<Option<Vec<f64>>> {
            self.batch_calls += 1;
            self.largest_batch = self.largest_batch.max(points.len());
            points.iter().map(objectives).collect()
        }
    }

    fn space() -> SearchSpace {
        SearchSpace::new(vec![13, 13])
    }

    #[test]
    fn optimizers_route_batches_through_the_seam() {
        let mut b = Batched {
            space: space(),
            batch_calls: 0,
            largest_batch: 0,
        };
        let _ = Nsga2::new(3).with_population(6).run(&mut b, 30);
        assert!(b.batch_calls > 0, "NSGA-II never used the batch seam");
        assert!(b.largest_batch > 1, "NSGA-II batches were all singletons");

        let mut b = Batched {
            space: space(),
            batch_calls: 0,
            largest_batch: 0,
        };
        let _ = Mobo::new(3).with_prior_samples(6).run(&mut b, 12);
        assert!(b.largest_batch > 1, "MOBO prior burst was not batched");

        let mut b = Batched {
            space: space(),
            batch_calls: 0,
            largest_batch: 0,
        };
        let _ = Annealer::new(3).with_probe_batch(4).run(&mut b, 20);
        assert!(b.largest_batch > 1, "annealer probes were not batched");
    }

    #[test]
    fn optimizers_accept_a_batch_evaluator_engine() {
        // The runtime seam end to end: a bare `BatchEvaluator` engine,
        // adapted through `EvaluatorProblem`, drives an optimizer to the
        // exact history the hand-written serial problem produces.
        use crate::problem::EvaluatorProblem;
        use runtime::batch::FnEvaluator;

        let engine = FnEvaluator::new(|p: &Point| objectives(p));
        let mut adapted = EvaluatorProblem::new(space(), 2, engine);
        let mut serial = Serial(space());
        assert_eq!(
            Mobo::new(5).with_prior_samples(5).run(&mut adapted, 15),
            Mobo::new(5).with_prior_samples(5).run(&mut serial, 15),
        );
    }

    #[test]
    fn batched_and_serial_histories_are_identical() {
        for seed in 0..3 {
            let mut s = Serial(space());
            let mut b = Batched {
                space: space(),
                batch_calls: 0,
                largest_batch: 0,
            };
            assert_eq!(
                Nsga2::new(seed).with_population(5).run(&mut s, 25),
                Nsga2::new(seed).with_population(5).run(&mut b, 25),
                "nsga2 seed {seed}"
            );

            let mut s = Serial(space());
            let mut b = Batched {
                space: space(),
                batch_calls: 0,
                largest_batch: 0,
            };
            assert_eq!(
                Mobo::new(seed).with_prior_samples(5).run(&mut s, 15),
                Mobo::new(seed).with_prior_samples(5).run(&mut b, 15),
                "mobo seed {seed}"
            );

            let mut s = Serial(space());
            let mut b = Batched {
                space: space(),
                batch_calls: 0,
                largest_batch: 0,
            };
            assert_eq!(
                Annealer::new(seed).with_probe_batch(3).run(&mut s, 20),
                Annealer::new(seed).with_probe_batch(3).run(&mut b, 20),
                "anneal seed {seed}"
            );
        }
    }
}
