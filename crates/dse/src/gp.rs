//! Gaussian-process regression — the MOBO surrogate model (§V-B: "we use a
//! Gaussian Process as the surrogate model ... cheap to evaluate").
//!
//! Squared-exponential (RBF) kernel on inputs normalized to `[0,1]^d`,
//! targets standardized to zero mean / unit variance, and a small
//! length-scale grid search by log marginal likelihood.
//!
//! [`GaussianProcess::fit`] is **deterministic**: the grid search, the
//! Cholesky factorization, and the solves are pure floating-point
//! sequences with no RNG or iteration-order dependence, so refitting from
//! the identical training rows reproduces the identical model bit for
//! bit. The surrogate cost tier's warm-restart persistence leans on this
//! — a restarted engine refits the GP from the restored training window
//! and must price exactly like the process that saved it.

use crate::linalg::{self, LinalgError, Matrix};

/// A fitted Gaussian process.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    xs: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Matrix,
    length_scale: f64,
    signal_var: f64,
    noise_var: f64,
    y_mean: f64,
    y_std: f64,
}

/// Posterior prediction at one input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posterior {
    /// Posterior mean (in the original target units).
    pub mean: f64,
    /// Posterior standard deviation (original units).
    pub std: f64,
}

fn rbf(a: &[f64], b: &[f64], length_scale: f64, signal_var: f64) -> f64 {
    let d2: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
    signal_var * (-d2 / (2.0 * length_scale * length_scale)).exp()
}

impl GaussianProcess {
    /// Fits a GP, selecting the RBF length scale from a small grid by log
    /// marginal likelihood.
    ///
    /// # Errors
    /// Returns [`LinalgError`] if every candidate kernel matrix fails to
    /// factorize (practically impossible with jitter).
    ///
    /// # Panics
    /// Panics if `xs` and `ys` differ in length or are empty.
    pub fn fit(xs: Vec<Vec<f64>>, ys: &[f64]) -> Result<Self, LinalgError> {
        assert_eq!(xs.len(), ys.len(), "inputs and targets must align");
        assert!(!xs.is_empty(), "cannot fit a GP on zero observations");
        let n = ys.len();
        let y_mean = ys.iter().sum::<f64>() / n as f64;
        let var = ys.iter().map(|y| (y - y_mean) * (y - y_mean)).sum::<f64>() / n as f64;
        let y_std = var.sqrt().max(1e-12);
        let yn: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

        let signal_var = 1.0;
        let noise_var = 1e-4;
        let mut best: Option<(f64, GaussianProcess)> = None;
        for &ls in &[0.1, 0.2, 0.35, 0.6, 1.0] {
            let k = Matrix::from_fn(n, n, |r, c| {
                rbf(&xs[r], &xs[c], ls, signal_var) + if r == c { noise_var } else { 0.0 }
            });
            let chol = match linalg::cholesky(&k) {
                Ok(l) => l,
                Err(_) => continue,
            };
            let alpha = linalg::cholesky_solve(&chol, &yn);
            // log p(y|X) = -0.5 yᵀα - Σ log L_ii - (n/2) log 2π
            let fit_term: f64 = -0.5 * yn.iter().zip(&alpha).map(|(y, a)| y * a).sum::<f64>();
            let logdet: f64 = (0..n).map(|i| chol[(i, i)].ln()).sum();
            let lml = fit_term - logdet - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
            let gp = GaussianProcess {
                xs: xs.clone(),
                alpha,
                chol,
                length_scale: ls,
                signal_var,
                noise_var,
                y_mean,
                y_std,
            };
            if best.as_ref().is_none_or(|(b, _)| lml > *b) {
                best = Some((lml, gp));
            }
        }
        best.map(|(_, gp)| gp)
            .ok_or(LinalgError::NotPositiveDefinite)
    }

    /// Like [`GaussianProcess::fit`], additionally reporting the fit's
    /// wall time to the telemetry side channel. Timing is
    /// observation-only — the fitted model is bit-identical to what
    /// [`GaussianProcess::fit`] returns, and a disabled handle skips the
    /// clock entirely.
    ///
    /// # Errors
    /// Same as [`GaussianProcess::fit`].
    ///
    /// # Panics
    /// Same as [`GaussianProcess::fit`].
    pub fn fit_reported(
        xs: Vec<Vec<f64>>,
        ys: &[f64],
        telemetry: &runtime::Telemetry,
    ) -> Result<Self, LinalgError> {
        if !telemetry.is_enabled() {
            return Self::fit(xs, ys);
        }
        let start = std::time::Instant::now();
        let out = Self::fit(xs, ys);
        telemetry.record_gp_fit(start.elapsed());
        out
    }

    /// The selected RBF length scale.
    pub fn length_scale(&self) -> f64 {
        self.length_scale
    }

    /// Posterior mean and standard deviation at `x`.
    pub fn predict(&self, x: &[f64]) -> Posterior {
        let kstar: Vec<f64> = self
            .xs
            .iter()
            .map(|xi| rbf(xi, x, self.length_scale, self.signal_var))
            .collect();
        let mean_n: f64 = kstar.iter().zip(&self.alpha).map(|(k, a)| k * a).sum();
        // var = k(x,x) + σn² − k*ᵀ K⁻¹ k* via the Cholesky factor.
        let v = linalg::solve_lower(&self.chol, &kstar);
        let explained: f64 = v.iter().map(|x| x * x).sum();
        let var_n = (self.signal_var + self.noise_var - explained).max(1e-12);
        Posterior {
            mean: mean_n * self.y_std + self.y_mean,
            std: var_n.sqrt() * self.y_std,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let xs = grid_1d(6);
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 3.0).sin()).collect();
        let gp = GaussianProcess::fit(xs.clone(), &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let p = gp.predict(x);
            assert!((p.mean - y).abs() < 0.05, "at {x:?}: {} vs {y}", p.mean);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let xs = vec![vec![0.0], vec![0.1]];
        let ys = vec![0.0, 0.1];
        let gp = GaussianProcess::fit(xs, &ys).unwrap();
        let near = gp.predict(&[0.05]).std;
        let far = gp.predict(&[1.0]).std;
        assert!(far > near);
    }

    #[test]
    fn predicts_smooth_function_between_points() {
        let xs = grid_1d(9);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let gp = GaussianProcess::fit(xs, &ys).unwrap();
        let p = gp.predict(&[0.3125]);
        assert!((p.mean - 0.3125f64 * 0.3125).abs() < 0.05);
    }

    #[test]
    fn handles_constant_targets() {
        let xs = grid_1d(4);
        let ys = vec![5.0; 4];
        let gp = GaussianProcess::fit(xs, &ys).unwrap();
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 5.0).abs() < 1e-6);
    }

    #[test]
    fn handles_duplicate_inputs() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.7]];
        let ys = vec![1.0, 1.2, 2.0];
        let gp = GaussianProcess::fit(xs, &ys).unwrap();
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 1.1).abs() < 0.3);
    }

    #[test]
    fn multi_dim_inputs() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                let x = vec![i as f64 / 4.0, j as f64 / 4.0];
                ys.push(x[0] + 2.0 * x[1]);
                xs.push(x);
            }
        }
        let gp = GaussianProcess::fit(xs, &ys).unwrap();
        let p = gp.predict(&[0.5, 0.5]);
        assert!((p.mean - 1.5).abs() < 0.1);
    }

    #[test]
    fn length_scale_is_from_grid() {
        let xs = grid_1d(5);
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let gp = GaussianProcess::fit(xs, &ys).unwrap();
        assert!([0.1, 0.2, 0.35, 0.6, 1.0].contains(&gp.length_scale()));
    }

    #[test]
    #[should_panic(expected = "zero observations")]
    fn empty_fit_panics() {
        let _ = GaussianProcess::fit(vec![], &[]);
    }

    #[test]
    fn refit_from_identical_rows_is_bit_identical() {
        // The warm-restart contract: a GP refit from restored training
        // rows must reproduce the saved process's predictions exactly —
        // same length scale, same posterior bits at training points,
        // between them, and far away.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..6 {
            for j in 0..4 {
                let x = vec![i as f64 / 5.0, j as f64 / 3.0];
                ys.push((x[0] * 3.0).sin() + 0.5 * x[1] * x[1]);
                xs.push(x);
            }
        }
        let a = GaussianProcess::fit(xs.clone(), &ys).unwrap();
        let b = GaussianProcess::fit(xs.clone(), &ys).unwrap();
        assert_eq!(a.length_scale(), b.length_scale());
        let probes: Vec<Vec<f64>> = xs
            .into_iter()
            .chain([vec![0.123, 0.456], vec![7.0, -3.0]])
            .collect();
        for x in &probes {
            let (pa, pb) = (a.predict(x), b.predict(x));
            assert_eq!(pa.mean.to_bits(), pb.mean.to_bits(), "mean at {x:?}");
            assert_eq!(pa.std.to_bits(), pb.std.to_bits(), "std at {x:?}");
        }
    }
}
