//! Gaussian-process regression — the MOBO surrogate model (§V-B: "we use a
//! Gaussian Process as the surrogate model ... cheap to evaluate").
//!
//! Squared-exponential (RBF) kernel on inputs normalized to `[0,1]^d`,
//! targets standardized to zero mean / unit variance, and a small
//! length-scale grid search by log marginal likelihood.
//!
//! [`GaussianProcess::fit`] is **deterministic**: the grid search, the
//! Cholesky factorization, and the solves are pure floating-point
//! sequences with no RNG or iteration-order dependence, so refitting from
//! the identical training rows reproduces the identical model bit for
//! bit. The surrogate cost tier's warm-restart persistence leans on this
//! — a restarted engine refits the GP from the restored training window
//! and must price exactly like the process that saved it.

use crate::linalg::{self, Cholesky, LinalgError, Matrix};

/// The RBF length-scale grid searched by log marginal likelihood.
const LENGTH_SCALE_GRID: [f64; 5] = [0.1, 0.2, 0.35, 0.6, 1.0];
/// RBF signal variance (targets are standardized, so 1.0).
const SIGNAL_VAR: f64 = 1.0;
/// Observation-noise variance added to the kernel diagonal.
const NOISE_VAR: f64 = 1e-4;

/// A fitted Gaussian process.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    xs: Vec<Vec<f64>>,
    alpha: Vec<f64>,
    chol: Matrix,
    length_scale: f64,
    y_mean: f64,
    y_std: f64,
}

/// Posterior prediction at one input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posterior {
    /// Posterior mean (in the original target units).
    pub mean: f64,
    /// Posterior standard deviation (original units).
    pub std: f64,
}

/// Reusable buffers for posterior predictions
/// ([`GaussianProcess::predict_with`]): holding them across calls makes
/// the prediction hot path allocation-free.
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    kstar: Vec<f64>,
    v: Vec<f64>,
}

fn rbf(a: &[f64], b: &[f64], length_scale: f64, signal_var: f64) -> f64 {
    let d2: f64 = a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum();
    signal_var * (-d2 / (2.0 * length_scale * length_scale)).exp()
}

/// Builds the jittered RBF kernel matrix for one length-scale candidate,
/// computing each off-diagonal entry **once** and mirroring it (the kernel
/// is symmetric, and `rbf(a, b)` ≡ `rbf(b, a)` bitwise — squared
/// differences are negation-invariant — so the filled matrix is
/// bit-identical to evaluating both triangles).
fn kernel_matrix(xs: &[Vec<f64>], ls: f64) -> Matrix {
    let n = xs.len();
    let mut k = Matrix::zeros(n, n);
    for r in 0..n {
        for c in 0..r {
            let v = rbf(&xs[r], &xs[c], ls, SIGNAL_VAR);
            k[(r, c)] = v;
            k[(c, r)] = v;
        }
        k[(r, r)] = rbf(&xs[r], &xs[r], ls, SIGNAL_VAR) + NOISE_VAR;
    }
    k
}

/// Factorizes the kernel matrix of every length-scale candidate from
/// scratch. `None` marks a candidate whose matrix is not positive definite
/// even with jitter (practically impossible).
fn factor_grid(xs: &[Vec<f64>]) -> Vec<Option<Cholesky>> {
    LENGTH_SCALE_GRID
        .iter()
        .map(|&ls| linalg::cholesky_jittered(&kernel_matrix(xs, ls)).ok())
        .collect()
}

/// The outcome of the length-scale grid search: the winning candidate
/// index plus everything derived from the targets.
#[derive(Debug, Clone)]
struct Selection {
    /// Index into [`LENGTH_SCALE_GRID`] / the factor grid.
    idx: usize,
    /// `K⁻¹·yn` for the winning candidate.
    alpha: Vec<f64>,
    y_mean: f64,
    y_std: f64,
}

/// Grid search by log marginal likelihood over pre-factorized candidates.
/// This is the **single** selection routine shared by the from-scratch
/// [`GaussianProcess::fit`] and the incremental [`IncrementalGp`], so the
/// two paths cannot diverge.
fn select(ys: &[f64], factors: &[Option<Cholesky>]) -> Result<Selection, LinalgError> {
    let n = ys.len();
    let y_mean = ys.iter().sum::<f64>() / n as f64;
    let var = ys.iter().map(|y| (y - y_mean) * (y - y_mean)).sum::<f64>() / n as f64;
    let y_std = var.sqrt().max(1e-12);
    let yn: Vec<f64> = ys.iter().map(|y| (y - y_mean) / y_std).collect();

    let mut best: Option<(f64, usize, Vec<f64>)> = None;
    for (idx, factor) in factors.iter().enumerate() {
        let Some(c) = factor else { continue };
        let alpha = linalg::cholesky_solve(&c.l, &yn);
        // log p(y|X) = -0.5 yᵀα - Σ log L_ii - (n/2) log 2π
        let fit_term: f64 = -0.5 * yn.iter().zip(&alpha).map(|(y, a)| y * a).sum::<f64>();
        let logdet: f64 = (0..n).map(|i| c.l[(i, i)].ln()).sum();
        let lml = fit_term - logdet - 0.5 * n as f64 * (2.0 * std::f64::consts::PI).ln();
        if best.as_ref().is_none_or(|(b, _, _)| lml > *b) {
            best = Some((lml, idx, alpha));
        }
    }
    best.map(|(_, idx, alpha)| Selection {
        idx,
        alpha,
        y_mean,
        y_std,
    })
    .ok_or(LinalgError::NotPositiveDefinite)
}

/// Shared posterior arithmetic — the one implementation behind
/// [`GaussianProcess::predict_with`] and [`IncrementalGp::predict_with`].
#[allow(clippy::too_many_arguments)]
fn posterior(
    xs: &[Vec<f64>],
    alpha: &[f64],
    chol: &Matrix,
    length_scale: f64,
    y_mean: f64,
    y_std: f64,
    x: &[f64],
    scratch: &mut PredictScratch,
) -> Posterior {
    scratch.kstar.clear();
    scratch
        .kstar
        .extend(xs.iter().map(|xi| rbf(xi, x, length_scale, SIGNAL_VAR)));
    let mean_n: f64 = scratch.kstar.iter().zip(alpha).map(|(k, a)| k * a).sum();
    // var = k(x,x) + σn² − k*ᵀ K⁻¹ k* via the Cholesky factor.
    linalg::solve_lower_into(chol, &scratch.kstar, &mut scratch.v);
    let explained: f64 = scratch.v.iter().map(|x| x * x).sum();
    let var_n = (SIGNAL_VAR + NOISE_VAR - explained).max(1e-12);
    Posterior {
        mean: mean_n * y_std + y_mean,
        std: var_n.sqrt() * y_std,
    }
}

impl GaussianProcess {
    /// Fits a GP, selecting the RBF length scale from a small grid by log
    /// marginal likelihood. Training rows are borrowed and copied exactly
    /// once (into the returned model) — no per-candidate clones.
    ///
    /// # Errors
    /// Returns [`LinalgError`] if every candidate kernel matrix fails to
    /// factorize (practically impossible with jitter).
    ///
    /// # Panics
    /// Panics if `xs` and `ys` differ in length or are empty.
    pub fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<Self, LinalgError> {
        assert_eq!(xs.len(), ys.len(), "inputs and targets must align");
        assert!(!xs.is_empty(), "cannot fit a GP on zero observations");
        let factors = factor_grid(xs);
        let sel = select(ys, &factors)?;
        Ok(Self::materialize(xs, &sel, &factors))
    }

    /// Builds the owned model from a selection over a factor grid.
    fn materialize(xs: &[Vec<f64>], sel: &Selection, factors: &[Option<Cholesky>]) -> Self {
        GaussianProcess {
            xs: xs.to_vec(),
            alpha: sel.alpha.clone(),
            chol: factors[sel.idx]
                .as_ref()
                .expect("selected candidate has a factor")
                .l
                .clone(),
            length_scale: LENGTH_SCALE_GRID[sel.idx],
            y_mean: sel.y_mean,
            y_std: sel.y_std,
        }
    }

    /// Like [`GaussianProcess::fit`], additionally reporting the fit's
    /// wall time to the telemetry side channel. Timing is
    /// observation-only — the fitted model is bit-identical to what
    /// [`GaussianProcess::fit`] returns, and a disabled handle skips the
    /// clock entirely.
    ///
    /// # Errors
    /// Same as [`GaussianProcess::fit`].
    ///
    /// # Panics
    /// Same as [`GaussianProcess::fit`].
    pub fn fit_reported(
        xs: &[Vec<f64>],
        ys: &[f64],
        telemetry: &runtime::Telemetry,
    ) -> Result<Self, LinalgError> {
        if !telemetry.is_enabled() {
            return Self::fit(xs, ys);
        }
        // detlint-allow(wall-clock): fit timing for the telemetry side channel; the enabled check above gates the read
        let start = std::time::Instant::now();
        let out = Self::fit(xs, ys);
        telemetry.record_gp_fit(start.elapsed());
        out
    }

    /// The selected RBF length scale.
    pub fn length_scale(&self) -> f64 {
        self.length_scale
    }

    /// Training-set size.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the model has no training rows (never true for a fitted
    /// model — fitting zero observations panics).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Posterior mean and standard deviation at `x`.
    ///
    /// Convenience wrapper over [`GaussianProcess::predict_with`] that
    /// allocates fresh scratch; hot paths should hold a
    /// [`PredictScratch`] and call `predict_with` (or
    /// [`GaussianProcess::predict_many`]) instead.
    pub fn predict(&self, x: &[f64]) -> Posterior {
        self.predict_with(x, &mut PredictScratch::default())
    }

    /// Posterior mean and standard deviation at `x`, reusing the caller's
    /// scratch buffers — allocation-free after the first call at a given
    /// training size, and bit-identical to [`GaussianProcess::predict`].
    pub fn predict_with(&self, x: &[f64], scratch: &mut PredictScratch) -> Posterior {
        posterior(
            &self.xs,
            &self.alpha,
            &self.chol,
            self.length_scale,
            self.y_mean,
            self.y_std,
            x,
            scratch,
        )
    }

    /// Batched posterior prediction: clears `out` and pushes one
    /// [`Posterior`] per input point, sharing one scratch allocation
    /// across the whole batch. Each entry is bit-identical to a
    /// standalone [`GaussianProcess::predict`] at the same point.
    pub fn predict_many(&self, points: &[Vec<f64>], out: &mut Vec<Posterior>) {
        let mut scratch = PredictScratch::default();
        out.clear();
        out.reserve(points.len());
        out.extend(points.iter().map(|x| self.predict_with(x, &mut scratch)));
    }
}

/// An incrementally trainable Gaussian process: maintains the jittered
/// kernel Cholesky factor of **every** length-scale candidate, so
/// appending one observation extends each factor by one row — O(n²) —
/// instead of refactorizing from scratch — O(n³). The length-scale grid
/// search is recomputed from the maintained factors on demand
/// ([`IncrementalGp::refresh`]), so model selection (and therefore every
/// prediction) is unchanged.
///
/// **Bit-exactness contract:** after any sequence of
/// [`IncrementalGp::push`] calls, [`IncrementalGp::model`] is
/// bit-identical to `GaussianProcess::fit(&xs, &ys)` on the same rows —
/// column-ordered Cholesky extension reproduces a from-scratch
/// factorization of the grown matrix exactly (see [`Cholesky::extend`]),
/// and selection/prediction share one implementation with the batch path.
/// When an extension's pivot fails (a from-scratch run would escalate the
/// diagonal jitter), the candidate falls back to a full refactorization —
/// rare, and still bit-identical by construction.
#[derive(Debug, Clone, Default)]
pub struct IncrementalGp {
    xs: Vec<Vec<f64>>,
    ys: Vec<f64>,
    /// One maintained factor per [`LENGTH_SCALE_GRID`] candidate (empty
    /// until the first push).
    factors: Vec<Option<Cholesky>>,
    /// The current grid-search outcome; invalidated by every push.
    selection: Option<Selection>,
    /// Scratch for the incoming kernel row.
    row: Vec<f64>,
}

impl IncrementalGp {
    /// An empty trainer.
    pub fn new() -> Self {
        IncrementalGp::default()
    }

    /// Training-set size.
    pub fn len(&self) -> usize {
        self.ys.len()
    }

    /// Whether no observations have been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// The training rows pushed so far, in order.
    pub fn rows(&self) -> (&[Vec<f64>], &[f64]) {
        (&self.xs, &self.ys)
    }

    /// Appends one observation, extending every candidate factor by one
    /// row (O(n²) per candidate; a full O(n³) refactorization only when a
    /// pivot fails, which a from-scratch fit would answer with escalated
    /// jitter too). Invalidates the current selection.
    pub fn push(&mut self, x: Vec<f64>, y: f64) {
        let n = self.xs.len();
        self.xs.push(x);
        self.ys.push(y);
        self.selection = None;
        if n == 0 {
            self.factors = factor_grid(&self.xs);
            return;
        }
        for (idx, &ls) in LENGTH_SCALE_GRID.iter().enumerate() {
            // The grown kernel matrix's new bottom row, jitter-free (the
            // factor applies its own); entry order matches the symmetric
            // fill in `kernel_matrix` exactly.
            self.row.clear();
            let xn = &self.xs[n];
            self.row
                .extend(self.xs[..n].iter().map(|xi| rbf(xn, xi, ls, SIGNAL_VAR)));
            self.row.push(rbf(xn, xn, ls, SIGNAL_VAR) + NOISE_VAR);
            let extended = match &mut self.factors[idx] {
                Some(factor) => factor.extend(&self.row),
                None => false,
            };
            if !extended {
                // A from-scratch fit would escalate jitter across the whole
                // matrix here (or had no factor to begin with): refactorize
                // so the maintained state keeps matching it bit for bit.
                self.factors[idx] = linalg::cholesky_jittered(&kernel_matrix(&self.xs, ls)).ok();
            }
        }
    }

    /// Re-runs the length-scale grid search from the maintained factors
    /// (O(n²): two triangular solves per candidate, no factorization).
    /// Until this (or [`IncrementalGp::model`]) is called after a push,
    /// [`IncrementalGp::predict_with`] has no model to read.
    ///
    /// # Errors
    /// [`LinalgError::NotPositiveDefinite`] when no candidate factorized.
    ///
    /// # Panics
    /// Panics when no observations have been pushed.
    pub fn refresh(&mut self) -> Result<(), LinalgError> {
        assert!(!self.ys.is_empty(), "cannot fit a GP on zero observations");
        self.selection = Some(select(&self.ys, &self.factors)?);
        Ok(())
    }

    /// Whether a selection is current (refreshed since the last push).
    pub fn is_refreshed(&self) -> bool {
        self.selection.is_some()
    }

    /// Posterior at `x` from the current selection, without materializing
    /// an owned model — bit-identical to
    /// `GaussianProcess::fit(&xs, &ys)?.predict(x)`.
    ///
    /// # Panics
    /// Panics when the trainer has not been [`IncrementalGp::refresh`]ed
    /// since the last push.
    pub fn predict_with(&self, x: &[f64], scratch: &mut PredictScratch) -> Posterior {
        let sel = self
            .selection
            .as_ref()
            .expect("refresh() the trainer before predicting");
        posterior(
            &self.xs,
            &sel.alpha,
            &self.factors[sel.idx]
                .as_ref()
                .expect("selected candidate has a factor")
                .l,
            LENGTH_SCALE_GRID[sel.idx],
            sel.y_mean,
            sel.y_std,
            x,
            scratch,
        )
    }

    /// Materializes the selected model as an owned [`GaussianProcess`],
    /// bit-identical to `GaussianProcess::fit(&xs, &ys)` on the same
    /// rows. Refreshes the selection if a push invalidated it.
    ///
    /// # Errors
    /// [`LinalgError::NotPositiveDefinite`] when no candidate factorized.
    ///
    /// # Panics
    /// Panics when no observations have been pushed.
    pub fn model(&mut self) -> Result<GaussianProcess, LinalgError> {
        if self.selection.is_none() {
            self.refresh()?;
        }
        let sel = self.selection.as_ref().expect("refresh succeeded");
        Ok(GaussianProcess::materialize(&self.xs, sel, &self.factors))
    }

    /// Like [`IncrementalGp::model`], reporting the selection's wall time
    /// to the telemetry side channel as a GP fit (the incremental
    /// counterpart of [`GaussianProcess::fit_reported`]). Timing is
    /// observation-only; a disabled handle skips the clock entirely.
    ///
    /// # Errors
    /// Same as [`IncrementalGp::model`].
    ///
    /// # Panics
    /// Same as [`IncrementalGp::model`].
    pub fn model_reported(
        &mut self,
        telemetry: &runtime::Telemetry,
    ) -> Result<GaussianProcess, LinalgError> {
        if !telemetry.is_enabled() {
            return self.model();
        }
        // detlint-allow(wall-clock): fit timing for the telemetry side channel; the enabled check above gates the read
        let start = std::time::Instant::now();
        let out = self.model();
        telemetry.record_gp_fit(start.elapsed());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_1d(n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|i| vec![i as f64 / (n - 1) as f64]).collect()
    }

    #[test]
    fn interpolates_training_points() {
        let xs = grid_1d(6);
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 3.0).sin()).collect();
        let gp = GaussianProcess::fit(&xs, &ys).unwrap();
        for (x, y) in xs.iter().zip(&ys) {
            let p = gp.predict(x);
            assert!((p.mean - y).abs() < 0.05, "at {x:?}: {} vs {y}", p.mean);
        }
    }

    #[test]
    fn uncertainty_grows_away_from_data() {
        let xs = vec![vec![0.0], vec![0.1]];
        let ys = vec![0.0, 0.1];
        let gp = GaussianProcess::fit(&xs, &ys).unwrap();
        let near = gp.predict(&[0.05]).std;
        let far = gp.predict(&[1.0]).std;
        assert!(far > near);
    }

    #[test]
    fn predicts_smooth_function_between_points() {
        let xs = grid_1d(9);
        let ys: Vec<f64> = xs.iter().map(|x| x[0] * x[0]).collect();
        let gp = GaussianProcess::fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.3125]);
        assert!((p.mean - 0.3125f64 * 0.3125).abs() < 0.05);
    }

    #[test]
    fn handles_constant_targets() {
        let xs = grid_1d(4);
        let ys = vec![5.0; 4];
        let gp = GaussianProcess::fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 5.0).abs() < 1e-6);
    }

    #[test]
    fn handles_duplicate_inputs() {
        let xs = vec![vec![0.5], vec![0.5], vec![0.7]];
        let ys = vec![1.0, 1.2, 2.0];
        let gp = GaussianProcess::fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.5]);
        assert!((p.mean - 1.1).abs() < 0.3);
    }

    #[test]
    fn multi_dim_inputs() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..5 {
            for j in 0..5 {
                let x = vec![i as f64 / 4.0, j as f64 / 4.0];
                ys.push(x[0] + 2.0 * x[1]);
                xs.push(x);
            }
        }
        let gp = GaussianProcess::fit(&xs, &ys).unwrap();
        let p = gp.predict(&[0.5, 0.5]);
        assert!((p.mean - 1.5).abs() < 0.1);
    }

    #[test]
    fn length_scale_is_from_grid() {
        let xs = grid_1d(5);
        let ys: Vec<f64> = xs.iter().map(|x| x[0]).collect();
        let gp = GaussianProcess::fit(&xs, &ys).unwrap();
        assert!([0.1, 0.2, 0.35, 0.6, 1.0].contains(&gp.length_scale()));
    }

    #[test]
    #[should_panic(expected = "zero observations")]
    fn empty_fit_panics() {
        let _ = GaussianProcess::fit(&[], &[]);
    }

    #[test]
    fn refit_from_identical_rows_is_bit_identical() {
        // The warm-restart contract: a GP refit from restored training
        // rows must reproduce the saved process's predictions exactly —
        // same length scale, same posterior bits at training points,
        // between them, and far away.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..6 {
            for j in 0..4 {
                let x = vec![i as f64 / 5.0, j as f64 / 3.0];
                ys.push((x[0] * 3.0).sin() + 0.5 * x[1] * x[1]);
                xs.push(x);
            }
        }
        let a = GaussianProcess::fit(&xs, &ys).unwrap();
        let b = GaussianProcess::fit(&xs, &ys).unwrap();
        assert_eq!(a.length_scale(), b.length_scale());
        let probes: Vec<Vec<f64>> = xs
            .into_iter()
            .chain([vec![0.123, 0.456], vec![7.0, -3.0]])
            .collect();
        for x in &probes {
            let (pa, pb) = (a.predict(x), b.predict(x));
            assert_eq!(pa.mean.to_bits(), pb.mean.to_bits(), "mean at {x:?}");
            assert_eq!(pa.std.to_bits(), pb.std.to_bits(), "std at {x:?}");
        }
    }

    /// Asserts the two models agree to the bit at every probe.
    fn assert_models_bit_identical(a: &GaussianProcess, b: &GaussianProcess, probes: &[Vec<f64>]) {
        assert_eq!(a.length_scale().to_bits(), b.length_scale().to_bits());
        for x in probes {
            let (pa, pb) = (a.predict(x), b.predict(x));
            assert_eq!(pa.mean.to_bits(), pb.mean.to_bits(), "mean at {x:?}");
            assert_eq!(pa.std.to_bits(), pb.std.to_bits(), "std at {x:?}");
        }
    }

    #[test]
    fn incremental_appends_match_from_scratch_bit_for_bit() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..8 {
            for j in 0..3 {
                let x = vec![i as f64 / 7.0, j as f64 / 2.0];
                ys.push((x[0] * 4.0).cos() + x[1]);
                xs.push(x);
            }
        }
        let probes = [vec![0.31, 0.62], vec![0.0, 0.0], vec![5.0, -2.0]];
        let mut inc = IncrementalGp::new();
        for (i, (x, y)) in xs.iter().zip(&ys).enumerate() {
            inc.push(x.clone(), *y);
            let scratch = GaussianProcess::fit(&xs[..=i], &ys[..=i]).unwrap();
            let incremental = inc.model().unwrap();
            assert_models_bit_identical(&incremental, &scratch, &probes);
        }
    }

    #[test]
    fn incremental_survives_near_duplicate_rows() {
        // Near-duplicate inputs drive the kernel matrix toward
        // singularity (the noise diagonal keeps it barely positive
        // definite); extension pivots shrink to the noise floor and
        // must still match a from-scratch fit bit for bit.
        let mut inc = IncrementalGp::new();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..10 {
            let x = vec![0.5 + 1e-13 * (i % 3) as f64];
            let y = 1.0 + 0.1 * i as f64;
            inc.push(x.clone(), y);
            xs.push(x);
            ys.push(y);
        }
        let scratch = GaussianProcess::fit(&xs, &ys).unwrap();
        let incremental = inc.model().unwrap();
        assert_models_bit_identical(&incremental, &scratch, &[vec![0.5], vec![0.9]]);
    }

    #[test]
    fn incremental_predict_with_matches_materialized_model() {
        let xs = grid_1d(7);
        let ys: Vec<f64> = xs.iter().map(|x| (x[0] * 2.0).exp()).collect();
        let mut inc = IncrementalGp::new();
        for (x, y) in xs.iter().zip(&ys) {
            inc.push(x.clone(), *y);
        }
        inc.refresh().unwrap();
        assert!(inc.is_refreshed());
        let model = inc.model().unwrap();
        let mut scratch = PredictScratch::default();
        for x in &[vec![0.25], vec![0.8], vec![3.0]] {
            let direct = inc.predict_with(x, &mut scratch);
            let via_model = model.predict(x);
            assert_eq!(direct.mean.to_bits(), via_model.mean.to_bits());
            assert_eq!(direct.std.to_bits(), via_model.std.to_bits());
        }
    }

    #[test]
    #[should_panic(expected = "refresh() the trainer")]
    fn incremental_predict_requires_refresh() {
        let mut inc = IncrementalGp::new();
        inc.push(vec![0.0], 1.0);
        let _ = inc.predict_with(&[0.5], &mut PredictScratch::default());
    }

    #[test]
    #[should_panic(expected = "zero observations")]
    fn incremental_refresh_on_empty_panics() {
        let _ = IncrementalGp::new().refresh();
    }

    #[test]
    fn predict_with_reuses_scratch_and_matches_predict() {
        let xs = grid_1d(10);
        let ys: Vec<f64> = xs.iter().map(|x| x[0].sqrt()).collect();
        let gp = GaussianProcess::fit(&xs, &ys).unwrap();
        let mut scratch = PredictScratch::default();
        for x in &[vec![0.1], vec![0.55], vec![2.0]] {
            let fresh = gp.predict(x);
            let reused = gp.predict_with(x, &mut scratch);
            assert_eq!(fresh.mean.to_bits(), reused.mean.to_bits());
            assert_eq!(fresh.std.to_bits(), reused.std.to_bits());
        }
    }

    #[test]
    fn predict_many_matches_individual_predictions() {
        let xs = grid_1d(6);
        let ys: Vec<f64> = xs.iter().map(|x| 1.0 - x[0]).collect();
        let gp = GaussianProcess::fit(&xs, &ys).unwrap();
        let points: Vec<Vec<f64>> = (0..9).map(|i| vec![i as f64 / 8.0]).collect();
        let mut batch = Vec::new();
        gp.predict_many(&points, &mut batch);
        assert_eq!(batch.len(), points.len());
        for (x, b) in points.iter().zip(&batch) {
            let single = gp.predict(x);
            assert_eq!(single.mean.to_bits(), b.mean.to_bits());
            assert_eq!(single.std.to_bits(), b.std.to_bits());
        }
    }

    #[test]
    fn incremental_len_and_rows_track_pushes() {
        let mut inc = IncrementalGp::new();
        assert!(inc.is_empty());
        inc.push(vec![0.1], 2.0);
        inc.push(vec![0.9], 3.0);
        assert_eq!(inc.len(), 2);
        let (rx, ry) = inc.rows();
        assert_eq!(rx, &[vec![0.1], vec![0.9]]);
        assert_eq!(ry, &[2.0, 3.0]);
    }
}
