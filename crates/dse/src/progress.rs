//! Progress observation for long-running optimizer loops.
//!
//! A resident co-design engine wants two things from the optimizers it
//! hosts: a live view of where a run is (which batch, how much was
//! feasible) and a way to stop a run early when its job is cancelled.
//! [`Progress`] is that seam — optimizers call [`Progress::on_batch`]
//! from their **driver thread** after every evaluated batch, in a
//! deterministic order that depends only on the run's parameters (never
//! on worker-thread timing), so observed event streams are bit-identical
//! across thread counts and scheduler modes. Returning `false` stops the
//! run early; the optimizer returns whatever history it accumulated.
//!
//! The default implementation ([`NoProgress`], used by
//! [`Optimizer::run`](crate::Optimizer::run)) observes nothing and never
//! stops, so plain `run` calls behave exactly as before the seam existed.

/// One evaluated batch, as reported by an optimizer loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchUpdate<'a> {
    /// The reporting optimizer (`"mobo"`, `"nsga2"`, …) or `"sw-explorer"`
    /// for the software-exploration rounds.
    pub optimizer: &'a str,
    /// The loop phase: `"prior"` / `"acquire"` (MOBO), `"generation"`
    /// (NSGA-II), `"probe"` / `"walk"` (annealer), `"sample"` (random
    /// search), `"round"` (software explorer).
    pub phase: &'a str,
    /// 1-based batch sequence number within the run.
    pub batch: usize,
    /// Evaluations submitted in this batch.
    pub evaluated: usize,
    /// How many of them were feasible.
    pub feasible: usize,
}

/// Observer of optimizer progress; see the module docs.
pub trait Progress: Send + Sync + std::fmt::Debug {
    /// Called after each evaluated batch; return `false` to stop the run
    /// early (the optimizer returns its history so far).
    fn on_batch(&self, update: &BatchUpdate<'_>) -> bool {
        let _ = update;
        true
    }
}

/// The do-nothing observer: no reporting, no early stop.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoProgress;

impl Progress for NoProgress {}

/// One recorded update: `(optimizer, phase, batch, evaluated, feasible)`.
pub type Recorded = (String, String, usize, usize, usize);

/// A recording observer for tests: collects every update and optionally
/// stops the run after a fixed number of batches.
#[derive(Debug, Default)]
pub struct Recorder {
    /// Every update reported so far.
    pub seen: std::sync::Mutex<Vec<Recorded>>,
    /// Stop the run after this many batches (`0` = never).
    pub stop_after: usize,
}

impl Recorder {
    /// A recorder that never stops the run.
    pub fn new() -> Self {
        Recorder::default()
    }

    /// A recorder that stops the run after `n` batches.
    pub fn stopping_after(n: usize) -> Self {
        Recorder {
            stop_after: n,
            ..Recorder::default()
        }
    }

    /// Number of batches observed so far.
    pub fn batches(&self) -> usize {
        self.seen.lock().expect("recorder poisoned").len()
    }
}

impl Progress for Recorder {
    fn on_batch(&self, update: &BatchUpdate<'_>) -> bool {
        let mut seen = self.seen.lock().expect("recorder poisoned");
        seen.push((
            update.optimizer.to_string(),
            update.phase.to_string(),
            update.batch,
            update.evaluated,
            update.feasible,
        ));
        self.stop_after == 0 || seen.len() < self.stop_after
    }
}
