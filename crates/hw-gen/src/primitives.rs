//! The hardware primitives of the paper's Fig. 6 and the `createArch`
//! description API of Listing 2.
//!
//! "We use a sequence of the parametric hardware primitives to form the
//! skeleton of a spatial accelerator, and the primitive factors (accelerator
//! parameters) compose the design space."

use accel_model::{AcceleratorConfig, Dataflow, Interconnect};
use serde::{Deserialize, Serialize};
use tensor_ir::intrinsics::IntrinsicKind;

/// One parametric hardware primitive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HwPrimitive {
    /// `reshapeArray(x, y)` — organize PEs into a 2-D array (1-D if a
    /// dimension is 1). Also fixes the intrinsic size.
    ReshapeArray {
        /// PE rows.
        rows: u32,
        /// PE columns.
        cols: u32,
    },
    /// `linkPEs(pattern)` — PE interconnect.
    LinkPes {
        /// The interconnect pattern.
        pattern: Interconnect,
    },
    /// `addCache(size)` — embed a scratchpad shared by all PEs.
    AddCache {
        /// Capacity in bytes.
        bytes: u64,
    },
    /// `distributeCache(c)` — distribute part of the memory into per-PE
    /// local memories.
    DistributeCache {
        /// Local memory per PE in bytes.
        bytes_per_pe: u64,
    },
    /// `partitionBanks(c, num)` — partition the scratchpad into banks.
    PartitionBanks {
        /// Bank count.
        banks: u32,
    },
    /// `burstTransfer(c, len, buswd)` — DMA controller between the cache
    /// and DRAM.
    BurstTransfer {
        /// Burst length in bytes.
        burst_bytes: u64,
        /// Bus width in bits.
        bus_width_bits: u32,
    },
}

impl std::fmt::Display for HwPrimitive {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HwPrimitive::ReshapeArray { rows, cols } => write!(f, "reshapeArray({rows}, {cols})"),
            HwPrimitive::LinkPes { pattern } => write!(f, "linkPEs(\"{pattern}\")"),
            HwPrimitive::AddCache { bytes } => write!(f, "addCache({bytes})"),
            HwPrimitive::DistributeCache { bytes_per_pe } => {
                write!(f, "distributeCache({bytes_per_pe})")
            }
            HwPrimitive::PartitionBanks { banks } => write!(f, "partitionBanks({banks})"),
            HwPrimitive::BurstTransfer {
                burst_bytes,
                bus_width_bits,
            } => {
                write!(f, "burstTransfer({burst_bytes}, {bus_width_bits})")
            }
        }
    }
}

/// An accelerator described as a primitive sequence (the paper's
/// `acc = createArch(method, intrinsic)` object).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ArchDescription {
    /// Generation method name (`"chisel"`, `"gemmini"`, ...).
    pub method: String,
    /// The hardware intrinsic family.
    pub intrinsic: IntrinsicKind,
    /// The primitive sequence, in application order.
    pub primitives: Vec<HwPrimitive>,
    /// The dataflow (selected by the generator, not a Fig. 6 primitive).
    pub dataflow: Dataflow,
}

impl ArchDescription {
    /// Starts a description — the paper's `createArch`.
    pub fn new(method: impl Into<String>, intrinsic: IntrinsicKind) -> Self {
        ArchDescription {
            method: method.into(),
            intrinsic,
            primitives: Vec::new(),
            dataflow: Dataflow::OutputStationary,
        }
    }

    /// Appends `reshapeArray`.
    pub fn reshape_array(&mut self, rows: u32, cols: u32) -> &mut Self {
        self.primitives
            .push(HwPrimitive::ReshapeArray { rows, cols });
        self
    }

    /// Appends `linkPEs`.
    pub fn link_pes(&mut self, pattern: Interconnect) -> &mut Self {
        self.primitives.push(HwPrimitive::LinkPes { pattern });
        self
    }

    /// Appends `addCache`.
    pub fn add_cache(&mut self, bytes: u64) -> &mut Self {
        self.primitives.push(HwPrimitive::AddCache { bytes });
        self
    }

    /// Appends `distributeCache`.
    pub fn distribute_cache(&mut self, bytes_per_pe: u64) -> &mut Self {
        self.primitives
            .push(HwPrimitive::DistributeCache { bytes_per_pe });
        self
    }

    /// Appends `partitionBanks`.
    pub fn partition_banks(&mut self, banks: u32) -> &mut Self {
        self.primitives.push(HwPrimitive::PartitionBanks { banks });
        self
    }

    /// Appends `burstTransfer`.
    pub fn burst_transfer(&mut self, burst_bytes: u64, bus_width_bits: u32) -> &mut Self {
        self.primitives.push(HwPrimitive::BurstTransfer {
            burst_bytes,
            bus_width_bits,
        });
        self
    }

    /// Sets the dataflow.
    pub fn with_dataflow(&mut self, dataflow: Dataflow) -> &mut Self {
        self.dataflow = dataflow;
        self
    }

    /// Lowers the primitive sequence to a concrete accelerator
    /// configuration. Later primitives override earlier ones (the paper's
    /// sequences set each knob once).
    ///
    /// # Errors
    /// Returns the configuration's validation error if the sequence
    /// describes an illegal accelerator.
    pub fn to_config(&self) -> Result<AcceleratorConfig, accel_model::ArchError> {
        let mut b = AcceleratorConfig::builder(self.intrinsic);
        b.name(format!("{}-{}", self.method, self.intrinsic));
        b.dataflow(self.dataflow);
        for p in &self.primitives {
            match *p {
                HwPrimitive::ReshapeArray { rows, cols } => {
                    b.pe_array(rows, cols);
                }
                HwPrimitive::LinkPes { pattern } => {
                    b.interconnect(pattern);
                }
                HwPrimitive::AddCache { bytes } => {
                    b.scratchpad_kb(bytes / 1024);
                }
                HwPrimitive::DistributeCache { bytes_per_pe } => {
                    b.local_mem_bytes(bytes_per_pe);
                }
                HwPrimitive::PartitionBanks { banks } => {
                    b.banks(banks);
                }
                HwPrimitive::BurstTransfer {
                    burst_bytes,
                    bus_width_bits,
                } => {
                    b.dma(burst_bytes, bus_width_bits);
                }
            }
        }
        b.build()
    }

    /// Renders the sequence as the paper's pseudo-Python (Listing 2 style).
    pub fn to_script(&self) -> String {
        let mut s = format!(
            "acc = createArch(method = \"{}\", intrinsic = {})\n",
            self.method, self.intrinsic
        );
        for p in &self.primitives {
            s.push_str(&format!("acc.{p}\n"));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn listing2() -> ArchDescription {
        let mut acc = ArchDescription::new("chisel", IntrinsicKind::Gemm);
        acc.reshape_array(16, 16)
            .link_pes(Interconnect::Systolic)
            .add_cache(256 * 1024)
            .burst_transfer(64, 128);
        acc
    }

    #[test]
    fn listing2_lowers_to_expected_config() {
        let cfg = listing2().to_config().unwrap();
        assert_eq!(cfg.pes(), 256);
        assert_eq!(cfg.scratchpad_bytes, 256 * 1024);
        assert_eq!(cfg.interconnect, Interconnect::Systolic);
        assert_eq!(cfg.dma_burst_bytes, 64);
        assert_eq!(cfg.bus_width_bits, 128);
    }

    #[test]
    fn later_primitives_override() {
        let mut acc = listing2();
        acc.reshape_array(8, 8).partition_banks(8);
        let cfg = acc.to_config().unwrap();
        assert_eq!(cfg.pes(), 64);
        assert_eq!(cfg.banks, 8);
    }

    #[test]
    fn distribute_cache_sets_local_memory() {
        let mut acc = listing2();
        acc.distribute_cache(1024);
        assert_eq!(acc.to_config().unwrap().local_mem_bytes, 1024);
    }

    #[test]
    fn invalid_sequence_is_rejected() {
        let mut acc = listing2();
        acc.reshape_array(0, 16);
        assert!(acc.to_config().is_err());
    }

    #[test]
    fn script_rendering_matches_paper_style() {
        let script = listing2().to_script();
        assert!(script.contains("createArch(method = \"chisel\", intrinsic = gemm)"));
        assert!(script.contains("acc.reshapeArray(16, 16)"));
        assert!(script.contains("acc.linkPEs(\"systolic\")"));
        assert!(script.contains("acc.addCache(262144)"));
        assert!(script.contains("acc.burstTransfer(64, 128)"));
    }

    #[test]
    fn dataflow_is_carried_through() {
        let mut acc = listing2();
        acc.with_dataflow(Dataflow::WeightStationary);
        assert_eq!(
            acc.to_config().unwrap().dataflow,
            Dataflow::WeightStationary
        );
    }

    #[test]
    fn primitive_display() {
        assert_eq!(
            HwPrimitive::PartitionBanks { banks: 4 }.to_string(),
            "partitionBanks(4)"
        );
        assert_eq!(
            HwPrimitive::DistributeCache { bytes_per_pe: 512 }.to_string(),
            "distributeCache(512)"
        );
    }
}
