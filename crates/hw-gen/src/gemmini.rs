//! A Gemmini-style systolic GEMM generator \[24\].
//!
//! Gemmini builds square power-of-two systolic arrays; the paper's Table III
//! analysis leans on this constraint ("GEMMCore constrains its PE array
//! shape to be 2^n × 2^n. Under this PE constraint and the power constraint,
//! MOBO converges to the optimal PE array shape").

use accel_model::{AcceleratorConfig, Dataflow, Interconnect};
use tensor_ir::intrinsics::IntrinsicKind;

use crate::primitives::ArchDescription;
use crate::space::{DesignPoint, Generator, HwDesignSpace, ParamDim};
use crate::GenError;

/// Gemmini-style GEMM accelerator generator.
#[derive(Debug, Clone)]
pub struct GemminiGenerator {
    space: HwDesignSpace,
}

impl GemminiGenerator {
    /// Creates the generator with its design space: PE side ∈ {4..64}
    /// (powers of two), scratchpad 64 KB–2 MB, 1–8 banks, local memory,
    /// burst and bus knobs.
    pub fn new() -> Self {
        let dims = vec![
            ParamDim::new("pe_exp", vec![2, 3, 4, 5, 6]), // side = 2^exp
            ParamDim::new("spad_kb", vec![64, 128, 256, 512, 1024, 1536, 2048]),
            ParamDim::new("banks", vec![1, 2, 3, 4, 5, 6, 7, 8]),
            ParamDim::new("local_bytes", vec![0, 256, 512]),
            ParamDim::new("burst_bytes", vec![32, 64, 128, 256]),
            ParamDim::new("bus_bits", vec![64, 128, 256]),
        ];
        GemminiGenerator {
            space: HwDesignSpace::new(dims),
        }
    }

    /// The default configuration used as the paper's Table III baseline in
    /// the given scenario: 8×8 PEs / 256 KB / 4 banks at the edge,
    /// 64×64 PEs / 1 MB / 4 banks in the cloud.
    pub fn baseline(cloud: bool) -> AcceleratorConfig {
        let mut desc = ArchDescription::new("gemmini", IntrinsicKind::Gemm);
        if cloud {
            desc.reshape_array(64, 64).add_cache(1024 * 1024);
        } else {
            desc.reshape_array(8, 8).add_cache(256 * 1024);
        }
        desc.link_pes(Interconnect::Systolic)
            .partition_banks(4)
            .burst_transfer(64, 128)
            .with_dataflow(Dataflow::OutputStationary);
        let mut cfg = desc.to_config().expect("baseline config is valid");
        cfg.name = if cloud {
            "baseline-gemmcore-cloud"
        } else {
            "baseline-gemmcore-edge"
        }
        .into();
        cfg
    }
}

impl Default for GemminiGenerator {
    fn default() -> Self {
        GemminiGenerator::new()
    }
}

impl Generator for GemminiGenerator {
    fn name(&self) -> &str {
        "gemmini"
    }

    fn space(&self) -> &HwDesignSpace {
        &self.space
    }

    fn generate(&self, point: &DesignPoint) -> Result<AcceleratorConfig, GenError> {
        let v = self.space.values(point)?;
        let side = 1u32 << v[0];
        let mut desc = ArchDescription::new("gemmini", IntrinsicKind::Gemm);
        desc.reshape_array(side, side)
            .link_pes(Interconnect::Systolic)
            .add_cache(v[1] * 1024)
            .partition_banks(v[2] as u32)
            .distribute_cache(v[3])
            .burst_transfer(v[4], v[5] as u32)
            .with_dataflow(Dataflow::OutputStationary);
        desc.to_config()
            .map_err(|e| GenError::InvalidConfig(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn arrays_are_square_powers_of_two() {
        let g = GemminiGenerator::new();
        let mut rng = SmallRng::seed_from_u64(11);
        for _ in 0..100 {
            let p = g.space().random_point(&mut rng);
            let cfg = g.generate(&p).unwrap();
            assert_eq!(cfg.pe.rows, cfg.pe.cols);
            assert!(cfg.pe.rows.is_power_of_two());
            assert_eq!(cfg.intrinsic, IntrinsicKind::Gemm);
            assert_eq!(cfg.interconnect, Interconnect::Systolic);
        }
    }

    #[test]
    fn space_covers_4_to_64() {
        let g = GemminiGenerator::new();
        let small = g.generate(&vec![0, 0, 0, 0, 0, 0]).unwrap();
        assert_eq!(small.pes(), 16);
        let big = g.generate(&vec![4, 0, 0, 0, 0, 0]).unwrap();
        assert_eq!(big.pes(), 4096); // the paper's cloud PE count
    }

    #[test]
    fn baselines_match_table3_defaults() {
        let edge = GemminiGenerator::baseline(false);
        assert_eq!(edge.pes(), 64);
        assert_eq!(edge.scratchpad_bytes, 256 * 1024);
        assert_eq!(edge.banks, 4);
        let cloud = GemminiGenerator::baseline(true);
        assert_eq!(cloud.pes(), 4096);
        assert_eq!(cloud.scratchpad_bytes, 1024 * 1024);
        assert_eq!(cloud.banks, 4);
    }

    #[test]
    fn space_size_is_nontrivial() {
        assert_eq!(
            GemminiGenerator::new().space().size(),
            5 * 7 * 8 * 3 * 4 * 3
        );
    }

    #[test]
    fn default_is_new() {
        assert_eq!(
            GemminiGenerator::default().space().size(),
            GemminiGenerator::new().space().size()
        );
    }
}
