//! The built-in Chisel-style generator: supports all four common intrinsics
//! and places no constraint on the PE array shape (this is what gives the
//! paper's ConvCore its extra freedom over GEMMCore in Table III).

use accel_model::{AcceleratorConfig, Dataflow, Interconnect};
use tensor_ir::intrinsics::IntrinsicKind;

use crate::primitives::ArchDescription;
use crate::space::{DesignPoint, Generator, HwDesignSpace, ParamDim};
use crate::GenError;

/// The built-in generator (the paper's "our Chisel generator, which
/// translates the four common intrinsics and the hardware primitives into
/// spatial accelerators").
#[derive(Debug, Clone)]
pub struct ChiselGenerator {
    intrinsic: IntrinsicKind,
    space: HwDesignSpace,
    name: String,
}

impl ChiselGenerator {
    /// Full design space: PE shape (unconstrained), scratchpad size, banks,
    /// local memory, DMA burst/bus, dataflow, interconnect.
    pub fn new(intrinsic: IntrinsicKind) -> Self {
        let dims = vec![
            ParamDim::new("pe_rows", vec![4, 8, 11, 12, 16, 24, 32, 64]),
            ParamDim::new("pe_cols", vec![4, 8, 11, 12, 16, 24, 32, 64]),
            ParamDim::new("spad_kb", vec![64, 128, 256, 320, 512, 1024, 1536]),
            ParamDim::new("banks", vec![1, 2, 3, 4, 5, 6, 7, 8]),
            ParamDim::new("local_bytes", vec![0, 256, 512, 1024]),
            ParamDim::new("burst_bytes", vec![32, 64, 128, 256]),
            ParamDim::new("bus_bits", vec![64, 128, 256]),
            ParamDim::new("dataflow", vec![0, 1, 2]),
            ParamDim::new("interconnect", vec![0, 1, 2]),
        ];
        ChiselGenerator {
            intrinsic,
            space: HwDesignSpace::new(dims),
            name: format!("chisel-{intrinsic}"),
        }
    }

    /// The reduced two-knob space of the paper's ground-truth study
    /// (§VII-C: "we only explore the PE array shape and bank number"), with
    /// square PE arrays from 4×4 to 32×32 and 1–8 banks.
    pub fn ground_truth(intrinsic: IntrinsicKind) -> Self {
        let dims = vec![
            ParamDim::new("pe_side", vec![4, 8, 12, 16, 20, 24, 28, 32]),
            ParamDim::new("banks", vec![1, 2, 3, 4, 5, 6, 7, 8]),
        ];
        ChiselGenerator {
            intrinsic,
            space: HwDesignSpace::new(dims),
            name: format!("chisel-gt-{intrinsic}"),
        }
    }

    /// The intrinsic this generator builds accelerators for.
    pub fn intrinsic(&self) -> IntrinsicKind {
        self.intrinsic
    }

    fn decode_dataflow(v: u64) -> Dataflow {
        match v {
            0 => Dataflow::OutputStationary,
            1 => Dataflow::WeightStationary,
            _ => Dataflow::InputStationary,
        }
    }

    fn decode_interconnect(v: u64) -> Interconnect {
        match v {
            0 => Interconnect::Systolic,
            1 => Interconnect::Full,
            _ => Interconnect::None,
        }
    }
}

impl Generator for ChiselGenerator {
    fn name(&self) -> &str {
        &self.name
    }

    fn space(&self) -> &HwDesignSpace {
        &self.space
    }

    fn generate(&self, point: &DesignPoint) -> Result<AcceleratorConfig, GenError> {
        let v = self.space.values(point)?;
        let mut desc = ArchDescription::new("chisel", self.intrinsic);
        if self.space.len() == 2 {
            // Ground-truth space: (pe_side, banks); other knobs fixed to the
            // paper's defaults.
            desc.reshape_array(v[0] as u32, v[0] as u32)
                .link_pes(Interconnect::Systolic)
                .add_cache(256 * 1024)
                .partition_banks(v[1] as u32)
                .burst_transfer(64, 128);
        } else {
            desc.reshape_array(v[0] as u32, v[1] as u32)
                .link_pes(Self::decode_interconnect(v[8]))
                .add_cache(v[2] * 1024)
                .partition_banks(v[3] as u32)
                .distribute_cache(v[4])
                .burst_transfer(v[5], v[6] as u32)
                .with_dataflow(Self::decode_dataflow(v[7]));
        }
        desc.to_config()
            .map_err(|e| GenError::InvalidConfig(e.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn full_space_is_large() {
        let g = ChiselGenerator::new(IntrinsicKind::Conv2d);
        // The paper says GEMM accelerator spaces are ~1e9; ours is smaller
        // but still far beyond exhaustive search inside a DSE budget.
        assert!(g.space().size() > 1_000_000, "size = {}", g.space().size());
    }

    #[test]
    fn ground_truth_space_is_8x8() {
        let g = ChiselGenerator::ground_truth(IntrinsicKind::Conv2d);
        assert_eq!(g.space().size(), 64);
    }

    #[test]
    fn all_ground_truth_points_decode() {
        let g = ChiselGenerator::ground_truth(IntrinsicKind::Conv2d);
        for p in g.space().iter_all() {
            let cfg = g.generate(&p).unwrap();
            assert!(cfg.validate().is_ok());
            assert_eq!(cfg.pe.rows, cfg.pe.cols);
        }
    }

    #[test]
    fn random_full_points_decode() {
        let g = ChiselGenerator::new(IntrinsicKind::Gemm);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..200 {
            let p = g.space().random_point(&mut rng);
            let cfg = g.generate(&p).unwrap();
            assert!(cfg.validate().is_ok());
        }
    }

    #[test]
    fn knobs_reach_config() {
        let g = ChiselGenerator::new(IntrinsicKind::Gemm);
        // pe_rows=8 (idx 1), pe_cols=16 (idx 4), spad=512 (idx 4), banks=8
        // (idx 7), local=512 (idx 2), burst=128 (idx 2), bus=256 (idx 2),
        // dataflow=WS (idx 1), interconnect=Full (idx 1).
        let cfg = g.generate(&vec![1, 4, 4, 7, 2, 2, 2, 1, 1]).unwrap();
        assert_eq!(cfg.pe.rows, 8);
        assert_eq!(cfg.pe.cols, 16);
        assert_eq!(cfg.scratchpad_bytes, 512 * 1024);
        assert_eq!(cfg.banks, 8);
        assert_eq!(cfg.local_mem_bytes, 512);
        assert_eq!(cfg.dma_burst_bytes, 128);
        assert_eq!(cfg.bus_width_bits, 256);
        assert_eq!(cfg.dataflow, Dataflow::WeightStationary);
        assert_eq!(cfg.interconnect, Interconnect::Full);
    }

    #[test]
    fn bad_point_is_rejected() {
        let g = ChiselGenerator::new(IntrinsicKind::Gemm);
        assert!(g.generate(&vec![0, 0]).is_err());
        assert!(g.generate(&vec![99, 0, 0, 0, 0, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn name_mentions_intrinsic() {
        assert!(ChiselGenerator::new(IntrinsicKind::Gemv)
            .name()
            .contains("gemv"));
    }
}
