//! Hardware generation for HASCO (§V of the paper).
//!
//! Provides the six *hardware primitives* of Fig. 6 (`reshapeArray`,
//! `linkPEs`, `addCache`, `distributeCache`, `partitionBanks`,
//! `burstTransfer`), parameterized design spaces built from them, and the
//! generators that lower primitive sequences to concrete
//! [`accel_model::AcceleratorConfig`]s:
//!
//! * [`chisel::ChiselGenerator`] — the built-in generator supporting all
//!   four common intrinsics (the paper's "our built-in Chisel generator");
//! * [`gemmini::GemminiGenerator`] — a Gemmini-style systolic GEMM
//!   generator that constrains the PE array to square powers of two
//!   (the constraint the paper credits for Table III's PE counts).
//!
//! # Example
//!
//! ```
//! use hw_gen::primitives::ArchDescription;
//! use tensor_ir::intrinsics::IntrinsicKind;
//!
//! // The paper's Listing 2: a systolic 16x16 GEMM accelerator with a
//! // 256 KB scratchpad and a DMA engine.
//! let mut acc = ArchDescription::new("chisel", IntrinsicKind::Gemm);
//! acc.reshape_array(16, 16)
//!     .link_pes(accel_model::Interconnect::Systolic)
//!     .add_cache(256 * 1024)
//!     .burst_transfer(64, 128);
//! let cfg = acc.to_config().unwrap();
//! assert_eq!(cfg.pes(), 256);
//! ```

pub mod chisel;
pub mod gemmini;
pub mod primitives;
pub mod space;

pub use chisel::ChiselGenerator;
pub use gemmini::GemminiGenerator;
pub use primitives::{ArchDescription, HwPrimitive};
pub use space::{DesignPoint, Generator, HwDesignSpace, ParamDim};

/// Errors produced by generators.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// A design point had the wrong dimensionality for the space.
    DimensionMismatch {
        /// Expected number of dimensions.
        expected: usize,
        /// Provided number of dimensions.
        got: usize,
    },
    /// A coordinate exceeded its dimension's choice count.
    ChoiceOutOfRange {
        /// Dimension index.
        dim: usize,
        /// Offending coordinate.
        value: usize,
    },
    /// The decoded configuration failed architectural validation.
    InvalidConfig(String),
}

impl std::fmt::Display for GenError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GenError::DimensionMismatch { expected, got } => {
                write!(f, "design point has {got} dims, space has {expected}")
            }
            GenError::ChoiceOutOfRange { dim, value } => {
                write!(f, "coordinate {value} out of range in dimension {dim}")
            }
            GenError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for GenError {}
