//! Hardware design spaces: discrete parameter grids over primitive factors.
//!
//! "The primitive factors (accelerator parameters) compose the design
//! space" (§V-A). A design point is a vector of choice indices, one per
//! dimension; generators decode points into accelerator configurations.

use accel_model::AcceleratorConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::GenError;

/// One discrete parameter dimension.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamDim {
    /// Parameter name (`"pe_rows"`, `"spad_kb"`, ...).
    pub name: String,
    /// The legal values, in increasing "capability" order where meaningful.
    pub choices: Vec<u64>,
}

impl ParamDim {
    /// Creates a dimension.
    pub fn new(name: impl Into<String>, choices: Vec<u64>) -> Self {
        assert!(!choices.is_empty(), "parameter dimension must have choices");
        ParamDim {
            name: name.into(),
            choices,
        }
    }

    /// Number of choices.
    pub fn len(&self) -> usize {
        self.choices.len()
    }

    /// Always false (dimensions are non-empty by construction).
    pub fn is_empty(&self) -> bool {
        self.choices.is_empty()
    }
}

/// A point in a design space: one choice index per dimension.
pub type DesignPoint = Vec<usize>;

/// A discrete hardware design space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HwDesignSpace {
    /// The dimensions, in decode order.
    pub dims: Vec<ParamDim>,
}

impl HwDesignSpace {
    /// Creates a space from dimensions.
    pub fn new(dims: Vec<ParamDim>) -> Self {
        HwDesignSpace { dims }
    }

    /// Total number of design points (product of choice counts).
    pub fn size(&self) -> u64 {
        self.dims.iter().map(|d| d.len() as u64).product()
    }

    /// Number of dimensions.
    pub fn len(&self) -> usize {
        self.dims.len()
    }

    /// True when the space has no dimensions.
    pub fn is_empty(&self) -> bool {
        self.dims.is_empty()
    }

    /// Validates a point's shape and ranges.
    ///
    /// # Errors
    /// Returns [`GenError::DimensionMismatch`] or
    /// [`GenError::ChoiceOutOfRange`].
    pub fn validate(&self, point: &DesignPoint) -> Result<(), GenError> {
        if point.len() != self.dims.len() {
            return Err(GenError::DimensionMismatch {
                expected: self.dims.len(),
                got: point.len(),
            });
        }
        for (dim, (&coord, d)) in point.iter().zip(self.dims.iter()).enumerate() {
            if coord >= d.len() {
                return Err(GenError::ChoiceOutOfRange { dim, value: coord });
            }
        }
        Ok(())
    }

    /// Decodes a point into parameter values.
    ///
    /// # Errors
    /// Propagates validation errors.
    pub fn values(&self, point: &DesignPoint) -> Result<Vec<u64>, GenError> {
        self.validate(point)?;
        Ok(point
            .iter()
            .zip(self.dims.iter())
            .map(|(&c, d)| d.choices[c])
            .collect())
    }

    /// Value of a named parameter at a point.
    pub fn value_of(&self, point: &DesignPoint, name: &str) -> Option<u64> {
        let idx = self.dims.iter().position(|d| d.name == name)?;
        point.get(idx).map(|&c| self.dims[idx].choices[c])
    }

    /// Uniformly random point.
    pub fn random_point<R: Rng + ?Sized>(&self, rng: &mut R) -> DesignPoint {
        self.dims
            .iter()
            .map(|d| rng.gen_range(0..d.len()))
            .collect()
    }

    /// All single-step neighbors (±1 in one dimension).
    pub fn neighbors(&self, point: &DesignPoint) -> Vec<DesignPoint> {
        let mut out = Vec::new();
        for (i, &c) in point.iter().enumerate() {
            if c > 0 {
                let mut p = point.clone();
                p[i] = c - 1;
                out.push(p);
            }
            if c + 1 < self.dims[i].len() {
                let mut p = point.clone();
                p[i] = c + 1;
                out.push(p);
            }
        }
        out
    }

    /// Normalizes a point to `[0, 1]^d` (inputs for the GP surrogate).
    pub fn normalize(&self, point: &DesignPoint) -> Vec<f64> {
        point
            .iter()
            .zip(self.dims.iter())
            .map(|(&c, d)| {
                if d.len() <= 1 {
                    0.0
                } else {
                    c as f64 / (d.len() - 1) as f64
                }
            })
            .collect()
    }

    /// Iterates over every point in the space (use only for small spaces,
    /// e.g. the ground-truth sweeps of Fig. 8/9).
    pub fn iter_all(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        let sizes: Vec<usize> = self.dims.iter().map(ParamDim::len).collect();
        GridIter {
            sizes,
            current: vec![0; self.dims.len()],
            done: self.dims.is_empty(),
        }
    }
}

struct GridIter {
    sizes: Vec<usize>,
    current: Vec<usize>,
    done: bool,
}

impl Iterator for GridIter {
    type Item = DesignPoint;

    fn next(&mut self) -> Option<DesignPoint> {
        if self.done {
            return None;
        }
        let out = self.current.clone();
        // Odometer increment.
        let mut i = self.sizes.len();
        loop {
            if i == 0 {
                self.done = true;
                break;
            }
            i -= 1;
            self.current[i] += 1;
            if self.current[i] < self.sizes[i] {
                break;
            }
            self.current[i] = 0;
        }
        Some(out)
    }
}

/// A hardware generator: owns a design space and decodes points into
/// accelerator configurations (the paper's off-the-shelf generators expose
/// "a number of optimization knobs").
pub trait Generator {
    /// Generator name (used in reports).
    fn name(&self) -> &str;

    /// The generator's design space.
    fn space(&self) -> &HwDesignSpace;

    /// Decodes a design point into a concrete accelerator.
    ///
    /// # Errors
    /// Returns [`GenError`] for malformed points or illegal configurations.
    fn generate(&self, point: &DesignPoint) -> Result<AcceleratorConfig, GenError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn space() -> HwDesignSpace {
        HwDesignSpace::new(vec![
            ParamDim::new("a", vec![1, 2, 4]),
            ParamDim::new("b", vec![10, 20]),
        ])
    }

    #[test]
    fn size_is_product() {
        assert_eq!(space().size(), 6);
        assert_eq!(space().len(), 2);
    }

    #[test]
    fn values_decode() {
        let s = space();
        assert_eq!(s.values(&vec![2, 1]).unwrap(), vec![4, 20]);
        assert_eq!(s.value_of(&vec![2, 1], "b"), Some(20));
        assert_eq!(s.value_of(&vec![2, 1], "zzz"), None);
    }

    #[test]
    fn validate_rejects_bad_points() {
        let s = space();
        assert!(matches!(
            s.validate(&vec![0]).unwrap_err(),
            GenError::DimensionMismatch {
                expected: 2,
                got: 1
            }
        ));
        assert!(matches!(
            s.validate(&vec![3, 0]).unwrap_err(),
            GenError::ChoiceOutOfRange { dim: 0, value: 3 }
        ));
    }

    #[test]
    fn neighbors_step_one_dim() {
        let s = space();
        let n = s.neighbors(&vec![1, 0]);
        assert!(n.contains(&vec![0, 0]));
        assert!(n.contains(&vec![2, 0]));
        assert!(n.contains(&vec![1, 1]));
        assert_eq!(n.len(), 3);
    }

    #[test]
    fn normalize_maps_to_unit_cube() {
        let s = space();
        assert_eq!(s.normalize(&vec![0, 0]), vec![0.0, 0.0]);
        assert_eq!(s.normalize(&vec![2, 1]), vec![1.0, 1.0]);
        assert_eq!(s.normalize(&vec![1, 0]), vec![0.5, 0.0]);
    }

    #[test]
    fn iter_all_covers_space_once() {
        let s = space();
        let all: Vec<_> = s.iter_all().collect();
        assert_eq!(all.len(), 6);
        let set: std::collections::BTreeSet<_> = all.iter().collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn random_points_are_valid() {
        let s = space();
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let p = s.random_point(&mut rng);
            assert!(s.validate(&p).is_ok());
        }
    }

    #[test]
    #[should_panic(expected = "must have choices")]
    fn empty_dim_panics() {
        let _ = ParamDim::new("x", vec![]);
    }
}
