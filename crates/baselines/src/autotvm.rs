//! An AutoTVM-style software tuner \[12\] (§VII-D).
//!
//! "AutoTVM requires users to manually make tensorize choices and write
//! primitive templates for each tensor computation. Besides, it only
//! optimizes the size of tensorized sub-workloads." We reproduce exactly
//! those two restrictions: the tensorize choice and the loop order come
//! from a static template; only the split (tile) factors are tuned, by a
//! simulated-annealing sampler standing in for the XGBoost cost model.

use accel_model::arch::AcceleratorConfig;
use accel_model::{AnalyticBackend, Metrics};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use sw_opt::lowering;
use sw_opt::schedule::{Schedule, ScheduleContext};
use sw_opt::SwError;
use tensor_ir::workload::Workload;
use tensor_ir::IndexId;

/// The AutoTVM-style tuner.
#[derive(Debug, Clone)]
pub struct AutoTvm {
    seed: u64,
    /// Tuning trials (schedule evaluations).
    pub trials: usize,
    backend: AnalyticBackend,
}

impl AutoTvm {
    /// Creates a tuner with a deterministic seed and the default budget.
    pub fn new(seed: u64) -> Self {
        AutoTvm {
            seed,
            trials: 64,
            backend: AnalyticBackend::default(),
        }
    }

    /// Prices schedules with the given cost model instead of the default
    /// technology constants (so baseline rows of a tech sweep are
    /// evaluated at the same node as the systems they anchor).
    pub fn with_model(mut self, model: accel_model::CostModel) -> Self {
        self.backend = AnalyticBackend::new(model);
        self
    }

    /// The static template: the first non-rearranged tensorize choice and
    /// the workload's declaration loop order (spatial outer, reduction
    /// inner) — what a hand-written AutoTVM template fixes.
    fn template(ctx: &ScheduleContext) -> (usize, Vec<IndexId>) {
        let choice_idx = ctx
            .choices
            .iter()
            .position(|c| !c.needs_rearrangement)
            .unwrap_or(0);
        let comp = &ctx.workload.comp;
        let mut order: Vec<IndexId> = comp.spatial_indices();
        order.extend(comp.reduction_indices());
        (choice_idx, order)
    }

    /// Tunes the split factors for one workload on one accelerator and
    /// returns the best (schedule, metrics).
    ///
    /// # Errors
    /// Returns [`SwError`] when the template admits no valid schedule.
    pub fn tune(
        &self,
        workload: &Workload,
        cfg: &AcceleratorConfig,
    ) -> Result<(Schedule, Metrics), SwError> {
        let ctx = ScheduleContext::new(workload, &cfg.intrinsic_comp())?;
        let (choice_idx, order) = Self::template(&ctx);
        let choice = ctx.choices[choice_idx].clone();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let tensorized = choice.tensorized_indices();

        let make = |mults: &BTreeMap<IndexId, u64>| -> Schedule {
            let mut tiles = BTreeMap::new();
            for idx in &tensorized {
                let ext = ctx.workload.comp.index(*idx).extent;
                let base = ctx.intrinsic_extent(&choice, *idx);
                tiles.insert(*idx, (base * mults[idx]).min(ext).max(1));
            }
            Schedule {
                choice: choice.clone(),
                tiles,
                outer_order: order.clone(),
                fuse_outer: 0,
            }
        };

        // Start with unit multipliers; anneal over tile sizes only.
        let mut mults: BTreeMap<IndexId, u64> = tensorized.iter().map(|&i| (i, 1)).collect();
        let mut current: Option<(Schedule, Metrics)> = None;
        let mut best: Option<(Schedule, Metrics)> = None;
        let mut temperature = 1.0f64;
        for _ in 0..self.trials {
            let proposal = {
                let mut m = mults.clone();
                if let Some((&idx, _)) = m.iter().nth(rng.gen_range(0..m.len())) {
                    let cur = m[&idx];
                    let next = if rng.gen_bool(0.5) {
                        cur * 2
                    } else {
                        (cur / 2).max(1)
                    };
                    m.insert(idx, next.min(64));
                }
                m
            };
            let sched = make(&proposal);
            let Ok(metrics) = lowering::evaluate(&sched, &ctx, cfg, &self.backend) else {
                temperature *= 0.97;
                continue;
            };
            let accept = match &current {
                None => true,
                Some((_, cur)) => {
                    let delta = (metrics.latency_cycles - cur.latency_cycles) / cur.latency_cycles;
                    delta < 0.0 || rng.gen_bool((-delta / temperature).exp().clamp(0.0, 1.0))
                }
            };
            if accept {
                mults = proposal;
                current = Some((sched.clone(), metrics));
            }
            let better = best
                .as_ref()
                .is_none_or(|(_, b)| metrics.latency_cycles < b.latency_cycles);
            if better {
                best = Some((sched, metrics));
            }
            temperature *= 0.97;
        }
        best.ok_or(SwError::NoValidSchedule)
    }

    /// Tunes and returns only the metrics.
    ///
    /// # Errors
    /// Propagates [`AutoTvm::tune`] errors.
    pub fn best_metrics(
        &self,
        workload: &Workload,
        cfg: &AcceleratorConfig,
    ) -> Result<Metrics, SwError> {
        Ok(self.tune(workload, cfg)?.1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::intrinsics::IntrinsicKind;
    use tensor_ir::suites;

    fn cfg() -> AcceleratorConfig {
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .build()
            .unwrap()
    }

    #[test]
    fn tunes_gemm_and_finds_valid_schedule() {
        let tvm = AutoTvm::new(0);
        let wl = suites::gemm_workload("g", 512, 512, 512);
        let (sched, m) = tvm.tune(&wl, &cfg()).unwrap();
        assert!(m.latency_cycles > 0.0);
        let ctx = ScheduleContext::new(&wl, &cfg().intrinsic_comp()).unwrap();
        assert!(sched.validate(&ctx).is_ok());
    }

    #[test]
    fn template_fixes_choice_and_order() {
        let tvm = AutoTvm::new(1);
        let wl = suites::conv2d_workload("c", 64, 64, 28, 28, 3, 3);
        let c = cfg();
        let ctx = ScheduleContext::new(&wl, &c.intrinsic_comp()).unwrap();
        let (choice_idx, order) = AutoTvm::template(&ctx);
        let (sched, _) = tvm.tune(&wl, &c).unwrap();
        assert_eq!(sched.choice.var_map, ctx.choices[choice_idx].var_map);
        assert_eq!(sched.outer_order, order);
        assert_eq!(sched.fuse_outer, 0);
    }

    #[test]
    fn is_deterministic() {
        let wl = suites::gemm_workload("g", 256, 256, 256);
        let a = AutoTvm::new(9).best_metrics(&wl, &cfg()).unwrap();
        let b = AutoTvm::new(9).best_metrics(&wl, &cfg()).unwrap();
        assert_eq!(a.latency_cycles, b.latency_cycles);
    }

    #[test]
    fn tuning_beats_unit_tiles() {
        let tvm = AutoTvm::new(3);
        let wl = suites::gemm_workload("g", 512, 512, 512);
        let c = cfg();
        let ctx = ScheduleContext::new(&wl, &c.intrinsic_comp()).unwrap();
        let (choice_idx, order) = AutoTvm::template(&ctx);
        let choice = ctx.choices[choice_idx].clone();
        // Unit-multiplier schedule.
        let mut tiles = BTreeMap::new();
        for idx in choice.tensorized_indices() {
            tiles.insert(idx, ctx.intrinsic_extent(&choice, idx));
        }
        let unit = Schedule {
            choice,
            tiles,
            outer_order: order,
            fuse_outer: 0,
        };
        let unit_m = lowering::evaluate(&unit, &ctx, &c, &AnalyticBackend::default()).unwrap();
        let tuned = tvm.best_metrics(&wl, &c).unwrap();
        assert!(tuned.latency_cycles <= unit_m.latency_cycles);
    }

    #[test]
    fn conv_is_tuned_directly_without_im2col() {
        // Unlike the library, AutoTVM partitions the convolution directly.
        let tvm = AutoTvm::new(4);
        let wl = suites::conv2d_workload("c", 128, 128, 28, 28, 3, 3);
        let m = tvm.best_metrics(&wl, &cfg()).unwrap();
        assert!(m.latency_cycles > 0.0);
    }
}
