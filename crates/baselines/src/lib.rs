//! The comparison systems of the paper's evaluation (§VII-D/E):
//!
//! * [`library`] — the Gemmini-style hand-tuned software library \[24\] that
//!   converts convolutions to GEMMs through `im2col`/`col2im`;
//! * [`autotvm`] — an AutoTVM-style tuner \[12\]: a fixed template with a
//!   fixed, user-made tensorize choice that "only optimizes the size of
//!   tensorized sub-workloads";
//! * [`hls`] — Vivado-HLS-style fixed-datapath cores: one synthesized
//!   schedule shared by every workload of an application.
//!
//! Each baseline reuses the same accelerator model and lowering as HASCO,
//! so comparisons isolate exactly the software-flexibility differences the
//! paper attributes its wins to.

pub mod autotvm;
pub mod hls;
pub mod library;

pub use autotvm::AutoTvm;
pub use hls::HlsCore;
pub use library::{GemmLibrary, LibraryRun};
