//! HLS-style fixed-datapath cores (§VII-E, Table III's "HLS-Core" column).
//!
//! "In our implementation of HLS-Cores, we unroll the c and k loops to
//! provide sufficient parallelism and synthesize the remaining loops into
//! datapaths. ... The datapaths in HLS-Cores lead to fixed sub-workload
//! sizes and loop orders, making HLS-Cores only efficient for a small
//! portion of convolutions." We model this as one schedule shape chosen at
//! synthesis time (from the application's largest layer) and reused —
//! padded — by every other layer.

use accel_model::arch::AcceleratorConfig;
use accel_model::{CostModel, Metrics};
use std::collections::BTreeMap;
use sw_opt::lowering;
use sw_opt::schedule::{Schedule, ScheduleContext};
use sw_opt::SwError;
use tensor_ir::suites;
use tensor_ir::workload::Workload;

/// A synthesized fixed-datapath core.
#[derive(Debug, Clone)]
pub struct HlsCore {
    cfg: AcceleratorConfig,
    model: CostModel,
    /// The fixed sub-workload tile per loop name, chosen at synthesis.
    fixed_tiles: BTreeMap<String, u64>,
}

impl HlsCore {
    /// "Synthesizes" a core for an application: the datapath's sub-workload
    /// size is sized for the largest layer and then frozen.
    ///
    /// # Errors
    /// Returns [`SwError`] when the reference layer admits no valid
    /// schedule on the accelerator.
    pub fn synthesize(workloads: &[Workload], cfg: &AcceleratorConfig) -> Result<Self, SwError> {
        let reference = workloads
            .iter()
            .max_by_key(|w| w.macs())
            .ok_or(SwError::NoValidSchedule)?;
        let ctx = ScheduleContext::new(reference, &cfg.intrinsic_comp())?;
        let choice = ctx
            .choices
            .iter()
            .find(|c| !c.needs_rearrangement)
            .unwrap_or(&ctx.choices[0])
            .clone();
        // Grow tiles uniformly while they fit (single-buffered: HLS
        // datapaths stream without the double-buffer margin).
        let mut fixed: Option<Schedule> = None;
        for m in [1u64, 2, 4, 8, 16] {
            let mut tiles = BTreeMap::new();
            for idx in choice.tensorized_indices() {
                let ext = ctx.workload.comp.index(idx).extent;
                let base = ctx.intrinsic_extent(&choice, idx);
                tiles.insert(idx, (base * m).min(ext).max(1));
            }
            let sched = Schedule {
                choice: choice.clone(),
                tiles,
                outer_order: Self::fixed_order(&ctx),
                fuse_outer: 0,
            };
            match lowering::lower(&sched, &ctx, cfg) {
                Ok(_) => fixed = Some(sched),
                Err(_) => break,
            }
        }
        let sched = fixed.ok_or(SwError::NoValidSchedule)?;
        let fixed_tiles = sched
            .tiles
            .iter()
            .map(|(&idx, &t)| (ctx.workload.comp.index(idx).name.clone(), t))
            .collect();
        Ok(HlsCore {
            cfg: cfg.clone(),
            model: CostModel::default(),
            fixed_tiles,
        })
    }

    /// Prices the fixed datapath with the given cost model instead of the
    /// default technology constants (tech-sweep rows must compare systems
    /// at one node).
    pub fn with_model(mut self, model: CostModel) -> Self {
        self.model = model;
        self
    }

    /// The synthesized loop order: declaration order, reductions innermost
    /// (a datapath's order is baked into RTL).
    fn fixed_order(ctx: &ScheduleContext) -> Vec<tensor_ir::IndexId> {
        let comp = &ctx.workload.comp;
        let mut order = comp.spatial_indices();
        order.extend(comp.reduction_indices());
        order
    }

    /// The frozen tile sizes by loop name.
    pub fn fixed_tiles(&self) -> &BTreeMap<String, u64> {
        &self.fixed_tiles
    }

    /// Runs one workload on the fixed datapath: smaller layers are padded
    /// up to the datapath's sub-workload size.
    ///
    /// # Errors
    /// Returns [`SwError`] when the padded layer overflows the scratchpad.
    pub fn run(&self, workload: &Workload) -> Result<Metrics, SwError> {
        // Pad each tensorized extent up to the fixed tile — the datapath
        // always processes full sub-workloads.
        let comp = &workload.comp;
        let padded = if comp.name == "conv2d" {
            let get = |n: &str| comp.index(comp.index_by_name(n).expect("conv idx")).extent;
            let pad = |n: &str, e: u64| match self.fixed_tiles.get(n) {
                Some(&t) => e.div_ceil(t) * t,
                None => e,
            };
            suites::conv2d_workload(
                &workload.name,
                pad("k", get("k")),
                pad("c", get("c")),
                pad("x", get("x")),
                pad("y", get("y")),
                get("r"),
                get("s"),
            )
        } else {
            workload.clone()
        };
        let ctx = ScheduleContext::new(&padded, &self.cfg.intrinsic_comp())?;
        let choice = ctx
            .choices
            .iter()
            .find(|c| !c.needs_rearrangement)
            .unwrap_or(&ctx.choices[0])
            .clone();
        let mut tiles = BTreeMap::new();
        for idx in choice.tensorized_indices() {
            let name = &ctx.workload.comp.index(idx).name;
            let ext = ctx.workload.comp.index(idx).extent;
            let t = self.fixed_tiles.get(name).copied().unwrap_or(1);
            tiles.insert(idx, t.min(ext).max(1));
        }
        let sched = Schedule {
            choice,
            tiles,
            outer_order: Self::fixed_order(&ctx),
            fuse_outer: 0,
        };
        let lowered = lowering::lower(&sched, &ctx, &self.cfg)?;
        let mut metrics = self.model.evaluate(&self.cfg, &lowered.plan);
        // Padded iterations are wasted work relative to the real layer.
        metrics.utilization = workload.macs() as f64 / lowered.plan.macs_padded.max(1) as f64;
        Ok(metrics)
    }

    /// Runs all workloads and sums the latency (the Table III per-app
    /// number).
    ///
    /// # Errors
    /// Propagates per-layer errors.
    pub fn run_app(&self, workloads: &[Workload]) -> Result<Metrics, SwError> {
        let mut parts = Vec::with_capacity(workloads.len());
        for w in workloads {
            parts.push(self.run(w)?);
        }
        Ok(Metrics::sequential(&parts))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::intrinsics::IntrinsicKind;

    fn convcore() -> AcceleratorConfig {
        AcceleratorConfig::builder(IntrinsicKind::Conv2d)
            .pe_array(12, 12)
            .scratchpad_kb(512)
            .banks(8)
            .build()
            .unwrap()
    }

    fn small_app() -> Vec<Workload> {
        vec![
            suites::conv2d_workload("big", 128, 128, 28, 28, 3, 3),
            suites::conv2d_workload("small", 32, 32, 14, 14, 3, 3),
            suites::conv2d_workload("tiny", 16, 16, 7, 7, 3, 3),
        ]
    }

    #[test]
    fn synthesis_freezes_tiles() {
        let core = HlsCore::synthesize(&small_app(), &convcore()).unwrap();
        assert!(!core.fixed_tiles().is_empty());
    }

    #[test]
    fn small_layers_pay_padding() {
        let core = HlsCore::synthesize(&small_app(), &convcore()).unwrap();
        let m_small = core.run(&small_app()[2]).unwrap();
        let m_big = core.run(&small_app()[0]).unwrap();
        assert!(
            m_small.utilization < m_big.utilization,
            "small layer should be padded: {} vs {}",
            m_small.utilization,
            m_big.utilization
        );
    }

    #[test]
    fn app_latency_sums_layers() {
        let core = HlsCore::synthesize(&small_app(), &convcore()).unwrap();
        let per: f64 = small_app()
            .iter()
            .map(|w| core.run(w).unwrap().latency_cycles)
            .sum();
        let total = core.run_app(&small_app()).unwrap();
        assert!((total.latency_cycles - per).abs() / per < 1e-9);
    }

    #[test]
    fn empty_app_fails_synthesis() {
        assert!(HlsCore::synthesize(&[], &convcore()).is_err());
    }
}
