//! The hand-tuned accelerator library baseline \[24\] (§VII-D).
//!
//! "The library converts 2D convolutions to GEMMs and invokes the GEMM
//! intrinsic. Specifically, it always unfolds the operand tensors into
//! matrices (im2col), performs GEMMs, and folds the result matrix back to a
//! tensor (col2im). ... Once the im2col and col2im are performed, their
//! overhead dominates the overall latency of the workload. Additionally,
//! the conversion requires a much larger DRAM region to store the
//! intermediate matrices."

use accel_model::arch::AcceleratorConfig;
use accel_model::plan::{ExecutionPlan, TensorTraffic};
use accel_model::{AnalyticBackend, CostBackend, Metrics};
use std::collections::BTreeMap;
use sw_opt::lowering;
use sw_opt::schedule::{Schedule, ScheduleContext};
use sw_opt::SwError;
use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::suites;
use tensor_ir::workload::Workload;

/// One library execution, split the way Fig. 11 plots it.
#[derive(Debug, Clone)]
pub struct LibraryRun {
    /// End-to-end metrics (conversion + compute).
    pub total: Metrics,
    /// The GEMM-compute share only ("lib compute").
    pub compute: Metrics,
    /// The `im2col` + `col2im` share, if the workload needed conversion
    /// ("lib im2col+col2im").
    pub conversion: Option<Metrics>,
}

/// The hand-tuned GEMM library.
#[derive(Debug, Clone, Default)]
pub struct GemmLibrary {
    backend: AnalyticBackend,
}

impl GemmLibrary {
    /// Creates the library against the default cost model.
    pub fn new() -> Self {
        GemmLibrary::default()
    }

    /// The library's hand-tuned schedule for a GEMM: the full tensorize
    /// choice, tiles grown to half the scratchpad (double buffering), and
    /// the classic (i, j, k) loop order.
    ///
    /// # Errors
    /// Returns [`SwError`] when even the minimal tile overflows the
    /// scratchpad.
    pub fn hand_tuned_gemm(
        &self,
        ctx: &ScheduleContext,
        cfg: &AcceleratorConfig,
    ) -> Result<Schedule, SwError> {
        let comp = &ctx.workload.comp;
        let choice = ctx
            .choices
            .iter()
            .find(|c| c.tensorized_indices().len() == 3 && !c.needs_rearrangement)
            .or_else(|| ctx.choices.first())
            .ok_or(SwError::NoValidSchedule)?
            .clone();
        let order = ["i", "j", "k"];
        let outer_order = order
            .iter()
            .filter_map(|n| comp.index_by_name(n))
            .collect::<Vec<_>>();
        let mut best: Option<Schedule> = None;
        // Grow the tile multiplier until the tiles stop fitting twice in
        // the scratchpad (the library "carefully splits ... loops").
        for m in [1u64, 2, 4, 8, 16, 32, 64] {
            let mut tiles = BTreeMap::new();
            for idx in choice.tensorized_indices() {
                let ext = comp.index(idx).extent;
                let base = ctx.intrinsic_extent(&choice, idx);
                tiles.insert(idx, (base * m).min(ext).max(1));
            }
            let sched = Schedule {
                choice: choice.clone(),
                tiles,
                outer_order: outer_order.clone(),
                fuse_outer: 0,
            };
            match lowering::lower(&sched, ctx, cfg) {
                Ok(l) if l.plan.double_buffered => best = Some(sched),
                Ok(_) if best.is_none() => best = Some(sched),
                _ => break,
            }
        }
        best.ok_or(SwError::NoValidSchedule)
    }

    /// The conversion plan for a convolution: `im2col` materializes the
    /// unfolded input matrix in DRAM; `col2im` folds the result back.
    fn conversion_plan(conv: &Workload, dtype: u64) -> ExecutionPlan {
        let comp = &conv.comp;
        let get = |n: &str| {
            comp.index(comp.index_by_name(n).expect("conv index"))
                .extent
        };
        let (k, c, x, y, r, s) = (get("k"), get("c"), get("x"), get("y"), get("r"), get("s"));
        let a_bytes = c * (x + r - 1) * (y + s - 1) * dtype;
        let unfolded_bytes = (c * r * s) * (x * y) * dtype; // r*s-fold blowup
        let out_bytes = k * x * y * dtype;
        ExecutionPlan {
            intrinsic_calls: 0,
            macs_useful: 0,
            macs_padded: 0,
            dram_reads: vec![
                TensorTraffic::new("A", a_bytes, (y + s - 1) * dtype),
                TensorTraffic::new("C_mat", out_bytes, y * dtype),
            ],
            dram_writes: vec![
                TensorTraffic::new("A_unfolded", unfolded_bytes, (x * y) * dtype),
                TensorTraffic::new("C", out_bytes, y * dtype),
            ],
            spad_traffic_bytes: 0,
            // Both the unfold and the fold are host-side gathers.
            rearrange_bytes: unfolded_bytes + out_bytes,
            stages: 2,
            double_buffered: false,
            host_control_cycles: 0,
        }
    }

    /// Runs one workload through the library on a GEMM accelerator.
    ///
    /// Convolutions are converted to GEMM via `im2col`; GEMM workloads run
    /// directly with the hand-tuned schedule.
    ///
    /// # Errors
    /// Returns [`SwError`] for unsupported workloads or impossible
    /// configurations.
    pub fn run(&self, workload: &Workload, cfg: &AcceleratorConfig) -> Result<LibraryRun, SwError> {
        assert_eq!(
            cfg.intrinsic,
            IntrinsicKind::Gemm,
            "the library targets GEMM accelerators"
        );
        let comp = &workload.comp;
        if comp.name == "conv2d" {
            let get = |n: &str| {
                comp.index(comp.index_by_name(n).expect("conv index"))
                    .extent
            };
            // GEMM: L[k, x*y] = M[k, c*r*s] x N[c*r*s, x*y].
            let gemm = suites::gemm_workload(
                &format!("{}_im2col", workload.name),
                get("k"),
                get("c") * get("r") * get("s"),
                get("x") * get("y"),
            );
            let ctx = ScheduleContext::new(&gemm, &cfg.intrinsic_comp())?;
            let sched = self.hand_tuned_gemm(&ctx, cfg)?;
            let compute_plan = lowering::lower(&sched, &ctx, cfg)?.plan;
            let conv_plan = Self::conversion_plan(workload, cfg.dtype_bytes);
            let compute = self.backend.evaluate(cfg, &compute_plan);
            let conversion = self.backend.evaluate(cfg, &conv_plan);
            let total = self.backend.evaluate(cfg, &conv_plan.then(&compute_plan));
            Ok(LibraryRun {
                total,
                compute,
                conversion: Some(conversion),
            })
        } else {
            let ctx = ScheduleContext::new(workload, &cfg.intrinsic_comp())?;
            let sched = self.hand_tuned_gemm(&ctx, cfg)?;
            let metrics = lowering::evaluate(&sched, &ctx, cfg, &self.backend)?;
            Ok(LibraryRun {
                total: metrics,
                compute: metrics,
                conversion: None,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemmcore() -> AcceleratorConfig {
        // The paper's §VII-D GEMMCore: 16x16 PEs, 256 KB scratchpad.
        AcceleratorConfig::builder(IntrinsicKind::Gemm)
            .pe_array(16, 16)
            .scratchpad_kb(256)
            .build()
            .unwrap()
    }

    #[test]
    fn gemm_workload_runs_without_conversion() {
        let lib = GemmLibrary::new();
        let wl = suites::gemm_workload("g", 256, 256, 256);
        let run = lib.run(&wl, &gemmcore()).unwrap();
        assert!(run.conversion.is_none());
        assert_eq!(run.total.latency_cycles, run.compute.latency_cycles);
    }

    #[test]
    fn conv_pays_conversion_overhead() {
        let lib = GemmLibrary::new();
        let wl = suites::conv2d_workload("c", 64, 64, 56, 56, 3, 3);
        let run = lib.run(&wl, &gemmcore()).unwrap();
        let conv = run.conversion.expect("convolutions are converted");
        assert!(conv.latency_cycles > 0.0);
        assert!(run.total.latency_cycles > run.compute.latency_cycles);
    }

    #[test]
    fn conversion_dominates_for_small_filters() {
        // Fig. 11's observation: once im2col/col2im are performed, their
        // overhead dominates — check it exceeds half the compute time for a
        // representative ResNet layer.
        let lib = GemmLibrary::new();
        let wl = suites::conv2d_workload("c", 128, 128, 28, 28, 3, 3);
        let run = lib.run(&wl, &gemmcore()).unwrap();
        let conv = run.conversion.unwrap();
        assert!(
            conv.latency_cycles > 0.5 * run.compute.latency_cycles,
            "conversion {} vs compute {}",
            conv.latency_cycles,
            run.compute.latency_cycles
        );
    }

    #[test]
    fn hand_tuned_schedule_double_buffers_when_possible() {
        let lib = GemmLibrary::new();
        let wl = suites::gemm_workload("g", 512, 512, 512);
        let cfg = gemmcore();
        let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
        let sched = lib.hand_tuned_gemm(&ctx, &cfg).unwrap();
        let lowered = lowering::lower(&sched, &ctx, &cfg).unwrap();
        assert!(lowered.plan.double_buffered);
        // Tiles are multiples of the 16-wide intrinsic.
        for &t in sched.tiles.values() {
            assert_eq!(t % 16, 0);
        }
    }

    #[test]
    #[should_panic(expected = "GEMM accelerators")]
    fn rejects_non_gemm_accelerator() {
        let lib = GemmLibrary::new();
        let wl = suites::gemm_workload("g", 64, 64, 64);
        let cfg = AcceleratorConfig::builder(IntrinsicKind::Conv2d)
            .build()
            .unwrap();
        let _ = lib.run(&wl, &cfg);
    }

    #[test]
    fn unfolded_matrix_is_rs_times_larger() {
        let wl = suites::conv2d_workload("c", 64, 64, 28, 28, 3, 3);
        let plan = GemmLibrary::conversion_plan(&wl, 2);
        let unfolded = plan
            .dram_writes
            .iter()
            .find(|t| t.tensor == "A_unfolded")
            .unwrap();
        // c*r*s*x*y = 64*9*784 elements, 2 B each.
        assert_eq!(unfolded.bytes, 64 * 9 * 784 * 2);
        // Rearrangement covers the unfold plus the col2im fold.
        let out_bytes = 64 * 784 * 2;
        assert_eq!(plan.rearrange_bytes, unfolded.bytes + out_bytes);
    }
}
