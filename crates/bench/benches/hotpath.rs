//! Hot-path criterion benches: the paper's co-design loop leans on the
//! surrogate being cheap, so this suite times exactly the paths the
//! telemetry (PR 6) exposed as hot — GP fit/observe/predict, the
//! trace-sim staged-plan recurrence, the memo cache under contention,
//! and steal-heavy staged pool batches — and emits a versioned
//! `BENCH_hotpath.json` at the repo root so the perf trajectory
//! accumulates alongside `BENCH_table3.json`.
//!
//! Custom `main` (no `criterion_main!`): after the runs it derives the
//! headline speedups from the recorded medians:
//!
//! * `gp_observe_200_vs_scratch` — appending the 200th observation via
//!   the incremental trainer (factor extension, O(n²)) vs refitting from
//!   scratch (O(n³)); the acceptance bar is ≥ 5×.
//! * `sim_staged_vs_program` — streaming a plan through
//!   `TraceSimulator::run_plan_cycles` vs materializing the `Program`
//!   and replaying it.
//!
//! `--quick` shrinks sample counts and workload sizes for CI smoke runs.

use criterion::{black_box, Criterion};

use accel_model::arch::AcceleratorConfig;
use accel_model::plan::{ExecutionPlan, TensorTraffic};
use accel_model::sim::{program_from_plan, TraceSimulator};
use dse::gp::{GaussianProcess, IncrementalGp, Posterior, PredictScratch};
use runtime::{MemoCache, WorkerPool};
use tensor_ir::intrinsics::IntrinsicKind;

/// Deterministic training rows shaped like the surrogate's feature
/// vectors (8 dims in [0, 1]) with a smooth log-ratio-like target.
fn gp_rows(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
    let mut seed = 0x2545f4914f6cdd1du64;
    let mut unit = move || {
        // xorshift64*: cheap, deterministic, good enough for bench data.
        seed ^= seed >> 12;
        seed ^= seed << 25;
        seed ^= seed >> 27;
        (seed.wrapping_mul(0x2545f4914f6cdd1d) >> 11) as f64 / (1u64 << 53) as f64
    };
    let xs: Vec<Vec<f64>> = (0..n).map(|_| (0..8).map(|_| unit()).collect()).collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| 0.3 * (x[0] * 4.0).sin() + 0.2 * x[3] - 0.1 * x[6] * x[7])
        .collect();
    (xs, ys)
}

fn bench_gp(c: &mut Criterion) {
    let (xs, ys) = gp_rows(200);
    for &n in &[50usize, 100, 200] {
        c.bench_function(&format!("gp/fit_scratch/n{n}"), |b| {
            b.iter(|| black_box(GaussianProcess::fit(&xs[..n], &ys[..n])))
        });
        // The incremental observe path: the trainer already holds n−1
        // rows with maintained factors; appending row n extends each
        // factor and re-selects. The per-iteration clone restores the
        // pre-append state (it is O(n²) memcpy, same order as the work
        // being measured, so the ≥5× headline survives it).
        let mut warm = IncrementalGp::new();
        for (x, y) in xs[..n - 1].iter().zip(&ys[..n - 1]) {
            warm.push(x.clone(), *y);
        }
        warm.refresh().expect("warm trainer fits");
        c.bench_function(&format!("gp/observe_incremental/n{n}"), |b| {
            b.iter(|| {
                let mut inc = warm.clone();
                inc.push(xs[n - 1].clone(), ys[n - 1]);
                black_box(inc.model())
            })
        });
    }
    let gp = GaussianProcess::fit(&xs, &ys).expect("fit succeeds");
    let mut scratch = PredictScratch::default();
    let probe: Vec<f64> = (0..8).map(|i| i as f64 / 7.0).collect();
    c.bench_function("gp/predict/n200", |b| {
        b.iter(|| black_box(gp.predict_with(black_box(&probe), &mut scratch)))
    });
    let batch: Vec<Vec<f64>> = (0..64)
        .map(|i| {
            (0..8)
                .map(|d| ((i * 13 + d * 7) % 97) as f64 / 96.0)
                .collect()
        })
        .collect();
    let mut out: Vec<Posterior> = Vec::new();
    c.bench_function("gp/predict_many_64/n200", |b| {
        b.iter(|| {
            gp.predict_many(black_box(&batch), &mut out);
            black_box(out.len())
        })
    });
}

/// A staged plan shaped like the refinement tier's work: mixed DMA and
/// compute across 50 pipeline stages, double buffered.
fn staged_plan() -> ExecutionPlan {
    let mut p = ExecutionPlan::compute_only(4_000_000, 4_200_000, 1000);
    p.dram_reads.push(TensorTraffic::new("A", 512_000, 128));
    p.dram_reads.push(TensorTraffic::new("B", 512_000, 128));
    p.dram_writes.push(TensorTraffic::new("C", 128_000, 128));
    p.spad_traffic_bytes = 2_000_000;
    p.stages = 50;
    p.double_buffered = true;
    p
}

fn bench_sim(c: &mut Criterion) {
    let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
        .pe_array(16, 16)
        .build()
        .expect("config builds");
    let sim = TraceSimulator::default();
    let plan = staged_plan();
    c.bench_function("sim/eval_staged_plan", |b| {
        b.iter(|| black_box(sim.run_plan_cycles(&cfg, black_box(&plan), 64)))
    });
    c.bench_function("sim/eval_via_program", |b| {
        b.iter(|| {
            let program = program_from_plan(black_box(&plan), 64);
            black_box(sim.run(&cfg, &program, plan.double_buffered).cycles)
        })
    });
}

fn bench_cache(c: &mut Criterion, quick: bool) {
    let ops: u64 = if quick { 2_000 } else { 20_000 };
    c.bench_function("cache/contended_mixed_8thr", |b| {
        b.iter(|| {
            let cache: MemoCache<u64, u64> = MemoCache::new(512);
            std::thread::scope(|s| {
                for t in 0..8u64 {
                    let cache = &cache;
                    s.spawn(move || {
                        let mut acc = 0u64;
                        for i in 0..ops {
                            let key = (t * 31 + i * 7) % 1024;
                            match cache.get(&key) {
                                Some(v) => acc = acc.wrapping_add(v),
                                None => cache.insert(key, key * 3),
                            }
                        }
                        black_box(acc)
                    });
                }
            });
            black_box(cache.stats().hits)
        })
    });
}

fn bench_pool(c: &mut Criterion, quick: bool) {
    let items: Vec<u64> = (0..if quick { 64u64 } else { 256 }).collect();
    let pool = WorkerPool::new(8).with_stealing(true);
    // Steal-heavy shape: work per item is wildly uneven (the staged
    // refinement batches look like this — a few expensive survivors among
    // cheap screens), so chunked stealing is what keeps the pool busy.
    c.bench_function("pool/steal_heavy_staged", |b| {
        b.iter(|| {
            let out = pool.map(&items, |_, &i| {
                let spins = (i % 16) * (i % 16) * 120;
                let mut acc = i;
                for k in 0..spins {
                    acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                acc
            });
            black_box(out.len())
        })
    });
}

/// Renders the versioned `BENCH_hotpath.json` document
/// (schema `hasco-bench-hotpath-v1`).
fn bench_json(c: &Criterion, quick: bool) -> String {
    let median = |id: &str| c.median_ns(id).unwrap_or(f64::NAN).max(1.0);
    let gp_speedup = median("gp/fit_scratch/n200") / median("gp/observe_incremental/n200");
    let sim_speedup = median("sim/eval_via_program") / median("sim/eval_staged_plan");
    let mut results = String::new();
    for (i, r) in c.records().iter().enumerate() {
        if i > 0 {
            results.push_str(",\n");
        }
        results.push_str(&format!(
            "    {{ \"id\": \"{}\", \"median_ns\": {:.1}, \"min_ns\": {:.1}, \"max_ns\": {:.1} }}",
            r.id, r.median_ns, r.min_ns, r.max_ns
        ));
    }
    format!(
        "{{\n  \"schema\": \"hasco-bench-hotpath-v1\",\n  \"quick\": {quick},\n  \
         \"results\": [\n{results}\n  ],\n  \"speedups\": {{\n    \
         \"gp_observe_200_vs_scratch\": {gp_speedup:.3},\n    \
         \"sim_staged_vs_program\": {sim_speedup:.3}\n  }}\n}}\n"
    )
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let mut c = Criterion::default().sample_size(if quick { 3 } else { 15 });
    bench_gp(&mut c);
    bench_sim(&mut c);
    bench_cache(&mut c, quick);
    bench_pool(&mut c, quick);

    let json = bench_json(&c, quick);
    // Anchor at the workspace root regardless of cargo's bench cwd, so
    // CI finds the file next to BENCH_table3.json.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("[bench trajectory written to BENCH_hotpath.json]"),
        Err(e) => eprintln!("[failed to write BENCH_hotpath.json: {e}]"),
    }
    let median = |id: &str| c.median_ns(id).unwrap_or(f64::NAN).max(1.0);
    println!(
        "speedups: gp_observe_200_vs_scratch = {:.1}x, sim_staged_vs_program = {:.1}x",
        median("gp/fit_scratch/n200") / median("gp/observe_incremental/n200"),
        median("sim/eval_via_program") / median("sim/eval_staged_plan"),
    );
}
