//! `cargo bench` entry point that replays every table and figure of the
//! paper at `Quick` scale and prints the regenerated artifacts — this is
//! what lands in `bench_output.txt`.

use hasco_bench::Scale;

fn main() {
    let scale = if std::env::args().any(|a| a == "--paper") {
        Scale::Paper
    } else {
        Scale::Quick
    };
    println!("=== HASCO reproduction: regenerating all tables and figures ({scale:?}) ===\n");

    let t0 = std::time::Instant::now();
    macro_rules! exp {
        ($m:ident) => {{
            let start = std::time::Instant::now();
            let r = hasco_bench::$m::run(scale);
            println!("{}", hasco_bench::$m::render(&r));
            println!(
                "[{} regenerated in {:.1}s]\n",
                stringify!($m),
                start.elapsed().as_secs_f64()
            );
        }};
    }
    exp!(table1);
    exp!(fig2);
    exp!(fig7);
    exp!(fig8);
    exp!(fig9);
    exp!(fig10);
    exp!(fig11);
    exp!(table2);
    exp!(table3);
    println!(
        "=== all experiments regenerated in {:.1}s ===",
        t0.elapsed().as_secs_f64()
    );
}
