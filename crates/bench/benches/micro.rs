//! Criterion micro-benchmarks for the reproduction's hot paths: the
//! two-step matcher, schedule lowering, the GP surrogate, the hypervolume
//! indicator, and one full software-DSE round.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use accel_model::arch::AcceleratorConfig;
use dse::gp::GaussianProcess;
use dse::hypervolume::hypervolume;
use sw_opt::explorer::{ExplorerOptions, SoftwareExplorer};
use sw_opt::lowering;
use sw_opt::schedule::ScheduleContext;
use tensor_ir::intrinsics::{gemm_intrinsic, IntrinsicKind};
use tensor_ir::matching::{find_tensorize_choices, MatchOptions};
use tensor_ir::suites;

fn bench_matcher(c: &mut Criterion) {
    let conv = suites::conv2d_workload("c", 64, 64, 56, 56, 3, 3);
    let gemm = gemm_intrinsic(16, 16, 16);
    c.bench_function("matcher/conv_to_gemm_126_subsets", |b| {
        b.iter(|| {
            black_box(find_tensorize_choices(
                black_box(&conv.comp),
                &gemm.comp,
                &MatchOptions::default(),
            ))
        })
    });
}

fn bench_lowering(c: &mut Criterion) {
    let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
        .build()
        .unwrap();
    let wl = suites::conv2d_workload("c", 64, 64, 56, 56, 3, 3);
    let ctx = ScheduleContext::new(&wl, &cfg.intrinsic_comp()).unwrap();
    let mut rng = <rand::rngs::SmallRng as rand::SeedableRng>::seed_from_u64(5);
    let sched = (0..50)
        .map(|_| ctx.random_schedule(&mut rng))
        .find(|s| lowering::lower(s, &ctx, &cfg).is_ok())
        .expect("some schedule is valid");
    c.bench_function("lowering/conv_schedule_to_plan", |b| {
        b.iter(|| black_box(lowering::lower(black_box(&sched), &ctx, &cfg)))
    });
}

fn bench_gp(c: &mut Criterion) {
    let xs: Vec<Vec<f64>> = (0..30)
        .map(|i| {
            vec![
                (i % 6) as f64 / 5.0,
                (i / 6) as f64 / 5.0,
                ((i * 7) % 10) as f64 / 9.0,
            ]
        })
        .collect();
    let ys: Vec<f64> = xs
        .iter()
        .map(|x| (x[0] + 2.0 * x[1] - x[2]).sin())
        .collect();
    c.bench_function("gp/fit_30_points_3d", |b| {
        b.iter(|| black_box(GaussianProcess::fit(&xs, &ys)))
    });
    let gp = GaussianProcess::fit(&xs, &ys).unwrap();
    c.bench_function("gp/predict", |b| {
        b.iter(|| black_box(gp.predict(black_box(&[0.3, 0.7, 0.1]))))
    });
}

fn bench_hypervolume(c: &mut Criterion) {
    let front: Vec<Vec<f64>> = (0..20)
        .map(|i| {
            let t = i as f64 / 19.0;
            vec![t, 1.0 - t, 0.5 + 0.4 * (t * 9.0).sin()]
        })
        .collect();
    c.bench_function("hypervolume/20_points_3d", |b| {
        b.iter(|| black_box(hypervolume(black_box(&front), &[2.0, 2.0, 2.0])))
    });
}

fn bench_sw_round(c: &mut Criterion) {
    let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
        .build()
        .unwrap();
    let wl = suites::gemm_workload("g", 256, 256, 256);
    let opts = ExplorerOptions {
        pool: 6,
        rounds: 4,
        top_k: 2,
        ..Default::default()
    };
    c.bench_function("sw_dse/gemm_4_rounds", |b| {
        b.iter(|| {
            black_box(SoftwareExplorer::new(1).optimize(black_box(&wl), &cfg, &opts)).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_matcher, bench_lowering, bench_gp, bench_hypervolume, bench_sw_round
}
criterion_main!(benches);
