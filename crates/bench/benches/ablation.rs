//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **MOBO acquisition** — GP + hypervolume-PoI vs. pure random sampling
//!    at equal trial budgets (is the surrogate earning its keep?);
//! 2. **Q-learning revisions** — heuristic + DQN vs. heuristic + random
//!    revision in the software DSE;
//! 3. **Dataflow choice** — the latency sensitivity the cost model assigns
//!    to the dataflow knob.

use accel_model::arch::{AcceleratorConfig, Dataflow};
use dse::mobo::Mobo;
use dse::random::RandomSearch;
use dse::Optimizer;
use hasco::codesign::HwProblem;
use hw_gen::GemminiGenerator;
use sw_opt::explorer::{ExplorerOptions, SoftwareExplorer};
use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::suites;

fn ablate_mobo_acquisition() {
    println!("--- ablation 1: MOBO surrogate vs. random acquisition (ResNet layers) ---");
    let workloads: Vec<_> = suites::resnet50_convs().into_iter().take(4).collect();
    let generator = GemminiGenerator::new();
    let sw = ExplorerOptions {
        pool: 4,
        rounds: 3,
        top_k: 2,
        ..Default::default()
    };
    let mut ratios = Vec::new();
    for seed in 0..3u64 {
        let mut p1 = HwProblem::new(&generator, &workloads, sw.clone(), seed);
        let mobo = Mobo::new(seed).with_prior_samples(5).run(&mut p1, 14);
        let mut p2 = HwProblem::new(&generator, &workloads, sw.clone(), seed);
        let rand = RandomSearch::new(seed).run(&mut p2, 14);
        let best = |h: &dse::problem::OptimizerResult| h.best_objective(0).unwrap_or(f64::NAN);
        ratios.push(best(&rand) / best(&mobo));
        println!(
            "  seed {seed}: best latency mobo {:.3e}, random {:.3e} (random/mobo = {:.2}X)",
            best(&mobo),
            best(&rand),
            best(&rand) / best(&mobo)
        );
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("  mean random/mobo best-latency ratio: {mean:.2}X (>1 means the surrogate helps)\n");
}

fn ablate_qlearning() {
    println!("--- ablation 2: Q-learning vs. random revisions (software DSE) ---");
    let cfg = AcceleratorConfig::builder(IntrinsicKind::Gemm)
        .build()
        .unwrap();
    let workloads = [
        suites::gemm_workload("g", 512, 512, 512),
        suites::conv2d_workload("c", 128, 128, 28, 28, 3, 3),
    ];
    for wl in &workloads {
        let mut q_sum = 0.0;
        let mut r_sum = 0.0;
        for seed in 0..3u64 {
            let mut opts = ExplorerOptions {
                pool: 8,
                rounds: 12,
                top_k: 3,
                ..Default::default()
            };
            let q = SoftwareExplorer::new(seed)
                .optimize(wl, &cfg, &opts)
                .unwrap();
            opts.use_qlearning = false;
            let r = SoftwareExplorer::new(seed)
                .optimize(wl, &cfg, &opts)
                .unwrap();
            q_sum += q.metrics.latency_cycles;
            r_sum += r.metrics.latency_cycles;
        }
        println!(
            "  {}: mean latency qlearn {:.3e}, random-revision {:.3e} (random/qlearn = {:.2}X)",
            wl.name,
            q_sum / 3.0,
            r_sum / 3.0,
            r_sum / q_sum
        );
    }
    println!();
}

fn ablate_dataflow() {
    println!("--- ablation 3: dataflow sensitivity of the cost model ---");
    let wl = suites::conv2d_workload("c", 128, 128, 28, 28, 3, 3);
    for df in Dataflow::ALL {
        let mut b = AcceleratorConfig::builder(IntrinsicKind::Conv2d);
        b.pe_array(12, 12).scratchpad_kb(512).banks(8).dataflow(df);
        let cfg = b.build().unwrap();
        let opts = ExplorerOptions {
            pool: 8,
            rounds: 8,
            top_k: 3,
            ..Default::default()
        };
        let m = SoftwareExplorer::new(5)
            .optimize(&wl, &cfg, &opts)
            .unwrap()
            .metrics;
        println!("  {df}: latency {:.3e} cycles", m.latency_cycles);
    }
    println!();
}

fn main() {
    let t0 = std::time::Instant::now();
    ablate_mobo_acquisition();
    ablate_qlearning();
    ablate_dataflow();
    println!("[ablations done in {:.1}s]", t0.elapsed().as_secs_f64());
}
