//! Regenerates the paper's Fig. 11 (ResNet software comparison).
//!
//! `--quick` shrinks budgets for CI; `--threads N` fans evaluation out to
//! N workers (results are identical at any thread count, only faster).
fn main() {
    hasco_bench::cli::drive(
        "fig11",
        "Fig. 11 (ResNet software comparison)",
        hasco_bench::fig11::run,
        hasco_bench::fig11::render,
    );
}
