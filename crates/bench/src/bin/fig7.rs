//! Regenerates the paper's Fig. 7 (tensorize choices & hardware intrinsics).
//!
//! `--quick` shrinks budgets for CI; `--threads N` fans evaluation out to
//! N workers (results are identical at any thread count, only faster).
fn main() {
    hasco_bench::cli::drive(
        "fig7",
        "Fig. 7 (tensorize choices & hardware intrinsics)",
        hasco_bench::fig7::run,
        hasco_bench::fig7::render,
    );
}
