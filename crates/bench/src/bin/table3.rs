//! Regenerates the paper's Table III (edge/cloud co-design scenarios).
//!
//! `--quick` shrinks budgets for CI; `--threads N` fans evaluation out to
//! N workers (results are identical at any thread count, only faster).
fn main() {
    hasco_bench::cli::drive(
        "table3",
        "Table III (edge/cloud co-design scenarios)",
        hasco_bench::table3::run,
        hasco_bench::table3::render,
    );
}
