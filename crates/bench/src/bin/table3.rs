//! Regenerates the paper's table3 (run with `--quick` for reduced budgets).
fn main() {
    let scale = hasco_bench::Scale::from_args();
    let result = hasco_bench::table3::run(scale);
    println!("{}", hasco_bench::table3::render(&result));
}
