//! Regenerates the paper's fig9 (run with `--quick` for reduced budgets).
fn main() {
    let scale = hasco_bench::Scale::from_args();
    let result = hasco_bench::fig9::run(scale);
    println!("{}", hasco_bench::fig9::render(&result));
}
