//! Regenerates the paper's Fig. 9 (metric landscapes + DSE final points).
//!
//! `--quick` shrinks budgets for CI; `--threads N` fans evaluation out to
//! N workers (results are identical at any thread count, only faster).
fn main() {
    hasco_bench::cli::drive(
        "fig9",
        "Fig. 9 (metric landscapes + DSE final points)",
        hasco_bench::fig9::run,
        hasco_bench::fig9::render,
    );
}
