//! Regenerates the paper's Table I (benchmark tensor computations).
//!
//! `--quick` shrinks budgets for CI; `--threads N` fans evaluation out to
//! N workers (results are identical at any thread count, only faster).
fn main() {
    hasco_bench::cli::drive(
        "table1",
        "Table I (benchmark tensor computations)",
        hasco_bench::table1::run,
        hasco_bench::table1::render,
    );
}
