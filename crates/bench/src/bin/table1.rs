//! Regenerates the paper's table1 (run with `--quick` for reduced budgets).
fn main() {
    let scale = hasco_bench::Scale::from_args();
    let result = hasco_bench::table1::run(scale);
    println!("{}", hasco_bench::table1::render(&result));
}
