//! Regenerates the paper's fig2 (run with `--quick` for reduced budgets).
fn main() {
    let scale = hasco_bench::Scale::from_args();
    let result = hasco_bench::fig2::run(scale);
    println!("{}", hasco_bench::fig2::render(&result));
}
