//! Regenerates the paper's Fig. 2 (motivational GA_L/GA_S case study).
//!
//! `--quick` shrinks budgets for CI; `--threads N` fans evaluation out to
//! N workers (results are identical at any thread count, only faster).
fn main() {
    hasco_bench::cli::drive(
        "fig2",
        "Fig. 2 (motivational GA_L/GA_S case study)",
        hasco_bench::fig2::run,
        hasco_bench::fig2::render,
    );
}
