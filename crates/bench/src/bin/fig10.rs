//! Regenerates the paper's fig10 (run with `--quick` for reduced budgets).
fn main() {
    let scale = hasco_bench::Scale::from_args();
    let result = hasco_bench::fig10::run(scale);
    println!("{}", hasco_bench::fig10::render(&result));
}
