//! Regenerates the paper's Fig. 10 (hypervolume vs. trials: Random/NSGA-II/MOBO).
//!
//! `--quick` shrinks budgets for CI; `--threads N` fans evaluation out to
//! N workers (results are identical at any thread count, only faster).
fn main() {
    hasco_bench::cli::drive(
        "fig10",
        "Fig. 10 (hypervolume vs. trials: Random/NSGA-II/MOBO)",
        hasco_bench::fig10::run,
        hasco_bench::fig10::render,
    );
}
