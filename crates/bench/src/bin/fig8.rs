//! Regenerates the paper's Fig. 8 (latency/power/area ground-truth correlations).
//!
//! `--quick` shrinks budgets for CI; `--threads N` fans evaluation out to
//! N workers (results are identical at any thread count, only faster).
fn main() {
    hasco_bench::cli::drive(
        "fig8",
        "Fig. 8 (latency/power/area ground-truth correlations)",
        hasco_bench::fig8::run,
        hasco_bench::fig8::render,
    );
}
