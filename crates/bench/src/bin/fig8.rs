//! Regenerates the paper's fig8 (run with `--quick` for reduced budgets).
fn main() {
    let scale = hasco_bench::Scale::from_args();
    let result = hasco_bench::fig8::run(scale);
    println!("{}", hasco_bench::fig8::render(&result));
}
