//! Regenerates the paper's table2 (run with `--quick` for reduced budgets).
fn main() {
    let scale = hasco_bench::Scale::from_args();
    let result = hasco_bench::table2::run(scale);
    println!("{}", hasco_bench::table2::render(&result));
}
