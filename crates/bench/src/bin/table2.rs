//! Regenerates the paper's Table II (constrained Pareto solutions per method).
//!
//! `--quick` shrinks budgets for CI; `--threads N` fans evaluation out to
//! N workers (results are identical at any thread count, only faster).
fn main() {
    hasco_bench::cli::drive(
        "table2",
        "Table II (constrained Pareto solutions per method)",
        hasco_bench::table2::run,
        hasco_bench::table2::render,
    );
}
