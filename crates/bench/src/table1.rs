//! Table I — benchmark tensor computations: notation, workload counts, and
//! compute-complexity ranges.

use hasco::report::Table;
use tensor_ir::complexity::format_ops;
use tensor_ir::suites;

use crate::Scale;

/// One row of Table I.
#[derive(Debug, Clone)]
pub struct Row {
    /// Computation name.
    pub name: String,
    /// The paper-style notation.
    pub notation: String,
    /// Workload count.
    pub workloads: usize,
    /// (min, max) FLOPs.
    pub complexity: (u64, u64),
}

/// The regenerated Table I.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// The rows, in paper order (MTTKRP, TTM, 2D conv, GEMM).
    pub rows: Vec<Row>,
}

/// Regenerates Table I. `Scale` is irrelevant here (the table is cheap).
pub fn run(_scale: Scale) -> Table1 {
    let rows = suites::table1_apps()
        .into_iter()
        .map(|app| {
            let notation = app.workloads[0].comp.notation();
            let complexity = app.complexity_range();
            Row {
                name: app.name.clone(),
                notation,
                workloads: app.len(),
                complexity,
            }
        })
        .collect();
    Table1 { rows }
}

/// Renders the table as text.
pub fn render(t: &Table1) -> String {
    let mut out = Table::new(&["Computation", "Notation", "Workloads", "Compute Complexity"]);
    for r in &t.rows {
        let wl = if r.name == "conv2d" {
            format!("{} + CNNs", r.workloads)
        } else {
            r.workloads.to_string()
        };
        out.row(vec![
            r.name.clone(),
            r.notation.clone(),
            wl,
            format!(
                "{} - {}",
                format_ops(r.complexity.0),
                format_ops(r.complexity.1)
            ),
        ]);
    }
    format!("Table I: Benchmark Tensor Computations\n{}", out.render())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_four_rows_with_paper_ranges() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 4);
        let by_name = |n: &str| t.rows.iter().find(|r| r.name == n).unwrap();
        // Paper: MTTKRP 255M-5.9G, TTM 16M-8.6G, conv 87M-3.7G, GEMM 16K-4.3G.
        assert!(by_name("mttkrp").complexity.0 > 200_000_000);
        assert!(by_name("ttm").complexity.1 > 8_000_000_000);
        assert!(by_name("gemm").complexity.0 < 20_000);
        assert!(by_name("conv2d").complexity.1 > 3_500_000_000);
    }

    #[test]
    fn render_contains_notation() {
        let s = render(&run(Scale::Quick));
        assert!(s.contains("sum_{k,l} A[i,k,l] * B[l,j] * C[k,j]"));
        assert!(s.contains("+ CNNs"));
    }
}
