//! Fig. 2 — the motivational case study (§II-C): two GEMM accelerators
//! (GA_L: 16×16 PEs / 256 KB, GA_S: 8×8 / 128 KB) running three optimized
//! programs.
//!
//! We construct the programs the way the study motivates them: `p1` is the
//! program tuned for GA_L, `p2` is the program tuned for GA_S, and `p3` is
//! `p1` with more on-chip computation (grown tiles). The paper's findings
//! to reproduce: software optimizations have a large impact; more on-chip
//! computation does not necessarily help (p3 vs. p1); and different
//! accelerators prefer different programs.

use hasco::report::Table;

use sw_opt::lowering;
use sw_opt::schedule::{Schedule, ScheduleContext};
use tensor_ir::suites;

use crate::common::{ga_l, ga_s, sw_opts, throughput_mops};
use crate::Scale;

/// Result: normalized throughput of p1–p3 on both accelerators.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Throughput (MOPS) of [p1, p2, p3] on GA_L.
    pub ga_l_mops: [f64; 3],
    /// Throughput (MOPS) of [p1, p2, p3] on GA_S.
    pub ga_s_mops: [f64; 3],
    /// GA_L peak (max across programs) used for normalization.
    pub ga_l_peak: f64,
}

impl Fig2 {
    /// Normalized throughput matrix (by GA_L's peak, as in the paper).
    pub fn normalized(&self) -> ([f64; 3], [f64; 3]) {
        let n = |v: f64| v / self.ga_l_peak;
        (
            [
                n(self.ga_l_mops[0]),
                n(self.ga_l_mops[1]),
                n(self.ga_l_mops[2]),
            ],
            [
                n(self.ga_s_mops[0]),
                n(self.ga_s_mops[1]),
                n(self.ga_s_mops[2]),
            ],
        )
    }

    /// The index of the best program per accelerator.
    pub fn best_programs(&self) -> (usize, usize) {
        let argmax = |v: &[f64; 3]| {
            v.iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
                .map(|(i, _)| i)
                .expect("non-empty")
        };
        (argmax(&self.ga_l_mops), argmax(&self.ga_s_mops))
    }
}

fn grow_tiles(sched: &Schedule, ctx: &ScheduleContext) -> Schedule {
    let mut grown = sched.clone();
    for (&idx, t) in sched.tiles.iter() {
        let ext = ctx.workload.comp.index(idx).extent;
        grown.tiles.insert(idx, (t * 2).min(ext));
    }
    grown
}

/// Runs the case study.
pub fn run(scale: Scale) -> Fig2 {
    let workload = suites::gemm_workload("fig2_gemm", 512, 512, 512);
    let (big, small) = (ga_l(), ga_s());
    let opts = sw_opts(scale);
    let explorer = crate::common::explorer(2024);

    let p1 = explorer
        .optimize(&workload, &big, &opts)
        .expect("GA_L is schedulable")
        .schedule;
    let p2 = explorer
        .optimize(&workload, &small, &opts)
        .expect("GA_S is schedulable")
        .schedule;

    let eval = |sched: &Schedule, cfg: &accel_model::AcceleratorConfig| -> f64 {
        let ctx = ScheduleContext::new(&workload, &cfg.intrinsic_comp())
            .expect("gemm matches gemm intrinsic");
        // Rebind the schedule's choice to this accelerator's context (the
        // choice structure is identical; tiles/order carry over).
        let mut s = sched.clone();
        if let Some(c) = ctx.choices.iter().find(|c| c.var_map == s.choice.var_map) {
            s.choice = c.clone();
        }
        match lowering::evaluate(&s, &ctx, cfg, &accel_model::AnalyticBackend::default()) {
            Ok(m) => throughput_mops(&workload, m.latency_ms),
            Err(_) => 0.0, // does not fit this accelerator
        }
    };

    let ctx_big = ScheduleContext::new(&workload, &big.intrinsic_comp()).expect("valid");
    let p3 = grow_tiles(&p1, &ctx_big);

    let ga_l_mops = [eval(&p1, &big), eval(&p2, &big), eval(&p3, &big)];
    let ga_s_mops = [eval(&p1, &small), eval(&p2, &small), eval(&p3, &small)];
    let ga_l_peak = ga_l_mops.iter().cloned().fold(0.0, f64::max);
    Fig2 {
        ga_l_mops,
        ga_s_mops,
        ga_l_peak,
    }
}

/// Renders the figure as a table of normalized throughput.
pub fn render(f: &Fig2) -> String {
    let (l, s) = f.normalized();
    let mut t = Table::new(&["Program", "GA_L", "GA_S"]);
    for (i, name) in ["p1", "p2", "p3"].iter().enumerate() {
        t.row(vec![
            name.to_string(),
            format!("{:.3}", l[i]),
            format!("{:.3}", s[i]),
        ]);
    }
    let (bl, bs) = f.best_programs();
    format!(
        "Fig. 2: Normalized throughput on two GEMM accelerators (GA_L peak = {:.1} MOPS)\n{}\
         best on GA_L: p{}, best on GA_S: p{}\n",
        f.ga_l_peak,
        t.render(),
        bl + 1,
        bs + 1
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn software_choice_matters_and_p3_not_better() {
        let f = run(Scale::Quick);
        // p1 is tuned for GA_L: it must be at least as good as p3 (more
        // on-chip compute) there.
        assert!(
            f.ga_l_mops[0] >= f.ga_l_mops[2] * 0.999,
            "{:?}",
            f.ga_l_mops
        );
        // Programs differ in throughput (software has a huge impact).
        let spread = f.ga_l_mops.iter().cloned().fold(0.0, f64::max)
            / f.ga_l_mops
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min)
                .max(1e-9);
        assert!(spread > 1.01, "no spread: {:?}", f.ga_l_mops);
    }

    #[test]
    fn ga_l_peak_exceeds_ga_s_peak() {
        // §II-C: GA_L achieves higher peak throughput than GA_S.
        let f = run(Scale::Quick);
        let s_peak = f.ga_s_mops.iter().cloned().fold(0.0, f64::max);
        assert!(
            f.ga_l_peak > s_peak,
            "GA_L {} vs GA_S {}",
            f.ga_l_peak,
            s_peak
        );
    }

    #[test]
    fn render_has_three_rows() {
        let s = render(&run(Scale::Quick));
        assert!(s.contains("p1") && s.contains("p2") && s.contains("p3"));
    }
}
