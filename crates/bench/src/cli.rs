//! Shared command-line handling for the figure/table binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` / `--paper` — experiment scale (default `--paper`);
//! * `--threads N` — evaluation worker threads (`0` = all cores;
//!   default `1`, the fully serial reference). Thread count changes
//!   wall-clock time only, never results;
//! * `--help` — usage.
//!
//! `HASCO_THREADS` is honored when `--threads` is absent, so
//! `cargo bench` runs can be parallelized without changing argv.

use crate::{common, Scale};

/// Parsed options for one bench binary.
#[derive(Debug, Clone, Copy)]
pub struct BenchCli {
    /// Experiment scale.
    pub scale: Scale,
    /// Worker threads (already applied via [`common::set_threads`]).
    pub threads: usize,
}

fn usage(bin: &str, artifact: &str) -> String {
    format!(
        "Regenerates the paper's {artifact}.\n\n\
         USAGE: {bin} [--quick | --paper] [--threads N]\n\n\
         OPTIONS:\n\
         \x20   --quick       reduced budgets/workload subsets (CI-sized)\n\
         \x20   --paper       paper-sized trial budgets (default)\n\
         \x20   --threads N   evaluation worker threads (0 = all cores, default 1);\n\
         \x20                 results are identical at any thread count\n\
         \x20   --help        this message"
    )
}

/// Parses argv for a bench binary (exiting on `--help` or bad input) and
/// installs the thread count for the experiment harnesses.
pub fn parse(bin: &str, artifact: &str) -> BenchCli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut threads: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--paper" => scale = Scale::Paper,
            "--threads" => {
                let value = it.next().and_then(|v| v.parse::<usize>().ok());
                match value {
                    Some(n) => threads = Some(n),
                    None => {
                        eprintln!("--threads expects a number\n\n{}", usage(bin, artifact));
                        std::process::exit(2);
                    }
                }
            }
            "--help" | "-h" => {
                println!("{}", usage(bin, artifact));
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown option `{other}`\n\n{}", usage(bin, artifact));
                std::process::exit(2);
            }
        }
    }
    let threads = threads
        .or_else(|| {
            std::env::var("HASCO_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(1);
    common::set_threads(threads);
    BenchCli { scale, threads }
}

/// Runs one experiment end to end: parse argv, run, render, report timing.
pub fn drive<T>(
    bin: &str,
    artifact: &str,
    run: impl FnOnce(Scale) -> T,
    render: impl FnOnce(&T) -> String,
) {
    let cli = parse(bin, artifact);
    let start = std::time::Instant::now();
    let result = run(cli.scale);
    println!("{}", render(&result));
    println!(
        "[{artifact} regenerated in {:.1}s at {:?} scale, {} worker thread(s)]",
        start.elapsed().as_secs_f64(),
        cli.scale,
        runtime::resolve_threads(cli.threads),
    );
}
