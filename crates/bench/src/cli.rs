//! Shared command-line handling for the figure/table binaries.
//!
//! Every binary accepts:
//!
//! * `--quick` / `--paper` — experiment scale (default `--paper`);
//! * `--threads N` — evaluation worker threads (`0` = all cores;
//!   default `1`, the fully serial reference). Thread count changes
//!   wall-clock time only, never results;
//! * `--backend B` — cost backend tier (`analytic` | `sim` |
//!   `calibrated` | `surrogate`, default `analytic`);
//! * `--refine-top-k K` — fidelity staging: re-evaluate the `K`
//!   best-screened candidates of every DSE batch with the trace-sim tier
//!   (default 0 = off; `auto` enables the adaptive controller);
//! * `--adaptive` — adaptive fidelity staging: the refine budget grows
//!   and shrinks per batch from the screen-vs-refine rank disagreement;
//! * `--tech-sweep` — run the hardware-DSE experiments across the named
//!   `TechParams` profiles as an extra scenario axis (fig10, table3);
//! * `--cache FILE` — persist the evaluation cache at `FILE` so repeated
//!   runs start warm (shared files merge newest-wins across runs);
//! * `--cache-max-age SECS` — age-based GC for the shared cache file:
//!   entries no run refreshed within `SECS` seconds are dropped at save
//!   time, so long-lived files stop growing without bound;
//! * `--surrogate-store FILE` — persist the engine's trained surrogate
//!   registry at `FILE`, so a repeat invocation prices with the previous
//!   run's surrogate generation instead of re-paying the training
//!   (pair with `--cache` for fully warm restarts);
//! * `--metrics-out FILE` — write the run's telemetry snapshot (spans,
//!   counters, per-shard cache stats, per-tier latency histograms) as
//!   versioned JSON (`hasco-telemetry-v1`) at `FILE`;
//! * `--connect ADDR` — run campaigns against the `hasco-serve`
//!   front-end at `ADDR` instead of an in-process engine (results are
//!   bit-identical; the warm state lives server-side);
//! * `--serve ADDR` — don't run the experiment: serve a network engine
//!   built from this binary's persistence flags at `ADDR` until a client
//!   sends shutdown (`--workers-remote N` holds jobs until `N` remote
//!   workers registered);
//! * `--help` — usage.
//!
//! `HASCO_THREADS` is honored when `--threads` is absent, so
//! `cargo bench` runs can be parallelized without changing argv.

use accel_model::BackendKind;

use crate::{common, Scale};

/// Parsed options for one bench binary.
#[derive(Debug, Clone, Copy)]
pub struct BenchCli {
    /// Experiment scale.
    pub scale: Scale,
    /// Worker threads (already applied via [`common::set_threads`]).
    pub threads: usize,
    /// Cost backend (already applied via [`common::set_backend`]).
    pub backend: BackendKind,
    /// Fidelity-staging survivors (already applied via
    /// [`common::set_refine_top_k`]).
    pub refine_top_k: usize,
    /// Adaptive fidelity staging (already applied via
    /// [`common::set_adaptive`]).
    pub adaptive: bool,
    /// Technology-profile sweep (already applied via
    /// [`common::set_tech_sweep`]).
    pub tech_sweep: bool,
}

fn usage(bin: &str, artifact: &str) -> String {
    format!(
        "Regenerates the paper's {artifact}.\n\n\
         USAGE: {bin} [--quick | --paper] [--threads N] [--backend B] [--refine-top-k K|auto]\n\
         \x20      [--adaptive] [--tech-sweep] [--cache FILE] [--cache-max-age SECS]\n\
         \x20      [--surrogate-store FILE] [--metrics-out FILE]\n\n\
         OPTIONS:\n\
         \x20   --quick           reduced budgets/workload subsets (CI-sized)\n\
         \x20   --paper           paper-sized trial budgets (default)\n\
         \x20   --threads N       evaluation worker threads (0 = all cores, default 1);\n\
         \x20                     results are identical at any thread count\n\
         \x20   --backend B       cost backend: analytic | sim | calibrated | surrogate\n\
         \x20                     (default analytic; surrogate = analytic + a GP trained\n\
         \x20                     online from the refine tier)\n\
         \x20   --refine-top-k K  re-evaluate the K best-screened DSE candidates per batch\n\
         \x20                     with the trace-sim tier (default 0 = staging off; `auto`\n\
         \x20                     enables the adaptive controller; applies to the\n\
         \x20                     hardware-DSE binaries: fig10, table2, table3)\n\
         \x20   --adaptive        grow/shrink the refine budget per batch from the observed\n\
         \x20                     screen-vs-refine rank disagreement (implies staging)\n\
         \x20   --tech-sweep      sweep the named TechParams profiles as a scenario axis\n\
         \x20                     (fig10, table3)\n\
         \x20   --cache FILE      persist the hardware-DSE evaluation cache at FILE so\n\
         \x20                     repeat runs start warm; shared files merge newest-wins\n\
         \x20                     (fig10, table2, table3)\n\
         \x20   --cache-max-age SECS  drop cache entries older than SECS seconds when\n\
         \x20                     saving, so long-lived shared files are GC'd\n\
         \x20   --surrogate-store FILE  persist the trained surrogate registry at FILE so\n\
         \x20                     repeat runs start at the previous surrogate generation\n\
         \x20                     (campaign binaries: fig10, table3)\n\
         \x20   --metrics-out FILE  write the telemetry snapshot (spans, counters, cache\n\
         \x20                     shards, per-tier latency histograms) as JSON at FILE\n\
         \x20   --connect ADDR    run campaigns against the hasco-serve front-end at ADDR\n\
         \x20                     (bit-identical results; warm state lives server-side)\n\
         \x20   --serve ADDR      serve a network engine at ADDR instead of running the\n\
         \x20                     experiment (exits when a client sends shutdown)\n\
         \x20   --workers-remote N  with --serve: hold jobs until N remote workers have\n\
         \x20                     registered (throughput gate only — never changes results)\n\
         \x20   --help            this message"
    )
}

fn bail(bin: &str, artifact: &str, msg: &str) -> ! {
    eprintln!("{msg}\n\n{}", usage(bin, artifact));
    std::process::exit(2);
}

/// Parses argv for a bench binary (exiting on `--help` or bad input) and
/// installs the runtime configuration for the experiment harnesses.
pub fn parse(bin: &str, artifact: &str) -> BenchCli {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Paper;
    let mut threads: Option<usize> = None;
    let mut backend = BackendKind::Analytic;
    let mut refine_top_k = 0usize;
    let mut adaptive = false;
    let mut tech_sweep = false;
    let mut serve: Option<String> = None;
    let mut workers_remote = 0usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--paper" => scale = Scale::Paper,
            "--threads" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => threads = Some(n),
                None => bail(bin, artifact, "--threads expects a number"),
            },
            "--backend" => match it.next().map(|v| v.parse::<BackendKind>()) {
                Some(Ok(kind)) => backend = kind,
                Some(Err(e)) => bail(bin, artifact, &e),
                None => bail(
                    bin,
                    artifact,
                    "--backend expects analytic | sim | calibrated | surrogate",
                ),
            },
            "--refine-top-k" => match it.next() {
                Some(v) if v == "auto" => adaptive = true,
                Some(v) => match v.parse::<usize>() {
                    Ok(k) => refine_top_k = k,
                    Err(_) => bail(bin, artifact, "--refine-top-k expects a number or `auto`"),
                },
                None => bail(bin, artifact, "--refine-top-k expects a number or `auto`"),
            },
            "--adaptive" => adaptive = true,
            "--tech-sweep" => tech_sweep = true,
            "--cache" => match it.next() {
                Some(path) => common::set_cache_path(path.into()),
                None => bail(bin, artifact, "--cache expects a file path"),
            },
            "--cache-max-age" => match it.next().and_then(|v| v.parse::<u64>().ok()) {
                Some(secs) => common::set_cache_max_age(std::time::Duration::from_secs(secs)),
                None => bail(bin, artifact, "--cache-max-age expects seconds"),
            },
            "--surrogate-store" => match it.next() {
                Some(path) => common::set_surrogate_store(path.into()),
                None => bail(bin, artifact, "--surrogate-store expects a file path"),
            },
            "--metrics-out" => match it.next() {
                Some(path) => common::set_metrics_out(path.into()),
                None => bail(bin, artifact, "--metrics-out expects a file path"),
            },
            "--connect" => match it.next() {
                Some(addr) => common::set_connect(addr.clone()),
                None => bail(bin, artifact, "--connect expects HOST:PORT"),
            },
            "--serve" => match it.next() {
                Some(addr) => serve = Some(addr.clone()),
                None => bail(bin, artifact, "--serve expects HOST:PORT"),
            },
            "--workers-remote" => match it.next().and_then(|v| v.parse::<usize>().ok()) {
                Some(n) => workers_remote = n,
                None => bail(bin, artifact, "--workers-remote expects a number"),
            },
            "--help" | "-h" => {
                println!("{}", usage(bin, artifact));
                std::process::exit(0);
            }
            other => bail(bin, artifact, &format!("unknown option `{other}`")),
        }
    }
    let threads = threads
        .or_else(|| {
            std::env::var("HASCO_THREADS")
                .ok()
                .and_then(|v| v.parse().ok())
        })
        .unwrap_or(1);
    // Adaptive staging needs a nonzero starting budget even when only
    // `--adaptive` / `--refine-top-k auto` was given.
    if adaptive && refine_top_k == 0 {
        refine_top_k = 4;
    }
    // Catch degenerate staging at the CLI, with the same rules
    // `CoDesignOptions::validate` enforces at submit: refining with the
    // tier that already screened is a no-op that costs sim time.
    if refine_top_k > 0 && backend == BackendKind::TraceSim {
        bail(
            bin,
            artifact,
            "--refine-top-k with --backend sim is degenerate: the refine tier (sim) \
             would re-price what the screen tier (sim) already priced; screen with a \
             cheaper backend or drop --refine-top-k",
        );
    }
    common::set_threads(threads);
    common::set_backend(backend);
    common::set_refine_top_k(refine_top_k);
    common::set_adaptive(adaptive);
    common::set_tech_sweep(tech_sweep);
    if workers_remote > 0 && serve.is_none() {
        bail(
            bin,
            artifact,
            "--workers-remote only makes sense with --serve",
        );
    }
    if let Some(addr) = serve {
        if common::connect_addr().is_some() {
            bail(
                bin,
                artifact,
                "--serve and --connect are mutually exclusive",
            );
        }
        // Serve mode: this process becomes the network front-end for its
        // persistence flags and never runs the experiment itself.
        let opts = hasco_net::ServerOptions {
            min_workers: workers_remote,
            ..hasco_net::ServerOptions::default()
        };
        match hasco_net::Server::bind(&addr, common::engine_config(), opts) {
            Ok(server) => {
                println!("hasco-serve: listening on {}", server.addr());
                server.wait_for_shutdown();
                println!("hasco-serve: drained, exiting");
                std::process::exit(0);
            }
            Err(e) => bail(bin, artifact, &format!("--serve {addr}: bind failed: {e}")),
        }
    }
    BenchCli {
        scale,
        threads,
        backend,
        refine_top_k,
        adaptive,
        tech_sweep,
    }
}

/// Runs one experiment end to end: parse argv, run, render, report timing.
pub fn drive<T>(
    bin: &str,
    artifact: &str,
    run: impl FnOnce(Scale) -> T,
    render: impl FnOnce(&T) -> String,
) {
    let cli = parse(bin, artifact);
    // Clock audit: the whole-run timing is a telemetry span like any
    // other — the bracketed footer line and the `--metrics-out` snapshot
    // report the same clock, and neither can reach results. `result`
    // (the artifact table) is produced by `run` before `elapsed` is even
    // read, and the snapshot is written to a separate side-channel file,
    // so wall-clock time never enters the regenerated artifact.
    let span = common::telemetry().span("bench");
    let result = run(cli.scale);
    let elapsed = span.finish();
    println!("{}", render(&result));
    println!(
        "[{artifact} regenerated in {:.1}s at {:?} scale, {} worker thread(s), {} backend{}{}]",
        elapsed.as_secs_f64(),
        cli.scale,
        runtime::resolve_threads(cli.threads),
        cli.backend,
        match (cli.adaptive, cli.refine_top_k) {
            (true, k) => format!(", adaptive refine from top-{k}"),
            (false, 0) => String::new(),
            (false, k) => format!(", refine top-{k}"),
        },
        if cli.tech_sweep { ", tech sweep" } else { "" },
    );
    if let Some(snapshot) = common::telemetry().snapshot() {
        println!("{}", snapshot.render());
        if let Some(path) = common::metrics_out() {
            match std::fs::write(&path, snapshot.to_json()) {
                Ok(()) => println!("[telemetry snapshot written to {}]", path.display()),
                Err(e) => eprintln!("[failed to write {}: {e}]", path.display()),
            }
        }
    }
}
