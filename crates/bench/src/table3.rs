//! Table III — the overall co-design study (§VII-E): edge (2 W) and cloud
//! (20 W) scenarios over ResNet, MobileNet, and Xception.
//!
//! Four systems per (scenario, CNN) cell:
//! * **Baseline-GEMMCore** — the traditional decoupled flow: the default
//!   Gemmini accelerator plus AutoTVM-tuned software;
//! * **HASCO-GEMMCore** — full co-design over the Gemmini space;
//! * **HASCO-ConvCore** — full co-design over the unconstrained CONV2D
//!   generator space;
//! * **HLS-Core** — a fixed datapath synthesized on the ConvCore hardware.
//!
//! Headline shapes: co-design buys 1.25–1.44X over the baseline, ConvCore
//! a further ~1.4X over GEMMCore, and HLS loses 1.6–2.2X to ConvCore.

use baselines::{AutoTvm, HlsCore};
use hasco::engine::CoDesignRequest;
use hasco::event::CampaignEvent;
use hasco::input::{Constraints, GenerationMethod, InputDescription};
use hasco::report::{speedup, CampaignStats, Table};
use hw_gen::GemminiGenerator;
use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::suites;
use tensor_ir::workload::{TensorApp, Workload};

use crate::common::subsample;
use crate::Scale;

/// One system's outcome in a cell.
#[derive(Debug, Clone)]
pub struct SystemResult {
    /// PE count.
    pub pes: u64,
    /// Scratchpad KiB.
    pub mem_kb: u64,
    /// Bank count.
    pub banks: u32,
    /// App latency (ms, over the evaluated layer set).
    pub latency_ms: f64,
}

/// One (scenario, CNN) row.
#[derive(Debug, Clone)]
pub struct Row {
    /// `"edge"` or `"cloud"`.
    pub scenario: String,
    /// Technology node (`"28nm"` by default; the `--tech-sweep` axis).
    pub tech: String,
    /// CNN name.
    pub app: String,
    /// Baseline-GEMMCore.
    pub baseline: SystemResult,
    /// HASCO-GEMMCore.
    pub hasco_gemm: SystemResult,
    /// HASCO-ConvCore.
    pub hasco_conv: SystemResult,
    /// HLS-Core (on the ConvCore hardware).
    pub hls: SystemResult,
}

/// The regenerated table.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// All rows (2 scenarios × 3 CNNs).
    pub rows: Vec<Row>,
}

fn summarize(cfg: &accel_model::AcceleratorConfig, latency_ms: f64) -> SystemResult {
    SystemResult {
        pes: cfg.pes(),
        mem_kb: cfg.scratchpad_bytes / 1024,
        banks: cfg.banks,
        latency_ms,
    }
}

/// Runs the study. The co-design cells — two per (scenario, tech, CNN)
/// row — fan out as one campaign on a resident engine: every cell shares
/// the engine's memo store, so the edge and cloud scenarios (identical
/// evaluations, different constraints) and repeat runs against a
/// `--cache` file deduplicate their software explorations instead of
/// recomputing them.
pub fn run(scale: Scale) -> Table3 {
    let layers = match scale {
        Scale::Quick => 3,
        Scale::Paper => 6,
    };
    // With `--tech-sweep` the technology node replaces the CNN as the
    // inner axis (ResNet only), keeping the cell count — and the cost —
    // identical to the default study.
    let apps: Vec<(&str, Vec<Workload>)> = if crate::common::tech_sweep() {
        vec![("resnet", subsample(&suites::resnet50_convs(), layers))]
    } else {
        vec![
            ("resnet", subsample(&suites::resnet50_convs(), layers)),
            ("mobilenet", subsample(&suites::mobilenet_convs(), layers)),
            ("xception", subsample(&suites::xception_convs(), layers)),
        ]
    };
    let profiles = crate::common::tech_profiles();
    // (name, power cap mW, cloud?)
    let scenarios = [("edge", 2_000.0, false), ("cloud", 20_000.0, true)];

    // Pass 1: build the campaign matrix — two co-design requests per
    // row — and remember each row's local context for assembly.
    struct RowCtx<'a> {
        scenario: &'a str,
        tech_name: String,
        tech: accel_model::tech::TechParams,
        app_name: &'a str,
        workloads: &'a [Workload],
        cloud: bool,
    }
    let mut rows_ctx: Vec<RowCtx> = Vec::new();
    let mut requests: Vec<CoDesignRequest> = Vec::new();
    for (scenario, power_cap, cloud) in scenarios {
        for (tech_name, tech) in &profiles {
            for (app_name, workloads) in &apps {
                let app = TensorApp::new(*app_name, workloads.clone());
                let constraints = Constraints {
                    max_power_mw: Some(power_cap),
                    ..Constraints::default()
                };
                let opts = crate::common::codesign_options_at(scale, 3, tech);
                for (system, method) in [
                    ("gemm", GenerationMethod::Gemmini),
                    ("conv", GenerationMethod::Chisel(IntrinsicKind::Conv2d)),
                ] {
                    let input = InputDescription {
                        app: app.clone(),
                        method,
                        constraints,
                    };
                    requests.push(
                        CoDesignRequest::new(input, opts.clone())
                            .with_label(format!("{scenario}/{tech_name}/{app_name}/{system}")),
                    );
                }
                rows_ctx.push(RowCtx {
                    scenario,
                    tech_name: tech_name.to_string(),
                    tech: tech.clone(),
                    app_name,
                    workloads,
                    cloud,
                });
            }
        }
    }

    // Pass 2: one campaign on one engine, with the aggregate progress
    // stream: per-request attribution plus dedup-aware completion counts
    // (identical cells — e.g. repeat runs against a warm `--cache` with
    // equal matrices — complete without executing).
    let engine = crate::common::engine();
    let (outcomes, events) = engine
        .campaign_events(requests)
        .expect("co-design cells succeed");
    let _ = engine.persist();
    // Flush engine-level telemetry (store-scope cache shards, warm-entry
    // gauges) into the shared registry before the engine goes away, so
    // the end-of-run snapshot carries them.
    let _ = engine.metrics();
    let mut executed = 0usize;
    let mut deduplicated = 0usize;
    let mut total = 0usize;
    for event in events {
        match event {
            CampaignEvent::Planned {
                scenarios,
                unique_jobs,
                deduplicated: dedup,
            } => {
                total = scenarios;
                executed = unique_jobs;
                deduplicated = dedup;
            }
            CampaignEvent::ScenarioDone {
                completed, total, ..
            } if completed == total => {
                println!("[campaign: all {total} co-design cells complete]");
            }
            _ => {}
        }
    }
    println!("[campaign: {total} cells, {executed} executed, {deduplicated} deduplicated]");

    // Dedup-aware rollup of every cell's RunStats: any single cell's
    // stats describe only that job, and deduplicated cells carry clones
    // of a representative already counted, so campaign totals come from
    // this fold — monotone in work actually performed.
    let rollup = CampaignStats::from_outcomes(&outcomes);
    println!("{}", rollup.render());

    // Pass 3: assemble rows — baseline and HLS are priced inline (they
    // are fixed designs, not co-design runs).
    let mut rows = Vec::new();
    for (ctx, pair) in rows_ctx.iter().zip(outcomes.chunks(2)) {
        let (gemm_sol, conv_sol) = (&pair[0].solution, &pair[1].solution);

        // Baseline: default accelerator + AutoTVM software, priced at
        // this row's technology node so per-row speedups compare systems
        // at one node.
        let base_cfg = GemminiGenerator::baseline(ctx.cloud);
        let tvm = AutoTvm::new(3).with_model(accel_model::CostModel::new(ctx.tech.clone()));
        let mut parts = Vec::new();
        for w in ctx.workloads {
            parts.push(
                tvm.best_metrics(w, &base_cfg)
                    .expect("baseline maps layers"),
            );
        }
        let base_m = accel_model::Metrics::sequential(&parts);

        // HLS-Core on the ConvCore hardware, at the same node.
        let hls = HlsCore::synthesize(ctx.workloads, &conv_sol.accelerator)
            .expect("hls synthesis succeeds")
            .with_model(accel_model::CostModel::new(ctx.tech.clone()));
        let hls_m = hls.run_app(ctx.workloads).expect("hls runs the app");

        rows.push(Row {
            scenario: ctx.scenario.to_string(),
            tech: ctx.tech_name.clone(),
            app: ctx.app_name.to_string(),
            baseline: summarize(&base_cfg, base_m.latency_ms),
            hasco_gemm: summarize(&gemm_sol.accelerator, gemm_sol.total.latency_ms),
            hasco_conv: summarize(&conv_sol.accelerator, conv_sol.total.latency_ms),
            hls: summarize(&conv_sol.accelerator, hls_m.latency_ms),
        });
    }
    let table = Table3 { rows };

    // Quick mode doubles as the CI perf smoke: emit the headline gains
    // and the campaign rollup as a machine-readable trajectory point
    // (best effort — a failed write costs the artifact, never the table).
    if scale == Scale::Quick {
        let json = bench_json(&table, &rollup);
        match std::fs::write("BENCH_table3.json", json) {
            Ok(()) => println!("[bench trajectory written to BENCH_table3.json]"),
            Err(e) => eprintln!("[failed to write BENCH_table3.json: {e}]"),
        }
    }
    table
}

/// The `BENCH_table3.json` document: headline geomean gains plus the
/// dedup-aware campaign totals, schema `hasco-bench-table3-v1`.
fn bench_json(t: &Table3, rollup: &CampaignStats) -> String {
    format!(
        "{{\n  \"schema\": \"hasco-bench-table3-v1\",\n  \"rows\": {},\n  \
         \"codesign_gain\": {:.6},\n  \"convcore_gain\": {:.6},\n  \"hls_gap\": {:.6},\n  \
         \"campaign\": {{\n    \"scenarios\": {},\n    \"executed\": {},\n    \
         \"deduplicated\": {},\n    \"hw_evaluations\": {},\n    \"sw_explorations\": {},\n    \
         \"refine_explorations\": {},\n    \"steals\": {},\n    \"warm_cache_entries\": {},\n    \
         \"cache_hits\": {},\n    \"cache_misses\": {},\n    \"cache_evictions\": {}\n  }}\n}}\n",
        t.rows.len(),
        t.codesign_gain(),
        t.convcore_gain(),
        t.hls_gap(),
        rollup.scenarios,
        rollup.executed,
        rollup.deduplicated,
        rollup.hw_evaluations,
        rollup.sw_explorations,
        rollup.refine_explorations,
        rollup.steals,
        rollup.warm_cache_entries,
        rollup.cache.hits,
        rollup.cache.misses,
        rollup.cache.evictions,
    )
}

/// Geometric-mean speedups across rows.
impl Table3 {
    /// HASCO-GEMMCore vs. the decoupled baseline (paper: 1.25–1.44X).
    pub fn codesign_gain(&self) -> f64 {
        geomean(
            self.rows
                .iter()
                .map(|r| r.baseline.latency_ms / r.hasco_gemm.latency_ms),
        )
    }

    /// HASCO-ConvCore vs. HASCO-GEMMCore (paper: 1.42X mean).
    pub fn convcore_gain(&self) -> f64 {
        geomean(
            self.rows
                .iter()
                .map(|r| r.hasco_gemm.latency_ms / r.hasco_conv.latency_ms),
        )
    }

    /// HASCO-ConvCore vs. HLS-Core (paper: 1.6–2.2X).
    pub fn hls_gap(&self) -> f64 {
        geomean(
            self.rows
                .iter()
                .map(|r| r.hls.latency_ms / r.hasco_conv.latency_ms),
        )
    }
}

fn geomean(values: impl Iterator<Item = f64>) -> f64 {
    let v: Vec<f64> = values.collect();
    (v.iter().map(|x| x.ln()).sum::<f64>() / v.len().max(1) as f64).exp()
}

/// Renders the table.
pub fn render(t: &Table3) -> String {
    let mut out = Table::new(&[
        "Scenario",
        "Tech",
        "CNN",
        "Base PEs/KB/Bk",
        "Base lat(ms)",
        "HASCO-GEMM PEs/KB/Bk",
        "lat(ms)",
        "HASCO-Conv PEs/KB/Bk",
        "lat(ms)",
        "HLS lat(ms)",
        "co-design gain",
    ]);
    for r in &t.rows {
        let fmt = |s: &SystemResult| format!("{}/{}/{}", s.pes, s.mem_kb, s.banks);
        out.row(vec![
            r.scenario.clone(),
            r.tech.clone(),
            r.app.clone(),
            fmt(&r.baseline),
            format!("{:.3}", r.baseline.latency_ms),
            fmt(&r.hasco_gemm),
            format!("{:.3}", r.hasco_gemm.latency_ms),
            fmt(&r.hasco_conv),
            format!("{:.3}", r.hasco_conv.latency_ms),
            format!("{:.3}", r.hls.latency_ms),
            speedup(r.baseline.latency_ms, r.hasco_gemm.latency_ms),
        ]);
    }
    format!(
        "Table III: co-design at the edge (2 W) and in the cloud (20 W)\n{}\n\
         co-design gain (geomean, HASCO-GEMMCore vs baseline): {:.2}X (paper: 1.25-1.44X)\n\
         ConvCore vs GEMMCore (geomean): {:.2}X (paper: 1.42X)\n\
         ConvCore vs HLS-Core (geomean): {:.2}X (paper: 1.6-2.2X)\n",
        out.render(),
        t.codesign_gain(),
        t.convcore_gain(),
        t.hls_gap()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codesign_beats_decoupled_baseline() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        let gain = t.codesign_gain();
        assert!(gain >= 1.0, "co-design gain = {gain}");
    }

    #[test]
    fn hls_loses_to_convcore() {
        let t = run(Scale::Quick);
        assert!(t.hls_gap() >= 1.0, "hls gap = {}", t.hls_gap());
    }

    #[test]
    fn render_has_summary_lines() {
        let s = render(&run(Scale::Quick));
        assert!(s.contains("co-design gain"));
        assert!(s.contains("ConvCore vs HLS-Core"));
    }
}
