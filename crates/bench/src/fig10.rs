//! Fig. 10 — hypervolume convergence of Random, NSGA-II, and MOBO on the
//! ResNet + GEMM-intrinsic hardware DSE (§VII-C: 40 trials, NSGA-II
//! population 5, MOBO with a 10-sample prior).
//!
//! Headline numbers to reproduce in shape: MOBO reaches NSGA-II's *final*
//! hypervolume in ~2.5X fewer trials and ends ~1.19X higher.

use dse::mobo::Mobo;
use dse::nsga2::Nsga2;
use dse::problem::OptimizerResult;
use dse::random::RandomSearch;
use dse::Optimizer;
use hasco::codesign::{HwProblem, OptimizerKind};
use hasco::engine::CoDesignRequest;
use hasco::input::{Constraints, GenerationMethod, InputDescription};
use hw_gen::GemminiGenerator;
use tensor_ir::suites;
use tensor_ir::workload::{TensorApp, Workload};

use crate::common::{subsample, sw_inner_opts};
use crate::Scale;

/// One method's convergence curve.
#[derive(Debug, Clone)]
pub struct Curve {
    /// Method name.
    pub name: String,
    /// Hypervolume after each evaluation.
    pub hv: Vec<f64>,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct Fig10 {
    /// Curves for random, nsga2, mobo.
    pub curves: Vec<Curve>,
    /// MOBO final HV / NSGA-II final HV (paper: 1.19X).
    pub hv_ratio_mobo_nsga: f64,
    /// Trial at which MOBO first reaches NSGA-II's final HV
    /// (paper: trial ~16 of 40, i.e. 2.5X fewer).
    pub mobo_crossover_trial: Option<usize>,
    /// `--tech-sweep` axis: per technology profile, MOBO's final
    /// hypervolume relative to random search at the same node (each node
    /// gets its own staged pipeline and reference point, so only the
    /// within-node ratio is comparable). Empty without the sweep.
    pub tech_sweep: Vec<(String, f64)>,
}

fn reference(histories: &[&OptimizerResult]) -> Vec<f64> {
    let mut r = [f64::NEG_INFINITY; 3];
    for h in histories {
        for e in &h.evaluations {
            for (ri, &v) in r.iter_mut().zip(e.objectives.iter()) {
                *ri = ri.max(v);
            }
        }
    }
    r.iter().map(|v| v * 1.01).collect()
}

/// Runs the comparison.
pub fn run(scale: Scale) -> Fig10 {
    let (trials, layers) = match scale {
        Scale::Quick => (14, 4),
        Scale::Paper => (40, 8),
    };
    let workloads: Vec<Workload> = subsample(&suites::resnet50_convs(), layers);
    let generator = GemminiGenerator::new();
    let sw = sw_inner_opts(scale);

    let run_method = |name: &str| -> OptimizerResult {
        let mut problem = crate::common::configure_problem(HwProblem::new(
            &generator,
            &workloads,
            sw.clone(),
            10,
        ));
        let history = match name {
            "random" => RandomSearch::new(10).run(&mut problem, trials),
            "nsga2" => Nsga2::new(10).run(&mut problem, trials),
            _ => Mobo::new(10)
                .with_prior_samples((trials / 3).clamp(3, 10))
                .run(&mut problem, trials),
        };
        crate::common::save_problem_cache(&problem);
        history
    };
    let rand_h = run_method("random");
    let nsga_h = run_method("nsga2");
    let mobo_h = run_method("mobo");
    let reference = reference(&[&rand_h, &nsga_h, &mobo_h]);

    let curves: Vec<Curve> = [("random", &rand_h), ("nsga2", &nsga_h), ("mobo", &mobo_h)]
        .iter()
        .map(|(n, h)| Curve {
            name: n.to_string(),
            hv: h.hypervolume_history(&reference),
        })
        .collect();

    let final_of = |n: &str| {
        *curves
            .iter()
            .find(|c| c.name == n)
            .unwrap()
            .hv
            .last()
            .unwrap()
    };
    let nsga_final = final_of("nsga2");
    let mobo = curves.iter().find(|c| c.name == "mobo").unwrap();
    let mobo_crossover_trial = mobo.hv.iter().position(|&v| v >= nsga_final).map(|i| i + 1);

    // `--tech-sweep`: rerun the staged MOBO-vs-random comparison once
    // per technology profile — as campaign jobs on one resident engine.
    // Each node's two runs (MOBO and random search drive the identical
    // co-design pipeline via `CoDesignOptions::optimizer`) are priced by
    // backends built with its own TechParams, so the shared store keeps
    // the nodes apart while the engine amortizes pool and cache setup
    // across the whole sweep.
    let mut tech_sweep = Vec::new();
    if crate::common::tech_sweep() {
        let engine = crate::common::engine();
        let profiles = crate::common::tech_profiles();
        let mut requests = Vec::new();
        for (tech_name, tech) in &profiles {
            for kind in [OptimizerKind::Mobo, OptimizerKind::Random] {
                let mut opts = crate::common::codesign_options_at(scale, 10, tech);
                opts.hw_trials = trials;
                opts.mobo_prior = (trials / 3).clamp(3, 10);
                opts.sw_inner = sw.clone();
                // Histories are the product here; keep the final software
                // pass as cheap as the inner one.
                opts.sw_final = sw.clone();
                opts.tuning_rounds = 0;
                opts.optimizer = kind;
                let input = InputDescription {
                    app: TensorApp::new("resnet", workloads.clone()),
                    method: GenerationMethod::Gemmini,
                    constraints: Constraints::default(),
                };
                requests.push(
                    CoDesignRequest::new(input, opts).with_label(format!("{tech_name}/{kind}")),
                );
            }
        }
        let outcomes = engine.campaign(requests).expect("tech-sweep jobs succeed");
        let _ = engine.persist();
        // Flush engine-level telemetry (store-scope cache shards, gauges)
        // into the shared registry before the engine goes away.
        let _ = engine.metrics();
        for (pair, (tech_name, _)) in outcomes.chunks(2).zip(&profiles) {
            let (mobo_h, rand_h) = (&pair[0].solution.hw_history, &pair[1].solution.hw_history);
            let node_reference = self::reference(&[mobo_h, rand_h]);
            let final_hv = |h: &OptimizerResult| {
                h.hypervolume_history(&node_reference)
                    .last()
                    .copied()
                    .unwrap_or(0.0)
            };
            let ratio = final_hv(mobo_h) / final_hv(rand_h).max(1e-300);
            tech_sweep.push((tech_name.to_string(), ratio));
        }
    }

    Fig10 {
        hv_ratio_mobo_nsga: final_of("mobo") / nsga_final.max(1e-300),
        mobo_crossover_trial,
        curves,
        tech_sweep,
    }
}

/// Renders the curves as aligned columns.
pub fn render(f: &Fig10) -> String {
    let mut s = String::from(
        "Fig. 10: Hypervolume vs. trial (ResNet layers, GEMM intrinsic)\ntrial  random    nsga2     mobo\n",
    );
    let len = f.curves.iter().map(|c| c.hv.len()).max().unwrap_or(0);
    let max_hv = f
        .curves
        .iter()
        .flat_map(|c| c.hv.iter())
        .cloned()
        .fold(0.0f64, f64::max)
        .max(1e-300);
    for i in 0..len {
        let cell = |name: &str| {
            f.curves
                .iter()
                .find(|c| c.name == name)
                .and_then(|c| c.hv.get(i))
                .map(|v| format!("{:8.4}", v / max_hv))
                .unwrap_or_else(|| "   -   ".into())
        };
        s.push_str(&format!(
            "{:>5}  {}  {}  {}\n",
            i + 1,
            cell("random"),
            cell("nsga2"),
            cell("mobo")
        ));
    }
    s.push_str(&format!(
        "\nMOBO final / NSGA-II final hypervolume: {:.2}X (paper: 1.19X)\n",
        f.hv_ratio_mobo_nsga
    ));
    match f.mobo_crossover_trial {
        Some(t) => s.push_str(&format!(
            "MOBO reaches NSGA-II's final HV at trial {t} (paper: ~16/40, 2.5X fewer)\n"
        )),
        None => s.push_str("MOBO did not reach NSGA-II's final HV within budget\n"),
    }
    if !f.tech_sweep.is_empty() {
        s.push_str("\nTech sweep (staged pipeline per node; MOBO final HV / random final HV):\n");
        for (tech, ratio) in &f.tech_sweep {
            s.push_str(&format!("  {tech:>5}: {ratio:.2}X\n"));
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobo_at_least_matches_nsga() {
        let f = run(Scale::Quick);
        assert!(
            f.hv_ratio_mobo_nsga >= 0.95,
            "MOBO/NSGA-II HV ratio = {}",
            f.hv_ratio_mobo_nsga
        );
    }

    #[test]
    fn curves_are_monotone() {
        let f = run(Scale::Quick);
        for c in &f.curves {
            assert!(
                c.hv.windows(2).all(|w| w[1] >= w[0] - 1e-9),
                "{} not monotone",
                c.name
            );
        }
    }
}
