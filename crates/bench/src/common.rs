//! Shared experiment infrastructure: reference accelerators, software
//! optimization helpers (with graceful degradation for unmatchable
//! workloads), and workload subsampling.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use accel_model::arch::{AcceleratorConfig, PeArray};
use accel_model::{BackendKind, Metrics};
use hasco::codesign::{CoDesignOptions, HwProblem};
use hasco::engine::{Engine, EngineConfig};
use runtime::{resolve_threads, Telemetry, WorkerPool};
use sw_opt::explorer::{ExplorerOptions, SoftwareExplorer};
use sw_opt::SwError;
use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::workload::Workload;

use crate::Scale;

/// Worker-thread count for every experiment in this process (set once by
/// the binary CLI; defaults to 1, the serial reference, so `cargo bench`
/// and tests reproduce historical numbers exactly).
static THREADS: OnceLock<usize> = OnceLock::new();

/// Cost backend used for every evaluation in this process (set once by
/// the binary CLI; defaults to the analytic tier, the historical
/// reference).
static BACKEND: OnceLock<BackendKind> = OnceLock::new();

/// Fidelity-staging survivor count (0 = staging off, the default).
static REFINE_TOP_K: OnceLock<usize> = OnceLock::new();

/// Adaptive fidelity staging (grow/shrink the refine budget per batch).
static ADAPTIVE: OnceLock<bool> = OnceLock::new();

/// Sweep the named `TechParams` profiles as a scenario axis.
static TECH_SWEEP: OnceLock<bool> = OnceLock::new();

/// Persistent evaluation-cache path (None = in-memory only).
static CACHE_PATH: OnceLock<Option<PathBuf>> = OnceLock::new();

/// Age-based GC bound for the persistent cache (None = keep everything).
static CACHE_MAX_AGE: OnceLock<Option<Duration>> = OnceLock::new();

/// Persistent surrogate-registry store (None = in-memory only).
static SURROGATE_STORE: OnceLock<Option<PathBuf>> = OnceLock::new();

/// The process-wide telemetry registry every bench engine reports into.
static TELEMETRY: OnceLock<Telemetry> = OnceLock::new();

/// `--connect` address: run campaigns against a remote `hasco-serve`
/// front-end instead of an in-process engine (None = in-process).
static CONNECT: OnceLock<Option<String>> = OnceLock::new();

/// Where `--metrics-out` writes the JSON snapshot (None = don't write).
static METRICS_OUT: OnceLock<Option<PathBuf>> = OnceLock::new();

/// Installs the experiment thread count (first caller wins).
pub fn set_threads(threads: usize) {
    let _ = THREADS.set(threads);
}

/// The configured experiment thread count.
pub fn threads() -> usize {
    *THREADS.get_or_init(|| 1)
}

/// Installs the experiment cost backend (first caller wins).
pub fn set_backend(backend: BackendKind) {
    let _ = BACKEND.set(backend);
}

/// The configured cost backend.
pub fn backend() -> BackendKind {
    *BACKEND.get_or_init(BackendKind::default)
}

/// Installs the fidelity-staging survivor count (first caller wins).
pub fn set_refine_top_k(top_k: usize) {
    let _ = REFINE_TOP_K.set(top_k);
}

/// The configured fidelity-staging survivor count (0 = off).
pub fn refine_top_k() -> usize {
    *REFINE_TOP_K.get_or_init(|| 0)
}

/// Installs the adaptive-staging flag (first caller wins).
pub fn set_adaptive(adaptive: bool) {
    let _ = ADAPTIVE.set(adaptive);
}

/// Whether the adaptive refine-budget controller is on.
pub fn adaptive() -> bool {
    *ADAPTIVE.get_or_init(|| false)
}

/// Installs the tech-sweep flag (first caller wins).
pub fn set_tech_sweep(sweep: bool) {
    let _ = TECH_SWEEP.set(sweep);
}

/// Whether the experiments sweep the named `TechParams` profiles.
pub fn tech_sweep() -> bool {
    *TECH_SWEEP.get_or_init(|| false)
}

/// The technology profiles a sweeping experiment iterates: the full
/// named set with `--tech-sweep`, just the default node otherwise.
pub fn tech_profiles() -> Vec<(&'static str, accel_model::tech::TechParams)> {
    if tech_sweep() {
        accel_model::tech::TechParams::profiles().to_vec()
    } else {
        vec![("28nm", accel_model::tech::TechParams::default())]
    }
}

/// Installs the persistent evaluation-cache path (first caller wins).
pub fn set_cache_path(path: PathBuf) {
    let _ = CACHE_PATH.set(Some(path));
}

/// The configured persistent-cache path, if any.
pub fn cache_path() -> Option<PathBuf> {
    CACHE_PATH.get_or_init(|| None).clone()
}

/// Installs the cache max-age GC bound (first caller wins).
pub fn set_cache_max_age(max_age: Duration) {
    let _ = CACHE_MAX_AGE.set(Some(max_age));
}

/// The configured cache max-age GC bound, if any.
pub fn cache_max_age() -> Option<Duration> {
    *CACHE_MAX_AGE.get_or_init(|| None)
}

/// Installs the persistent surrogate-store path (first caller wins).
pub fn set_surrogate_store(path: PathBuf) {
    let _ = SURROGATE_STORE.set(Some(path));
}

/// The configured surrogate-store path, if any.
pub fn surrogate_store() -> Option<PathBuf> {
    SURROGATE_STORE.get_or_init(|| None).clone()
}

/// The experiment process's telemetry registry. Always live: recording
/// is a handful of relaxed atomics per event, and keeping it on means
/// the post-run summary and `--metrics-out` snapshot never miss work
/// that happened before flag parsing. Telemetry is a wall-clock side
/// channel — it never feeds back into results, stats, or events.
pub fn telemetry() -> &'static Telemetry {
    TELEMETRY.get_or_init(Telemetry::enabled)
}

/// Installs the `--metrics-out` snapshot path (first caller wins).
pub fn set_metrics_out(path: PathBuf) {
    let _ = METRICS_OUT.set(Some(path));
}

/// The configured `--metrics-out` path, if any.
pub fn metrics_out() -> Option<PathBuf> {
    METRICS_OUT.get_or_init(|| None).clone()
}

/// Installs the `--connect` serving address (first caller wins).
pub fn set_connect(addr: String) {
    let _ = CONNECT.set(Some(addr));
}

/// The configured `--connect` address, if any.
pub fn connect_addr() -> Option<String> {
    CONNECT.get_or_init(|| None).clone()
}

/// The engine configuration the CLI flags describe — shared between the
/// in-process engine, `--serve` mode, and nothing else.
pub fn engine_config() -> EngineConfig {
    let mut config = EngineConfig::default().with_job_slots(2);
    if let Some(path) = cache_path() {
        config = config.with_cache_path(path);
    }
    if let Some(max_age) = cache_max_age() {
        config = config.with_cache_max_age(max_age);
    }
    if let Some(path) = surrogate_store() {
        config = config.with_surrogate_store(path);
    }
    config.with_metrics(telemetry().clone())
}

/// The campaign surface the experiment harnesses actually use, local or
/// served. With `--connect` the work (and the warm state) lives in the
/// `hasco-serve` process; results are bit-identical either way — that is
/// the serving determinism contract, pinned by the loopback axis of
/// `tests/runtime_determinism.rs` and the CI smoke.
pub enum EngineHandle {
    /// An in-process engine (the default).
    Local(Engine),
    /// A client of a remote `hasco-serve` front-end.
    Remote(hasco_net::Client),
}

impl EngineHandle {
    /// [`Engine::campaign`], local or served.
    ///
    /// # Errors
    /// The first failing scenario's error (plus transport errors when
    /// serving).
    pub fn campaign(
        &self,
        requests: Vec<hasco::CoDesignRequest>,
    ) -> Result<Vec<hasco::CampaignOutcome>, hasco::HascoError> {
        match self {
            EngineHandle::Local(engine) => engine.campaign(requests),
            EngineHandle::Remote(client) => client.campaign(requests),
        }
    }

    /// [`Engine::campaign_events`], local or served. The served stream
    /// carries the identical bits.
    ///
    /// # Errors
    /// The first failing scenario's error (plus transport errors when
    /// serving).
    pub fn campaign_events(
        &self,
        requests: Vec<hasco::CoDesignRequest>,
    ) -> Result<(Vec<hasco::CampaignOutcome>, hasco::CampaignEvents), hasco::HascoError> {
        match self {
            EngineHandle::Local(engine) => engine.campaign_events(requests),
            EngineHandle::Remote(client) => client.campaign_events(requests),
        }
    }

    /// Persists warm state (locally or server-side); returns memo
    /// entries written. Failures cost future warmth, never correctness.
    pub fn persist(&self) -> Result<u64, String> {
        match self {
            EngineHandle::Local(engine) => engine.persist().map_err(|e| e.to_string()),
            EngineHandle::Remote(client) => client.persist().map_err(|e| e.to_string()),
        }
    }

    /// Flushes engine-level telemetry gauges into the local registry.
    /// Served runs return `None`: their telemetry lives (correctly) in
    /// the serving process, which is where the wall clocks ticked.
    pub fn metrics(&self) -> Option<runtime::TelemetrySnapshot> {
        match self {
            EngineHandle::Local(engine) => engine.metrics(),
            EngineHandle::Remote(_) => None,
        }
    }
}

/// The resident co-design engine for this experiment process, built from
/// the CLI flags: two concurrent job slots, the `--cache` file as the
/// shared store image, `--cache-max-age` as its GC bound, and
/// `--surrogate-store` as the surrogate-registry image, so repeat
/// invocations start with the previous run's surrogate generation.
/// Campaign results never depend on slot count or job interleaving —
/// only wall-clock time and cache statistics do.
///
/// With `--connect ADDR`, no local engine is built at all: the handle
/// fronts the `hasco-serve` process at `ADDR` (whose own flags configured
/// persistence), and this process never pays for evaluation.
///
/// With any persistence flag set, a warm-start report line is printed so
/// the operator (and the CI smoke) can tell a restored run from a cold
/// one.
pub fn engine() -> EngineHandle {
    if let Some(addr) = connect_addr() {
        match hasco_net::Client::connect(&addr) {
            Ok(client) => {
                println!("[campaigns served by {addr}]");
                return EngineHandle::Remote(client);
            }
            Err(e) => {
                eprintln!("cannot reach hasco-serve at {addr}: {e}");
                std::process::exit(2);
            }
        }
    }
    let engine = Engine::new(engine_config());
    if cache_path().is_some() || surrogate_store().is_some() {
        println!(
            "[engine warm start: {} cache entries, {} surrogate backend(s), \
             restored surrogate generation {}]",
            engine.warm_entries(),
            engine.restored_surrogate_backends(),
            engine.restored_surrogate_generation(),
        );
    }
    EngineHandle::Local(engine)
}

/// The one code path mapping CLI flags onto co-design options: every
/// bench co-design run — table3 cells, fig10 tech-sweep campaigns —
/// builds its request here, so `--threads`, `--backend`,
/// `--refine-top-k`, `--adaptive`, and the technology axis apply
/// uniformly (and invalid combinations fail [`CoDesignOptions::validate`]
/// once, at submit, instead of degenerating differently per binary).
/// The engine owns cache persistence, so no `cache_path` is set here.
pub fn codesign_options_at(
    scale: Scale,
    seed: u64,
    tech: &accel_model::tech::TechParams,
) -> CoDesignOptions {
    let opts = match scale {
        Scale::Quick => CoDesignOptions::quick(seed),
        Scale::Paper => {
            let mut o = CoDesignOptions::paper(seed);
            o.hw_trials = 20; // "20 co-design iterations"
            o
        }
    };
    let opts = opts
        .with_threads(threads())
        .with_backend(backend())
        .with_tech(tech.clone());
    if adaptive() {
        opts.with_adaptive_refinement(accel_model::BackendKind::TraceSim, refine_top_k())
    } else {
        opts.with_refinement(accel_model::BackendKind::TraceSim, refine_top_k())
    }
}

/// A worker pool sized by the configured thread count.
pub fn workers() -> WorkerPool {
    WorkerPool::new(resolve_threads(threads()))
}

/// A [`SoftwareExplorer`] wired to the experiment worker pool and cost
/// backend. With the defaults (`--threads 1`, `--backend analytic`)
/// results are identical to `SoftwareExplorer::new(seed)`.
pub fn explorer(seed: u64) -> SoftwareExplorer {
    SoftwareExplorer::new(seed)
        .with_workers(workers())
        .with_backend(backend().build())
}

/// Applies the process-wide runtime configuration — worker pool, cost
/// backend, fidelity staging (`--refine-top-k` survivors re-priced by
/// the trace-sim tier, adaptively budgeted with `--adaptive`), and the
/// persistent `--cache` warm start — to a hardware DSE problem. Pair
/// with [`save_problem_cache`] after the optimizer run so the next
/// process starts warm.
pub fn configure_problem(problem: HwProblem<'_>) -> HwProblem<'_> {
    configure_problem_at(problem, &accel_model::tech::TechParams::default())
}

/// Like [`configure_problem`], but builds every backend tier with the
/// given technology parameters (one node of a `--tech-sweep`).
pub fn configure_problem_at<'a>(
    problem: HwProblem<'a>,
    tech: &accel_model::tech::TechParams,
) -> HwProblem<'a> {
    let refine = BackendKind::TraceSim.build_with(tech.clone());
    let problem = problem
        .with_workers(workers())
        .with_backend(backend().build_with(tech.clone()));
    let problem = if adaptive() {
        problem.with_adaptive_refinement(refine, refine_top_k())
    } else {
        problem.with_refinement(refine, refine_top_k())
    };
    if let Some(path) = cache_path() {
        problem.load_cache(&path);
    }
    problem
}

/// Persists a problem's evaluation cache at the `--cache` path (no-op
/// without the flag; save failures cost future warmth, never
/// correctness). Memo keys are complete — workload + options + seed +
/// backend (with tech constants and training generation) + config — and
/// saves merge newest-wins into the existing file, so load→run→save
/// cycles against one shared file accumulate entries across problems,
/// processes, and bench binaries instead of thrashing. `--cache-max-age`
/// applies here exactly as it does to engine persistence, so every
/// binary's saves GC the shared file.
pub fn save_problem_cache(problem: &HwProblem<'_>) {
    if let Some(path) = cache_path() {
        let _ = problem.save_cache_with_max_age(&path, cache_max_age());
    }
}

/// The §VII-D GEMMCore: 16×16 PEs, 256 KB scratchpad, 4 banks.
pub fn gemmcore() -> AcceleratorConfig {
    AcceleratorConfig::builder(IntrinsicKind::Gemm)
        .name("gemmcore")
        .pe_array(16, 16)
        .scratchpad_kb(256)
        .banks(4)
        .build()
        .expect("gemmcore is valid")
}

/// The §II-C GA_L: 16×16 PE array, 256 KB scratchpad.
pub fn ga_l() -> AcceleratorConfig {
    let mut cfg = gemmcore();
    cfg.name = "GA_L".into();
    cfg
}

/// The §II-C GA_S: 8×8 PE array, 128 KB scratchpad.
pub fn ga_s() -> AcceleratorConfig {
    AcceleratorConfig::builder(IntrinsicKind::Gemm)
        .name("GA_S")
        .pe_array(8, 8)
        .scratchpad_kb(128)
        .banks(4)
        .build()
        .expect("ga_s is valid")
}

/// A 64-PE, 256 KB accelerator for each intrinsic (the §VII-B setup: "we
/// specify an array of 64 PEs and a 256 KB scratchpad memory for all
/// accelerators and give them different intrinsic functions").
pub fn accel_64pe(kind: IntrinsicKind) -> AcceleratorConfig {
    let pe = match kind {
        // Linear arrays for the vector engines, square for the 2-D ones.
        IntrinsicKind::Dot | IntrinsicKind::Gemv => PeArray::new(1, 64),
        _ => PeArray::new(8, 8),
    };
    let mut b = AcceleratorConfig::builder(kind);
    b.name(format!("{kind}-64pe"))
        .pe_array(pe.rows, pe.cols)
        .scratchpad_kb(256)
        .banks(4);
    b.build().expect("64-PE accelerator is valid")
}

/// Explorer options per scale.
pub fn sw_opts(scale: Scale) -> ExplorerOptions {
    match scale {
        Scale::Quick => ExplorerOptions {
            pool: 10,
            rounds: 12,
            top_k: 3,
            ..Default::default()
        },
        Scale::Paper => ExplorerOptions {
            pool: 16,
            rounds: 24,
            top_k: 4,
            ..Default::default()
        },
    }
}

/// Cheaper options for software evaluation inside hardware-DSE loops.
pub fn sw_inner_opts(scale: Scale) -> ExplorerOptions {
    match scale {
        Scale::Quick => ExplorerOptions {
            pool: 4,
            rounds: 3,
            top_k: 2,
            ..Default::default()
        },
        Scale::Paper => ExplorerOptions {
            pool: 6,
            rounds: 6,
            top_k: 2,
            ..Default::default()
        },
    }
}

/// Host-CPU fallback for sub-workloads that match no intrinsic of the
/// accelerator (e.g. MTTKRP's second stage on a GEMM core): the host
/// sustains ~2 MACs/cycle and streams every tensor once over the bus.
pub fn host_fallback_metrics(workload: &Workload, cfg: &AcceleratorConfig) -> Metrics {
    const HOST_MACS_PER_CYCLE: f64 = 2.0;
    let macs = workload.macs() as f64;
    let bytes = workload.footprint_bytes(cfg.dtype_bytes) as f64;
    let latency_cycles = macs / HOST_MACS_PER_CYCLE + bytes / cfg.bus_bytes_per_cycle();
    let latency_ms = cfg.cycles_to_ms(latency_cycles);
    let tech = accel_model::tech::TechParams::default();
    let area_mm2 = accel_model::area::area(cfg, &tech).total_mm2();
    // Host energy: ~4x the accelerator MAC energy plus the DRAM traffic.
    let energy_uj = (macs * 4.0 * tech.e_mac_pj + bytes * tech.e_dram_pj) / 1e6
        + area_mm2 * tech.leakage_mw_per_mm2 * latency_ms;
    Metrics {
        latency_cycles,
        latency_ms,
        energy_uj,
        power_mw: energy_uj / latency_ms.max(1e-12),
        area_mm2,
        throughput_mops: 2.0 * macs / (latency_ms * 1e3).max(1e-12),
        utilization: 1.0,
    }
}

/// Optimizes a workload on an accelerator; when the workload cannot be
/// tensorized onto the accelerator's intrinsic, the host executes it
/// ([`host_fallback_metrics`]) — the flow never fails, it just loses the
/// array-level acceleration for that stage.
pub fn optimize_degradable(
    explorer: &SoftwareExplorer,
    workload: &Workload,
    cfg: &AcceleratorConfig,
    opts: &ExplorerOptions,
) -> Result<Metrics, SwError> {
    match explorer.optimize(workload, cfg, opts) {
        Ok(o) => Ok(o.metrics),
        Err(SwError::NoTensorizeChoice { .. }) => Ok(host_fallback_metrics(workload, cfg)),
        Err(e) => Err(e),
    }
}

/// Sums metrics of sequentially executed workloads, optimizing each with
/// degradation fallback.
pub fn app_metrics_degradable(
    explorer: &SoftwareExplorer,
    workloads: &[Workload],
    cfg: &AcceleratorConfig,
    opts: &ExplorerOptions,
) -> Result<Metrics, SwError> {
    let mut parts = Vec::with_capacity(workloads.len());
    for w in workloads {
        parts.push(optimize_degradable(explorer, w, cfg, opts)?);
    }
    Ok(Metrics::sequential(&parts))
}

/// Evenly subsamples `n` workloads (keeps endpoints) — used to keep CNN
/// apps tractable inside DSE loops; documented in EXPERIMENTS.md.
pub fn subsample(workloads: &[Workload], n: usize) -> Vec<Workload> {
    if workloads.len() <= n || n == 0 {
        return workloads.to_vec();
    }
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let idx = k * (workloads.len() - 1) / (n - 1).max(1);
        out.push(workloads[idx].clone());
    }
    out.dedup_by(|a, b| a.name == b.name);
    out
}

/// Useful throughput in MOPS from a workload's MAC count and latency.
pub fn throughput_mops(workload: &Workload, latency_ms: f64) -> f64 {
    2.0 * workload.macs() as f64 / (latency_ms * 1e3).max(1e-12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tensor_ir::suites;

    #[test]
    fn reference_accelerators_are_valid() {
        assert_eq!(gemmcore().pes(), 256);
        assert_eq!(ga_s().pes(), 64);
        assert_eq!(ga_l().scratchpad_bytes, 256 * 1024);
        for k in IntrinsicKind::ALL {
            assert_eq!(accel_64pe(k).pes(), 64, "{k}");
        }
    }

    #[test]
    fn subsample_keeps_endpoints_and_size() {
        let ws = suites::resnet50_convs();
        let s = subsample(&ws, 8);
        assert_eq!(s.len(), 8);
        assert_eq!(s[0].name, ws[0].name);
        assert_eq!(s.last().unwrap().name, ws.last().unwrap().name);
        assert_eq!(subsample(&ws[..3], 8).len(), 3);
    }

    #[test]
    fn degradable_handles_unmatchable_stage() {
        // MTTKRP stage 2 cannot be tensorized onto a GEMM core; the
        // degenerate GEMV path must carry it.
        let (_, s2) = suites::mttkrp_stages("m", 64, 64, 64, 64);
        let explorer = SoftwareExplorer::new(0);
        let cfg = accel_64pe(IntrinsicKind::Gemm);
        let m = optimize_degradable(&explorer, &s2, &cfg, &sw_opts(Scale::Quick)).unwrap();
        assert!(m.latency_cycles > 0.0);
    }

    #[test]
    fn degradable_direct_path_used_when_possible() {
        let wl = suites::gemm_workload("g", 128, 128, 128);
        let explorer = SoftwareExplorer::new(0);
        let cfg = accel_64pe(IntrinsicKind::Gemm);
        let direct = explorer
            .optimize(&wl, &cfg, &sw_opts(Scale::Quick))
            .unwrap();
        let via = optimize_degradable(&explorer, &wl, &cfg, &sw_opts(Scale::Quick)).unwrap();
        assert_eq!(direct.metrics.latency_cycles, via.latency_cycles);
    }
}
