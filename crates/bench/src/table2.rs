//! Table II — constrained Pareto solutions of Random, NSGA-II, and MOBO
//! across {ResNet, MobileNet, Xception} × {GEMM, CONV2D} (§VII-C: 40
//! trials, NSGA-II population 5, MOBO with a 10-sample prior, power cap
//! 1E4 mW).

use dse::mobo::Mobo;
use dse::nsga2::Nsga2;
use dse::problem::OptimizerResult;
use dse::random::RandomSearch;
use dse::Optimizer;
use hasco::codesign::HwProblem;
use hasco::report::Table;
use hw_gen::space::Generator;
use hw_gen::{ChiselGenerator, GemminiGenerator};
use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::suites;
use tensor_ir::workload::Workload;

use crate::common::{subsample, sw_inner_opts};
use crate::Scale;

/// Best feasible (latency, power, area) found by one method.
#[derive(Debug, Clone, Copy)]
pub struct Best {
    /// Latency in cycles.
    pub latency: f64,
    /// Power in mW.
    pub power: f64,
    /// Area in mm².
    pub area: f64,
}

/// One (app, intrinsic) row of the table.
#[derive(Debug, Clone)]
pub struct Row {
    /// Application name.
    pub app: String,
    /// Intrinsic name.
    pub intrinsic: IntrinsicKind,
    /// Results for (random, nsga2, mobo).
    pub results: [Best; 3],
}

/// The regenerated table.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// All rows.
    pub rows: Vec<Row>,
    /// The power cap applied (mW).
    pub power_cap_mw: f64,
}

fn best_feasible(history: &OptimizerResult, power_cap: f64) -> Best {
    let pick = history
        .evaluations
        .iter()
        .filter(|e| e.objectives[1] <= power_cap)
        .min_by(|a, b| {
            a.objectives[0]
                .partial_cmp(&b.objectives[0])
                .expect("finite")
        })
        .or_else(|| {
            history.evaluations.iter().min_by(|a, b| {
                a.objectives[1]
                    .partial_cmp(&b.objectives[1])
                    .expect("finite")
            })
        })
        .expect("history non-empty");
    Best {
        latency: pick.objectives[0],
        power: pick.objectives[1],
        area: pick.objectives[2],
    }
}

/// Runs the table.
pub fn run(scale: Scale) -> Table2 {
    let (trials, layers) = match scale {
        Scale::Quick => (18, 3),
        Scale::Paper => (40, 6),
    };
    let power_cap_mw = 1.0e4;
    let sw = sw_inner_opts(scale);
    let apps: Vec<(&str, Vec<Workload>)> = vec![
        ("resnet", subsample(&suites::resnet50_convs(), layers)),
        ("mobilenet", subsample(&suites::mobilenet_convs(), layers)),
        ("xception", subsample(&suites::xception_convs(), layers)),
    ];
    let mut rows = Vec::new();
    for kind in [IntrinsicKind::Gemm, IntrinsicKind::Conv2d] {
        let gemmini;
        let chisel;
        let generator: &dyn Generator = if kind == IntrinsicKind::Gemm {
            gemmini = GemminiGenerator::new();
            &gemmini
        } else {
            chisel = ChiselGenerator::new(IntrinsicKind::Conv2d);
            &chisel
        };
        for (app, workloads) in &apps {
            let mut results = Vec::with_capacity(3);
            for method in ["random", "nsga2", "mobo"] {
                let mut problem = crate::common::configure_problem(HwProblem::new(
                    generator,
                    workloads,
                    sw.clone(),
                    2,
                ));
                let history = match method {
                    "random" => RandomSearch::new(2).run(&mut problem, trials),
                    "nsga2" => Nsga2::new(2).run(&mut problem, trials),
                    _ => Mobo::new(2)
                        .with_prior_samples((trials / 3).clamp(3, 10))
                        .run(&mut problem, trials),
                };
                crate::common::save_problem_cache(&problem);
                results.push(best_feasible(&history, power_cap_mw));
            }
            rows.push(Row {
                app: app.to_string(),
                intrinsic: kind,
                results: [results[0], results[1], results[2]],
            });
        }
    }
    Table2 { rows, power_cap_mw }
}

/// Renders the table.
pub fn render(t: &Table2) -> String {
    let mut out = Table::new(&[
        "App",
        "Intrinsic",
        "L random",
        "L nsga2",
        "L mobo",
        "P random",
        "P nsga2",
        "P mobo",
        "A random",
        "A nsga2",
        "A mobo",
    ]);
    for r in &t.rows {
        let mut cells = vec![r.app.clone(), r.intrinsic.to_string()];
        for f in [
            |b: &Best| format!("{:.2e}", b.latency),
            |b: &Best| format!("{:.0}", b.power),
            |b: &Best| format!("{:.1}", b.area),
        ] {
            for b in &r.results {
                cells.push(f(b));
            }
        }
        out.row(cells);
    }
    format!(
        "Table II: constrained Pareto solutions (power cap {} mW; L in cycles)\n{}",
        t.power_cap_mw,
        out.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mobo_never_clearly_loses_latency() {
        // Paper: "MOBO always outperforms the random search and NSGAII in
        // our evaluations" — we require it to win or tie (within 10 %) on a
        // majority of rows against each competitor.
        let t = run(Scale::Quick);
        let mut vs_random = 0;
        let mut vs_nsga = 0;
        for r in &t.rows {
            let [rand, nsga, mobo] = r.results;
            if mobo.latency <= rand.latency * 1.1 {
                vs_random += 1;
            }
            if mobo.latency <= nsga.latency * 1.1 {
                vs_nsga += 1;
            }
        }
        assert!(
            vs_random * 2 >= t.rows.len(),
            "MOBO vs random: {vs_random}/{}",
            t.rows.len()
        );
        assert!(
            vs_nsga * 2 >= t.rows.len(),
            "MOBO vs nsga2: {vs_nsga}/{}",
            t.rows.len()
        );
    }

    #[test]
    fn table_has_six_rows() {
        let t = run(Scale::Quick);
        assert_eq!(t.rows.len(), 6);
        let s = render(&t);
        assert!(s.contains("resnet") && s.contains("conv2d"));
    }
}
