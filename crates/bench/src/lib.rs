//! Experiment harnesses regenerating every table and figure of the HASCO
//! paper (§VII). Each module exposes a `run(scale)` function returning a
//! structured result plus a printable report; the `bin/` targets are thin
//! wrappers, and `benches/experiments.rs` replays everything for
//! `cargo bench`.
//!
//! | module   | paper artifact |
//! |----------|----------------|
//! | `table1` | Table I — benchmark tensor computations |
//! | `fig2`   | Fig. 2 — motivational GA_L/GA_S case study |
//! | `fig7`   | Fig. 7 — tensorize choices & hardware intrinsics |
//! | `fig8`   | Fig. 8 — latency/power/area ground-truth correlations |
//! | `fig9`   | Fig. 9 — metric landscapes + DSE final points |
//! | `fig10`  | Fig. 10 — hypervolume vs. trials (Random/NSGA-II/MOBO) |
//! | `fig11`  | Fig. 11 — ResNet software comparison |
//! | `table2` | Table II — constrained Pareto solutions per method |
//! | `table3` | Table III — edge/cloud co-design scenarios |

pub mod cli;
pub mod common;
pub mod fig10;
pub mod fig11;
pub mod fig2;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod table1;
pub mod table2;
pub mod table3;

/// How big an experiment run should be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced budgets/workload subsets — used by `cargo bench` and CI.
    Quick,
    /// Paper-sized budgets (trial counts as in §VII).
    Paper,
}

impl Scale {
    /// Parses `--quick`/`--paper` style argv, defaulting to `Paper` for
    /// the standalone binaries.
    pub fn from_args() -> Scale {
        if std::env::args().any(|a| a == "--quick") {
            Scale::Quick
        } else {
            Scale::Paper
        }
    }
}
