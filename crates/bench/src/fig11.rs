//! Fig. 11 — ResNet software comparison on a fixed GEMMCore (§VII-D):
//! the hand-tuned library (compute + im2col/col2im split), AutoTVM, and
//! HASCO, per convolution workload.
//!
//! Headline shapes: HASCO ≥ 2X faster than the library on a large share of
//! the 53 workloads (paper: 18/53, 3.17X mean), and ~1.21X over AutoTVM.

use baselines::{AutoTvm, GemmLibrary};
use hasco::report::{speedup, Table};

use tensor_ir::suites;

use crate::common::{gemmcore, sw_opts};
use crate::Scale;

/// Latency of one workload under each system (ms).
#[derive(Debug, Clone)]
pub struct Row {
    /// Workload name.
    pub workload: String,
    /// Library GEMM compute time.
    pub lib_compute: f64,
    /// Library im2col + col2im time.
    pub lib_conversion: f64,
    /// AutoTVM-tuned latency.
    pub autotvm: f64,
    /// HASCO-optimized latency.
    pub hasco: f64,
}

/// The experiment result.
#[derive(Debug, Clone)]
pub struct Fig11 {
    /// Per-workload rows.
    pub rows: Vec<Row>,
    /// Geometric-mean speedup of HASCO over the library total.
    pub mean_speedup_vs_lib: f64,
    /// Geometric-mean speedup of HASCO over AutoTVM.
    pub mean_speedup_vs_autotvm: f64,
    /// Workloads where HASCO is at least 2X faster than the library.
    pub ge2x_vs_lib: usize,
}

/// Runs the comparison.
pub fn run(scale: Scale) -> Fig11 {
    let convs = suites::resnet50_convs();
    let convs = match scale {
        Scale::Quick => convs[..6].to_vec(),
        Scale::Paper => convs,
    };
    let cfg = gemmcore();
    let lib = GemmLibrary::new();
    let tvm = AutoTvm::new(11);
    let explorer = crate::common::explorer(11);
    let opts = sw_opts(scale);

    let mut rows = Vec::new();
    for w in &convs {
        let lib_run = lib.run(w, &cfg).expect("library handles ResNet convs");
        let tvm_m = tvm
            .best_metrics(w, &cfg)
            .expect("autotvm handles ResNet convs");
        let hasco_m = explorer
            .optimize(w, &cfg, &opts)
            .expect("hasco handles ResNet convs")
            .metrics;
        rows.push(Row {
            workload: w.name.clone(),
            lib_compute: lib_run.compute.latency_ms,
            lib_conversion: lib_run.conversion.map(|c| c.latency_ms).unwrap_or(0.0),
            autotvm: tvm_m.latency_ms,
            hasco: hasco_m.latency_ms,
        });
    }
    let geo = |f: &dyn Fn(&Row) -> f64| -> f64 {
        (rows.iter().map(|r| f(r).ln()).sum::<f64>() / rows.len() as f64).exp()
    };
    let mean_speedup_vs_lib = geo(&|r: &Row| (r.lib_compute + r.lib_conversion) / r.hasco);
    let mean_speedup_vs_autotvm = geo(&|r: &Row| r.autotvm / r.hasco);
    let ge2x_vs_lib = rows
        .iter()
        .filter(|r| (r.lib_compute + r.lib_conversion) / r.hasco >= 2.0)
        .count();
    Fig11 {
        rows,
        mean_speedup_vs_lib,
        mean_speedup_vs_autotvm,
        ge2x_vs_lib,
    }
}

/// Renders the first 20 workloads plus the summary (like the paper's plot).
pub fn render(f: &Fig11) -> String {
    let mut t = Table::new(&[
        "Workload",
        "lib compute (ms)",
        "lib im2col+col2im (ms)",
        "AutoTVM (ms)",
        "HASCO (ms)",
        "HASCO vs lib",
    ]);
    for r in f.rows.iter().take(20) {
        t.row(vec![
            r.workload.clone(),
            format!("{:.3}", r.lib_compute),
            format!("{:.3}", r.lib_conversion),
            format!("{:.3}", r.autotvm),
            format!("{:.3}", r.hasco),
            speedup(r.lib_compute + r.lib_conversion, r.hasco),
        ]);
    }
    format!(
        "Fig. 11: ResNet convolution software on GEMMCore (16x16, 256 KB)\n{}\n\
         HASCO vs library (geomean): {:.2}X (paper: 3.17X)\n\
         HASCO vs AutoTVM (geomean): {:.2}X (paper: 1.21X)\n\
         workloads with >=2X over library: {}/{} (paper: 18/53)\n",
        t.render(),
        f.mean_speedup_vs_lib,
        f.mean_speedup_vs_autotvm,
        f.ge2x_vs_lib,
        f.rows.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hasco_beats_library_clearly() {
        let f = run(Scale::Quick);
        assert!(
            f.mean_speedup_vs_lib > 1.5,
            "mean speedup vs lib = {}",
            f.mean_speedup_vs_lib
        );
        assert!(f.ge2x_vs_lib >= 1);
    }

    #[test]
    fn hasco_at_least_matches_autotvm() {
        let f = run(Scale::Quick);
        assert!(
            f.mean_speedup_vs_autotvm >= 1.0,
            "mean speedup vs autotvm = {}",
            f.mean_speedup_vs_autotvm
        );
    }

    #[test]
    fn conversion_overhead_dominates_somewhere() {
        let f = run(Scale::Quick);
        assert!(
            f.rows.iter().any(|r| r.lib_conversion > r.lib_compute),
            "im2col/col2im never dominated"
        );
    }
}
