//! Fig. 8 — ground-truth correlations between latency, power, and area
//! (§VII-C).
//!
//! The ground truth sweeps the reduced ConvCore space of the paper's study
//! — PE array shape (4×4 … 32×32) × scratchpad banks (1 … 8) — evaluating
//! six Xception convolutions with HASCO-generated software at every point.

use hasco::report::Table;
use hw_gen::space::Generator;
use hw_gen::ChiselGenerator;

use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::suites;

use crate::common::{app_metrics_degradable, sw_inner_opts};
use crate::Scale;

/// One ground-truth point.
#[derive(Debug, Clone)]
pub struct GroundTruthPoint {
    /// Design point in the (pe_side, banks) space.
    pub point: Vec<usize>,
    /// PE side length.
    pub pe_side: u64,
    /// Bank count.
    pub banks: u64,
    /// Summed optimized latency over the six convolutions (cycles).
    pub latency: f64,
    /// Average power (mW).
    pub power: f64,
    /// Area (mm²).
    pub area: f64,
}

/// The full sweep.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// All evaluated points.
    pub points: Vec<GroundTruthPoint>,
}

impl GroundTruth {
    /// Pearson correlation between two metric extractors.
    pub fn correlation(
        &self,
        fa: impl Fn(&GroundTruthPoint) -> f64,
        fb: impl Fn(&GroundTruthPoint) -> f64,
    ) -> f64 {
        let n = self.points.len() as f64;
        let (ma, mb) = (
            self.points.iter().map(&fa).sum::<f64>() / n,
            self.points.iter().map(&fb).sum::<f64>() / n,
        );
        let mut cov = 0.0;
        let mut va = 0.0;
        let mut vb = 0.0;
        for p in &self.points {
            let (da, db) = (fa(p) - ma, fb(p) - mb);
            cov += da * db;
            va += da * da;
            vb += db * db;
        }
        cov / (va.sqrt() * vb.sqrt()).max(1e-300)
    }

    /// Max/min power ratio among points within ±`tol` relative latency of
    /// the fastest decile (the paper reports a 121X power range under one
    /// latency constraint).
    pub fn power_range_at_similar_latency(&self, tol: f64) -> f64 {
        let mut lat: Vec<f64> = self.points.iter().map(|p| p.latency).collect();
        lat.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let anchor = lat[lat.len() / 4];
        let similar: Vec<&GroundTruthPoint> = self
            .points
            .iter()
            .filter(|p| (p.latency - anchor).abs() / anchor <= tol)
            .collect();
        if similar.len() < 2 {
            return 1.0;
        }
        let hi = similar.iter().map(|p| p.power).fold(0.0f64, f64::max);
        let lo = similar
            .iter()
            .map(|p| p.power)
            .fold(f64::INFINITY, f64::min);
        hi / lo.max(1e-300)
    }
}

/// Runs (or re-runs) the ground-truth sweep. Exposed so Fig. 9 reuses it.
pub fn ground_truth(scale: Scale) -> GroundTruth {
    let generator = ChiselGenerator::ground_truth(IntrinsicKind::Conv2d);
    let convs = suites::xception_ground_truth_convs();
    let convs = match scale {
        Scale::Quick => convs[..3].to_vec(),
        Scale::Paper => convs,
    };
    let opts = sw_inner_opts(scale);
    let explorer = crate::common::explorer(88);
    let mut points = Vec::new();
    for point in generator.space().iter_all() {
        let cfg = generator
            .generate(&point)
            .expect("ground-truth points are valid");
        let Ok(m) = app_metrics_degradable(&explorer, &convs, &cfg, &opts) else {
            continue;
        };
        points.push(GroundTruthPoint {
            pe_side: generator
                .space()
                .value_of(&point, "pe_side")
                .expect("dim exists"),
            banks: generator
                .space()
                .value_of(&point, "banks")
                .expect("dim exists"),
            point,
            latency: m.latency_cycles,
            power: m.power_mw,
            area: m.area_mm2,
        });
    }
    GroundTruth { points }
}

/// Runs the Fig. 8 analysis.
pub fn run(scale: Scale) -> GroundTruth {
    ground_truth(scale)
}

/// Renders the correlation summary plus the raw scatter triplets.
pub fn render(gt: &GroundTruth) -> String {
    let c_lp = gt.correlation(|p| p.latency, |p| p.power);
    let c_la = gt.correlation(|p| p.latency, |p| p.area);
    let c_pa = gt.correlation(|p| p.power, |p| p.area);
    let mut t = Table::new(&["pe_side", "banks", "latency(cyc)", "power(mW)", "area(mm2)"]);
    for p in &gt.points {
        t.row(vec![
            p.pe_side.to_string(),
            p.banks.to_string(),
            format!("{:.0}", p.latency),
            format!("{:.1}", p.power),
            format!("{:.2}", p.area),
        ]);
    }
    format!(
        "Fig. 8: Ground-truth metric correlations ({} points)\n\
         corr(latency, power) = {:.3}\ncorr(latency, area) = {:.3}\n\
         corr(power, area) = {:.3}  (paper: strongly positive)\n\
         power range at similar latency: {:.1}X\n\n{}",
        gt.points.len(),
        c_lp,
        c_la,
        c_pa,
        gt.power_range_at_similar_latency(0.15),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn power_area_positively_correlated() {
        let gt = run(Scale::Quick);
        assert!(gt.points.len() >= 32);
        // §VII-C Fig. 8(c): positive correlation between power and area.
        let c_pa = gt.correlation(|p| p.power, |p| p.area);
        assert!(c_pa > 0.5, "corr(power, area) = {c_pa}");
    }

    #[test]
    fn power_varies_widely_at_similar_latency() {
        // §VII-C: "the normalized power and area can vary dramatically
        // under the same latency constraint". Our leakage-dominated model
        // shows a smaller band than the paper's 121X but it must be
        // clearly material.
        let gt = run(Scale::Quick);
        let range = gt.power_range_at_similar_latency(0.30);
        assert!(range > 1.25, "power range = {range}X");
    }

    #[test]
    fn render_mentions_correlations() {
        let s = render(&run(Scale::Quick));
        assert!(s.contains("corr(power, area)"));
    }
}
