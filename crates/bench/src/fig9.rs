//! Fig. 9 — metric landscapes over (PE shape × banks) and the final points
//! chosen by Random, NSGA-II, and MOBO (§VII-C, 20-trial runs, MOBO with a
//! 5-sample prior).
//!
//! The paper's key landscape observation: latency *increases again* when
//! the generated convolution accelerators get more PEs and banks than the
//! small Xception convolutions can use — padding and fill/drain overheads
//! win. The DSE comparison reports how close each method's final Pareto
//! set sits to the ground-truth front.

use std::collections::BTreeMap;

use dse::mobo::Mobo;
use dse::nsga2::Nsga2;
use dse::problem::{OptimizerResult, Point, Problem, SearchSpace};
use dse::random::RandomSearch;
use dse::{hypervolume, Optimizer};
use hasco::report::Table;

use crate::fig8::{ground_truth, GroundTruth};
use crate::Scale;

/// The cached-ground-truth DSE problem.
struct CachedProblem {
    space: SearchSpace,
    table: BTreeMap<Point, Vec<f64>>,
}

impl Problem for CachedProblem {
    fn space(&self) -> &SearchSpace {
        &self.space
    }
    fn num_objectives(&self) -> usize {
        3
    }
    fn evaluate(&mut self, point: &Point) -> Option<Vec<f64>> {
        self.table.get(point).cloned()
    }
}

/// Results of one DSE method on the landscape.
#[derive(Debug, Clone)]
pub struct MethodResult {
    /// Method name.
    pub name: String,
    /// The run history.
    pub history: OptimizerResult,
    /// Final hypervolume against the shared reference point.
    pub final_hv: f64,
}

/// The full experiment.
#[derive(Debug, Clone)]
pub struct Fig9 {
    /// The ground-truth sweep.
    pub ground_truth: GroundTruth,
    /// Hypervolume of the true Pareto front.
    pub true_front_hv: f64,
    /// Per-method results (random, nsga2, mobo).
    pub methods: Vec<MethodResult>,
}

fn reference_point(gt: &GroundTruth) -> Vec<f64> {
    let mut r = [f64::NEG_INFINITY; 3];
    for p in &gt.points {
        r[0] = r[0].max(p.latency);
        r[1] = r[1].max(p.power);
        r[2] = r[2].max(p.area);
    }
    r.iter().map(|v| v * 1.01).collect()
}

/// Runs the three methods over the cached landscape.
pub fn run(scale: Scale) -> Fig9 {
    let gt = ground_truth(scale);
    let trials = 20;
    let table: BTreeMap<Point, Vec<f64>> = gt
        .points
        .iter()
        .map(|p| (p.point.clone(), vec![p.latency, p.power, p.area]))
        .collect();
    let space = SearchSpace::new(vec![8, 8]);
    let reference = reference_point(&gt);
    let all_objs: Vec<Vec<f64>> = gt
        .points
        .iter()
        .map(|p| vec![p.latency, p.power, p.area])
        .collect();
    let true_front_hv = hypervolume::hypervolume(&all_objs, &reference);

    let mut methods = Vec::new();
    /// A named optimizer run over the cached landscape problem.
    type MethodRun<'a> = (
        &'a str,
        Box<dyn FnMut(&mut CachedProblem) -> OptimizerResult>,
    );
    let runs: Vec<MethodRun> = vec![
        (
            "random",
            Box::new(move |p: &mut CachedProblem| RandomSearch::new(42).run(p, trials)),
        ),
        (
            "nsga2",
            Box::new(move |p: &mut CachedProblem| Nsga2::new(42).run(p, trials)),
        ),
        (
            "mobo",
            Box::new(move |p: &mut CachedProblem| {
                Mobo::new(42).with_prior_samples(5).run(p, trials)
            }),
        ),
    ];
    for (name, mut f) in runs {
        let mut problem = CachedProblem {
            space: space.clone(),
            table: table.clone(),
        };
        let history = f(&mut problem);
        let final_hv = *history
            .hypervolume_history(&reference)
            .last()
            .expect("at least one evaluation");
        methods.push(MethodResult {
            name: name.into(),
            history,
            final_hv,
        });
    }
    Fig9 {
        ground_truth: gt,
        true_front_hv,
        methods,
    }
}

/// Renders the landscape row for one metric as an 8×8 grid.
fn render_grid(
    gt: &GroundTruth,
    metric: impl Fn(&crate::fig8::GroundTruthPoint) -> f64,
    name: &str,
) -> String {
    let mut sides: Vec<u64> = gt.points.iter().map(|p| p.pe_side).collect();
    sides.sort_unstable();
    sides.dedup();
    let mut banks: Vec<u64> = gt.points.iter().map(|p| p.banks).collect();
    banks.sort_unstable();
    banks.dedup();
    let hi = gt
        .points
        .iter()
        .map(&metric)
        .fold(0.0f64, f64::max)
        .max(1e-300);
    let mut out = format!("{name} (normalized, rows = PE side asc, cols = banks asc):\n");
    for &s in &sides {
        let mut row = format!("  {s:>2}x{s:<2} ");
        for &b in &banks {
            let v = gt
                .points
                .iter()
                .find(|p| p.pe_side == s && p.banks == b)
                .map(&metric)
                .unwrap_or(f64::NAN);
            row.push_str(&format!("{:>6.3}", v / hi));
        }
        out.push_str(&row);
        out.push('\n');
    }
    out
}

/// Renders the figure.
pub fn render(f: &Fig9) -> String {
    let mut s = String::from("Fig. 9: Metric landscapes and DSE final points (20 trials)\n\n");
    s.push_str(&render_grid(&f.ground_truth, |p| p.latency, "(a) latency"));
    s.push_str(&render_grid(&f.ground_truth, |p| p.power, "(b) power"));
    s.push_str(&render_grid(&f.ground_truth, |p| p.area, "(c) area"));
    let mut t = Table::new(&["method", "final HV / true-front HV", "pareto pts"]);
    for m in &f.methods {
        t.row(vec![
            m.name.clone(),
            format!("{:.3}", m.final_hv / f.true_front_hv.max(1e-300)),
            m.history.pareto_front().len().to_string(),
        ]);
    }
    s.push('\n');
    s.push_str(&t.render());
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overprovisioned_arrays_hit_diminishing_returns() {
        // §VII-C: "As the PEs and banks become over-provisioned, the
        // contour color would remain the same" — the normal case the paper
        // describes. (Their specific tiny-workload latency *increase* needs
        // the absolute FPGA overheads; we reproduce the plateau: the last
        // doubling of the array buys far less than the first.)
        let f = run(Scale::Quick);
        let gt = &f.ground_truth;
        let at = |side: u64, banks: u64| {
            gt.points
                .iter()
                .find(|p| p.pe_side == side && p.banks == banks)
                .map(|p| p.latency)
                .expect("point exists")
        };
        let early_gain = at(4, 8) / at(8, 8); // 4x PEs
        let late_gain = at(16, 8) / at(32, 8); // 4x PEs again
        assert!(
            late_gain < early_gain * 0.85,
            "no plateau: early {early_gain} vs late {late_gain}"
        );
        // Power and area keep growing regardless.
        let p = |side: u64| {
            gt.points
                .iter()
                .find(|q| q.pe_side == side && q.banks == 8)
                .unwrap()
        };
        assert!(p(32).power > p(16).power && p(16).power > p(8).power);
        assert!(p(32).area > p(16).area);
    }

    #[test]
    fn mobo_front_is_closest_to_true_front() {
        let f = run(Scale::Quick);
        let hv = |n: &str| f.methods.iter().find(|m| m.name == n).unwrap().final_hv;
        assert!(
            hv("mobo") >= hv("random"),
            "mobo {} vs random {}",
            hv("mobo"),
            hv("random")
        );
        assert!(hv("mobo") > 0.5 * f.true_front_hv);
    }

    #[test]
    fn render_contains_grids_and_methods() {
        let s = render(&run(Scale::Quick));
        assert!(s.contains("(a) latency"));
        assert!(s.contains("mobo"));
    }
}
