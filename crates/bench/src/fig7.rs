//! Fig. 7 — normalized throughput of the four hardware intrinsics across
//! MTTKRP (a), 2-D convolution (b), and TTM (c) workloads, plus the
//! tensorize-choice throughput spread of panel (c).
//!
//! All accelerators have 64 PEs and a 256 KB scratchpad (§VII-B). MTTKRP
//! runs fused where the intrinsic admits it (GEMV, DOT) and as its two
//! stages otherwise (GEMM — stage 2 degrades to a one-row GEMV on the
//! array, and the intermediate tensor E is materialized through DRAM),
//! which is exactly the asymmetry the paper credits for MTTKRP preferring
//! the GEMV intrinsic.

use hasco::report::Table;
use sw_opt::explorer::{ExplorerOptions, SoftwareExplorer};
use tensor_ir::intrinsics::IntrinsicKind;
use tensor_ir::suites;
use tensor_ir::workload::Workload;

use crate::common::{accel_64pe, app_metrics_degradable, subsample, sw_opts, throughput_mops};
use crate::Scale;

/// Throughput of one workload under each intrinsic (MOPS; `None` when the
/// intrinsic cannot implement the computation at all).
#[derive(Debug, Clone)]
pub struct WorkloadRow {
    /// Workload name.
    pub workload: String,
    /// (intrinsic, throughput MOPS).
    pub per_intrinsic: Vec<(IntrinsicKind, Option<f64>)>,
}

impl WorkloadRow {
    /// Throughput normalized by the row maximum.
    pub fn normalized(&self) -> Vec<(IntrinsicKind, Option<f64>)> {
        let peak = self
            .per_intrinsic
            .iter()
            .filter_map(|(_, t)| *t)
            .fold(0.0f64, f64::max)
            .max(1e-12);
        self.per_intrinsic
            .iter()
            .map(|&(k, t)| (k, t.map(|v| v / peak)))
            .collect()
    }

    /// The winning intrinsic.
    pub fn winner(&self) -> IntrinsicKind {
        self.per_intrinsic
            .iter()
            .filter_map(|&(k, t)| t.map(|v| (k, v)))
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite"))
            .map(|(k, _)| k)
            .expect("at least one intrinsic works")
    }
}

/// The full figure.
#[derive(Debug, Clone)]
pub struct Fig7 {
    /// Panel (a): MTTKRP workloads.
    pub mttkrp: Vec<WorkloadRow>,
    /// Panel (b): conv2d workloads.
    pub conv: Vec<WorkloadRow>,
    /// Panel (c): TTM workloads.
    pub ttm: Vec<WorkloadRow>,
    /// Tensorize-choice throughput spread (max/min) for a TTM workload on
    /// the GEMM intrinsic (the paper reports 3.26X between choices a, b;
    /// with compiler-packed layouts TTM's two choices converge in our
    /// model, see EXPERIMENTS.md).
    pub ttm_choice_spread: f64,
    /// Tensorize-choice throughput spread for a convolution on the GEMM
    /// intrinsic, where choices genuinely differ in padding and locality
    /// (binding the reduction to `c` vs. to the 3-wide `r`/`s`).
    pub conv_choice_spread: f64,
}

fn mttkrp_throughput(
    explorer: &SoftwareExplorer,
    fused: &Workload,
    kind: IntrinsicKind,
    opts: &ExplorerOptions,
) -> Option<f64> {
    let cfg = accel_64pe(kind);
    // Fused if the intrinsic admits it; otherwise two stages with the
    // intermediate E materialized (its DRAM traffic is in the stage plans).
    let metrics = match explorer.optimize(fused, &cfg, opts) {
        Ok(o) => o.metrics,
        Err(sw_opt::SwError::NoTensorizeChoice { .. }) => {
            let comp = &fused.comp;
            let get = |n: &str| {
                comp.index(comp.index_by_name(n).expect("mttkrp index"))
                    .extent
            };
            let (s1, s2) =
                suites::mttkrp_stages(&fused.name, get("i"), get("j"), get("k"), get("l"));
            app_metrics_degradable(explorer, &[s1, s2], &cfg, opts).ok()?
        }
        Err(_) => return None,
    };
    Some(throughput_mops(fused, metrics.latency_ms))
}

fn direct_throughput(
    explorer: &SoftwareExplorer,
    wl: &Workload,
    kind: IntrinsicKind,
    opts: &ExplorerOptions,
) -> Option<f64> {
    let cfg = accel_64pe(kind);
    match explorer.optimize(wl, &cfg, opts) {
        Ok(o) => Some(throughput_mops(wl, o.metrics.latency_ms)),
        Err(_) => None,
    }
}

/// Throughput spread across tensorize choices for one workload/intrinsic.
fn choice_spread(
    explorer: &SoftwareExplorer,
    wl: &Workload,
    kind: IntrinsicKind,
    opts: &ExplorerOptions,
) -> f64 {
    let cfg = accel_64pe(kind);
    let Ok(ctx) = sw_opt::schedule::ScheduleContext::new(wl, &cfg.intrinsic_comp()) else {
        return 1.0;
    };
    let mut best = f64::NEG_INFINITY;
    let mut worst = f64::INFINITY;
    for choice in &ctx.choices {
        let mut o = opts.clone();
        o.fixed_choice = Some(choice.clone());
        if let Ok(r) = explorer.optimize(wl, &cfg, &o) {
            let t = throughput_mops(wl, r.metrics.latency_ms);
            best = best.max(t);
            worst = worst.min(t);
        }
    }
    if best.is_finite() && worst.is_finite() && worst > 0.0 {
        best / worst
    } else {
        1.0
    }
}

/// Runs the experiment.
pub fn run(scale: Scale) -> Fig7 {
    let n = match scale {
        Scale::Quick => 3,
        Scale::Paper => 10,
    };
    let opts = sw_opts(scale);
    let explorer = crate::common::explorer(7);

    let mttkrp = subsample(&suites::mttkrp_workloads(), n)
        .iter()
        .map(|w| WorkloadRow {
            workload: w.name.clone(),
            per_intrinsic: [IntrinsicKind::Dot, IntrinsicKind::Gemv, IntrinsicKind::Gemm]
                .iter()
                .map(|&k| (k, mttkrp_throughput(&explorer, w, k, &opts)))
                .collect(),
        })
        .collect();

    // Panel (b) must include the 5x5/7x7-filter workloads (#1, #5, #8).
    let conv_all = suites::conv2d_workloads();
    let conv_set: Vec<Workload> = match scale {
        Scale::Quick => vec![
            conv_all[0].clone(),
            conv_all[1].clone(),
            conv_all[7].clone(),
        ],
        Scale::Paper => conv_all,
    };
    let conv = conv_set
        .iter()
        .map(|w| WorkloadRow {
            workload: w.name.clone(),
            per_intrinsic: IntrinsicKind::ALL
                .iter()
                .map(|&k| (k, direct_throughput(&explorer, w, k, &opts)))
                .collect(),
        })
        .collect();

    let ttm_set = subsample(&suites::ttm_workloads(), n);
    let ttm: Vec<WorkloadRow> = ttm_set
        .iter()
        .map(|w| WorkloadRow {
            workload: w.name.clone(),
            per_intrinsic: [IntrinsicKind::Dot, IntrinsicKind::Gemv, IntrinsicKind::Gemm]
                .iter()
                .map(|&k| (k, direct_throughput(&explorer, w, k, &opts)))
                .collect(),
        })
        .collect();

    let ttm_choice_spread = choice_spread(
        &explorer,
        &ttm_set[ttm_set.len() / 2],
        IntrinsicKind::Gemm,
        &opts,
    );
    let conv_choice_spread = choice_spread(&explorer, &conv_set[1], IntrinsicKind::Gemm, &opts);

    Fig7 {
        mttkrp,
        conv,
        ttm,
        ttm_choice_spread,
        conv_choice_spread,
    }
}

fn render_panel(title: &str, rows: &[WorkloadRow]) -> String {
    let kinds: Vec<String> = rows[0]
        .per_intrinsic
        .iter()
        .map(|(k, _)| k.to_string().to_uppercase())
        .collect();
    let mut header: Vec<&str> = vec!["Workload"];
    header.extend(kinds.iter().map(String::as_str));
    header.push("winner");
    let mut t = Table::new(&header);
    for r in rows {
        let mut cells = vec![r.workload.clone()];
        for (_, v) in r.normalized() {
            cells.push(match v {
                Some(x) => format!("{x:.3}"),
                None => "-".into(),
            });
        }
        cells.push(r.winner().to_string());
        t.row(cells);
    }
    format!("{title}\n{}", t.render())
}

/// Renders all three panels.
pub fn render(f: &Fig7) -> String {
    format!(
        "Fig. 7: Normalized throughput per hardware intrinsic (64 PEs, 256 KB)\n\n{}\n{}\n{}\n\
         TTM tensorize-choice throughput spread on GEMM intrinsic: {:.2}X (paper: 3.26X)\n",
        render_panel("(a) MTTKRP workloads", &f.mttkrp),
        render_panel("(b) 2D convolution workloads", &f.conv),
        render_panel("(c) TTM workloads", &f.ttm),
        f.ttm_choice_spread
    ) + &format!(
        "conv tensorize-choice throughput spread on GEMM intrinsic: {:.2}X\n",
        f.conv_choice_spread
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_paper() {
        let f = run(Scale::Quick);
        // (a) MTTKRP prefers GEMV in most cases.
        let gemv_wins = f
            .mttkrp
            .iter()
            .filter(|r| r.winner() == IntrinsicKind::Gemv)
            .count();
        assert!(
            gemv_wins * 2 >= f.mttkrp.len(),
            "GEMV won only {gemv_wins}/{}",
            f.mttkrp.len()
        );
        // (c) TTM prefers GEMM in most cases (wins or ties within 5 % —
        // the paper's panel also shows the two within a whisker on some
        // workloads).
        let gemm_competitive = f
            .ttm
            .iter()
            .filter(|r| {
                let norm = r.normalized();
                let gemm = norm
                    .iter()
                    .find(|(k, _)| *k == IntrinsicKind::Gemm)
                    .and_then(|(_, v)| *v)
                    .unwrap_or(0.0);
                gemm >= 0.95
            })
            .count();
        assert!(
            gemm_competitive * 2 >= f.ttm.len(),
            "GEMM competitive on only {gemm_competitive}/{}",
            f.ttm.len()
        );
        // DOT is never the winner (no reuse within the interface).
        for r in f.mttkrp.iter().chain(f.ttm.iter()).chain(f.conv.iter()) {
            assert_ne!(r.winner(), IntrinsicKind::Dot, "{}", r.workload);
        }
    }

    #[test]
    fn large_filters_prefer_gemm_small_prefer_conv2d() {
        let f = run(Scale::Quick);
        // Quick set: conv_1 (5x5), conv_2 (3x3), conv_8 (7x7).
        let by_name = |n: &str| f.conv.iter().find(|r| r.workload == n).unwrap();
        assert_eq!(by_name("conv_2").winner(), IntrinsicKind::Conv2d);
        for odd in ["conv_1", "conv_8"] {
            assert_eq!(by_name(odd).winner(), IntrinsicKind::Gemm, "{odd}");
        }
    }

    #[test]
    fn choice_spread_is_material() {
        let f = run(Scale::Quick);
        // Different tensorize choices must have materially different
        // throughput (the paper's Fig. 7(c) colored-band observation); in
        // our model the convolution choices carry the spread.
        assert!(
            f.conv_choice_spread > 1.5,
            "conv spread = {}",
            f.conv_choice_spread
        );
        assert!(f.ttm_choice_spread >= 1.0);
    }
}
