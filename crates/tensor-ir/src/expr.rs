//! Tensor computations as sum-of-products loop programs.
//!
//! A [`Computation`] is one assignment of the form
//!
//! ```text
//! Out[spatial...] = Σ_{reduction...}  In1[aff...] * In2[aff...] * ...
//! ```
//!
//! where each tensor dimension is indexed by an affine sum of loop variables
//! (`A[c, x + r, y + s]`). This form covers every benchmark in the paper:
//! GEMM, GEMV, dot product, AXPY, 2-D convolution, TTM, and MTTKRP.

use crate::index::{IndexId, IndexKind, IndexVar};
use crate::IrError;
use runtime::{Fingerprinter, StableFingerprint};
use serde::{Deserialize, Serialize};

/// One dimension of a tensor access: a sum of loop variables with unit
/// coefficients, e.g. `x + r` in `A[c, x + r, y + s]`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AffineDim {
    /// The loop variables summed to form this subscript.
    pub terms: Vec<IndexId>,
}

impl AffineDim {
    /// A dimension indexed by a single loop variable.
    pub fn var(id: IndexId) -> Self {
        AffineDim { terms: vec![id] }
    }

    /// A dimension indexed by a sum of loop variables (e.g. `x + r`).
    pub fn sum(ids: impl IntoIterator<Item = IndexId>) -> Self {
        AffineDim {
            terms: ids.into_iter().collect(),
        }
    }

    /// Returns `true` when the subscript is a single variable.
    pub fn is_simple(&self) -> bool {
        self.terms.len() == 1
    }
}

/// A tensor access: tensor name plus one [`AffineDim`] per dimension.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Access {
    /// Name of the accessed tensor (`"A"`, `"B"`, ...).
    pub tensor: String,
    /// Per-dimension subscripts.
    pub dims: Vec<AffineDim>,
}

impl Access {
    /// Builds an access from single-variable subscripts.
    pub fn simple(tensor: impl Into<String>, ids: impl IntoIterator<Item = IndexId>) -> Self {
        Access {
            tensor: tensor.into(),
            dims: ids.into_iter().map(AffineDim::var).collect(),
        }
    }

    /// Builds an access from explicit affine dims.
    pub fn new(tensor: impl Into<String>, dims: Vec<AffineDim>) -> Self {
        Access {
            tensor: tensor.into(),
            dims,
        }
    }

    /// Iterates over every index-variable occurrence in the access, in
    /// left-to-right dimension order.
    pub fn index_occurrences(&self) -> impl Iterator<Item = IndexId> + '_ {
        self.dims.iter().flat_map(|d| d.terms.iter().copied())
    }

    /// Returns `true` if the access mentions `id` in any dimension.
    pub fn uses(&self, id: IndexId) -> bool {
        self.index_occurrences().any(|o| o == id)
    }
}

impl StableFingerprint for AffineDim {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        self.terms.fingerprint_into(fp);
    }
}

impl StableFingerprint for Access {
    // Tensor names distinguish which operand is accessed (two inputs with
    // identical subscripts but different tensors are different programs).
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_str(&self.tensor);
        self.dims.fingerprint_into(fp);
    }
}

/// A tensor computation: `output = Σ_{reductions} Π inputs`.
///
/// # Example
/// ```
/// use tensor_ir::{Computation, IndexVar, Access};
/// // GEMM: L[i, j] = Σ_k M[i, k] * N[k, j]
/// let comp = Computation::builder("gemm")
///     .spatial("i", 64)
///     .spatial("j", 64)
///     .reduction("k", 64)
///     .output("L", &["i", "j"])
///     .input("M", &["i", "k"])
///     .input("N", &["k", "j"])
///     .build()
///     .unwrap();
/// assert_eq!(comp.indices.len(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Computation {
    /// Name of the computation (used in reports and generated code).
    pub name: String,
    /// Loop-variable table; [`IndexId`]s are positions into this table.
    pub indices: Vec<IndexVar>,
    /// The output access. May only use spatial indices.
    pub output: Access,
    /// The product terms on the right-hand side.
    pub inputs: Vec<Access>,
}

impl StableFingerprint for Computation {
    // The computation name is cosmetic; the loop nest structure (index
    // table, output access, input accesses) is what evaluation sees.
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        self.indices.fingerprint_into(fp);
        self.output.fingerprint_into(fp);
        self.inputs.fingerprint_into(fp);
    }
}

impl Computation {
    /// Starts a [`ComputationBuilder`], the ergonomic way to construct
    /// computations by index name.
    pub fn builder(name: impl Into<String>) -> ComputationBuilder {
        ComputationBuilder::new(name)
    }

    /// Looks up an index variable by id.
    ///
    /// # Panics
    /// Panics if `id` is out of range; ids must come from this computation.
    #[allow(clippy::should_implement_trait)] // domain term: an *index variable*
    pub fn index(&self, id: IndexId) -> &IndexVar {
        &self.indices[id.0]
    }

    /// Looks up an index id by name.
    pub fn index_by_name(&self, name: &str) -> Option<IndexId> {
        self.indices
            .iter()
            .position(|v| v.name == name)
            .map(IndexId)
    }

    /// Ids of all spatial indices, in declaration order.
    pub fn spatial_indices(&self) -> Vec<IndexId> {
        self.filter_indices(IndexKind::Spatial)
    }

    /// Ids of all reduction indices, in declaration order.
    pub fn reduction_indices(&self) -> Vec<IndexId> {
        self.filter_indices(IndexKind::Reduction)
    }

    fn filter_indices(&self, kind: IndexKind) -> Vec<IndexId> {
        self.indices
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == kind)
            .map(|(i, _)| IndexId(i))
            .collect()
    }

    /// Product of all loop extents — the size of the iteration space.
    pub fn iteration_points(&self) -> u64 {
        self.indices.iter().map(|v| v.extent).product()
    }

    /// The shape (extent per dimension) of an accessed tensor, computed from
    /// the affine subscripts: the extent of `x + r` is
    /// `extent(x) + extent(r) - 1` (the convolution input-halo rule).
    pub fn tensor_shape(&self, access: &Access) -> Vec<u64> {
        access
            .dims
            .iter()
            .map(|d| {
                let s: u64 = d.terms.iter().map(|t| self.index(*t).extent).sum();
                s + 1 - d.terms.len() as u64
            })
            .collect()
    }

    /// Number of elements in an accessed tensor.
    pub fn tensor_elements(&self, access: &Access) -> u64 {
        self.tensor_shape(access).iter().product()
    }

    /// Validates the structural invariants listed on [`IrError`].
    ///
    /// # Errors
    /// Returns the first violated invariant.
    pub fn validate(&self) -> Result<(), IrError> {
        if self.inputs.is_empty() {
            return Err(IrError::NoInputs);
        }
        for v in &self.indices {
            if v.extent == 0 {
                return Err(IrError::ZeroExtent(v.name.clone()));
            }
        }
        for acc in std::iter::once(&self.output).chain(self.inputs.iter()) {
            for d in &acc.dims {
                if d.terms.is_empty() {
                    return Err(IrError::EmptyAffineDim(acc.tensor.clone()));
                }
                for t in &d.terms {
                    if t.0 >= self.indices.len() {
                        return Err(IrError::UnknownIndex(t.0));
                    }
                }
            }
        }
        for occ in self.output.index_occurrences() {
            if self.index(occ).is_reduction() {
                return Err(IrError::ReductionInOutput(self.index(occ).name.clone()));
            }
        }
        for (i, v) in self.indices.iter().enumerate() {
            if v.is_spatial() && !self.output.uses(IndexId(i)) {
                return Err(IrError::SpatialNotInOutput(v.name.clone()));
            }
        }
        Ok(())
    }

    /// Renders the computation in the paper's notation, e.g.
    /// `L[i,j] = sum_{k} M[i,k] * N[k,j]`.
    pub fn notation(&self) -> String {
        let fmt_access = |a: &Access| {
            let dims: Vec<String> = a
                .dims
                .iter()
                .map(|d| {
                    d.terms
                        .iter()
                        .map(|t| self.index(*t).name.clone())
                        .collect::<Vec<_>>()
                        .join("+")
                })
                .collect();
            format!("{}[{}]", a.tensor, dims.join(","))
        };
        let reds: Vec<String> = self
            .reduction_indices()
            .iter()
            .map(|r| self.index(*r).name.clone())
            .collect();
        let rhs: Vec<String> = self.inputs.iter().map(fmt_access).collect();
        if reds.is_empty() {
            format!("{} = {}", fmt_access(&self.output), rhs.join(" * "))
        } else {
            format!(
                "{} = sum_{{{}}} {}",
                fmt_access(&self.output),
                reds.join(","),
                rhs.join(" * ")
            )
        }
    }
}

impl std::fmt::Display for Computation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.name, self.notation())
    }
}

/// Builder for [`Computation`] that resolves index names to ids and supports
/// affine subscripts written as `"x+r"`.
#[derive(Debug, Clone)]
pub struct ComputationBuilder {
    name: String,
    indices: Vec<IndexVar>,
    output: Option<Access>,
    inputs: Vec<Access>,
}

impl ComputationBuilder {
    /// Creates an empty builder.
    pub fn new(name: impl Into<String>) -> Self {
        ComputationBuilder {
            name: name.into(),
            indices: Vec::new(),
            output: None,
            inputs: Vec::new(),
        }
    }

    /// Declares a spatial loop.
    pub fn spatial(mut self, name: &str, extent: u64) -> Self {
        self.indices.push(IndexVar::spatial(name, extent));
        self
    }

    /// Declares a reduction loop.
    pub fn reduction(mut self, name: &str, extent: u64) -> Self {
        self.indices.push(IndexVar::reduction(name, extent));
        self
    }

    fn resolve(&self, spec: &str) -> AffineDim {
        let terms = spec
            .split('+')
            .map(|part| {
                let part = part.trim();
                let pos = self
                    .indices
                    .iter()
                    .position(|v| v.name == part)
                    .unwrap_or_else(|| {
                        panic!("unknown index `{part}` in computation `{}`", self.name)
                    });
                IndexId(pos)
            })
            .collect();
        AffineDim { terms }
    }

    /// Sets the output access. Dims are index names, possibly `"x+r"` sums.
    ///
    /// # Panics
    /// Panics if a dim names an undeclared index.
    pub fn output(mut self, tensor: &str, dims: &[&str]) -> Self {
        let dims = dims.iter().map(|d| self.resolve(d)).collect();
        self.output = Some(Access::new(tensor, dims));
        self
    }

    /// Adds an input (product-term) access.
    ///
    /// # Panics
    /// Panics if a dim names an undeclared index.
    pub fn input(mut self, tensor: &str, dims: &[&str]) -> Self {
        let dims = dims.iter().map(|d| self.resolve(d)).collect();
        self.inputs.push(Access::new(tensor, dims));
        self
    }

    /// Finalizes and validates the computation.
    ///
    /// # Errors
    /// Returns [`IrError`] when a structural invariant is violated.
    ///
    /// # Panics
    /// Panics if no output was set.
    pub fn build(self) -> Result<Computation, IrError> {
        let comp = Computation {
            name: self.name,
            indices: self.indices,
            output: self.output.expect("computation builder: output not set"),
            inputs: self.inputs,
        };
        comp.validate()?;
        Ok(comp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gemm() -> Computation {
        Computation::builder("gemm")
            .spatial("i", 16)
            .spatial("j", 32)
            .reduction("k", 64)
            .output("L", &["i", "j"])
            .input("M", &["i", "k"])
            .input("N", &["k", "j"])
            .build()
            .unwrap()
    }

    fn conv() -> Computation {
        Computation::builder("conv2d")
            .spatial("k", 64)
            .spatial("x", 56)
            .spatial("y", 56)
            .reduction("c", 64)
            .reduction("r", 3)
            .reduction("s", 3)
            .output("C", &["k", "x", "y"])
            .input("A", &["c", "x+r", "y+s"])
            .input("B", &["k", "c", "r", "s"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_resolves_names() {
        let g = gemm();
        assert_eq!(g.index_by_name("k"), Some(IndexId(2)));
        assert_eq!(g.spatial_indices(), vec![IndexId(0), IndexId(1)]);
        assert_eq!(g.reduction_indices(), vec![IndexId(2)]);
    }

    #[test]
    fn iteration_points_is_extent_product() {
        assert_eq!(gemm().iteration_points(), 16 * 32 * 64);
    }

    #[test]
    fn tensor_shape_applies_halo_rule() {
        let c = conv();
        // A[c, x+r, y+s] has shape [64, 56+3-1, 56+3-1].
        let a = &c.inputs[0];
        assert_eq!(c.tensor_shape(a), vec![64, 58, 58]);
        assert_eq!(c.tensor_elements(a), 64 * 58 * 58);
        // B is a plain 4-D tensor.
        assert_eq!(c.tensor_shape(&c.inputs[1]), vec![64, 64, 3, 3]);
    }

    #[test]
    fn notation_matches_paper_style() {
        assert_eq!(gemm().notation(), "L[i,j] = sum_{k} M[i,k] * N[k,j]");
        assert_eq!(
            conv().notation(),
            "C[k,x,y] = sum_{c,r,s} A[c,x+r,y+s] * B[k,c,r,s]"
        );
    }

    #[test]
    fn validate_rejects_reduction_in_output() {
        let bad = Computation::builder("bad")
            .spatial("i", 4)
            .reduction("k", 4)
            .output("O", &["i", "k"])
            .input("A", &["i", "k"])
            .build();
        assert_eq!(bad.unwrap_err(), IrError::ReductionInOutput("k".into()));
    }

    #[test]
    fn validate_rejects_dangling_spatial() {
        let bad = Computation::builder("bad")
            .spatial("i", 4)
            .spatial("j", 4)
            .output("O", &["i"])
            .input("A", &["i", "j"])
            .build();
        assert_eq!(bad.unwrap_err(), IrError::SpatialNotInOutput("j".into()));
    }

    #[test]
    fn validate_rejects_zero_extent() {
        let bad = Computation::builder("bad")
            .spatial("i", 0)
            .output("O", &["i"])
            .input("A", &["i"])
            .build();
        assert_eq!(bad.unwrap_err(), IrError::ZeroExtent("i".into()));
    }

    #[test]
    fn validate_rejects_no_inputs() {
        let comp = Computation {
            name: "empty".into(),
            indices: vec![IndexVar::spatial("i", 4)],
            output: Access::simple("O", [IndexId(0)]),
            inputs: vec![],
        };
        assert_eq!(comp.validate().unwrap_err(), IrError::NoInputs);
    }

    #[test]
    fn access_uses_detects_occurrences() {
        let c = conv();
        let a = &c.inputs[0];
        let r = c.index_by_name("r").unwrap();
        let k = c.index_by_name("k").unwrap();
        assert!(a.uses(r)); // inside x+r
        assert!(!a.uses(k));
        assert_eq!(a.index_occurrences().count(), 5); // c, x, r, y, s
    }

    #[test]
    #[should_panic(expected = "unknown index")]
    fn builder_panics_on_unknown_name() {
        let _ = Computation::builder("bad")
            .spatial("i", 4)
            .output("O", &["z"]);
    }

    #[test]
    fn affine_dim_helpers() {
        let d = AffineDim::var(IndexId(0));
        assert!(d.is_simple());
        let s = AffineDim::sum([IndexId(0), IndexId(1)]);
        assert!(!s.is_simple());
    }
}
