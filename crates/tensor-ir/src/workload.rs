//! Workloads and tensor applications.
//!
//! A [`Workload`] is a computation with concrete extents (one "layer" of an
//! application). A [`TensorApp`] bundles the workloads of one application —
//! HASCO designs *one* accelerator shared by all workloads of an app and one
//! optimized software program per workload (§III).

use crate::complexity;
use crate::expr::Computation;
use runtime::{Fingerprinter, StableFingerprint};
use serde::{Deserialize, Serialize};

/// A concrete tensor computation instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Unique name within its application (e.g. `"resnet_conv3_2"`).
    pub name: String,
    /// The computation with concrete extents.
    pub comp: Computation,
}

impl StableFingerprint for Workload {
    // The name is reporting-only: two workloads with identical loop nests
    // map, schedule, and cost identically, so they share a fingerprint
    // (and thus memoized evaluations).
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        self.comp.fingerprint_into(fp);
    }
}

impl Workload {
    /// Creates a workload, asserting the computation is valid.
    ///
    /// # Panics
    /// Panics if the computation fails validation; workloads come from
    /// trusted suite constructors.
    pub fn new(name: impl Into<String>, comp: Computation) -> Self {
        comp.validate().expect("workload computation must be valid");
        Workload {
            name: name.into(),
            comp,
        }
    }

    /// Total floating-point operations (see [`complexity::flops`]).
    pub fn flops(&self) -> u64 {
        complexity::flops(&self.comp)
    }

    /// Total multiply-accumulate operations.
    pub fn macs(&self) -> u64 {
        complexity::macs(&self.comp)
    }

    /// Total bytes touched in DRAM assuming each tensor is read/written once.
    pub fn footprint_bytes(&self, dtype_bytes: u64) -> u64 {
        complexity::footprint_bytes(&self.comp, dtype_bytes)
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} [{}]", self.name, self.comp.notation())
    }
}

/// A tensor application: a set of workloads sharing one accelerator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorApp {
    /// Application name (e.g. `"resnet50"`).
    pub name: String,
    /// The workloads (layers).
    pub workloads: Vec<Workload>,
}

impl TensorApp {
    /// Creates an application from workloads.
    pub fn new(name: impl Into<String>, workloads: Vec<Workload>) -> Self {
        TensorApp {
            name: name.into(),
            workloads,
        }
    }

    /// Sum of FLOPs across all workloads.
    pub fn total_flops(&self) -> u64 {
        self.workloads.iter().map(Workload::flops).sum()
    }

    /// Minimum and maximum per-workload FLOPs — the "Compute Complexity"
    /// column of Table I.
    pub fn complexity_range(&self) -> (u64, u64) {
        let mut lo = u64::MAX;
        let mut hi = 0;
        for w in &self.workloads {
            let f = w.flops();
            lo = lo.min(f);
            hi = hi.max(f);
        }
        if self.workloads.is_empty() {
            (0, 0)
        } else {
            (lo, hi)
        }
    }

    /// Number of workloads.
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// True when the app has no workloads.
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }
}

impl std::fmt::Display for TensorApp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({} workloads)", self.name, self.workloads.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;

    #[test]
    fn workload_flops_gemm() {
        let w = suites::gemm_workload("g", 64, 64, 64);
        // 2 * i * k * j
        assert_eq!(w.flops(), 2 * 64 * 64 * 64);
        assert_eq!(w.macs(), 64 * 64 * 64);
    }

    #[test]
    fn workload_footprint_counts_all_tensors() {
        let w = suites::gemm_workload("g", 4, 8, 16);
        // M: 4*8, N: 8*16, L: 4*16 elements, 4 bytes each.
        assert_eq!(w.footprint_bytes(4), (4 * 8 + 8 * 16 + 4 * 16) * 4);
    }

    #[test]
    fn app_ranges() {
        let app = TensorApp::new(
            "toy",
            vec![
                suites::gemm_workload("a", 8, 8, 8),
                suites::gemm_workload("b", 32, 32, 32),
            ],
        );
        let (lo, hi) = app.complexity_range();
        assert_eq!(lo, 2 * 8 * 8 * 8);
        assert_eq!(hi, 2 * 32 * 32 * 32);
        assert_eq!(app.total_flops(), lo + hi);
        assert_eq!(app.len(), 2);
        assert!(!app.is_empty());
    }

    #[test]
    fn empty_app_range_is_zero() {
        let app = TensorApp::new("empty", vec![]);
        assert_eq!(app.complexity_range(), (0, 0));
        assert!(app.is_empty());
    }

    #[test]
    #[should_panic(expected = "valid")]
    fn invalid_workload_panics() {
        let comp = Computation {
            name: "bad".into(),
            indices: vec![],
            output: crate::Access::simple("O", []),
            inputs: vec![],
        };
        let _ = Workload::new("bad", comp);
    }
}
