//! Benchmark workload suites — Table I of the paper plus the CNN layer
//! catalogs (ResNet-50, MobileNet, Xception) used throughout §VII.

use crate::expr::Computation;
use crate::workload::{TensorApp, Workload};

/// GEMM workload `L[i,j] = Σ_k M[i,k] * N[k,j]`.
pub fn gemm_workload(name: &str, i: u64, k: u64, j: u64) -> Workload {
    let comp = Computation::builder("gemm")
        .spatial("i", i)
        .spatial("j", j)
        .reduction("k", k)
        .output("L", &["i", "j"])
        .input("M", &["i", "k"])
        .input("N", &["k", "j"])
        .build()
        .expect("gemm workload is valid");
    Workload::new(name, comp)
}

/// 2-D convolution workload `C[k,x,y] = Σ_{c,r,s} A[c,x+r,y+s] * B[k,c,r,s]`.
///
/// `x`/`y` are output spatial extents (strides are folded into them, as the
/// paper's Listing 1 does).
pub fn conv2d_workload(name: &str, k: u64, c: u64, x: u64, y: u64, r: u64, s: u64) -> Workload {
    let comp = Computation::builder("conv2d")
        .spatial("k", k)
        .spatial("x", x)
        .spatial("y", y)
        .reduction("c", c)
        .reduction("r", r)
        .reduction("s", s)
        .output("C", &["k", "x", "y"])
        .input("A", &["c", "x+r", "y+s"])
        .input("B", &["k", "c", "r", "s"])
        .build()
        .expect("conv2d workload is valid");
    Workload::new(name, comp)
}

/// MTTKRP workload `D[i,j] = Σ_{k,l} A[i,k,l] * B[l,j] * C[k,j]`.
pub fn mttkrp_workload(name: &str, i: u64, j: u64, k: u64, l: u64) -> Workload {
    let comp = Computation::builder("mttkrp")
        .spatial("i", i)
        .spatial("j", j)
        .reduction("k", k)
        .reduction("l", l)
        .output("D", &["i", "j"])
        .input("A", &["i", "k", "l"])
        .input("B", &["l", "j"])
        .input("C", &["k", "j"])
        .build()
        .expect("mttkrp workload is valid");
    Workload::new(name, comp)
}

/// MTTKRP split into its two GEMM-like stages (§VII-B):
/// `E[i,k,j] = Σ_l A[i,k,l] * B[l,j]` then `D[i,j] = Σ_k E[i,k,j] * C[k,j]`.
pub fn mttkrp_stages(name: &str, i: u64, j: u64, k: u64, l: u64) -> (Workload, Workload) {
    let stage1 = Computation::builder("mttkrp_stage1")
        .spatial("i", i)
        .spatial("k", k)
        .spatial("j", j)
        .reduction("l", l)
        .output("E", &["i", "k", "j"])
        .input("A", &["i", "k", "l"])
        .input("B", &["l", "j"])
        .build()
        .expect("mttkrp stage 1 is valid");
    let stage2 = Computation::builder("mttkrp_stage2")
        .spatial("i", i)
        .spatial("j", j)
        .reduction("k", k)
        .output("D", &["i", "j"])
        .input("E", &["i", "k", "j"])
        .input("C", &["k", "j"])
        .build()
        .expect("mttkrp stage 2 is valid");
    (
        Workload::new(format!("{name}_s1"), stage1),
        Workload::new(format!("{name}_s2"), stage2),
    )
}

/// TTM workload `C[i,j,k] = Σ_l A[i,j,l] * B[l,k]`.
pub fn ttm_workload(name: &str, i: u64, j: u64, k: u64, l: u64) -> Workload {
    let comp = Computation::builder("ttm")
        .spatial("i", i)
        .spatial("j", j)
        .spatial("k", k)
        .reduction("l", l)
        .output("C", &["i", "j", "k"])
        .input("A", &["i", "j", "l"])
        .input("B", &["l", "k"])
        .build()
        .expect("ttm workload is valid");
    Workload::new(name, comp)
}

/// The ten MTTKRP workloads of Table I (compute complexity 255M – 5.9G).
pub fn mttkrp_workloads() -> Vec<Workload> {
    let shapes: [(u64, u64, u64, u64); 10] = [
        (96, 96, 96, 96),
        (128, 64, 96, 128),
        (128, 128, 128, 64),
        (128, 128, 128, 128),
        (160, 128, 128, 128),
        (160, 160, 160, 128),
        (192, 160, 160, 160),
        (192, 192, 192, 160),
        (200, 200, 200, 200),
        (210, 210, 210, 210),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(n, &(i, j, k, l))| mttkrp_workload(&format!("mttkrp_{}", n + 1), i, j, k, l))
        .collect()
}

/// The ten TTM workloads of Table I (16M – 8.6G).
pub fn ttm_workloads() -> Vec<Workload> {
    let shapes: [(u64, u64, u64, u64); 10] = [
        (64, 64, 32, 64),
        (64, 64, 64, 64),
        (96, 96, 64, 64),
        (128, 96, 96, 64),
        (128, 128, 128, 64),
        (128, 128, 128, 128),
        (192, 160, 128, 128),
        (192, 192, 192, 192),
        (256, 256, 128, 256),
        (256, 256, 256, 256),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(n, &(i, j, k, l))| ttm_workload(&format!("ttm_{}", n + 1), i, j, k, l))
        .collect()
}

/// The ten GEMM workloads of Table I (16K – 4.3G).
pub fn gemm_workloads() -> Vec<Workload> {
    let shapes: [(u64, u64, u64); 10] = [
        (20, 20, 20),
        (64, 64, 64),
        (128, 128, 128),
        (256, 256, 256),
        (256, 512, 256),
        (512, 512, 512),
        (512, 1024, 512),
        (1024, 1024, 512),
        (1024, 1024, 1024),
        (1280, 1280, 1280),
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(n, &(i, k, j))| gemm_workload(&format!("gemm_{}", n + 1), i, k, j))
        .collect()
}

/// The ten standalone 2-D convolution workloads of Table I (87M – 3.7G).
/// Workloads #1 and #5 use 5×5 filters and #8 uses 7×7, reproducing the
/// filter-size mix discussed around Fig. 7(b).
pub fn conv2d_workloads() -> Vec<Workload> {
    let shapes: [(u64, u64, u64, u64, u64, u64); 10] = [
        (64, 48, 28, 28, 5, 5),   // #1: 5x5 filter
        (64, 64, 35, 35, 3, 3),   // #2
        (128, 64, 28, 28, 3, 3),  // #3
        (128, 128, 28, 28, 3, 3), // #4
        (96, 64, 28, 28, 5, 5),   // #5: 5x5 filter
        (256, 128, 28, 28, 3, 3), // #6
        (256, 256, 14, 14, 3, 3), // #7
        (96, 48, 28, 28, 7, 7),   // #8: 7x7 filter
        (512, 256, 14, 14, 3, 3), // #9
        (512, 512, 28, 28, 3, 3), // #10
    ];
    shapes
        .iter()
        .enumerate()
        .map(|(n, &(k, c, x, y, r, s))| {
            conv2d_workload(&format!("conv_{}", n + 1), k, c, x, y, r, s)
        })
        .collect()
}

/// All 53 convolution layers of ResNet-50 (conv1, 16 bottleneck blocks × 3,
/// and 4 projection shortcuts).
pub fn resnet50_convs() -> Vec<Workload> {
    let mut out = Vec::new();
    out.push(conv2d_workload("resnet_conv1", 64, 3, 112, 112, 7, 7));
    // (bottleneck width, output channels, spatial size, block count)
    let stages: [(u64, u64, u64, usize); 4] = [
        (64, 256, 56, 3),
        (128, 512, 28, 4),
        (256, 1024, 14, 6),
        (512, 2048, 7, 3),
    ];
    let mut in_c = 64;
    for (si, &(width, out_c, xy, blocks)) in stages.iter().enumerate() {
        for b in 0..blocks {
            let stage = si + 2;
            out.push(conv2d_workload(
                &format!("resnet_conv{stage}_{b}_a"),
                width,
                in_c,
                xy,
                xy,
                1,
                1,
            ));
            out.push(conv2d_workload(
                &format!("resnet_conv{stage}_{b}_b"),
                width,
                width,
                xy,
                xy,
                3,
                3,
            ));
            out.push(conv2d_workload(
                &format!("resnet_conv{stage}_{b}_c"),
                out_c,
                width,
                xy,
                xy,
                1,
                1,
            ));
            if b == 0 {
                out.push(conv2d_workload(
                    &format!("resnet_conv{stage}_{b}_proj"),
                    out_c,
                    in_c,
                    xy,
                    xy,
                    1,
                    1,
                ));
            }
            in_c = out_c;
        }
    }
    out
}

/// ResNet-50 as a [`TensorApp`].
pub fn resnet50() -> TensorApp {
    TensorApp::new("resnet50", resnet50_convs())
}

/// The 27 convolution layers of MobileNet-V1 (1 standard + 13 depthwise +
/// 13 pointwise). Depthwise layers are modeled as convolutions with a single
/// input channel per filter (`c = 1`), which matches their FLOP count.
pub fn mobilenet_convs() -> Vec<Workload> {
    let mut out = Vec::new();
    out.push(conv2d_workload("mobilenet_conv1", 32, 3, 112, 112, 3, 3));
    // (in channels, out channels, output spatial size of this pair)
    let pairs: [(u64, u64, u64); 13] = [
        (32, 64, 112),
        (64, 128, 56),
        (128, 128, 56),
        (128, 256, 28),
        (256, 256, 28),
        (256, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 512, 14),
        (512, 1024, 7),
        (1024, 1024, 7),
    ];
    for (n, &(in_c, out_c, xy)) in pairs.iter().enumerate() {
        out.push(conv2d_workload(
            &format!("mobilenet_dw{}", n + 1),
            in_c,
            1,
            xy,
            xy,
            3,
            3,
        ));
        out.push(conv2d_workload(
            &format!("mobilenet_pw{}", n + 1),
            out_c,
            in_c,
            xy,
            xy,
            1,
            1,
        ));
    }
    out
}

/// MobileNet-V1 as a [`TensorApp`].
pub fn mobilenet() -> TensorApp {
    TensorApp::new("mobilenet", mobilenet_convs())
}

/// A representative catalog of Xception convolution layers (entry, middle,
/// and exit flows; separable convolutions modeled as depthwise + pointwise).
pub fn xception_convs() -> Vec<Workload> {
    let mut out = Vec::new();
    out.push(conv2d_workload("xception_conv1", 32, 3, 149, 149, 3, 3));
    out.push(conv2d_workload("xception_conv2", 64, 32, 147, 147, 3, 3));
    // Entry flow separable blocks.
    let entry: [(u64, u64, u64); 3] = [(64, 128, 74), (128, 256, 37), (256, 728, 19)];
    for (n, &(in_c, out_c, xy)) in entry.iter().enumerate() {
        out.push(conv2d_workload(
            &format!("xception_entry{}_dw", n + 1),
            in_c,
            1,
            xy,
            xy,
            3,
            3,
        ));
        out.push(conv2d_workload(
            &format!("xception_entry{}_pw", n + 1),
            out_c,
            in_c,
            xy,
            xy,
            1,
            1,
        ));
    }
    // Middle flow: 8 blocks of 3 separable convs at 728 channels, 19x19.
    for b in 1..=8 {
        for i in 1..=3 {
            out.push(conv2d_workload(
                &format!("xception_mid{b}_{i}_dw"),
                728,
                1,
                19,
                19,
                3,
                3,
            ));
            out.push(conv2d_workload(
                &format!("xception_mid{b}_{i}_pw"),
                728,
                728,
                19,
                19,
                1,
                1,
            ));
        }
    }
    // Exit flow.
    out.push(conv2d_workload("xception_exit1_dw", 728, 1, 10, 10, 3, 3));
    out.push(conv2d_workload(
        "xception_exit1_pw",
        1024,
        728,
        10,
        10,
        1,
        1,
    ));
    out.push(conv2d_workload("xception_exit2_dw", 1024, 1, 10, 10, 3, 3));
    out.push(conv2d_workload(
        "xception_exit2_pw",
        1536,
        1024,
        10,
        10,
        1,
        1,
    ));
    out.push(conv2d_workload("xception_exit3_dw", 1536, 1, 10, 10, 3, 3));
    out.push(conv2d_workload(
        "xception_exit3_pw",
        2048,
        1536,
        10,
        10,
        1,
        1,
    ));
    out
}

/// Xception as a [`TensorApp`].
pub fn xception() -> TensorApp {
    TensorApp::new("xception", xception_convs())
}

/// The six Xception convolutions used as ground truth in the hardware-DSE
/// study (§VII-C: "six convolutions from Xception ranging from 86.7 MOPs to
/// 454.2 MOPs").
pub fn xception_ground_truth_convs() -> Vec<Workload> {
    vec![
        conv2d_workload("xgt_1", 128, 256, 37, 37, 1, 1),
        conv2d_workload("xgt_2", 256, 256, 28, 28, 1, 1),
        conv2d_workload("xgt_3", 728, 256, 19, 19, 1, 1),
        conv2d_workload("xgt_4", 128, 128, 28, 28, 3, 3),
        conv2d_workload("xgt_5", 728, 728, 19, 19, 1, 1),
        conv2d_workload("xgt_6", 256, 128, 27, 27, 3, 3),
    ]
}

/// The full Table I benchmark: four apps of ten workloads each (plus the CNN
/// catalogs for the convolution row).
pub fn table1_apps() -> Vec<TensorApp> {
    vec![
        TensorApp::new("mttkrp", mttkrp_workloads()),
        TensorApp::new("ttm", ttm_workloads()),
        TensorApp::new("conv2d", conv2d_workloads()),
        TensorApp::new("gemm", gemm_workloads()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_has_53_convs() {
        let convs = resnet50_convs();
        assert_eq!(convs.len(), 53);
        // All names unique.
        let names: std::collections::BTreeSet<_> = convs.iter().map(|w| &w.name).collect();
        assert_eq!(names.len(), 53);
    }

    #[test]
    fn mobilenet_has_27_convs() {
        assert_eq!(mobilenet_convs().len(), 27);
    }

    #[test]
    fn xception_catalog_is_substantial() {
        let convs = xception_convs();
        assert!(convs.len() >= 36, "got {}", convs.len());
    }

    #[test]
    fn table1_mttkrp_complexity_range() {
        let app = TensorApp::new("mttkrp", mttkrp_workloads());
        let (lo, hi) = app.complexity_range();
        // Paper: 255M – 5.9G.
        assert!((200_000_000..320_000_000).contains(&lo), "lo = {lo}");
        assert!((5_000_000_000..6_500_000_000).contains(&hi), "hi = {hi}");
    }

    #[test]
    fn table1_ttm_complexity_range() {
        let app = TensorApp::new("ttm", ttm_workloads());
        let (lo, hi) = app.complexity_range();
        // Paper: 16M – 8.6G.
        assert!((12_000_000..25_000_000).contains(&lo), "lo = {lo}");
        assert!((8_000_000_000..9_000_000_000).contains(&hi), "hi = {hi}");
    }

    #[test]
    fn table1_gemm_complexity_range() {
        let app = TensorApp::new("gemm", gemm_workloads());
        let (lo, hi) = app.complexity_range();
        // Paper: 16K – 4.3G.
        assert!((14_000..20_000).contains(&lo), "lo = {lo}");
        assert!((4_000_000_000..4_600_000_000).contains(&hi), "hi = {hi}");
    }

    #[test]
    fn table1_conv_complexity_range() {
        let app = TensorApp::new("conv2d", conv2d_workloads());
        let (lo, hi) = app.complexity_range();
        // Paper: 87M – 3.7G.
        assert!((80_000_000..130_000_000).contains(&lo), "lo = {lo}");
        assert!((3_500_000_000..3_900_000_000).contains(&hi), "hi = {hi}");
    }

    #[test]
    fn conv_suite_filter_sizes_match_paper() {
        let convs = conv2d_workloads();
        let filter = |w: &Workload| {
            let r = w.comp.index_by_name("r").unwrap();
            let s = w.comp.index_by_name("s").unwrap();
            (w.comp.index(r).extent, w.comp.index(s).extent)
        };
        assert_eq!(filter(&convs[0]), (5, 5)); // #1
        assert_eq!(filter(&convs[4]), (5, 5)); // #5
        assert_eq!(filter(&convs[7]), (7, 7)); // #8
        assert_eq!(filter(&convs[1]), (3, 3));
    }

    #[test]
    fn xception_ground_truth_flops_in_paper_range() {
        for w in xception_ground_truth_convs() {
            let f = w.flops();
            assert!(
                (80_000_000..500_000_000).contains(&f),
                "{}: {} FLOPs outside 86.7M–454.2M band",
                w.name,
                f
            );
        }
        assert_eq!(xception_ground_truth_convs().len(), 6);
    }

    #[test]
    fn mttkrp_stages_preserve_total_macs() {
        let fused = mttkrp_workload("m", 64, 64, 64, 64);
        let (s1, s2) = mttkrp_stages("m", 64, 64, 64, 64);
        // Stage 1 does i*k*j*l MACs, stage 2 i*j*k — the fused form's MAC
        // count equals stage 1's (the 3-tensor product is dominated by it).
        assert_eq!(s1.macs(), fused.macs());
        assert!(s2.macs() < s1.macs());
    }

    #[test]
    fn all_suite_workloads_validate() {
        for app in table1_apps() {
            for w in &app.workloads {
                assert!(w.comp.validate().is_ok(), "{}", w.name);
            }
        }
        for w in resnet50_convs().iter().chain(mobilenet_convs().iter()) {
            assert!(w.comp.validate().is_ok(), "{}", w.name);
        }
    }

    #[test]
    fn apps_have_expected_names() {
        assert_eq!(resnet50().name, "resnet50");
        assert_eq!(mobilenet().name, "mobilenet");
        assert_eq!(xception().name, "xception");
        assert_eq!(table1_apps().len(), 4);
    }
}
