//! The four hardware intrinsics HASCO uses to decompose workloads (§IV-B):
//! dot product, GEMV, GEMM, and 2-D convolution.
//!
//! An intrinsic is itself a small [`Computation`] with fixed extents; the
//! extents are determined by the accelerator's PE array shape, but the
//! matcher only looks at the structure ("the matching does not decide the
//! range of each node, such that the size of the sub-workload is flexible").

use crate::expr::Computation;
use runtime::{Fingerprinter, StableFingerprint};
use serde::{Deserialize, Serialize};

/// The intrinsic families supported by HASCO's generators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum IntrinsicKind {
    /// `C = Σ_i A[i] * B[i]`
    Dot,
    /// `C[i] = Σ_j A[i,j] * B[j]`
    Gemv,
    /// `L[i,j] = Σ_k M[i,k] * N[k,j]`
    Gemm,
    /// `C[k,x,y] = Σ_{c,r,s} A[c,x+r,y+s] * B[k,c,r,s]` with fixed `r×s`
    Conv2d,
}

impl StableFingerprint for IntrinsicKind {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_u32(match self {
            IntrinsicKind::Dot => 0,
            IntrinsicKind::Gemv => 1,
            IntrinsicKind::Gemm => 2,
            IntrinsicKind::Conv2d => 3,
        });
    }
}

impl IntrinsicKind {
    /// All four intrinsic kinds, in increasing dimensionality order.
    pub const ALL: [IntrinsicKind; 4] = [
        IntrinsicKind::Dot,
        IntrinsicKind::Gemv,
        IntrinsicKind::Gemm,
        IntrinsicKind::Conv2d,
    ];

    /// Short lower-case name used across reports.
    pub fn name(&self) -> &'static str {
        match self {
            IntrinsicKind::Dot => "dot",
            IntrinsicKind::Gemv => "gemv",
            IntrinsicKind::Gemm => "gemm",
            IntrinsicKind::Conv2d => "conv2d",
        }
    }
}

impl std::fmt::Display for IntrinsicKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A hardware intrinsic: a kind plus its computation (with fixed extents).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Intrinsic {
    /// The intrinsic family.
    pub kind: IntrinsicKind,
    /// The intrinsic's computation (structure used by the matcher, extents
    /// used by the cost model).
    pub comp: Computation,
}

impl Intrinsic {
    /// Number of multiply-accumulate operations one intrinsic call performs.
    pub fn macs_per_call(&self) -> u64 {
        self.comp.iteration_points()
    }
}

impl std::fmt::Display for Intrinsic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.kind, self.comp.notation())
    }
}

/// Dot-product intrinsic `C = Σ A[i] * B[i]` over `n` elements.
pub fn dot_intrinsic(n: u64) -> Intrinsic {
    let comp = Computation::builder("dot")
        .reduction("i", n)
        .output("C", &[])
        .input("A", &["i"])
        .input("B", &["i"])
        .build()
        .expect("dot intrinsic is valid");
    Intrinsic {
        kind: IntrinsicKind::Dot,
        comp,
    }
}

/// GEMV intrinsic `C[i] = Σ_j A[i,j] * B[j]`.
pub fn gemv_intrinsic(i: u64, j: u64) -> Intrinsic {
    let comp = Computation::builder("gemv")
        .spatial("i", i)
        .reduction("j", j)
        .output("C", &["i"])
        .input("A", &["i", "j"])
        .input("B", &["j"])
        .build()
        .expect("gemv intrinsic is valid");
    Intrinsic {
        kind: IntrinsicKind::Gemv,
        comp,
    }
}

/// GEMM intrinsic `L[i,j] = Σ_k M[i,k] * N[k,j]`.
pub fn gemm_intrinsic(i: u64, k: u64, j: u64) -> Intrinsic {
    let comp = Computation::builder("gemm")
        .spatial("i", i)
        .spatial("j", j)
        .reduction("k", k)
        .output("L", &["i", "j"])
        .input("M", &["i", "k"])
        .input("N", &["k", "j"])
        .build()
        .expect("gemm intrinsic is valid");
    Intrinsic {
        kind: IntrinsicKind::Gemm,
        comp,
    }
}

/// CONV2D intrinsic with a fixed `r × s` filter (the paper's experiments fix
/// it at 3 × 3) and a small fixed output tile.
pub fn conv2d_intrinsic(k: u64, c: u64, r: u64, s: u64) -> Intrinsic {
    let comp = Computation::builder("conv2d")
        .spatial("k", k)
        .spatial("x", 4)
        .spatial("y", 4)
        .reduction("c", c)
        .reduction("r", r)
        .reduction("s", s)
        .output("C", &["k", "x", "y"])
        .input("A", &["c", "x+r", "y+s"])
        .input("B", &["k", "c", "r", "s"])
        .build()
        .expect("conv2d intrinsic is valid");
    Intrinsic {
        kind: IntrinsicKind::Conv2d,
        comp,
    }
}

/// AXPY-style intrinsic `Y[i] = a * X[i]` (the scalar `a` is a 0-dim
/// tensor). Appears as choice #4 in the paper's Fig. 4; it is not one of
/// the four generator-supported intrinsics but the matcher handles it.
pub fn axpy_intrinsic(n: u64) -> Computation {
    Computation::builder("axpy")
        .spatial("i", n)
        .output("Y", &["i"])
        .input("a", &[])
        .input("X", &["i"])
        .build()
        .expect("axpy intrinsic is valid")
}

/// Builds an intrinsic of the given kind with default sizes derived from a
/// PE count (used by the hardware generators).
pub fn intrinsic_for(kind: IntrinsicKind, pes: u64) -> Intrinsic {
    let side = (pes as f64).sqrt().floor().max(1.0) as u64;
    match kind {
        IntrinsicKind::Dot => dot_intrinsic(pes.max(1)),
        IntrinsicKind::Gemv => gemv_intrinsic(side.max(1), side.max(1)),
        IntrinsicKind::Gemm => gemm_intrinsic(side.max(1), side.max(1), side.max(1)),
        IntrinsicKind::Conv2d => conv2d_intrinsic(side.max(1), side.max(1), 3, 3),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_intrinsics_validate() {
        for i in [
            dot_intrinsic(64),
            gemv_intrinsic(8, 8),
            gemm_intrinsic(16, 16, 16),
            conv2d_intrinsic(8, 8, 3, 3),
        ] {
            assert!(i.comp.validate().is_ok(), "{i}");
        }
    }

    #[test]
    fn macs_per_call() {
        assert_eq!(dot_intrinsic(64).macs_per_call(), 64);
        assert_eq!(gemm_intrinsic(16, 16, 16).macs_per_call(), 4096);
        assert_eq!(gemv_intrinsic(8, 4).macs_per_call(), 32);
        assert_eq!(
            conv2d_intrinsic(8, 8, 3, 3).macs_per_call(),
            8 * 4 * 4 * 8 * 9
        );
    }

    #[test]
    fn names_and_display() {
        assert_eq!(IntrinsicKind::Gemm.name(), "gemm");
        assert_eq!(IntrinsicKind::Dot.to_string(), "dot");
        assert!(gemm_intrinsic(4, 4, 4).to_string().contains("L[i,j]"));
        assert_eq!(IntrinsicKind::ALL.len(), 4);
    }

    #[test]
    fn intrinsic_for_derives_square_shapes() {
        let g = intrinsic_for(IntrinsicKind::Gemm, 64);
        assert_eq!(
            g.comp.index_by_name("i").map(|i| g.comp.index(i).extent),
            Some(8)
        );
        let d = intrinsic_for(IntrinsicKind::Dot, 64);
        assert_eq!(d.macs_per_call(), 64);
        let v = intrinsic_for(IntrinsicKind::Gemv, 64);
        assert_eq!(v.kind, IntrinsicKind::Gemv);
        let c = intrinsic_for(IntrinsicKind::Conv2d, 64);
        assert_eq!(c.kind, IntrinsicKind::Conv2d);
    }
}
