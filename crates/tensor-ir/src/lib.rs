//! Tensor intermediate representation for HASCO.
//!
//! This crate implements the paper's unified HW/SW IR (§IV): tensor
//! computations expressed as sum-of-products loop nests, lowered to
//! *tensor syntax trees* (TSTs), plus the two-step matching algorithm
//! (index matching + structure matching) that enumerates all legal
//! *tensorize choices* — the ways a tensor computation can be decomposed
//! into sub-workloads implementable by a hardware intrinsic.
//!
//! # Example
//!
//! ```
//! use tensor_ir::{suites, intrinsics, matching::{find_tensorize_choices, MatchOptions}};
//!
//! let conv = suites::conv2d_workload("conv", 64, 64, 56, 56, 3, 3);
//! let gemm = intrinsics::gemm_intrinsic(16, 16, 16);
//! let choices = find_tensorize_choices(&conv.comp, &gemm.comp, &MatchOptions::default());
//! assert!(!choices.is_empty());
//! ```

pub mod complexity;
pub mod expr;
pub mod index;
pub mod intrinsics;
pub mod matching;
pub mod suites;
pub mod tst;
pub mod workload;

pub use expr::{Access, AffineDim, Computation};
pub use index::{IndexId, IndexKind, IndexVar};
pub use matching::{find_tensorize_choices, MatchOptions, TensorizeChoice};
pub use tst::{Tst, TstOp};
pub use workload::{TensorApp, Workload};

/// Errors produced while building or validating IR objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// An index identifier referred to a variable outside the computation's
    /// index table.
    UnknownIndex(usize),
    /// A computation's output accessed a reduction index. Output tensors may
    /// only be indexed by spatial (parallel) loop variables.
    ReductionInOutput(String),
    /// A spatial index never appears in the output access, which would make
    /// the computation semantically a reduction over that index.
    SpatialNotInOutput(String),
    /// An index variable has a zero extent.
    ZeroExtent(String),
    /// A computation had no input accesses.
    NoInputs,
    /// An affine dimension had no terms.
    EmptyAffineDim(String),
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IrError::UnknownIndex(id) => write!(f, "unknown index id {id}"),
            IrError::ReductionInOutput(name) => {
                write!(f, "reduction index `{name}` used in output access")
            }
            IrError::SpatialNotInOutput(name) => {
                write!(
                    f,
                    "spatial index `{name}` does not appear in the output access"
                )
            }
            IrError::ZeroExtent(name) => write!(f, "index `{name}` has zero extent"),
            IrError::NoInputs => write!(f, "computation has no input accesses"),
            IrError::EmptyAffineDim(t) => {
                write!(f, "tensor `{t}` has an affine dimension with no terms")
            }
        }
    }
}

impl std::error::Error for IrError {}
