//! Loop index variables.
//!
//! Every tensor computation in HASCO is a perfectly nested loop program; the
//! loop variables are the atoms of the IR. An index is either *spatial*
//! (appears in the output tensor, fully parallel) or *reduction* (summed
//! over). The distinction is load-bearing for the tensorize matcher: an
//! intrinsic's reduction index may only absorb a reduction loop of the
//! compute workload, otherwise the decomposed program produces incorrect
//! results (choice #2 of Fig. 4 in the paper).

use runtime::{Fingerprinter, StableFingerprint};
use serde::{Deserialize, Serialize};

/// Identifier of an index variable within one [`Computation`].
///
/// Ids are positions into [`Computation::indices`], so they are only
/// meaningful relative to their owning computation.
///
/// [`Computation`]: crate::expr::Computation
/// [`Computation::indices`]: crate::expr::Computation::indices
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IndexId(pub usize);

impl std::fmt::Display for IndexId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "i{}", self.0)
    }
}

/// Whether a loop variable is parallel (spatial) or contracted (reduction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexKind {
    /// The index appears in the output tensor; iterations are independent.
    Spatial,
    /// The index is summed over; iterations accumulate into the output.
    Reduction,
}

impl std::fmt::Display for IndexKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexKind::Spatial => write!(f, "spatial"),
            IndexKind::Reduction => write!(f, "reduction"),
        }
    }
}

/// A loop index variable: a name, a trip count, and a [`IndexKind`].
///
/// # Example
/// ```
/// use tensor_ir::{IndexVar, IndexKind};
/// let k = IndexVar::spatial("k", 64);
/// assert_eq!(k.extent, 64);
/// assert_eq!(k.kind, IndexKind::Spatial);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndexVar {
    /// Human-readable loop name (`"k"`, `"x"`, ...).
    pub name: String,
    /// Trip count of the loop. Must be nonzero for a valid computation.
    pub extent: u64,
    /// Spatial or reduction.
    pub kind: IndexKind,
}

impl IndexVar {
    /// Creates a spatial (parallel, output-indexing) loop variable.
    pub fn spatial(name: impl Into<String>, extent: u64) -> Self {
        IndexVar {
            name: name.into(),
            extent,
            kind: IndexKind::Spatial,
        }
    }

    /// Creates a reduction (contracted) loop variable.
    pub fn reduction(name: impl Into<String>, extent: u64) -> Self {
        IndexVar {
            name: name.into(),
            extent,
            kind: IndexKind::Reduction,
        }
    }

    /// Returns `true` if the variable is spatial.
    pub fn is_spatial(&self) -> bool {
        self.kind == IndexKind::Spatial
    }

    /// Returns `true` if the variable is a reduction.
    pub fn is_reduction(&self) -> bool {
        self.kind == IndexKind::Reduction
    }
}

impl std::fmt::Display for IndexVar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}({})", self.name, self.extent)
    }
}

impl StableFingerprint for IndexId {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_usize(self.0);
    }
}

impl StableFingerprint for IndexKind {
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_bool(matches!(self, IndexKind::Reduction));
    }
}

impl StableFingerprint for IndexVar {
    // The name is cosmetic (ids are positional); extent and kind are what
    // schedules and cost models see.
    fn fingerprint_into(&self, fp: &mut Fingerprinter) {
        fp.write_u64(self.extent);
        self.kind.fingerprint_into(fp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_constructor_sets_kind() {
        let v = IndexVar::spatial("x", 56);
        assert!(v.is_spatial());
        assert!(!v.is_reduction());
        assert_eq!(v.name, "x");
        assert_eq!(v.extent, 56);
    }

    #[test]
    fn reduction_constructor_sets_kind() {
        let v = IndexVar::reduction("c", 64);
        assert!(v.is_reduction());
        assert!(!v.is_spatial());
    }

    #[test]
    fn display_formats() {
        assert_eq!(IndexVar::spatial("x", 7).to_string(), "x(7)");
        assert_eq!(IndexId(3).to_string(), "i3");
        assert_eq!(IndexKind::Spatial.to_string(), "spatial");
        assert_eq!(IndexKind::Reduction.to_string(), "reduction");
    }

    #[test]
    fn index_id_ordering_follows_position() {
        assert!(IndexId(0) < IndexId(1));
        assert_eq!(IndexId(2), IndexId(2));
    }
}
