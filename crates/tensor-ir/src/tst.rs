//! Tensor syntax trees (TSTs), the paper's unified HW/SW IR (§IV-B).
//!
//! A TST makes the loop and tensor structure of a computation explicit:
//! internal nodes are operations (`Sum`, `Mul`, `Add`, tensor indexing) and
//! leaves are loop-index occurrences. Both the compute workload and the
//! hardware intrinsic are lowered to TSTs, and the two-step matcher compares
//! them via lowest common ancestors (LCAs) of leaf pairs.

use crate::expr::Computation;
use crate::index::IndexId;
use serde::{Deserialize, Serialize};

/// Operation carried by an internal TST node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TstOp {
    /// Reduction over one or more indices (the `Σ` at the root).
    Sum,
    /// Product of the input accesses.
    Mul,
    /// Affine addition inside a subscript (`x + r`).
    Add,
    /// A tensor indexing node (`[]`); its children are the subscripts.
    Access,
}

impl std::fmt::Display for TstOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TstOp::Sum => write!(f, "sum"),
            TstOp::Mul => write!(f, "*"),
            TstOp::Add => write!(f, "+"),
            TstOp::Access => write!(f, "[]"),
        }
    }
}

/// One node of a [`Tst`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TstNode {
    /// An operation node.
    Internal {
        /// The operation.
        op: TstOp,
        /// Child node ids.
        children: Vec<usize>,
        /// For [`TstOp::Access`] nodes, the tensor name.
        tensor: Option<String>,
    },
    /// A loop-index occurrence.
    Leaf {
        /// The referenced loop variable.
        index: IndexId,
    },
}

/// A tensor syntax tree stored as an arena of [`TstNode`]s.
///
/// # Example
/// ```
/// use tensor_ir::{Computation, Tst};
/// let gemm = Computation::builder("gemm")
///     .spatial("i", 16).spatial("j", 16).reduction("k", 16)
///     .output("L", &["i", "j"])
///     .input("M", &["i", "k"]).input("N", &["k", "j"])
///     .build().unwrap();
/// let tst = Tst::from_computation(&gemm);
/// assert_eq!(tst.leaves().len(), 4); // i, k, k, j
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Tst {
    nodes: Vec<TstNode>,
    root: usize,
    parent: Vec<Option<usize>>,
    depth: Vec<usize>,
    leaves: Vec<usize>,
}

impl Tst {
    /// Lowers a computation's right-hand side into a TST.
    ///
    /// The root is a `Sum` node when the computation has reduction indices
    /// (matching the paper's Fig. 5(b)), otherwise the `Mul` node directly.
    pub fn from_computation(comp: &Computation) -> Self {
        let mut nodes: Vec<TstNode> = Vec::new();
        let mut access_ids = Vec::new();
        for acc in &comp.inputs {
            let mut dim_ids = Vec::new();
            for dim in &acc.dims {
                if dim.terms.len() == 1 {
                    nodes.push(TstNode::Leaf {
                        index: dim.terms[0],
                    });
                    dim_ids.push(nodes.len() - 1);
                } else {
                    let mut leaf_ids = Vec::new();
                    for t in &dim.terms {
                        nodes.push(TstNode::Leaf { index: *t });
                        leaf_ids.push(nodes.len() - 1);
                    }
                    nodes.push(TstNode::Internal {
                        op: TstOp::Add,
                        children: leaf_ids,
                        tensor: None,
                    });
                    dim_ids.push(nodes.len() - 1);
                }
            }
            nodes.push(TstNode::Internal {
                op: TstOp::Access,
                children: dim_ids,
                tensor: Some(acc.tensor.clone()),
            });
            access_ids.push(nodes.len() - 1);
        }
        let mul = if access_ids.len() == 1 {
            access_ids[0]
        } else {
            nodes.push(TstNode::Internal {
                op: TstOp::Mul,
                children: access_ids,
                tensor: None,
            });
            nodes.len() - 1
        };
        let root = if comp.reduction_indices().is_empty() {
            mul
        } else {
            nodes.push(TstNode::Internal {
                op: TstOp::Sum,
                children: vec![mul],
                tensor: None,
            });
            nodes.len() - 1
        };
        Self::finish(nodes, root)
    }

    fn finish(nodes: Vec<TstNode>, root: usize) -> Self {
        let mut parent = vec![None; nodes.len()];
        let mut depth = vec![0usize; nodes.len()];
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            if let TstNode::Internal { children, .. } = &nodes[n] {
                for &c in children {
                    parent[c] = Some(n);
                    depth[c] = depth[n] + 1;
                    stack.push(c);
                }
            }
        }
        // Leaves in left-to-right order: walk DFS preserving child order.
        let mut leaves = Vec::new();
        let mut dfs = vec![root];
        while let Some(n) = dfs.pop() {
            match &nodes[n] {
                TstNode::Leaf { .. } => leaves.push(n),
                TstNode::Internal { children, .. } => {
                    for &c in children.iter().rev() {
                        dfs.push(c);
                    }
                }
            }
        }
        Tst {
            nodes,
            root,
            parent,
            depth,
            leaves,
        }
    }

    /// Node id of the root.
    pub fn root(&self) -> usize {
        self.root
    }

    /// Total number of nodes (`l` in the paper's complexity bound).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` if the tree is empty (never the case for trees built
    /// by [`Tst::from_computation`]).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Node accessor.
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn node(&self, id: usize) -> &TstNode {
        &self.nodes[id]
    }

    /// Ids of all leaf nodes, in left-to-right source order.
    pub fn leaves(&self) -> &[usize] {
        &self.leaves
    }

    /// The loop index referenced by a leaf node.
    ///
    /// # Panics
    /// Panics if `id` is not a leaf.
    pub fn leaf_index(&self, id: usize) -> IndexId {
        match &self.nodes[id] {
            TstNode::Leaf { index } => *index,
            TstNode::Internal { .. } => panic!("node {id} is not a leaf"),
        }
    }

    /// The operation of an internal node.
    ///
    /// # Panics
    /// Panics if `id` is a leaf.
    pub fn op(&self, id: usize) -> TstOp {
        match &self.nodes[id] {
            TstNode::Internal { op, .. } => *op,
            TstNode::Leaf { .. } => panic!("node {id} is a leaf"),
        }
    }

    /// Lowest common ancestor of two nodes (naive pointer-chasing; TSTs have
    /// at most ~100 nodes per the paper).
    ///
    /// # Panics
    /// Panics if the nodes are not in the same tree.
    pub fn lca(&self, a: usize, b: usize) -> usize {
        let (mut a, mut b) = (a, b);
        while self.depth[a] > self.depth[b] {
            a = self.parent[a].expect("node has no parent");
        }
        while self.depth[b] > self.depth[a] {
            b = self.parent[b].expect("node has no parent");
        }
        while a != b {
            a = self.parent[a].expect("disjoint trees");
            b = self.parent[b].expect("disjoint trees");
        }
        a
    }

    /// The tensor name of the `Access` node enclosing a leaf, if any.
    pub fn enclosing_tensor(&self, leaf: usize) -> Option<&str> {
        let mut n = leaf;
        while let Some(p) = self.parent[n] {
            if let TstNode::Internal {
                op: TstOp::Access,
                tensor,
                ..
            } = &self.nodes[p]
            {
                return tensor.as_deref();
            }
            n = p;
        }
        None
    }

    /// Renders the tree as an s-expression, useful in test failures.
    pub fn to_sexpr(&self, comp: &Computation) -> String {
        fn rec(t: &Tst, comp: &Computation, n: usize, out: &mut String) {
            match &t.nodes[n] {
                TstNode::Leaf { index } => out.push_str(&comp.index(*index).name),
                TstNode::Internal {
                    op,
                    children,
                    tensor,
                } => {
                    out.push('(');
                    match tensor {
                        Some(name) => out.push_str(&format!("[]{name}")),
                        None => out.push_str(&op.to_string()),
                    }
                    for &c in children {
                        out.push(' ');
                        rec(t, comp, c, out);
                    }
                    out.push(')');
                }
            }
        }
        let mut s = String::new();
        rec(self, comp, self.root, &mut s);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Computation;

    fn gemm() -> Computation {
        Computation::builder("gemm")
            .spatial("i", 16)
            .spatial("j", 16)
            .reduction("k", 16)
            .output("L", &["i", "j"])
            .input("M", &["i", "k"])
            .input("N", &["k", "j"])
            .build()
            .unwrap()
    }

    fn conv() -> Computation {
        Computation::builder("conv2d")
            .spatial("k", 64)
            .spatial("x", 56)
            .spatial("y", 56)
            .reduction("c", 64)
            .reduction("r", 3)
            .reduction("s", 3)
            .output("C", &["k", "x", "y"])
            .input("A", &["c", "x+r", "y+s"])
            .input("B", &["k", "c", "r", "s"])
            .build()
            .unwrap()
    }

    #[test]
    fn gemm_tree_has_four_leaves() {
        let c = gemm();
        let t = Tst::from_computation(&c);
        assert_eq!(t.leaves().len(), 4);
        assert_eq!(t.to_sexpr(&c), "(sum (* ([]M i k) ([]N k j)))");
    }

    #[test]
    fn conv_tree_has_nine_leaves() {
        let c = conv();
        let t = Tst::from_computation(&c);
        // Paper §IV-B: "The compute tree has nine leaf nodes".
        assert_eq!(t.leaves().len(), 9);
        assert_eq!(
            t.to_sexpr(&c),
            "(sum (* ([]A c (+ x r) (+ y s)) ([]B k c r s)))"
        );
    }

    #[test]
    fn lca_within_one_access_is_the_access_node() {
        let c = gemm();
        let t = Tst::from_computation(&c);
        let leaves = t.leaves();
        // First two leaves are i and k inside M.
        let lca = t.lca(leaves[0], leaves[1]);
        assert_eq!(t.op(lca), TstOp::Access);
    }

    #[test]
    fn lca_across_accesses_is_mul() {
        let c = gemm();
        let t = Tst::from_computation(&c);
        let leaves = t.leaves();
        // i (in M) and j (in N).
        let lca = t.lca(leaves[0], leaves[3]);
        assert_eq!(t.op(lca), TstOp::Mul);
    }

    #[test]
    fn lca_of_affine_siblings_is_add() {
        let c = conv();
        let t = Tst::from_computation(&c);
        // Leaves in order: c, x, r, y, s (A), then k, c, r, s (B).
        let leaves = t.leaves();
        let x = leaves[1];
        let r = leaves[2];
        assert_eq!(t.leaf_index(x), c.index_by_name("x").unwrap());
        assert_eq!(t.leaf_index(r), c.index_by_name("r").unwrap());
        assert_eq!(t.op(t.lca(x, r)), TstOp::Add);
        // y (under one Add) and c (direct child): LCA is the A access node.
        let cc = leaves[0];
        let y = leaves[3];
        assert_eq!(t.op(t.lca(cc, y)), TstOp::Access);
    }

    #[test]
    fn enclosing_tensor_resolves_through_add_nodes() {
        let c = conv();
        let t = Tst::from_computation(&c);
        let leaves = t.leaves();
        assert_eq!(t.enclosing_tensor(leaves[2]), Some("A")); // r inside x+r
        assert_eq!(t.enclosing_tensor(leaves[5]), Some("B")); // k in B
    }

    #[test]
    fn single_input_no_reduction_has_access_root() {
        // Copy: O[i] = A[i]
        let c = Computation::builder("copy")
            .spatial("i", 8)
            .output("O", &["i"])
            .input("A", &["i"])
            .build()
            .unwrap();
        let t = Tst::from_computation(&c);
        assert_eq!(t.op(t.root()), TstOp::Access);
        assert_eq!(t.leaves().len(), 1);
        assert!(!t.is_empty());
    }

    #[test]
    fn dot_product_tree_shape() {
        let c = Computation::builder("dot")
            .reduction("i", 64)
            .output("C", &[])
            .input("A", &["i"])
            .input("B", &["i"])
            .build()
            .unwrap();
        let t = Tst::from_computation(&c);
        assert_eq!(t.to_sexpr(&c), "(sum (* ([]A i) ([]B i)))");
        assert_eq!(t.leaves().len(), 2);
    }

    #[test]
    fn depth_and_parent_consistent() {
        let c = conv();
        let t = Tst::from_computation(&c);
        for &l in t.leaves() {
            // Walk to root; must terminate at root with decreasing depth.
            let mut n = l;
            let mut steps = 0;
            while let Some(p) = t.parent[n] {
                assert!(t.depth[p] + 1 == t.depth[n]);
                n = p;
                steps += 1;
                assert!(steps < t.len());
            }
            assert_eq!(n, t.root());
        }
    }
}
