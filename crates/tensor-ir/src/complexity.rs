//! Compute-complexity accounting (the "Compute Complexity" column of the
//! paper's Table I).

use crate::expr::Computation;

/// Floating-point operations of a computation: one multiply per extra input
/// factor plus one accumulate, per iteration point. For the common two-input
/// case this is the textbook `2·Π(extents)`; for MTTKRP's three-tensor
/// product it is `3·Π(extents)`.
pub fn flops(comp: &Computation) -> u64 {
    let ops_per_point = comp.inputs.len().max(2) as u64;
    ops_per_point * comp.iteration_points()
}

/// Multiply-accumulate count: one MAC per iteration point (the unit the
/// accelerator model charges).
pub fn macs(comp: &Computation) -> u64 {
    comp.iteration_points()
}

/// Total DRAM bytes if every tensor (inputs and output) is transferred once.
pub fn footprint_bytes(comp: &Computation, dtype_bytes: u64) -> u64 {
    let inputs: u64 = comp.inputs.iter().map(|a| comp.tensor_elements(a)).sum();
    (inputs + comp.tensor_elements(&comp.output)) * dtype_bytes
}

/// Arithmetic intensity: FLOPs per DRAM byte at minimum traffic.
pub fn arithmetic_intensity(comp: &Computation, dtype_bytes: u64) -> f64 {
    flops(comp) as f64 / footprint_bytes(comp, dtype_bytes) as f64
}

/// Formats an op count the way the paper does: `255M`, `5.9G`, `16K`.
pub fn format_ops(ops: u64) -> String {
    const K: f64 = 1e3;
    const M: f64 = 1e6;
    const G: f64 = 1e9;
    let x = ops as f64;
    if x >= G {
        format!("{:.1}G", x / G)
    } else if x >= M {
        format!("{:.0}M", x / M)
    } else if x >= K {
        format!("{:.0}K", x / K)
    } else {
        format!("{ops}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suites;

    #[test]
    fn gemm_flops_are_2nmk() {
        let w = suites::gemm_workload("g", 10, 20, 30);
        assert_eq!(flops(&w.comp), 2 * 10 * 20 * 30);
    }

    #[test]
    fn mttkrp_flops_are_3x() {
        let w = suites::mttkrp_workload("m", 10, 10, 10, 10);
        assert_eq!(flops(&w.comp), 3 * 10_000);
        assert_eq!(macs(&w.comp), 10_000);
    }

    #[test]
    fn conv_flops() {
        let w = suites::conv2d_workload("c", 64, 64, 56, 56, 3, 3);
        assert_eq!(flops(&w.comp), 2 * 64 * 64 * 56 * 56 * 9);
    }

    #[test]
    fn intensity_positive() {
        let w = suites::gemm_workload("g", 64, 64, 64);
        assert!(arithmetic_intensity(&w.comp, 4) > 1.0);
    }

    #[test]
    fn format_matches_paper_style() {
        assert_eq!(format_ops(255_000_000), "255M");
        assert_eq!(format_ops(5_900_000_000), "5.9G");
        assert_eq!(format_ops(16_000), "16K");
        assert_eq!(format_ops(999), "999");
        assert_eq!(format_ops(4_300_000_000), "4.3G");
    }
}
